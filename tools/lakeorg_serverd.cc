// lakeorg_serverd: stand-alone NavService TCP server over a generated
// TagCloud fixture (docs/SERVING.md). Intended for manual poking, the
// loadgen, and demos; tests and the bench embed NavServer directly.
//
//   lakeorg_serverd [--port N] [--host A] [--tags N] [--attrs N]
//                   [--seed N] [--max-sessions N] [--batch-threads N]
//                   [--ttl SECONDS] [--sweep SECONDS] [--metrics]
//
// Prints "listening on HOST:PORT" once serving; SIGINT/SIGTERM stops
// gracefully.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchgen/tagcloud.h"
#include "core/org_builders.h"
#include "core/org_snapshot.h"
#include "discovery/nav_service.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "search/engine.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

uint64_t ParseNum(const char* flag, const char* value) {
  char* end = nullptr;
  uint64_t v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lakeorg;

  NavServerOptions server_opts;
  NavServiceOptions service_opts;
  TagCloudOptions fixture_opts;
  fixture_opts.num_tags = 60;
  fixture_opts.target_attributes = 400;
  fixture_opts.min_values = 10;
  fixture_opts.max_values = 60;
  fixture_opts.seed = 9;
  service_opts.batch_threads = 2;
  server_opts.sweep_interval_seconds = 5.0;
  bool dump_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--port") == 0) {
      server_opts.port = static_cast<uint16_t>(ParseNum(arg, next()));
    } else if (std::strcmp(arg, "--host") == 0) {
      server_opts.host = next();
    } else if (std::strcmp(arg, "--tags") == 0) {
      fixture_opts.num_tags = static_cast<size_t>(ParseNum(arg, next()));
    } else if (std::strcmp(arg, "--attrs") == 0) {
      fixture_opts.target_attributes =
          static_cast<size_t>(ParseNum(arg, next()));
    } else if (std::strcmp(arg, "--seed") == 0) {
      fixture_opts.seed = ParseNum(arg, next());
    } else if (std::strcmp(arg, "--max-sessions") == 0) {
      service_opts.max_sessions = static_cast<size_t>(ParseNum(arg, next()));
    } else if (std::strcmp(arg, "--batch-threads") == 0) {
      service_opts.batch_threads = static_cast<size_t>(ParseNum(arg, next()));
    } else if (std::strcmp(arg, "--ttl") == 0) {
      service_opts.idle_ttl_seconds = std::atof(next());
    } else if (std::strcmp(arg, "--sweep") == 0) {
      server_opts.sweep_interval_seconds = std::atof(next());
    } else if (std::strcmp(arg, "--metrics") == 0) {
      dump_metrics = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return 2;
    }
  }

  if (dump_metrics) obs::SetMetricsEnabled(true);

  std::fprintf(stderr, "building TagCloud fixture (%zu tags, %zu attrs)...\n",
               fixture_opts.num_tags, fixture_opts.target_attributes);
  TagCloudBenchmark bench = GenerateTagCloud(fixture_opts);
  auto lake = std::make_shared<const DataLake>(std::move(bench.lake));
  TagIndex index = TagIndex::Build(*lake);
  auto ctx = OrgContext::BuildFull(*lake, index);
  Organization clustering = BuildClusteringOrganization(ctx);
  clustering.RecomputeLevels();

  OrgSnapshotStore store;
  {
    OrgSnapshot snap;
    snap.lake = lake;
    snap.ctx = ctx;
    snap.index = std::make_shared<const TagIndex>(std::move(index));
    snap.org = std::make_shared<const Organization>(std::move(clustering));
    snap.engine =
        std::make_shared<const TableSearchEngine>(lake.get(), bench.store);
    store.Publish(std::move(snap));
  }
  NavService::SnapshotSource source = [&store] { return store.Current(); };

  NavService service(source, service_opts);
  NavServer server(&service, source, server_opts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "listening on %s:%u (%zu attrs, max %zu sessions)\n",
               server_opts.host.c_str(), server.port(), ctx->num_attrs(),
               service_opts.max_sessions);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0) {
    // Sleep until a signal; the server runs on its own thread.
    sigsuspend(&empty);
  }
  std::fprintf(stderr, "shutting down...\n");
  server.Stop();

  NavServerStats stats = server.Stats();
  std::fprintf(stderr,
               "served %llu requests on %llu connections "
               "(%llu bad frames, %llu bad requests)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.bad_frames),
               static_cast<unsigned long long>(stats.bad_requests));
  if (dump_metrics) {
    std::printf("%s\n", obs::SnapshotMetrics().ToJson().Dump(2).c_str());
  }
  return 0;
}
