#!/usr/bin/env bash
# Baseline drift guard over the committed BENCH_*.json reports.
#
# A committed baseline can rot in two ways bench_compare --check alone
# does not see:
#
#   1. its stamped git_sha no longer names a commit reachable from HEAD
#      (history was rewritten, or the baseline was copied in from another
#      branch) — the numbers then describe a tree nobody can diff against;
#   2. its schema_version falls behind the report writer, so the next
#      refresh would not be comparable against it.
#
# This script runs the schema validation AND both git checks for every
# baseline at the repo root. Run from anywhere inside the repo:
#
#   tools/check_baselines.sh [path/to/bench_compare]
#
# The bench_compare binary defaults to build/tools/bench_compare. In CI
# the checkout must have full history (fetch-depth: 0), otherwise the
# ancestry check cannot see the stamped commits.
set -euo pipefail

cd "$(dirname "$0")/.."
bench_compare="${1:-build/tools/bench_compare}"
if [[ ! -x "$bench_compare" ]]; then
  echo "check_baselines: bench_compare not found at $bench_compare" \
       "(build it first, or pass its path)" >&2
  exit 2
fi

shopt -s nullglob
baselines=(BENCH_*.json)
if [[ ${#baselines[@]} -eq 0 ]]; then
  echo "check_baselines: no BENCH_*.json baselines at the repo root" >&2
  exit 1
fi

failures=0
for report in "${baselines[@]}"; do
  # Schema gate: the loader rejects unknown schema_version values, so a
  # stale baseline fails here before the git checks run.
  if ! "$bench_compare" --check "$report"; then
    echo "check_baselines: FAIL: $report is not schema-valid" >&2
    failures=$((failures + 1))
    continue
  fi

  sha=$(sed -n 's/.*"git_sha": *"\([0-9a-zA-Z._-]*\)".*/\1/p' "$report" \
        | head -1)
  if [[ -z "$sha" ]]; then
    echo "check_baselines: FAIL: $report has no git_sha stamp" >&2
    failures=$((failures + 1))
    continue
  fi
  if [[ "$sha" == "unknown" ]]; then
    echo "check_baselines: FAIL: $report was generated outside a git" \
         "checkout (git_sha \"unknown\") — refresh it from a committed" \
         "state" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! git cat-file -e "$sha^{commit}" 2>/dev/null; then
    echo "check_baselines: FAIL: $report stamps git_sha $sha, which names" \
         "no commit in this clone (shallow checkout? rewritten history?)" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! git merge-base --is-ancestor "$sha" HEAD; then
    echo "check_baselines: FAIL: $report stamps git_sha $sha, which is not" \
         "an ancestor of HEAD — the baseline describes a different line of" \
         "history" >&2
    failures=$((failures + 1))
    continue
  fi
  echo "check_baselines: $report ok (git_sha $sha reachable from HEAD)"
done

if [[ $failures -gt 0 ]]; then
  echo "check_baselines: $failures baseline(s) failed" >&2
  exit 1
fi
echo "check_baselines: all ${#baselines[@]} baselines ok"
