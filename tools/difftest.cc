// difftest: randomized differential-testing driver.
//
// Runs RunDiffTrial over a range of seeds, comparing the optimized
// evaluators (OrgEvaluator serial + pooled, IncrementalEvaluator with 1 and
// --threads workers) against the naive ReferenceEvaluator oracle, and
// checking Organization::Validate() plus the topic invariants after every
// operation and rollback. Any per-value difference above --tolerance fails
// the trial and prints the seed needed to replay it.
//
//   difftest --seed 1 --trials 200 --threads 4 --dims 1
//   difftest --seed 7 --trials 50 --dims 3 --max-seconds 60
//
// --repair switches to the repair property (RunRepairTrial): random
// mutation batches spliced with RepairOrganization, checked against the
// reference evaluator, Validate(), and the repair >= splice guarantee.
//
//   difftest --repair --seed 1 --trials 100 --threads 4
//
// --recycle switches to the state-recycling property (RunRecycleTrial):
// rounds of delete-biased op churn followed by RecycleDeadStates() and
// slot reuse, checking free-list behavior, slot-version bumps, leaf
// StateId stability, and evaluator/oracle agreement after every round.
//
//   difftest --recycle --seed 1 --trials 50 --threads 4 --rounds 4
//
// --serving switches to the serving-layer property (RunServingTrial):
// random walks through a cached and an uncached NavService plus a
// ComputeTransitionRow oracle, required to match bit-identically, with
// the error paths and the batch API exercised along the way.
//
//   difftest --serving --seed 1 --trials 50 --threads 4
//
// --durability switches to the crash-recovery property
// (RunDurabilityTrial): a durable LiveLakeService and a never-crashed
// reference run identical mutation batches; the WAL is then truncated
// or bit-flipped at random offsets and recovery must land byte-exactly
// on a reference checkpoint (or refuse detected corruption).
//
//   difftest --durability --seed 1 --trials 25 --crashes 8 --window 8
//
// --sharded switches to the sharded-optimization property
// (RunShardedTrial): shard-count-1 BuildShardedOrganization must be
// byte-identical to the unsharded optimizer, multi-shard builds must be
// byte-deterministic across thread counts and memory budgets, and the
// stitched organization must validate and match the reference oracle.
//
//   difftest --sharded --seed 1 --trials 30 --threads 4
//
// --adaptive switches to the closed-loop property (RunAdaptiveTrial):
// concurrent session walks feed a click sink, AdaptivePolicy::Tick
// blends and (when drift crosses the trial's threshold) repairs, and a
// serial oracle replay must match bit-identically — drift score,
// published bytes, and the weighted objective.
//
//   difftest --adaptive --seed 1 --trials 30 --threads 4 --rounds 3
//
// Exit status 0 iff every trial passed.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/timer.h"
#include "core/org_fuzz.h"
#include "discovery/adaptive_fuzz.h"
#include "discovery/durability_fuzz.h"
#include "discovery/serving_fuzz.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: difftest [--seed N] [--trials N] [--threads N]\n"
               "                [--dims N] [--ops N] [--tolerance X]\n"
               "                [--max-seconds X] [--verbose] [--repair]\n"
               "                [--mutations N] [--serving] [--sessions N]\n"
               "                [--steps N] [--recycle] [--rounds N]\n"
               "                [--durability] [--applies N] [--crashes N]\n"
               "                [--window N] [--snapshot-every N]\n"
               "                [--sharded] [--max-shards N]\n"
               "                [--proposals N] [--adaptive]\n");
  std::exit(2);
}

uint64_t ParseU64(const char* s) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') Usage();
  return static_cast<uint64_t>(v);
}

double ParseF64(const char* s) {
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0') Usage();
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  size_t trials = 20;
  double max_seconds = 0.0;  // 0 = no time limit
  bool verbose = false;
  bool repair = false;
  bool serving = false;
  bool recycle = false;
  bool durability = false;
  bool sharded = false;
  bool adaptive = false;
  size_t max_shards = 4;
  size_t proposals = 40;
  size_t mutations = 3;
  size_t sessions = 8;
  size_t steps = 30;
  size_t rounds = 4;
  size_t applies = 5;
  size_t crashes = 8;
  int window = 1;
  uint64_t snapshot_every = 0;
  lakeorg::DiffTrialOptions options;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = ParseU64(next());
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      trials = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.threads = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--dims") == 0) {
      options.dims = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      options.num_ops = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--tolerance") == 0) {
      options.tolerance = ParseF64(next());
    } else if (std::strcmp(argv[i], "--max-seconds") == 0) {
      max_seconds = ParseF64(next());
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(argv[i], "--mutations") == 0) {
      mutations = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--serving") == 0) {
      serving = true;
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--steps") == 0) {
      steps = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--recycle") == 0) {
      recycle = true;
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      rounds = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--durability") == 0) {
      durability = true;
    } else if (std::strcmp(argv[i], "--applies") == 0) {
      applies = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--crashes") == 0) {
      crashes = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window = static_cast<int>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0) {
      snapshot_every = ParseU64(next());
    } else if (std::strcmp(argv[i], "--sharded") == 0) {
      sharded = true;
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      adaptive = true;
    } else if (std::strcmp(argv[i], "--max-shards") == 0) {
      max_shards = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--proposals") == 0) {
      proposals = static_cast<size_t>(ParseU64(next()));
    } else {
      Usage();
    }
  }

  if (serving) {
    lakeorg::ServingTrialOptions sopts;
    sopts.threads = options.threads;
    sopts.num_sessions = sessions;
    sopts.steps_per_session = steps;
    lakeorg::WallTimer timer;
    size_t ran = 0;
    size_t failures = 0;
    size_t total_steps = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (size_t t = 0; t < trials; ++t) {
      if (max_seconds > 0.0 && timer.ElapsedSeconds() >= max_seconds) break;
      sopts.seed = seed + t;
      lakeorg::ServingTrialResult res = lakeorg::RunServingTrial(sopts);
      ++ran;
      total_steps += res.steps;
      hits += res.cache_hits;
      misses += res.cache_misses;
      if (!res.ok) {
        ++failures;
        std::fprintf(stderr, "FAIL %s\n", res.error.c_str());
      } else if (verbose) {
        std::printf("seed %" PRIu64 ": ok  steps=%zu hits=%zu misses=%zu\n",
                    sopts.seed, res.steps, static_cast<size_t>(res.cache_hits),
                    static_cast<size_t>(res.cache_misses));
      }
    }
    double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
    std::printf(
        "difftest --serving: %zu/%zu trials ok (%zu failed), threads=%zu, "
        "%zu steps, cache hit rate %.2f, %.1fs\n",
        ran - failures, ran, failures, sopts.threads, total_steps, hit_rate,
        timer.ElapsedSeconds());
    return failures == 0 ? 0 : 1;
  }

  if (adaptive) {
    lakeorg::AdaptiveTrialOptions aopts;
    aopts.threads = options.threads;
    aopts.num_sessions = sessions;
    aopts.steps_per_session = steps;
    aopts.rounds = rounds;
    aopts.tolerance = options.tolerance;
    lakeorg::WallTimer timer;
    size_t ran = 0;
    size_t failures = 0;
    size_t total_steps = 0;
    size_t total_clicks = 0;
    size_t total_repairs = 0;
    double max_drift = 0.0;
    for (size_t t = 0; t < trials; ++t) {
      if (max_seconds > 0.0 && timer.ElapsedSeconds() >= max_seconds) break;
      aopts.seed = seed + t;
      lakeorg::AdaptiveTrialResult res = lakeorg::RunAdaptiveTrial(aopts);
      ++ran;
      total_steps += res.steps;
      total_clicks += res.clicks;
      total_repairs += res.repairs;
      max_drift = std::max(max_drift, res.max_drift);
      if (!res.ok) {
        ++failures;
        std::fprintf(stderr, "FAIL %s\n", res.error.c_str());
      } else if (verbose) {
        std::printf(
            "seed %" PRIu64 ": ok  steps=%zu clicks=%zu repairs=%zu "
            "max_drift=%.3f\n",
            aopts.seed, res.steps, res.clicks, res.repairs, res.max_drift);
      }
    }
    std::printf(
        "difftest --adaptive: %zu/%zu trials ok (%zu failed), threads=%zu, "
        "%zu steps, %zu clicks, %zu repairs, max drift %.3f, %.1fs\n",
        ran - failures, ran, failures, aopts.threads, total_steps,
        total_clicks, total_repairs, max_drift, timer.ElapsedSeconds());
    return failures == 0 ? 0 : 1;
  }

  if (sharded) {
    lakeorg::ShardedTrialOptions shopts;
    shopts.threads = options.threads;
    shopts.tolerance = options.tolerance;
    shopts.max_shards = max_shards;
    shopts.max_proposals = proposals;
    lakeorg::WallTimer timer;
    size_t ran = 0;
    size_t failures = 0;
    size_t shards_total = 0;
    double worst = 0.0;
    double worst_gap = 0.0;
    for (size_t t = 0; t < trials; ++t) {
      if (max_seconds > 0.0 && timer.ElapsedSeconds() >= max_seconds) break;
      shopts.seed = seed + t;
      lakeorg::ShardedTrialResult res = lakeorg::RunShardedTrial(shopts);
      ++ran;
      shards_total += res.shards_built;
      worst = std::max(worst, res.effectiveness_diff);
      worst_gap = std::max(worst_gap, res.sharded_vs_unsharded_gap);
      if (!res.ok) {
        ++failures;
        std::fprintf(stderr, "FAIL %s\n", res.error.c_str());
      } else if (verbose) {
        std::printf(
            "seed %" PRIu64 ": ok  shards=%zu states=%zu diff=%.3g "
            "gap=%.3g\n",
            shopts.seed, res.shards_built, res.states_stitched,
            res.effectiveness_diff, res.sharded_vs_unsharded_gap);
      }
    }
    std::printf(
        "difftest --sharded: %zu/%zu trials ok (%zu failed), threads=%zu, "
        "%zu shards built, worst |stitched - reference| = %.3g, "
        "worst sharded-vs-unsharded gap = %.3g, %.1fs\n",
        ran - failures, ran, failures, shopts.threads, shards_total, worst,
        worst_gap, timer.ElapsedSeconds());
    return failures == 0 ? 0 : 1;
  }

  if (durability) {
    lakeorg::DurabilityTrialOptions dopts;
    dopts.threads = options.threads;
    dopts.num_applies = applies;
    dopts.mutations_per_apply = mutations;
    dopts.group_commit_window = window;
    dopts.snapshot_every = snapshot_every;
    dopts.num_crash_points = crashes;
    lakeorg::WallTimer timer;
    size_t ran = 0;
    size_t failures = 0;
    size_t points = 0;
    size_t exact = 0;
    size_t refused = 0;
    size_t survived = 0;
    for (size_t t = 0; t < trials; ++t) {
      if (max_seconds > 0.0 && timer.ElapsedSeconds() >= max_seconds) break;
      dopts.seed = seed + t;
      lakeorg::DurabilityTrialResult res =
          lakeorg::RunDurabilityTrial(dopts);
      ++ran;
      points += res.crash_points;
      exact += res.recovered_exact;
      refused += res.refused;
      survived += res.bitflips_survived;
      if (!res.ok) {
        ++failures;
        std::fprintf(stderr, "FAIL %s\n", res.error.c_str());
      } else if (verbose) {
        std::printf(
            "seed %" PRIu64 ": ok  applies=%zu crashes=%zu exact=%zu "
            "refused=%zu wal=%zuB\n",
            dopts.seed, res.applies, res.crash_points, res.recovered_exact,
            res.refused, static_cast<size_t>(res.wal_bytes));
      }
    }
    std::printf(
        "difftest --durability: %zu/%zu trials ok (%zu failed), "
        "threads=%zu window=%d, %zu crash points (%zu exact, %zu refused, "
        "%zu flips survived), %.1fs\n",
        ran - failures, ran, failures, dopts.threads,
        dopts.group_commit_window, points, exact, refused, survived,
        timer.ElapsedSeconds());
    return failures == 0 ? 0 : 1;
  }

  if (recycle) {
    lakeorg::RecycleTrialOptions copts;
    copts.threads = options.threads;
    copts.tolerance = options.tolerance;
    copts.num_rounds = rounds;
    lakeorg::WallTimer timer;
    size_t ran = 0;
    size_t failures = 0;
    size_t recycled = 0;
    size_t reused = 0;
    double worst = 0.0;
    for (size_t t = 0; t < trials; ++t) {
      if (max_seconds > 0.0 && timer.ElapsedSeconds() >= max_seconds) break;
      copts.seed = seed + t;
      lakeorg::RecycleTrialResult res = lakeorg::RunRecycleTrial(copts);
      ++ran;
      recycled += res.states_recycled;
      reused += res.slots_reused;
      worst = std::max(worst, std::max(res.max_effectiveness_diff,
                                       res.max_discovery_diff));
      if (!res.ok) {
        ++failures;
        std::fprintf(stderr, "FAIL %s\n", res.error.c_str());
      } else if (verbose) {
        std::printf(
            "seed %" PRIu64 ": ok  ops=%zu recycled=%zu reused=%zu "
            "max_diff=%.3g\n",
            copts.seed, res.ops_applied, res.states_recycled,
            res.slots_reused,
            std::max(res.max_effectiveness_diff, res.max_discovery_diff));
      }
    }
    std::printf(
        "difftest --recycle: %zu/%zu trials ok (%zu failed), threads=%zu, "
        "%zu slots recycled, %zu reused, "
        "worst |optimized - reference| = %.3g, %.1fs\n",
        ran - failures, ran, failures, copts.threads, recycled, reused,
        worst, timer.ElapsedSeconds());
    return failures == 0 ? 0 : 1;
  }

  if (repair) {
    lakeorg::RepairTrialOptions ropts;
    ropts.threads = options.threads;
    ropts.tolerance = options.tolerance;
    ropts.num_mutations = mutations;
    lakeorg::WallTimer timer;
    size_t ran = 0;
    size_t failures = 0;
    double worst = 0.0;
    for (size_t t = 0; t < trials; ++t) {
      if (max_seconds > 0.0 && timer.ElapsedSeconds() >= max_seconds) break;
      ropts.seed = seed + t;
      lakeorg::RepairTrialResult res = lakeorg::RunRepairTrial(ropts);
      ++ran;
      worst = std::max(worst, res.effectiveness_diff);
      if (!res.ok) {
        ++failures;
        std::fprintf(stderr, "FAIL %s\n", res.error.c_str());
      } else if (verbose) {
        std::printf(
            "seed %" PRIu64 ": ok  +%zu/-%zu leaves, %zu dropped, "
            "%zu touched, reopt_gain=%.3g, diff=%.3g\n",
            ropts.seed, res.leaves_added, res.leaves_removed,
            res.states_dropped, res.states_touched, res.reopt_gain,
            res.effectiveness_diff);
      }
    }
    std::printf(
        "difftest --repair: %zu/%zu trials ok (%zu failed), threads=%zu, "
        "worst |incremental - reference| = %.3g, %.1fs\n",
        ran - failures, ran, failures, ropts.threads, worst,
        timer.ElapsedSeconds());
    return failures == 0 ? 0 : 1;
  }

  lakeorg::WallTimer timer;
  size_t ran = 0;
  size_t failures = 0;
  double worst = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    if (max_seconds > 0.0 && timer.ElapsedSeconds() >= max_seconds) break;
    options.seed = seed + t;
    lakeorg::DiffTrialResult res = lakeorg::RunDiffTrial(options);
    ++ran;
    double trial_worst =
        std::max(std::max(res.max_reach_diff, res.max_discovery_diff),
                 std::max(res.max_effectiveness_diff, res.max_success_diff));
    worst = std::max(worst, trial_worst);
    if (!res.ok) {
      ++failures;
      std::fprintf(stderr, "FAIL %s\n", res.error.c_str());
    } else if (verbose) {
      std::printf(
          "seed %" PRIu64 ": ok  states=%zu attrs=%zu ops=%zu "
          "(commit %zu, rollback %zu)  max_diff=%.3g\n",
          options.seed, res.num_states, res.num_attrs, res.ops_applied,
          res.ops_committed, res.ops_rolled_back, trial_worst);
    }
  }

  std::printf(
      "difftest: %zu/%zu trials ok (%zu failed), threads=%zu dims=%zu, "
      "worst |optimized - reference| = %.3g, %.1fs\n",
      ran - failures, ran, failures, options.threads, options.dims, worst,
      timer.ElapsedSeconds());
  return failures == 0 ? 0 : 1;
}
