#!/usr/bin/env bash
# Full pre-merge check:
#   1. tier 1  — full test suite on the normal build (includes the unit,
#                fuzz, and bench-smoke labels)
#   2. bench   — explicit bench smoke tier: every bench binary's --smoke
#                run must emit a schema-valid BENCH_*.json
#   3. sanitizers — AddressSanitizer and ThreadSanitizer builds run the
#                fixed-seed differential fuzz tier, the golden-trace,
#                telemetry, and serving-layer tests, and a 60-second
#                difftest soak
#
#   tools/check.sh            # everything (three builds; several minutes)
#   tools/check.sh --fast     # tiers 1-2 only, no sanitizer builds
#   tools/check.sh --asan     # AddressSanitizer tier only (CI matrix leg)
#   tools/check.sh --tsan     # ThreadSanitizer tier only (CI matrix leg)
#
# Build trees: build/ (plain), build-asan/, build-tsan/. Each sanitizer
# tree is configured on first use and reused afterwards. Every command
# below runs under `set -e` with its exit status intact: a failing ctest
# or difftest phase fails the script even when a build tree already
# existed and only needed an incremental rebuild.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-all}"
case "$mode" in
  all|--fast|--asan|--tsan) ;;
  *)
    echo "check.sh: unknown flag '$mode' (use --fast, --asan, or --tsan)" >&2
    exit 2
    ;;
esac

# Sanitizer tier for one sanitizer ("address" or "thread"). Targets are
# built explicitly so an out-of-date tree is rebuilt before anything runs;
# the ctest/difftest invocations are plain statements whose exit codes
# propagate through set -e.
run_sanitizer_tier() {
  local san="$1"
  local tree="build-$([[ "$san" == address ]] && echo asan || echo tsan)"
  echo "== sanitizer tier: LAKEORG_SANITIZE=$san ($tree) =="
  cmake -B "$tree" -S . -DLAKEORG_SANITIZE="$san" >/dev/null
  cmake --build "$tree" -j "$jobs" \
    --target difftest crashtest difftest_property_test common_test \
             core_test obs_test lake_test discovery_test net_test
  # Fixed-seed differential fuzz corpus (includes the repair-delta,
  # serving, state-recycling, crash-recovery durability, and closed-loop
  # adaptive corpora: difftest --repair / --serving / --recycle /
  # --durability / --adaptive — the adaptive corpus runs both serial and
  # 4-threaded, the acceptance shape for the serve->observe->repair loop
  # — plus the crashtest matrix, serial and threaded).
  (cd "$tree" && ctest --output-on-failure -j "$jobs" -L fuzz)
  # Optimizer golden trace + telemetry (incl. the 8-thread counter
  # exactness test — the TSan run is the lock-freedom proof), the
  # live-evolution surface: snapshot publish/pin (the RCU concurrency
  # test is the TSan target), repair splicing, delta recording, the live
  # lake service — the serving layer: NavService session lifecycle with
  # concurrent walks + publishes, the sharded LRU row cache, and the
  # adaptive loop (click sink bounds, policy ticks racing walkers and
  # TTL sweeps — the TSan leg is the audit for the close-vs-descend
  # race) — the
  # durability layer: WAL framing/corruption matrix, mutation replay,
  # and crash recovery of the live service — and the network front end:
  # wire framing/codec, the socket corruption matrix, NavServer
  # lifecycle + backpressure (the TSan leg races the loop thread against
  # Stop and the counter reads), and loadgen-vs-oracle equivalence.
  (cd "$tree" && ctest --output-on-failure -j "$jobs" -LE slow \
    -R '^(GoldenTrace|MetricsTest|BenchReport|Json|OrgSnapshot|Repair|LakeDelta|LiveLake|NavService|LruCache|WalFormat|DurableLog|LakeMutation|WalRecord|Durability|NetFrame|NetProtocol|NavServer|NetLoadgen|Adaptive|ClickLog|ClickEvent|BuildRepairPlan|BehaviorLog)')
  # 60 seconds of fixed-seed fuzz: the difftest driver stops at the time
  # budget, so the seed range it covers grows with machine speed but
  # every run starts from the same seeds.
  "./$tree/tools/difftest" --seed 1000 --trials 100000 --threads 4 \
    --max-seconds 60
}

if [[ "$mode" == "--asan" ]]; then
  run_sanitizer_tier address
  echo "check.sh: asan tier ok"
  exit 0
fi
if [[ "$mode" == "--tsan" ]]; then
  run_sanitizer_tier thread
  echo "check.sh: tsan tier ok"
  exit 0
fi

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== bench smoke tier (ctest -L bench) =="
(cd build && ctest --output-on-failure -j "$jobs" -L bench)

if [[ "$mode" == "--fast" ]]; then
  echo "check.sh: tier-1 + bench ok (sanitizer tiers skipped with --fast)"
  exit 0
fi

run_sanitizer_tier address
run_sanitizer_tier thread

echo "check.sh: all tiers ok"
