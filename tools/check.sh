#!/usr/bin/env bash
# Full pre-merge check: the tier-1 test suite on the normal build, then a
# 60-second fixed-seed differential-testing run under AddressSanitizer and
# ThreadSanitizer instrumented builds (LAKEORG_SANITIZE=address / thread).
#
#   tools/check.sh            # everything (three builds; several minutes)
#   tools/check.sh --fast     # tier-1 only, no sanitizer builds
#
# Build trees: build/ (plain), build-asan/, build-tsan/. Each sanitizer
# tree is configured on first use and reused afterwards.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [[ "$fast" == 1 ]]; then
  echo "check.sh: tier-1 ok (sanitizer tiers skipped with --fast)"
  exit 0
fi

# 60 seconds of fixed-seed fuzz per sanitizer: the difftest driver stops at
# the time budget, so the seed range it covers grows with machine speed but
# every run starts from the same seeds.
for san in address thread; do
  tree="build-$([[ "$san" == address ]] && echo asan || echo tsan)"
  echo "== sanitizer tier: LAKEORG_SANITIZE=$san ($tree) =="
  cmake -B "$tree" -S . -DLAKEORG_SANITIZE="$san" >/dev/null
  cmake --build "$tree" -j "$jobs" --target difftest difftest_property_test
  (cd "$tree" && ctest --output-on-failure -j "$jobs" -L fuzz || exit 1)
  "./$tree/tools/difftest" --seed 1000 --trials 100000 --threads 4 \
    --max-seconds 60
done

echo "check.sh: all tiers ok"
