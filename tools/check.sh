#!/usr/bin/env bash
# Full pre-merge check:
#   1. tier 1  — full test suite on the normal build (includes the unit,
#                fuzz, and bench-smoke labels)
#   2. bench   — explicit bench smoke tier: every bench binary's --smoke
#                run must emit a schema-valid BENCH_*.json
#   3. sanitizers — AddressSanitizer and ThreadSanitizer builds run the
#                fixed-seed differential fuzz tier, the golden-trace and
#                telemetry tests, and a 60-second difftest soak
#
#   tools/check.sh            # everything (three builds; several minutes)
#   tools/check.sh --fast     # tiers 1-2 only, no sanitizer builds
#
# Build trees: build/ (plain), build-asan/, build-tsan/. Each sanitizer
# tree is configured on first use and reused afterwards. Every command
# below runs under `set -e` with its exit status intact: a failing ctest
# or difftest phase fails the script even when a build tree already
# existed and only needed an incremental rebuild.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== bench smoke tier (ctest -L bench) =="
(cd build && ctest --output-on-failure -j "$jobs" -L bench)

if [[ "$fast" == 1 ]]; then
  echo "check.sh: tier-1 + bench ok (sanitizer tiers skipped with --fast)"
  exit 0
fi

# Sanitizer tiers. Targets are built explicitly so an out-of-date tree is
# rebuilt before anything runs; the ctest/difftest invocations are plain
# statements whose exit codes propagate through set -e.
for san in address thread; do
  tree="build-$([[ "$san" == address ]] && echo asan || echo tsan)"
  echo "== sanitizer tier: LAKEORG_SANITIZE=$san ($tree) =="
  cmake -B "$tree" -S . -DLAKEORG_SANITIZE="$san" >/dev/null
  cmake --build "$tree" -j "$jobs" \
    --target difftest difftest_property_test core_test obs_test \
             lake_test discovery_test
  # Fixed-seed differential fuzz corpus (includes the repair-delta
  # property corpus: difftest --repair, serial and threaded).
  (cd "$tree" && ctest --output-on-failure -j "$jobs" -L fuzz)
  # Optimizer golden trace + telemetry (incl. the 8-thread counter
  # exactness test — the TSan run is the lock-freedom proof), plus the
  # live-evolution surface: snapshot publish/pin (the RCU concurrency
  # test is the TSan target), repair splicing, delta recording, and the
  # live lake service.
  (cd "$tree" && ctest --output-on-failure -j "$jobs" \
    -R '^(GoldenTrace|MetricsTest|BenchReport|Json|OrgSnapshot|Repair|LakeDelta|LiveLake)')
  # 60 seconds of fixed-seed fuzz: the difftest driver stops at the time
  # budget, so the seed range it covers grows with machine speed but
  # every run starts from the same seeds.
  "./$tree/tools/difftest" --seed 1000 --trials 100000 --threads 4 \
    --max-seconds 60
done

echo "check.sh: all tiers ok"
