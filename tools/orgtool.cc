// orgtool: command-line front end for building, inspecting, evaluating and
// walking organizations over CSV data lakes.
//
//   orgtool build  --save ORG [options] FILE.csv...   learn + save an org
//   orgtool stats  --load ORG FILE.csv...             shape metrics
//   orgtool eval   --load ORG FILE.csv...             effectiveness/success
//   orgtool trace  --load ORG --query "WORDS" FILE.csv...
//                                                     greedy walk for a topic
//   orgtool wal-dump --wal DIR                        decode a durable log
//   orgtool recover  --wal DIR                        recover + report
//
// Options:
//   --tags-from-name      tag each table with its filename tokens (default)
//   --gamma G             transition sharpness (default 20)
//   --proposals N         local search budget (default 400)
//   --seed S              search seed (default 7)
//
// The lake is rebuilt deterministically from the CSV files on every
// invocation, so a saved organization stays loadable as long as the files
// do not change.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/evaluator.h"
#include "discovery/live_lake.h"
#include "core/local_search.h"
#include "core/navigation.h"
#include "core/org_builders.h"
#include "core/org_stats.h"
#include "core/serialization.h"
#include "embedding/hashed_embedding.h"
#include "lake/csv_loader.h"
#include "lake/lake_stats.h"

using namespace lakeorg;

namespace {

struct Args {
  std::string command;
  std::string save_path;
  std::string load_path;
  std::string query;
  double gamma = 20.0;
  size_t proposals = 400;
  uint64_t seed = 7;
  size_t threads = 0;
  std::string wal_dir;
  std::vector<std::string> csv_files;
};

void Usage() {
  std::fprintf(stderr,
               "usage: orgtool build --save ORG [--gamma G] [--proposals N]"
               " [--seed S] [--threads T] FILE.csv...\n"
               "       orgtool stats --load ORG FILE.csv...\n"
               "       orgtool eval  --load ORG FILE.csv...\n"
               "       orgtool trace --load ORG --query \"WORDS\""
               " FILE.csv...\n"
               "       orgtool wal-dump --wal DIR\n"
               "       orgtool recover  --wal DIR\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&i, argc, argv]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--save") {
      const char* v = next();
      if (!v) return false;
      args->save_path = v;
    } else if (arg == "--load") {
      const char* v = next();
      if (!v) return false;
      args->load_path = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (!v) return false;
      args->query = v;
    } else if (arg == "--gamma") {
      const char* v = next();
      if (!v) return false;
      args->gamma = std::atof(v);
    } else if (arg == "--proposals") {
      const char* v = next();
      if (!v) return false;
      args->proposals = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      args->threads = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--wal") {
      const char* v = next();
      if (!v) return false;
      args->wal_dir = v;
    } else if (arg == "--tags-from-name") {
      // Default behavior; accepted for forward compatibility.
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    } else {
      args->csv_files.push_back(arg);
    }
  }
  if (args->command == "wal-dump" || args->command == "recover") {
    return !args->wal_dir.empty();
  }
  return !args->command.empty() && !args->csv_files.empty();
}

/// Loads the CSVs into a lake with filename-token tags + topic vectors.
bool BuildLake(const Args& args, DataLake* lake,
               std::shared_ptr<EmbeddingStore>* store) {
  *store = std::make_shared<EmbeddingStore>(
      std::make_shared<HashedEmbedding>());
  for (const std::string& path : args.csv_files) {
    Result<TableId> table = LoadCsvFile(lake, path, {});
    if (!table.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", path.c_str(),
                   table.status().ToString().c_str());
      return false;
    }
    const std::string& name = lake->table(table.value()).name;
    for (const std::string& token : Split(name, "_- ")) {
      if (token.size() >= 3) lake->Tag(table.value(), token);
    }
  }
  Status st = lake->ComputeTopicVectors(**store);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return false;
  }
  return true;
}

int RunBuild(const Args& args, std::shared_ptr<const OrgContext> ctx) {
  LocalSearchOptions options;
  options.transition.gamma = args.gamma;
  options.max_proposals = args.proposals;
  options.seed = args.seed;
  options.num_threads = args.threads;
  options.use_representatives = ctx->num_attrs() > 300;
  Result<LocalSearchResult> optimized =
      OptimizeOrganization(BuildClusteringOrganization(ctx), options);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  LocalSearchResult result = std::move(optimized).value();
  std::printf("effectiveness: %.4f -> %.4f (%zu proposals, %.1f s)\n",
              result.initial_effectiveness, result.effectiveness,
              result.proposals, result.seconds);
  result.org.RecomputeLevels();
  std::printf("%s\n", FormatOrgStats(ComputeOrgStats(result.org)).c_str());
  // Canonicalize the incremental float topic sums to the load path's
  // accumulation order, so the organization we save re-evaluates to the
  // exact score we print here (a save/load round trip is bit-identical
  // after canonicalization).
  result.org.RecomputeAllTopics();
  OrgEvaluator exact(options.transition);
  std::printf("final effectiveness (exact): %.10f\n",
              exact.Effectiveness(result.org));
  if (!args.save_path.empty()) {
    Status st = SaveOrganizationToFile(result.org, args.save_path);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved organization to %s\n", args.save_path.c_str());
  }
  return 0;
}

int RunStats(const Organization& org) {
  std::printf("%s\n", FormatOrgStats(ComputeOrgStats(org)).c_str());
  return 0;
}

int RunEval(const Args& args, const Organization& org) {
  TransitionConfig config;
  config.gamma = args.gamma;
  OrgEvaluator eval(config);
  double effectiveness = eval.Effectiveness(org);
  auto neighbors = OrgEvaluator::AttributeNeighbors(org.ctx(), 0.9);
  SuccessReport success = eval.Success(org, neighbors);
  std::printf("effectiveness (Eq. 7):        %.10f\n", effectiveness);
  std::printf("mean success (theta = 0.9):   %.10f\n", success.mean);
  std::vector<double> sorted = success.SortedAscending();
  std::printf("per-table success p10/p50/p90: %.4f / %.4f / %.4f\n",
              sorted[sorted.size() / 10], sorted[sorted.size() / 2],
              sorted[sorted.size() * 9 / 10]);
  return 0;
}

int RunTrace(const Args& args, const DataLake& lake,
             const EmbeddingStore& store, const Organization& org) {
  if (args.query.empty()) {
    std::fprintf(stderr, "trace requires --query\n");
    return 1;
  }
  TopicAccumulator acc(store.dim());
  for (const std::string& token : Split(ToLower(args.query), " ")) {
    std::optional<Vec> v = store.Embed(token);
    if (v.has_value()) acc.Add(*v);
  }
  Vec intent = acc.Mean();
  if (acc.count() == 0) {
    std::fprintf(stderr, "no query token is embeddable\n");
    return 1;
  }
  NavigationSession session(&org);
  while (!session.AtLeaf()) {
    std::vector<NavChoice> choices = session.Choices();
    if (choices.empty()) break;
    size_t best = 0;
    double best_sim = -2.0;
    for (size_t i = 0; i < choices.size(); ++i) {
      double sim = Cosine(org.state(choices[i].state).topic, intent);
      if (sim > best_sim) {
        best_sim = sim;
        best = i;
      }
    }
    std::printf("at \"%s\" (%zu choices) -> \"%s\" (cos %.2f)\n",
                StateLabel(org, session.current()).c_str(), choices.size(),
                choices[best].label.c_str(), best_sim);
    if (!session.Choose(best).ok()) break;
  }
  if (session.AtLeaf()) {
    uint32_t attr = session.CurrentAttr();
    const Attribute& a = lake.attribute(org.ctx().lake_attr(attr));
    std::printf("discovered: table \"%s\", column \"%s\" in %zu actions\n",
                lake.table(a.table).name.c_str(), a.name.c_str(),
                session.actions());
  }
  return 0;
}

int RunWalDump(const Args& args) {
  Result<WalDirState> state = ReadWalDir(args.wal_dir);
  if (!state.ok()) {
    std::fprintf(stderr, "wal-dump failed: %s\n",
                 state.status().ToString().c_str());
    return 1;
  }
  const WalDirState& s = state.value();
  if (s.has_snapshot) {
    Result<DurableSnapshot> snap = DurableSnapshotFromText(s.snapshot_contents);
    if (!snap.ok()) {
      std::fprintf(stderr, "snapshot-%llu.json is corrupt: %s\n",
                   static_cast<unsigned long long>(s.snapshot_seq),
                   snap.status().ToString().c_str());
      return 1;
    }
    std::printf("snapshot seq=%llu  %zu bytes  effectiveness %.10f\n",
                static_cast<unsigned long long>(s.snapshot_seq),
                s.snapshot_contents.size(), snap.value().effectiveness);
  } else {
    std::printf("no snapshot\n");
  }
  for (const std::string& payload : s.wal_payloads) {
    Result<WalRecord> record = WalRecordFromText(payload);
    if (!record.ok()) {
      std::fprintf(stderr, "record decode failed: %s\n",
                   record.status().ToString().c_str());
      return 1;
    }
    const WalRecord& r = record.value();
    std::printf(
        "record seq=%llu  %zu ops  delta +%zut -%zut +%zua -%zua ~%zua\n",
        static_cast<unsigned long long>(r.seq), r.batch.size(),
        r.delta.added_tables.size(), r.delta.removed_tables.size(),
        r.delta.added_attrs.size(), r.delta.removed_attrs.size(),
        r.delta.retagged_attrs.size());
  }
  std::printf("%zu records", s.wal_payloads.size());
  if (s.dropped_tail) {
    std::printf(", torn tail of %llu bytes dropped",
                static_cast<unsigned long long>(s.dropped_bytes));
  }
  std::printf("\n");
  return 0;
}

int RunRecover(const Args& args) {
  LiveLakeService::Options options;
  options.durability.dir = args.wal_dir;
  options.repair.seed = args.seed;
  options.repair.num_threads = args.threads;
  options.repair.transition.gamma = args.gamma;
  auto store =
      std::make_shared<EmbeddingStore>(std::make_shared<HashedEmbedding>());
  Result<std::unique_ptr<LiveLakeService>> service =
      LiveLakeService::RecoverFromDisk(store, options);
  if (!service.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  const LiveLakeService& svc = *service.value();
  std::shared_ptr<const OrgSnapshot> snap = svc.Current();
  std::printf("recovered to wal seq %llu (published version %llu)\n",
              static_cast<unsigned long long>(svc.wal_seq()),
              static_cast<unsigned long long>(svc.version()));
  std::printf("effectiveness: %.10f\n", snap->effectiveness);
  std::printf("%s", FormatLakeStats(ComputeLakeStats(*snap->lake)).c_str());
  std::printf("%s\n", FormatOrgStats(ComputeOrgStats(*snap->org)).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (args.command == "wal-dump") return RunWalDump(args);
  if (args.command == "recover") return RunRecover(args);
  DataLake lake;
  std::shared_ptr<EmbeddingStore> store;
  if (!BuildLake(args, &lake, &store)) return 1;
  std::printf("%s", FormatLakeStats(ComputeLakeStats(lake)).c_str());
  TagIndex index = TagIndex::Build(lake);
  if (index.NonEmptyTags().empty()) {
    std::fprintf(stderr,
                 "no organizable attributes (text + embeddable + tagged)\n");
    return 1;
  }
  auto ctx = OrgContext::BuildFull(lake, index);

  if (args.command == "build") {
    return RunBuild(args, ctx);
  }
  // Remaining commands need a loaded organization.
  if (args.load_path.empty()) {
    Usage();
    return 2;
  }
  Result<Organization> org = LoadOrganizationFromFile(ctx, args.load_path);
  if (!org.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 org.status().ToString().c_str());
    return 1;
  }
  Organization loaded = std::move(org).value();
  loaded.RecomputeLevels();
  if (args.command == "stats") return RunStats(loaded);
  if (args.command == "eval") return RunEval(args, loaded);
  if (args.command == "trace") {
    return RunTrace(args, lake, *store, loaded);
  }
  Usage();
  return 2;
}
