// bench_compare — regression gate over BENCH_*.json reports.
//
//   bench_compare BASELINE.json CURRENT.json [--threshold F]
//                 [--min-seconds F] [--ignore-env]
//       Compares matched series; exits 1 when any series regressed beyond
//       the threshold (default 0.10 = +10%) or the reports are not
//       comparable (different bench, different LAKEORG_* environment).
//
//   bench_compare --check REPORT.json
//       Validates the report against the schema only; exits 1 on a
//       malformed report.
//
// Exit codes: 0 ok, 1 regression/invalid report, 2 usage error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/bench_report.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare BASELINE.json CURRENT.json [--threshold F]\n"
      "                     [--min-seconds F] [--ignore-env]\n"
      "       bench_compare --check REPORT.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using lakeorg::Result;
  using lakeorg::obs::BenchComparison;
  using lakeorg::obs::BenchReport;

  bool check_only = false;
  bool ignore_env = false;
  double threshold = 0.10;
  double min_seconds = 1e-6;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--ignore-env") {
      ignore_env = true;
    } else if (arg == "--threshold" || arg == "--min-seconds") {
      if (i + 1 >= argc) return Usage();
      char* end = nullptr;
      double value = std::strtod(argv[++i], &end);
      if (end == argv[i] || value < 0.0) {
        std::fprintf(stderr, "bench_compare: bad value for %s: '%s'\n",
                     arg.c_str(), argv[i]);
        return 2;
      }
      (arg == "--threshold" ? threshold : min_seconds) = value;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_compare: unknown flag '%s'\n",
                   arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }

  if (check_only) {
    if (paths.size() != 1) return Usage();
    Result<BenchReport> report = lakeorg::obs::LoadBenchReportFile(paths[0]);
    if (!report.ok()) {
      std::fprintf(stderr, "bench_compare: %s: %s\n", paths[0].c_str(),
                   report.status().message().c_str());
      return 1;
    }
    std::printf("%s: valid BENCH report (bench=%s, %zu series)\n",
                paths[0].c_str(), report.value().bench.c_str(),
                report.value().results.size());
    return 0;
  }

  if (paths.size() != 2) return Usage();
  Result<BenchReport> baseline = lakeorg::obs::LoadBenchReportFile(paths[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", paths[0].c_str(),
                 baseline.status().message().c_str());
    return 1;
  }
  Result<BenchReport> current = lakeorg::obs::LoadBenchReportFile(paths[1]);
  if (!current.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", paths[1].c_str(),
                 current.status().message().c_str());
    return 1;
  }

  BenchComparison cmp = lakeorg::obs::CompareBenchReports(
      baseline.value(), current.value(), threshold, min_seconds, ignore_env);
  std::printf("%s", cmp.Format(threshold).c_str());
  return cmp.ok ? 0 : 1;
}
