#!/usr/bin/env bash
# Regenerates the committed benchmark baselines at the repo root:
#
#   BENCH_fig2a_tagcloud.json   — the paper's headline artifact (E1)
#   BENCH_micro_core.json       — hot-kernel microbenchmarks (M1)
#   BENCH_micro_evaluator.json  — proposal-evaluation engine (M2)
#
# Run on a quiet machine, then commit the refreshed files. Gate future
# changes with:
#
#   build/tools/bench_compare BENCH_micro_evaluator.json \
#       <fresh run>.json --threshold 0.10
#
# The reports embed the LAKEORG_* environment; run this script with the
# same (unset) environment the baselines were made with, or bench_compare
# will refuse the diff.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" \
  --target fig2a_tagcloud micro_core micro_evaluator bench_compare

./build/bench/fig2a_tagcloud --json=BENCH_fig2a_tagcloud.json
./build/bench/micro_core --json=BENCH_micro_core.json
./build/bench/micro_evaluator --json=BENCH_micro_evaluator.json

for report in BENCH_fig2a_tagcloud.json BENCH_micro_core.json \
              BENCH_micro_evaluator.json; do
  ./build/tools/bench_compare --check "$report"
done
echo "bench_baseline.sh: baselines refreshed"
