#!/usr/bin/env bash
# Regenerates the committed benchmark baselines at the repo root:
#
#   BENCH_fig2a_tagcloud.json   — the paper's headline artifact (E1)
#   BENCH_micro_core.json       — hot-kernel microbenchmarks (M1)
#   BENCH_micro_evaluator.json  — proposal-evaluation engine (M2)
#   BENCH_nav_serving.json      — concurrent serving layer (E8)
#   BENCH_wal_replay.json       — WAL append + crash recovery (E9)
#   BENCH_net_serving.json      — TCP front end, Zipf fleet (E10)
#   BENCH_scalability.json      — TagCloud sweep + sharded Socrata
#                                 sweep with the epsilon gate (S1);
#                                 the slowest baseline by far
#   BENCH_adaptive_serving.json — closed adaptive loop vs frozen org
#                                 (E11, docs/ADAPTIVE.md)
#
# Run on a quiet machine, then commit the refreshed files. Gate future
# changes with:
#
#   build/tools/bench_compare BENCH_micro_evaluator.json \
#       <fresh run>.json --threshold 0.10
#
# The reports embed the LAKEORG_* environment; run this script with the
# same (unset) environment the baselines were made with, or bench_compare
# will refuse the diff.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

# A baseline is only meaningful if its embedded git_sha names the exact
# tree that produced the numbers. Refuse to run with uncommitted changes
# — a baseline stamped with a SHA that doesn't include the code it
# measured would poison every future regression diff.
if [[ -n "$(git status --porcelain)" ]]; then
  echo "bench_baseline.sh: working tree is dirty; commit or stash first" >&2
  echo "  (baselines must be reproducible from the stamped git_sha)" >&2
  git status --short >&2
  exit 1
fi
sha=$(git rev-parse --short HEAD)
echo "bench_baseline.sh: baselining clean tree at $sha"

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" \
  --target fig2a_tagcloud micro_core micro_evaluator nav_serving \
           wal_replay net_serving scalability adaptive_serving \
           bench_compare

./build/bench/fig2a_tagcloud --json=BENCH_fig2a_tagcloud.json
./build/bench/micro_core --json=BENCH_micro_core.json
./build/bench/micro_evaluator --json=BENCH_micro_evaluator.json
./build/bench/nav_serving --json=BENCH_nav_serving.json
./build/bench/wal_replay --json=BENCH_wal_replay.json
./build/bench/net_serving --json=BENCH_net_serving.json
# The default sweep (multipliers 1,10 plus the multiplier-1 unsharded
# epsilon gate) runs for many minutes; the reports embed the LAKEORG_*
# environment, so keep it unset here as for every other baseline.
./build/bench/scalability --json=BENCH_scalability.json
./build/bench/adaptive_serving --json=BENCH_adaptive_serving.json

for report in BENCH_fig2a_tagcloud.json BENCH_micro_core.json \
              BENCH_micro_evaluator.json BENCH_nav_serving.json \
              BENCH_wal_replay.json BENCH_net_serving.json \
              BENCH_scalability.json BENCH_adaptive_serving.json; do
  ./build/tools/bench_compare --check "$report"
  # Belt-and-braces: the report must carry the SHA we just resolved. The
  # harness bakes the SHA in at configure time; the reconfigure above
  # refreshes it, so a mismatch means a stale build tree.
  if ! grep -q "\"git_sha\": \"$sha\"" "$report"; then
    echo "bench_baseline.sh: $report is not stamped with HEAD ($sha)" >&2
    exit 1
  fi
done
echo "bench_baseline.sh: baselines refreshed at $sha"
