#!/usr/bin/env python3
"""Validates .github/workflows/ci.yml against the repository it drives.

An actionlint-lite that needs nothing beyond the Python 3 standard
library (PyYAML is used when available, with a structural fallback
otherwise), so it can run both in CI and as the local `ci_workflow_check`
CTest entry. Checks:

  1. The YAML parses and has the workflow shape: name, on, jobs; every
     job has runs-on and a non-empty steps list; every step has exactly
     one of `run` / `uses`; every `${{ matrix.* }}` reference resolves to
     a declared strategy.matrix axis.
  2. Every repo-relative script the workflow invokes (tools/*.sh,
     tools/*.py) exists and is executable where invoked directly.
  3. Every `ctest -L <label>` label is actually assigned somewhere in
     tests/CMakeLists.txt — a renamed label cannot silently turn a CI
     step into a no-op.
  4. Every `tools/check.sh --flag` the workflow passes is handled by
     check.sh itself.
  5. The BENCH_*.json baselines the bench-gate iterates over exist.
  6. Every `schedule:` cron expression has five fields, each within the
     standard ranges (minute 0-59, hour 0-23, day 1-31, month 1-12,
     weekday 0-7), with `*`, lists, ranges, and `/step` supported.
  7. A scheduled workflow also declares `workflow_dispatch`, so the
     nightly tier can be rerun on demand without waiting for the cron.
  8. Every job gated on the schedule (its `if` mentions the schedule
     event) sets `timeout-minutes` and ends with an artifact upload that
     runs `if: always()` — a hung or red nightly must still surface its
     BENCH reports and failing-test logs.

Usage: check_workflow.py [path/to/workflow.yml] [--repo-root DIR]
Exit status 0 iff every check passes.
"""

import os
import re
import sys

ERRORS = []


def fail(msg):
    ERRORS.append(msg)


def structural_fallback(text):
    """Minimal shape checks when PyYAML is unavailable: top-level keys and
    one runs-on per job-looking block. Returns None (no parsed doc)."""
    for key in ("name:", "on:", "jobs:"):
        if not re.search(rf"^{re.escape(key)}", text, re.MULTILINE):
            fail(f"missing top-level `{key.rstrip(':')}` key")
    jobs = re.findall(r"^  ([A-Za-z0-9_-]+):\s*$", text, re.MULTILINE)
    if not jobs:
        fail("no jobs found under `jobs:`")
    if len(re.findall(r"^\s+runs-on:", text, re.MULTILINE)) < len(jobs):
        fail("some job is missing `runs-on`")
    return None


def parse_yaml(path, text):
    try:
        import yaml  # noqa: F401 (optional dependency)
    except ImportError:
        print("check_workflow: PyYAML unavailable, structural checks only")
        return structural_fallback(text)
    try:
        import yaml
        return yaml.safe_load(text)
    except Exception as exc:  # pragma: no cover - parse failure detail
        fail(f"{path} does not parse as YAML: {exc}")
        return None


def check_structure(doc):
    if not isinstance(doc, dict):
        fail("workflow root is not a mapping")
        return
    for key in ("name", "jobs"):
        if key not in doc:
            fail(f"missing top-level `{key}` key")
    # PyYAML 1.1 reads the bare `on` trigger key as boolean True.
    if "on" not in doc and True not in doc:
        fail("missing top-level `on` trigger key")
    jobs = doc.get("jobs")
    if not isinstance(jobs, dict) or not jobs:
        fail("`jobs` must be a non-empty mapping")
        return
    for name, job in jobs.items():
        if not isinstance(job, dict):
            fail(f"job `{name}` is not a mapping")
            continue
        if "runs-on" not in job:
            fail(f"job `{name}` has no runs-on")
        steps = job.get("steps")
        if not isinstance(steps, list) or not steps:
            fail(f"job `{name}` has no steps")
            continue
        axes = set()
        matrix = job.get("strategy", {}).get("matrix", {})
        if isinstance(matrix, dict):
            axes = set(matrix.keys())
        for i, step in enumerate(steps):
            if not isinstance(step, dict):
                fail(f"job `{name}` step {i} is not a mapping")
                continue
            has_run = "run" in step
            has_uses = "uses" in step
            if has_run == has_uses:
                fail(
                    f"job `{name}` step {i} must have exactly one of "
                    "`run` / `uses`"
                )
        for ref in re.findall(r"\$\{\{\s*matrix\.([A-Za-z0-9_-]+)",
                              str(job)):
            if ref not in axes:
                fail(
                    f"job `{name}` references matrix.{ref} but declares "
                    f"axes {sorted(axes) or '(none)'}"
                )


# Inclusive (lo, hi) bounds per cron field: minute, hour, day-of-month,
# month, day-of-week (7 == Sunday, as GitHub accepts).
CRON_FIELD_BOUNDS = (
    ("minute", 0, 59),
    ("hour", 0, 23),
    ("day-of-month", 1, 31),
    ("month", 1, 12),
    ("day-of-week", 0, 7),
)


def valid_cron_field(field, lo, hi):
    """Accepts `*`, numbers, ranges, lists, and /step over any of them."""
    for part in field.split(","):
        if not part:
            return False
        if "/" in part:
            part, _, step = part.partition("/")
            if not step.isdigit() or int(step) == 0:
                return False
        if part == "*":
            continue
        if "-" in part:
            a, _, b = part.partition("-")
            if not (a.isdigit() and b.isdigit()):
                return False
            if not (lo <= int(a) <= hi and lo <= int(b) <= hi
                    and int(a) <= int(b)):
                return False
        elif part.isdigit():
            if not (lo <= int(part) <= hi):
                return False
        else:
            return False
    return True


def check_schedule(text, doc):
    """Checks 6-8: cron syntax, a manual trigger alongside the schedule,
    and timeout + artifact-upload wiring on schedule-gated jobs. Works
    from the raw text so the PyYAML-less fallback still covers it; the
    parsed doc (when available) sharpens the per-job checks."""
    crons = re.findall(r"cron:\s*['\"]([^'\"]*)['\"]", text)
    for cron in crons:
        fields = cron.split()
        if len(fields) != len(CRON_FIELD_BOUNDS):
            fail(f"cron '{cron}' has {len(fields)} fields, want 5")
            continue
        for value, (name, lo, hi) in zip(fields, CRON_FIELD_BOUNDS):
            if not valid_cron_field(value, lo, hi):
                fail(f"cron '{cron}': bad {name} field '{value}' "
                     f"(allowed {lo}-{hi})")
    if not re.search(r"^\s*schedule:", text, re.MULTILINE):
        return
    if not crons:
        fail("workflow declares `schedule:` but no cron expression")
    # The trigger must be DECLARED under `on:`; the string also shows up
    # in job `if:` expressions, so match the mapping key, not the word.
    if isinstance(doc, dict):
        triggers = doc.get("on", doc.get(True, {}))
        has_dispatch = isinstance(triggers, dict) and \
            "workflow_dispatch" in triggers
    else:
        has_dispatch = bool(re.search(r"^\s+workflow_dispatch\s*:",
                                      text, re.MULTILINE))
    if not has_dispatch:
        fail("scheduled workflow must also declare workflow_dispatch so "
             "the nightly tier can be rerun on demand")

    if doc is None or not isinstance(doc, dict):
        # Structural fallback: the wiring must at least be present
        # somewhere in the file.
        if "timeout-minutes" not in text:
            fail("scheduled workflow has no timeout-minutes anywhere")
        if "upload-artifact" not in text:
            fail("scheduled workflow has no artifact upload step")
        return

    jobs = doc.get("jobs")
    if not isinstance(jobs, dict):
        return
    gated = []
    for name, job in jobs.items():
        if isinstance(job, dict) and "schedule" in str(job.get("if", "")):
            gated.append((name, job))
    if not gated:
        fail("workflow has a schedule but no job is gated on the "
             "schedule event")
    for name, job in gated:
        if "timeout-minutes" not in job:
            fail(f"scheduled job `{name}` has no timeout-minutes — a hung "
                 "nightly would burn the runner for six hours")
        steps = job.get("steps") or []
        has_upload = False
        for step in steps:
            if not isinstance(step, dict):
                continue
            if "upload-artifact" not in str(step.get("uses", "")):
                continue
            if "always" not in str(step.get("if", "")):
                fail(f"scheduled job `{name}` uploads artifacts without "
                     "`if: always()` — a red nightly would drop its logs")
            has_upload = True
        if not has_upload:
            fail(f"scheduled job `{name}` never uploads artifacts "
                 "(BENCH reports and failing-test logs must survive the "
                 "runner)")


def check_repo_references(text, repo_root):
    # Scripts the workflow runs must exist (and direct invocations must
    # be executable). `build/tools/...` paths are build artifacts, not
    # checked-in scripts.
    for script in sorted(set(
            re.findall(r"(?<!build/)tools/[A-Za-z0-9_./-]+", text))):
        path = os.path.join(repo_root, script)
        if not os.path.isfile(path):
            fail(f"workflow references missing script: {script}")
        elif script.endswith(".sh") and not os.access(path, os.X_OK):
            fail(f"workflow script is not executable: {script}")

    # ctest labels must be assigned in tests/CMakeLists.txt.
    tests_cmake = os.path.join(repo_root, "tests", "CMakeLists.txt")
    try:
        with open(tests_cmake, encoding="utf-8") as f:
            tests_text = f.read()
    except OSError:
        fail("tests/CMakeLists.txt not found")
        tests_text = ""
    known_labels = set()
    for match in re.findall(r'LABELS\s+"?([A-Za-z0-9_;-]+)"?', tests_text):
        known_labels.update(part for part in match.split(";") if part)
    known_labels.update(re.findall(r"set\(ARG_LABELS\s+([A-Za-z0-9_-]+)\)",
                                   tests_text))
    for label in set(re.findall(r"ctest[^\n]*?-L\s+([A-Za-z0-9_-]+)", text)):
        if label not in known_labels:
            fail(
                f"workflow runs `ctest -L {label}` but no test in "
                f"tests/CMakeLists.txt carries that label "
                f"(known: {sorted(known_labels)})"
            )

    # Flags passed to check.sh must be ones it parses.
    check_sh = os.path.join(repo_root, "tools", "check.sh")
    check_sh_text = ""
    if os.path.isfile(check_sh):
        with open(check_sh, encoding="utf-8") as f:
            check_sh_text = f.read()
    for flag in set(re.findall(r"check\.sh\s+(--[a-z-]+)", text)):
        # Matrix-templated flags (--${{ matrix.sanitizer }}) expand to the
        # axis values; resolve them from the workflow text.
        if flag not in check_sh_text:
            fail(f"workflow passes {flag} but tools/check.sh does not "
                 "handle it")
    for axis_flag in re.findall(
            r"check\.sh\s+--\$\{\{\s*matrix\.([A-Za-z0-9_-]+)", text):
        values = re.findall(
            rf"{axis_flag}:\s*\[([^\]]+)\]", text)
        for group in values:
            for value in group.split(","):
                flag = "--" + value.strip()
                if flag not in check_sh_text:
                    fail(f"workflow expands check.sh {flag} but "
                         "tools/check.sh does not handle it")

    # The bench gate iterates over committed BENCH_*.json baselines.
    if "BENCH_" in text:
        baselines = [
            name for name in os.listdir(repo_root)
            if name.startswith("BENCH_") and name.endswith(".json")
        ]
        if not baselines:
            fail("workflow checks BENCH_*.json but no baselines are "
                 "committed at the repo root")


def main(argv):
    workflow = ".github/workflows/ci.yml"
    repo_root = None
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--repo-root":
            if not args:
                print("check_workflow: --repo-root needs a value",
                      file=sys.stderr)
                return 2
            repo_root = args.pop(0)
        else:
            workflow = arg
    if repo_root is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(
            sys.argv[0])))
    if not os.path.isabs(workflow):
        workflow = os.path.join(repo_root, workflow)

    try:
        with open(workflow, encoding="utf-8") as f:
            text = f.read()
    except OSError as exc:
        print(f"check_workflow: cannot read {workflow}: {exc}",
              file=sys.stderr)
        return 2

    doc = parse_yaml(workflow, text)
    if doc is not None:
        check_structure(doc)
    check_schedule(text, doc)
    check_repo_references(text, repo_root)

    if ERRORS:
        for err in ERRORS:
            print(f"check_workflow: FAIL: {err}", file=sys.stderr)
        return 1
    print(f"check_workflow: {os.path.relpath(workflow, repo_root)} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
