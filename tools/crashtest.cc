// crashtest: the crash-recovery acceptance matrix.
//
// Drives RunDurabilityTrial across the full durability configuration
// matrix — group-commit windows {1, 8, 64} x repair thread counts
// {1, 4}, with mid-run snapshot compaction exercised in half the cells —
// accumulating randomized crash points (random WAL kill offsets plus
// bit flips) until the requested total is reached. Every recovery must
// be byte-identical to the never-crashed reference checkpoint for its
// sequence number, or a refused detected corruption.
//
//   crashtest --seed 1 --points 200
//   crashtest --seed 1 --points 24 --applies 3   (smoke)
//
// Exit status 0 iff every crash point passed.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/timer.h"
#include "discovery/durability_fuzz.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: crashtest [--seed N] [--points N] [--applies N]\n"
               "                 [--mutations N] [--max-seconds X]"
               " [--verbose]\n");
  std::exit(2);
}

uint64_t ParseU64(const char* s) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') Usage();
  return static_cast<uint64_t>(v);
}

double ParseF64(const char* s) {
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0') Usage();
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  size_t target_points = 200;
  size_t applies = 5;
  size_t mutations = 2;
  double max_seconds = 0.0;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = ParseU64(next());
    } else if (std::strcmp(argv[i], "--points") == 0) {
      target_points = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--applies") == 0) {
      applies = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--mutations") == 0) {
      mutations = static_cast<size_t>(ParseU64(next()));
    } else if (std::strcmp(argv[i], "--max-seconds") == 0) {
      max_seconds = ParseF64(next());
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      Usage();
    }
  }

  const int kWindows[] = {1, 8, 64};
  const size_t kThreads[] = {1, 4};

  lakeorg::WallTimer timer;
  size_t points = 0;
  size_t exact = 0;
  size_t refused = 0;
  size_t failures = 0;
  size_t trials = 0;
  uint64_t trial_seed = seed;
  // Round-robin the matrix so an early --max-seconds cutoff still
  // touches every cell.
  size_t cell = 0;
  while (points < target_points) {
    if (max_seconds > 0.0 && timer.ElapsedSeconds() >= max_seconds) break;
    lakeorg::DurabilityTrialOptions dopts;
    dopts.seed = trial_seed++;
    dopts.group_commit_window = kWindows[cell % 3];
    dopts.threads = kThreads[(cell / 3) % 2];
    // Half the cells compact mid-run, so truncation also races snapshots.
    dopts.snapshot_every = (cell % 2 == 0) ? 0 : 2;
    dopts.num_applies = applies;
    dopts.mutations_per_apply = mutations;
    dopts.num_crash_points = 8;
    ++cell;

    lakeorg::DurabilityTrialResult res = lakeorg::RunDurabilityTrial(dopts);
    ++trials;
    points += res.crash_points;
    exact += res.recovered_exact;
    refused += res.refused;
    if (!res.ok) {
      ++failures;
      std::fprintf(stderr, "FAIL %s (window=%d threads=%zu snap=%" PRIu64
                           ")\n",
                   res.error.c_str(), dopts.group_commit_window,
                   dopts.threads, dopts.snapshot_every);
    } else if (verbose) {
      std::printf("seed %" PRIu64 " window=%d threads=%zu snap=%" PRIu64
                  ": %zu points (%zu exact, %zu refused)\n",
                  dopts.seed, dopts.group_commit_window, dopts.threads,
                  dopts.snapshot_every, res.crash_points,
                  res.recovered_exact, res.refused);
    }
  }

  std::printf(
      "crashtest: %zu trials, %zu crash points (%zu exact recoveries, "
      "%zu refused), %zu failed, %.1fs\n",
      trials, points, exact, refused, failures, timer.ElapsedSeconds());
  if (points < target_points && failures == 0) {
    std::printf("note: stopped at --max-seconds before reaching %zu points\n",
                target_points);
  }
  return failures == 0 ? 0 : 1;
}
