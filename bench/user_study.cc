// Experiment E6 — the section 4.4 user study, simulated: two disjoint
// Socrata-like lakes (Socrata-2 / Socrata-3 analogues), each with one
// overview scenario; 12 participants in a balanced latin square, each
// doing both scenarios (one via navigation over a multi-dim organization,
// one via BM25 keyword search with optional query expansion).
//
// Paper reference points: H1 — no significant difference in #relevant
// tables found (max 44 nav / 34 search); H2 — disjointness higher for
// navigation (Mdn 0.985 vs 0.916, U = 612, p = 0.0019); nav-vs-search
// result overlap ~5%; <1% of found tables judged irrelevant.
#include <cstdio>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/socrata.h"
#include "core/multidim.h"
#include "study/study_runner.h"

namespace lakeorg {
namespace {

using bench::PrintHeader;
using bench::PrintRule;
using bench::Scaled;

Scenario ScenarioFor(const TagIndex& index, const DataLake& lake) {
  // The scenario topic is the most heavily used tag of the lake — an
  // "overview information need" with many relevant tables.
  TagId best = index.NonEmptyTags()[0];
  for (TagId t : index.NonEmptyTags()) {
    if (index.AttributesOfTag(t).size() >
        index.AttributesOfTag(best).size()) {
      best = t;
    }
  }
  return Scenario{"find government datasets about " + lake.tag_name(best),
                  index.TagTopicVector(best)};
}

}  // namespace

int Main(const bench::BenchOptions& bopts) {
  double scale = bopts.Scale(0.25, 0.04);
  PrintHeader("Section 4.4 — simulated user study  (scale " +
              std::to_string(scale) + ")");

  // Socrata-2 analogue (paper: 2,175 tables / 345 tags) and Socrata-3
  // analogue (2,061 tables / 346 tags), disjoint tag universes.
  SocrataOptions a_opts;
  a_opts.num_tables = Scaled(2175, scale, 60);
  a_opts.num_tags = Scaled(345, scale, 30);
  a_opts.seed = 11;
  a_opts.name_prefix = "s2";
  SocrataOptions b_opts;
  b_opts.num_tables = Scaled(2061, scale, 60);
  b_opts.num_tags = Scaled(346, scale, 30);
  b_opts.seed = 22;
  b_opts.name_prefix = "s3";

  SocrataLake lake_a = GenerateSocrataLake(a_opts);
  SocrataLake lake_b = GenerateSocrataLake(b_opts);
  std::printf("Socrata-2: %zu tables, %zu tags | Socrata-3: %zu tables, "
              "%zu tags (tag universes disjoint)\n",
              lake_a.lake.num_tables(), lake_a.lake.num_tags(),
              lake_b.lake.num_tables(), lake_b.lake.num_tags());
  TagIndex index_a = TagIndex::Build(lake_a.lake);
  TagIndex index_b = TagIndex::Build(lake_b.lake);

  MultiDimOptions mopts;
  mopts.dimensions = 4;
  mopts.search.transition.gamma = 20.0;
  mopts.search.patience = 40;
  mopts.search.max_proposals = bopts.MaxProposals(250);
  mopts.search.use_representatives = true;
  mopts.search.representatives.fraction = 0.1;
  MultiDimOrganization org_a = bench::CheckedValue(
      BuildMultiDimOrganization(lake_a.lake, index_a, mopts),
      "multidim build A");
  MultiDimOrganization org_b = bench::CheckedValue(
      BuildMultiDimOrganization(lake_b.lake, index_b, mopts),
      "multidim build B");
  TableSearchEngine engine_a(&lake_a.lake, lake_a.store);
  TableSearchEngine engine_b(&lake_b.lake, lake_b.store);

  StudyEnvironment env_a{&lake_a.lake, &org_a, &engine_a,
                         ScenarioFor(index_a, lake_a.lake), "Socrata-2"};
  StudyEnvironment env_b{&lake_b.lake, &org_b, &engine_b,
                         ScenarioFor(index_b, lake_b.lake), "Socrata-3"};
  std::printf("scenario A: \"%s\"\nscenario B: \"%s\"\n",
              env_a.scenario.description.c_str(),
              env_b.scenario.description.c_str());

  StudyOptions sopts;
  sopts.participants = 12;
  // The 20-minute session budget; smoke trims it to keep the tier quick.
  sopts.agent.action_budget = bopts.smoke ? 40 : 300;
  sopts.agent.intent_noise = 0.30;
  sopts.agent.accept_threshold = 0.35;
  sopts.oracle_threshold = 0.30;
  sopts.seed = 4242;
  StudyResult result = RunUserStudy(env_a, env_b, sopts);

  PrintRule();
  std::printf("%s", FormatStudyResult(result).c_str());
  PrintRule();
  std::printf("paper reference: H1 not significant (max 44 nav / 34 "
              "search); H2 nav Mdn 0.985 vs search 0.916, p = 0.0019; "
              "overlap ~5%%; <1%% judged irrelevant\n");
  std::printf("shape checks: H1 p %s 0.05 -> %s; nav disjointness %s "
              "search disjointness; overlap %.1f%%\n",
              result.h1_found.p_two_tailed > 0.05 ? ">" : "<=",
              result.h1_found.p_two_tailed > 0.05
                  ? "no significant difference (matches paper)"
                  : "differs from paper",
              result.navigation.median_disjointness >=
                      result.search.median_disjointness
                  ? ">="
                  : "<",
              100.0 * result.nav_search_overlap);
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "user_study", lakeorg::Main);
}
