// E10 — network serving: the Zipf user fleet of src/net/loadgen driven
// over real loopback sockets against NavServer, next to the same fleet
// calling NavService in-process (the transport-overhead reference).
// Connections pipeline their users' requests into bursts, which the
// server batches into ExecuteBatch per poll tick — on a small machine
// this is what turns syscall-bound round trips into sustained QPS.
//
// Acceptance gates (non-smoke, ISSUE 8): sustained socket throughput
// >= 10k requests/sec, burst p99 round-trip <= 100 ms, and zero
// fleet-visible errors. Headline numbers land in BENCH_net_serving.json
// via the net.bench_* gauges.
#include <cstdio>

#include <algorithm>
#include <memory>
#include <string>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "common/stats.h"
#include "core/org_builders.h"
#include "core/org_snapshot.h"
#include "discovery/nav_service.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "obs/metrics.h"

namespace lakeorg {

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(1.0, 0.1);
  TagCloudOptions opts;
  opts.num_tags = Scaled(60, scale, 8);
  opts.target_attributes = Scaled(400, scale, 40);
  opts.min_values = 10;
  opts.max_values = 60;
  opts.seed = 9;
  TagCloudBenchmark bench = GenerateTagCloud(opts);
  auto lake = std::make_shared<const DataLake>(std::move(bench.lake));
  TagIndex index = TagIndex::Build(*lake);
  auto ctx = OrgContext::BuildFull(*lake, index);
  Organization clustering = BuildClusteringOrganization(ctx);
  clustering.RecomputeLevels();
  OrgSnapshotStore store;
  {
    OrgSnapshot snap;
    snap.lake = lake;
    snap.ctx = ctx;
    snap.index = std::make_shared<const TagIndex>(std::move(index));
    snap.org = std::make_shared<const Organization>(std::move(clustering));
    store.Publish(std::move(snap));
  }
  NavService::SnapshotSource source = [&store] { return store.Current(); };

  FleetOptions fleet;
  fleet.num_attrs = ctx->num_attrs();
  fleet.users = bopts.smoke ? 16 : 256;
  fleet.connections = bopts.smoke ? 2 : 4;
  fleet.steps_per_user = bopts.smoke ? 10 : Scaled(200, scale, 10);
  fleet.seed = 42;
  fleet.record_latency = true;

  PrintHeader("Network serving — Zipf fleet over loopback sockets vs "
              "in-process (TagCloud, " +
              std::to_string(ctx->num_attrs()) + " attrs, " +
              std::to_string(fleet.users) + " users on " +
              std::to_string(fleet.connections) + " connections, scale " +
              std::to_string(scale) + ")");

  NavServiceOptions service_opts;
  service_opts.batch_threads = 2;
  service_opts.max_sessions = fleet.users * 2 + 16;

  PrintRule();
  std::printf("%10s | %10s %10s %12s %10s %10s\n", "backend", "requests",
              "seconds", "req/sec", "p50(us)", "p99(us)");
  PrintRule();

  NavService oracle(source, service_opts);
  FleetReport inproc = RunFleetInProcess(&oracle, fleet);
  std::printf("%10s | %10llu %10.3f %12.0f %10s %10s\n", "in-process",
              static_cast<unsigned long long>(inproc.requests),
              inproc.seconds, inproc.RequestsPerSec(), "-", "-");

  NavService service(source, service_opts);
  NavServer server(&service, source);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Result<FleetReport> socket_run =
      RunFleetOverSocket("127.0.0.1", server.port(), fleet);
  server.Stop();
  if (!socket_run.ok()) {
    std::fprintf(stderr, "socket fleet failed: %s\n",
                 socket_run.status().ToString().c_str());
    return 1;
  }
  const FleetReport& sock = socket_run.value();
  double p50 = Percentile(sock.burst_rtt_us, 0.50);
  double p99 = Percentile(sock.burst_rtt_us, 0.99);
  std::printf("%10s | %10llu %10.3f %12.0f %10.0f %10.0f\n", "socket",
              static_cast<unsigned long long>(sock.requests), sock.seconds,
              sock.RequestsPerSec(), p50, p99);
  PrintRule();

  double overhead = sock.RequestsPerSec() > 0.0
                        ? inproc.RequestsPerSec() / sock.RequestsPerSec()
                        : 0.0;
  std::printf(
      "socket fleet: %llu opens, %llu steps, %llu refreshes, %llu closes, "
      "%llu errors; %.2fx in-process/socket throughput ratio\n",
      static_cast<unsigned long long>(sock.opens),
      static_cast<unsigned long long>(sock.steps),
      static_cast<unsigned long long>(sock.refreshes),
      static_cast<unsigned long long>(sock.closes),
      static_cast<unsigned long long>(sock.errors), overhead);

  obs::GetGauge("net.bench_socket_requests_per_sec")
      .Set(sock.RequestsPerSec());
  obs::GetGauge("net.bench_inprocess_requests_per_sec")
      .Set(inproc.RequestsPerSec());
  obs::GetGauge("net.bench_burst_p50_us").Set(p50);
  obs::GetGauge("net.bench_burst_p99_us").Set(p99);
  obs::GetGauge("net.bench_fleet_errors")
      .Set(static_cast<double>(sock.errors + inproc.errors));

  if (sock.errors + inproc.errors > 0) {
    std::fprintf(stderr, "FAIL: fleet saw %llu errors\n",
                 static_cast<unsigned long long>(sock.errors +
                                                 inproc.errors));
    return 1;
  }
  if (!bopts.smoke) {
    if (sock.RequestsPerSec() < 10000.0) {
      std::fprintf(stderr,
                   "FAIL: socket throughput %.0f req/sec is below the 10k "
                   "acceptance bar\n",
                   sock.RequestsPerSec());
      return 1;
    }
    if (p99 > 100000.0) {
      std::fprintf(stderr,
                   "FAIL: burst p99 %.0f us exceeds the 100 ms acceptance "
                   "bar\n",
                   p99);
      return 1;
    }
  }
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "net_serving", lakeorg::Main);
}
