// Shared entry point for the paper-artifact bench binaries. Every bench's
// Main(const BenchOptions&) runs under BenchMain, which provides:
//
//   --smoke            tiny fixture, 1 rep — the CTest "bench" tier uses
//                      this so bench code is always compiled AND executed
//   --reps N           repeat the workload N times (wall times averaged)
//   --json[=PATH]      emit a canonical BENCH_<name>.json report (wall
//                      times, metric snapshot, git SHA, build flags);
//                      default path is BENCH_<name>.json in the cwd
//   --no-metrics       leave telemetry disabled (overhead measurements)
//   --help             usage
//
// Metrics are enabled for the duration of the run, so the report's
// "metrics" object carries the optimizer/evaluator/pool telemetry of
// docs/OBSERVABILITY.md. Compare two reports with tools/bench_compare.
#pragma once

#include <string>

namespace lakeorg::bench {

struct BenchOptions {
  /// Tiny fixture + minimal iterations; must finish in seconds.
  bool smoke = false;
  /// Workload repetitions (timing averages over them).
  size_t reps = 1;
  /// Emit BENCH_<name>.json.
  bool emit_json = false;
  /// Report path ("" = BENCH_<name>.json in the cwd, "-" = stdout).
  std::string json_path;

  /// The bench's workload scale: LAKEORG_SCALE (or `fallback`) normally,
  /// `smoke_scale` under --smoke (environment ignored so the smoke tier
  /// is immune to stray env).
  double Scale(double fallback, double smoke_scale = 0.02) const;
  /// Same pattern for the LAKEORG_MAX_PROPOSALS cap.
  size_t MaxProposals(size_t fallback, size_t smoke_value = 25) const;
};

using BenchFn = int (*)(const BenchOptions&);

/// Parses flags, runs `run` opts.reps times, and (with --json) writes the
/// BENCH_<name>.json report. Returns the bench's exit code.
int BenchMain(int argc, char** argv, const std::string& name, BenchFn run);

}  // namespace lakeorg::bench
