// Experiment E3 — the section 4.3.2 construction-time table on TagCloud:
// wall-clock construction of clustering, 1-dim .. 4-dim, enriched 2-dim,
// and 2-dim approx organizations. Multi-dimensional times report the
// slowest dimension (dimensions optimize independently in parallel).
//
// Paper reference (full scale, authors' machine): clustering 0.2 s,
// 1-dim 231.3 s, 2-dim 148.9 s, 3-dim 113.5 s, 4-dim 112.7 s, enriched
// 2-dim 217 s, 2-dim approx 30.3 s. The shape to reproduce: clustering is
// near-free; per-dimension time falls as dimensions grow; approximation
// is several times faster than exact 2-dim.
#include <cstdio>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "common/timer.h"
#include "core/multidim.h"
#include "core/org_builders.h"

namespace lakeorg {

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(0.2, 0.04);
  TagCloudOptions opts;
  opts.num_tags = Scaled(365, scale, 12);
  opts.target_attributes = Scaled(2651, scale, 60);
  opts.min_values = 10;
  opts.max_values = Scaled(300, scale, 30);
  opts.seed = 2020;

  PrintHeader("Section 4.3.2 — construction time on TagCloud  (scale " +
              std::to_string(scale) + ")");
  TagCloudBenchmark bench = GenerateTagCloud(opts);
  TagIndex index = TagIndex::Build(bench.lake);
  auto ctx = OrgContext::BuildFull(bench.lake, index);
  std::printf("TagCloud: %zu tags, %zu attrs\n", ctx->num_tags(),
              ctx->num_attrs());

  LocalSearchOptions search;
  search.transition.gamma = 20.0;
  search.patience = 50;
  search.max_proposals = bopts.MaxProposals(500);
  search.seed = 71;
  search.record_history = false;

  struct Row {
    std::string name;
    double seconds;
    double paper_seconds;
  };
  std::vector<Row> rows;

  {
    WallTimer t;
    Organization clustering = BuildClusteringOrganization(ctx);
    rows.push_back({"clustering", t.ElapsedSeconds(), 0.2});
  }
  for (size_t dims : {1u, 2u, 3u, 4u}) {
    MultiDimOptions mopts;
    mopts.dimensions = dims;
    mopts.search = search;
    MultiDimOrganization org = bench::CheckedValue(
        BuildMultiDimOrganization(bench.lake, index, mopts),
        "multidim build");
    double paper[] = {231.3, 148.9, 113.5, 112.7};
    rows.push_back({std::to_string(dims) + "-dim",
                    org.MaxDimensionSeconds(), paper[dims - 1]});
  }
  {
    TagCloudBenchmark enriched = GenerateTagCloud(opts, bench.vocabulary);
    EnrichTagCloud(&enriched);
    TagIndex enriched_index = TagIndex::Build(enriched.lake);
    MultiDimOptions mopts;
    mopts.dimensions = 2;
    mopts.search = search;
    MultiDimOrganization org = bench::CheckedValue(
        BuildMultiDimOrganization(enriched.lake, enriched_index, mopts),
        "enriched multidim build");
    rows.push_back({"enriched 2-dim", org.MaxDimensionSeconds(), 217.0});
  }
  {
    MultiDimOptions mopts;
    mopts.dimensions = 2;
    mopts.search = search;
    mopts.search.use_representatives = true;
    mopts.search.representatives.fraction = 0.1;
    MultiDimOrganization org = bench::CheckedValue(
        BuildMultiDimOrganization(bench.lake, index, mopts),
        "multidim build");
    rows.push_back({"2-dim approx", org.MaxDimensionSeconds(), 30.3});
  }

  PrintRule();
  std::printf("%-16s %12s %14s\n", "organization", "measured(s)",
              "paper(s)");
  PrintRule();
  for (const Row& row : rows) {
    std::printf("%-16s %12.2f %14.1f\n", row.name.c_str(), row.seconds,
                row.paper_seconds);
  }
  PrintRule();
  auto secs = [&rows](const std::string& name) {
    for (const Row& r : rows) {
      if (r.name == name) return r.seconds;
    }
    return 0.0;
  };
  std::printf("shape checks: clustering << 1-dim; 2..4-dim <= 1-dim "
              "(measured 1-dim %.2fs, 4-dim %.2fs); approx speedup over "
              "exact 2-dim = %.1fx (paper ~4.9x)\n",
              secs("1-dim"), secs("4-dim"),
              secs("2-dim approx") > 0
                  ? secs("2-dim") / secs("2-dim approx")
                  : 0.0);
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "construction_time",
                                   lakeorg::Main);
}
