// E7 — incremental repair vs full rebuild on live lake evolution: on the
// 400-attribute tag cloud (the micro_* fixture), optimize an initial
// organization, then apply a stream of single-table deltas and compare
// RepairOrganization (splice + localized re-optimization) against the
// from-scratch path (TagIndex + OrgContext + clustering + full
// OptimizeOrganization) on wall time and effectiveness. The ISSUE's
// acceptance bar — repair >= 5x faster than rebuild — is enforced on the
// full (non-smoke) workload; the mean effectiveness gap and speedup land
// in the BENCH json via the repair.bench_* gauges.
#include <cstdio>

#include <string>
#include <utility>
#include <vector>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "common/timer.h"
#include "core/local_search.h"
#include "core/org_builders.h"
#include "core/repair.h"
#include "obs/metrics.h"

namespace lakeorg {

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(1.0, 0.1);
  TagCloudOptions opts;
  opts.num_tags = Scaled(60, scale, 8);
  opts.target_attributes = Scaled(400, scale, 40);
  opts.min_values = 10;
  opts.max_values = 60;
  opts.seed = 9;
  TagCloudBenchmark bench = GenerateTagCloud(opts);
  TagIndex index = TagIndex::Build(bench.lake);
  auto ctx = OrgContext::BuildFull(bench.lake, index);

  PrintHeader("Repair vs rebuild — single-table deltas (TagCloud, " +
              std::to_string(ctx->num_attrs()) + " attrs, scale " +
              std::to_string(scale) + ")");

  LocalSearchOptions search;
  search.patience = 100;
  search.max_proposals = bopts.MaxProposals(2000, 40);
  search.seed = 11;
  search.record_history = false;

  Organization clustering = BuildClusteringOrganization(ctx);
  WallTimer timer;
  Result<LocalSearchResult> base =
      OptimizeOrganization(std::move(clustering), search);
  if (!base.ok()) {
    std::fprintf(stderr, "initial optimize failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  double initial_secs = timer.ElapsedSeconds();
  const Organization& base_org = base.value().org;
  std::printf("initial build: %.3fs, effectiveness %.6f (%zu proposals)\n",
              initial_secs, base.value().effectiveness,
              base.value().proposals);
  PrintRule();
  std::printf("%6s | %10s %10s %8s | %10s %10s %11s\n", "delta",
              "repair(s)", "rebuild(s)", "speedup", "eff repair",
              "eff rebuild", "gap");
  PrintRule();

  RepairOptions ropts;
  ropts.reopt_max_proposals = bopts.MaxProposals(200, 25);
  ropts.reopt_patience = 25;

  size_t num_deltas = bopts.smoke ? 2 : 5;
  double repair_total = 0.0, rebuild_total = 0.0, gap_total = 0.0;
  for (size_t i = 0; i < num_deltas; ++i) {
    // Each delta is independent: one new table with three columns whose
    // values are cloned from existing attributes (guaranteed
    // embeddable), tagged with an existing tag.
    DataLake lake = bench.lake;
    if (!lake.BeginDelta().ok()) return 1;
    TableId t = lake.AddTable("incoming_" + std::to_string(i));
    std::vector<AttributeId> organizable = lake.OrganizableAttributes();
    TagId tag = lake.attribute(organizable[(i * 37) % organizable.size()])
                    .tags.front();
    if (!lake.AttachTag(t, tag).ok()) return 1;
    for (size_t c = 0; c < 3; ++c) {
      AttributeId donor = organizable[(i * 131 + c * 17) % organizable.size()];
      lake.AddAttribute(t, "col" + std::to_string(c),
                        lake.attribute(donor).values);
    }
    Result<LakeDelta> delta = lake.TakeDelta();
    if (!delta.ok()) return 1;
    if (!lake.ComputeMissingTopicVectors(*bench.store).ok()) return 1;
    TagIndex new_index = TagIndex::Build(lake);

    ropts.seed = 7001 + i;
    timer.Restart();
    Result<RepairResult> repaired =
        RepairOrganization(base_org, lake, new_index, delta.value(), ropts);
    double repair_secs = timer.ElapsedSeconds();
    if (!repaired.ok()) {
      std::fprintf(stderr, "repair failed: %s\n",
                   repaired.status().ToString().c_str());
      return 1;
    }

    search.seed = 11 + i;
    timer.Restart();
    TagIndex rebuild_index = TagIndex::Build(lake);
    auto rebuild_ctx = OrgContext::BuildFull(lake, rebuild_index);
    Result<LocalSearchResult> rebuilt = OptimizeOrganization(
        BuildClusteringOrganization(rebuild_ctx), search);
    double rebuild_secs = timer.ElapsedSeconds();
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "rebuild failed: %s\n",
                   rebuilt.status().ToString().c_str());
      return 1;
    }

    double gap =
        rebuilt.value().effectiveness - repaired.value().effectiveness;
    repair_total += repair_secs;
    rebuild_total += rebuild_secs;
    gap_total += gap;
    std::printf("%6zu | %10.4f %10.4f %7.1fx | %10.6f %10.6f %+11.6f\n", i,
                repair_secs, rebuild_secs, rebuild_secs / repair_secs,
                repaired.value().effectiveness,
                rebuilt.value().effectiveness, gap);
  }
  PrintRule();

  double speedup = rebuild_total / repair_total;
  double mean_gap = gap_total / static_cast<double>(num_deltas);
  // Land the headline numbers in the BENCH json metric snapshot.
  obs::GetGauge("repair.bench_speedup").Set(speedup);
  obs::GetGauge("repair.bench_rebuild_effectiveness_gap").Set(mean_gap);
  std::printf(
      "mean over %zu deltas: repair %.4fs, rebuild %.4fs -> %.1fx "
      "speedup, effectiveness gap %+.6f\n",
      num_deltas, repair_total / static_cast<double>(num_deltas),
      rebuild_total / static_cast<double>(num_deltas), speedup, mean_gap);

  if (!bopts.smoke && speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: repair speedup %.2fx is below the 5x acceptance "
                 "bar\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "repair_vs_rebuild",
                                   lakeorg::Main);
}
