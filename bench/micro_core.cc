// M1 — google-benchmark microbenchmarks for the hot kernels: cosine and
// topic accumulation, reach-probability DP, organization clone + operation
// application, incremental proposal evaluation, and BM25 query latency.
#include <benchmark/benchmark.h>

#include "bench/bench_gbench.h"

#include "benchgen/tagcloud.h"
#include "core/evaluator.h"
#include "core/local_search.h"
#include "core/operations.h"
#include "core/org_builders.h"
#include "search/engine.h"

namespace lakeorg {
namespace {

/// Lazily built shared fixture (generation is too slow per-iteration).
struct Shared {
  TagCloudBenchmark bench;
  TagIndex index;
  std::shared_ptr<const OrgContext> ctx;
  Organization flat;
  Organization clustering;

  Shared()
      : bench([] {
          TagCloudOptions opts;
          opts.num_tags = 60;
          opts.target_attributes = 400;
          opts.min_values = 10;
          opts.max_values = 60;
          opts.seed = 9;
          return GenerateTagCloud(opts);
        }()),
        index(TagIndex::Build(bench.lake)),
        ctx(OrgContext::BuildFull(bench.lake, index)),
        flat(BuildFlatOrganization(ctx)),
        clustering(BuildClusteringOrganization(ctx)) {}

  static const Shared& Get() {
    static const Shared shared;
    return shared;
  }
};

void BM_Cosine(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  Vec a(dim, 0.5f);
  Vec b(dim, 0.25f);
  a[0] = 1.0f;
  b[dim - 1] = 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cosine(a, b));
  }
}
BENCHMARK(BM_Cosine)->Arg(50)->Arg(300);

void BM_TopicAccumulate(benchmark::State& state) {
  size_t dim = 50;
  Vec sample(dim, 0.1f);
  for (auto _ : state) {
    TopicAccumulator acc(dim);
    for (int i = 0; i < 64; ++i) acc.Add(sample);
    benchmark::DoNotOptimize(acc.Mean());
  }
}
BENCHMARK(BM_TopicAccumulate);

void BM_ReachProbabilities(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  const Organization& org =
      state.range(0) == 0 ? shared.flat : shared.clustering;
  OrgEvaluator eval;
  const Vec& query = shared.ctx->attr_vector(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.ReachProbabilities(org, query));
  }
  state.SetLabel(state.range(0) == 0 ? "flat" : "clustering");
}
BENCHMARK(BM_ReachProbabilities)->Arg(0)->Arg(1);

void BM_OrganizationClone(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  for (auto _ : state) {
    Organization clone = shared.clustering.Clone();
    benchmark::DoNotOptimize(clone.num_states());
  }
}
BENCHMARK(BM_OrganizationClone);

void BM_OrganizationCopyFrom(benchmark::State& state) {
  // Warm snapshot path: repeated copies into held capacity, the pattern
  // the local search uses for best-so-far snapshots and restarts. The
  // gap to BM_OrganizationClone is pure allocation churn.
  const Shared& shared = Shared::Get();
  Organization target = shared.clustering.Clone();
  for (auto _ : state) {
    target.CopyFrom(shared.clustering);
    benchmark::DoNotOptimize(target.num_states());
  }
}
BENCHMARK(BM_OrganizationCopyFrom);

void BM_AddParentOpFreshClone(benchmark::State& state) {
  // Clone-per-iteration: measures ApplyAddParent PLUS a cold Clone()'s
  // allocation churn. Kept as the end-to-end shape some callers have, but
  // the op's own cost is BM_AddParentOpWarm — the former BM_AddParentOp
  // regressed ~1.2x with PR 7's arena growth purely through this clone,
  // not through the operation (docs/PERFORMANCE.md).
  const Shared& shared = Shared::Get();
  auto uniform = [](StateId) { return 1.0; };
  for (auto _ : state) {
    Organization clone = shared.clustering.Clone();
    OpResult result =
        ApplyAddParent(&clone, clone.LeafOf(0), uniform);
    benchmark::DoNotOptimize(result.applied);
  }
}
BENCHMARK(BM_AddParentOpFreshClone);

void BM_AddParentOpWarm(benchmark::State& state) {
  // Warm path: reset into held capacity with CopyFrom, then apply. This
  // is how the local search actually runs the operation (clone once,
  // CopyFrom per proposal), so it isolates the op from allocator noise.
  const Shared& shared = Shared::Get();
  Organization work = shared.clustering.Clone();
  auto uniform = [](StateId) { return 1.0; };
  for (auto _ : state) {
    work.CopyFrom(shared.clustering);
    OpResult result = ApplyAddParent(&work, work.LeafOf(0), uniform);
    benchmark::DoNotOptimize(result.applied);
  }
}
BENCHMARK(BM_AddParentOpWarm);

void BM_ProposalEvaluation(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  TransitionConfig config;
  IncrementalEvaluator evaluator(config, shared.ctx,
                                 IdentityRepresentatives(*shared.ctx));
  Organization current = shared.clustering.Clone();
  current.RecomputeLevels();
  evaluator.Initialize(current);
  auto reach = [&evaluator](StateId s) {
    return evaluator.StateReachability(s);
  };
  for (auto _ : state) {
    Organization proposal = current.Clone();
    OpResult op = ApplyAddParent(&proposal, proposal.LeafOf(0), reach);
    ProposalEvaluation eval;
    evaluator.EvaluateProposal(proposal, op.topic_changed,
                               op.children_changed, op.removed, &eval);
    benchmark::DoNotOptimize(eval.effectiveness);
  }
}
BENCHMARK(BM_ProposalEvaluation);

// SoA hot-path microbenchmarks: the packed CSR adjacency + topic_norm
// array walk, inline vs spilled AttrSet membership, and the warm
// apply/eval/undo proposal cycle (the zero-steady-state-allocation path
// the optimizer inner loop runs on).

void BM_AdjacencyTraversal(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  const Organization& org = shared.clustering;
  for (auto _ : state) {
    double sum = 0.0;
    for (StateId s = 0; s < org.num_states(); ++s) {
      if (!org.alive(s)) continue;
      for (StateId c : org.children(s)) sum += org.topic_norm(c);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_AdjacencyTraversal);

void BM_AttrSetMembership(benchmark::State& state) {
  // Arg 0: inline small set; arg 1: spilled set (population > kInlineCap).
  const size_t universe = 4096;
  const size_t population = state.range(0) == 0 ? 8 : 64;
  AttrSet set;
  set.Reset(universe);
  for (size_t i = 0; i < population; ++i) set.Set(i * 37 % universe);
  size_t probe = 0;
  for (auto _ : state) {
    bool hit =
        set.Test(probe * 37 % universe) | set.Test((probe + 1) % universe);
    benchmark::DoNotOptimize(hit);
    ++probe;
  }
  state.SetLabel(set.inline_rep() ? "inline" : "spilled");
}
BENCHMARK(BM_AttrSetMembership)->Arg(0)->Arg(1);

void BM_SteadyStateProposalCycle(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  TransitionConfig config;
  IncrementalEvaluator evaluator(config, shared.ctx,
                                 IdentityRepresentatives(*shared.ctx));
  Organization current = shared.clustering.Clone();
  current.RecomputeLevels();
  evaluator.Initialize(current);
  auto reach = [&evaluator](StateId s) {
    return evaluator.StateReachability(s);
  };
  OpUndo undo;
  OpResult op;
  ProposalEvaluation eval;
  StateId target = current.LeafOf(0);
  for (auto _ : state) {
    ApplyAddParent(&current, target, reach, &undo, &op);
    evaluator.EvaluateProposal(current, op.topic_changed,
                               op.children_changed, op.removed, &eval);
    current.Undo(undo);
    benchmark::DoNotOptimize(eval.effectiveness);
  }
}
BENCHMARK(BM_SteadyStateProposalCycle);

void BM_FullEffectiveness(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  OrgEvaluator eval;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Effectiveness(shared.flat));
  }
}
BENCHMARK(BM_FullEffectiveness);

void BM_Bm25Query(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  static const TableSearchEngine* engine = new TableSearchEngine(
      &shared.bench.lake, shared.bench.store);
  std::string query = shared.bench.lake.tag_name(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Search(query, 10, false));
  }
}
BENCHMARK(BM_Bm25Query);

}  // namespace
}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::GoogleBenchMain(argc, argv, "micro_core");
}
