// M1 — google-benchmark microbenchmarks for the hot kernels: cosine and
// topic accumulation, reach-probability DP, organization clone + operation
// application, incremental proposal evaluation, and BM25 query latency.
#include <benchmark/benchmark.h>

#include "bench/bench_gbench.h"

#include "benchgen/tagcloud.h"
#include "core/evaluator.h"
#include "core/local_search.h"
#include "core/operations.h"
#include "core/org_builders.h"
#include "search/engine.h"

namespace lakeorg {
namespace {

/// Lazily built shared fixture (generation is too slow per-iteration).
struct Shared {
  TagCloudBenchmark bench;
  TagIndex index;
  std::shared_ptr<const OrgContext> ctx;
  Organization flat;
  Organization clustering;

  Shared()
      : bench([] {
          TagCloudOptions opts;
          opts.num_tags = 60;
          opts.target_attributes = 400;
          opts.min_values = 10;
          opts.max_values = 60;
          opts.seed = 9;
          return GenerateTagCloud(opts);
        }()),
        index(TagIndex::Build(bench.lake)),
        ctx(OrgContext::BuildFull(bench.lake, index)),
        flat(BuildFlatOrganization(ctx)),
        clustering(BuildClusteringOrganization(ctx)) {}

  static const Shared& Get() {
    static const Shared shared;
    return shared;
  }
};

void BM_Cosine(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  Vec a(dim, 0.5f);
  Vec b(dim, 0.25f);
  a[0] = 1.0f;
  b[dim - 1] = 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cosine(a, b));
  }
}
BENCHMARK(BM_Cosine)->Arg(50)->Arg(300);

void BM_TopicAccumulate(benchmark::State& state) {
  size_t dim = 50;
  Vec sample(dim, 0.1f);
  for (auto _ : state) {
    TopicAccumulator acc(dim);
    for (int i = 0; i < 64; ++i) acc.Add(sample);
    benchmark::DoNotOptimize(acc.Mean());
  }
}
BENCHMARK(BM_TopicAccumulate);

void BM_ReachProbabilities(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  const Organization& org =
      state.range(0) == 0 ? shared.flat : shared.clustering;
  OrgEvaluator eval;
  const Vec& query = shared.ctx->attr_vector(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.ReachProbabilities(org, query));
  }
  state.SetLabel(state.range(0) == 0 ? "flat" : "clustering");
}
BENCHMARK(BM_ReachProbabilities)->Arg(0)->Arg(1);

void BM_OrganizationClone(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  for (auto _ : state) {
    Organization clone = shared.clustering.Clone();
    benchmark::DoNotOptimize(clone.num_states());
  }
}
BENCHMARK(BM_OrganizationClone);

void BM_AddParentOp(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  auto uniform = [](StateId) { return 1.0; };
  for (auto _ : state) {
    Organization clone = shared.clustering.Clone();
    OpResult result =
        ApplyAddParent(&clone, clone.LeafOf(0), uniform);
    benchmark::DoNotOptimize(result.applied);
  }
}
BENCHMARK(BM_AddParentOp);

void BM_ProposalEvaluation(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  TransitionConfig config;
  IncrementalEvaluator evaluator(config, shared.ctx,
                                 IdentityRepresentatives(*shared.ctx));
  Organization current = shared.clustering.Clone();
  current.RecomputeLevels();
  evaluator.Initialize(current);
  auto reach = [&evaluator](StateId s) {
    return evaluator.StateReachability(s);
  };
  for (auto _ : state) {
    Organization proposal = current.Clone();
    OpResult op = ApplyAddParent(&proposal, proposal.LeafOf(0), reach);
    ProposalEvaluation eval;
    evaluator.EvaluateProposal(proposal, op.topic_changed,
                               op.children_changed, op.removed, &eval);
    benchmark::DoNotOptimize(eval.effectiveness);
  }
}
BENCHMARK(BM_ProposalEvaluation);

void BM_FullEffectiveness(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  OrgEvaluator eval;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Effectiveness(shared.flat));
  }
}
BENCHMARK(BM_FullEffectiveness);

void BM_Bm25Query(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  static const TableSearchEngine* engine = new TableSearchEngine(
      &shared.bench.lake, shared.bench.store);
  std::string query = shared.bench.lake.tag_name(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Search(query, 10, false));
  }
}
BENCHMARK(BM_Bm25Query);

}  // namespace
}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::GoogleBenchMain(argc, argv, "micro_core");
}
