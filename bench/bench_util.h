// Shared helpers for the paper-artifact bench binaries: environment-driven
// scaling, series summarization, and aligned table printing.
//
// Every bench accepts LAKEORG_SCALE (a positive double, default noted per
// bench) that multiplies the workload size, so the same binaries run
// laptop-fast by default and approach the paper's scale with
// LAKEORG_SCALE=1 or higher.
#pragma once

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace lakeorg::bench {

/// Unwraps a Result in a bench binary, or prints the Status on stderr and
/// exits nonzero. Bench code must never call .value() directly — a failed
/// build/optimize would abort with no diagnostic at all.
template <typename T>
T CheckedValue(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Same for a bare Status (setup steps with no value).
inline void CheckedOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

/// Process-lifetime peak RSS in bytes (ru_maxrss is KiB on Linux). A
/// high-water mark: it only ever grows, so per-step memory must be
/// reported as deltas of CurrentRssBytes(), not of this.
inline double PeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
}

/// Current resident set size in bytes, from /proc/self/statm (second
/// field, in pages). Returns 0 where procfs is unavailable.
inline double CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long total = 0;
  long resident = 0;
  int n = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0.0;
  return static_cast<double>(resident) *
         static_cast<double>(sysconf(_SC_PAGESIZE));
}

/// Reads a positive double from the environment, with a default.
inline double EnvScale(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value || parsed <= 0.0) return fallback;
  return parsed;
}

/// Scales a count, keeping at least `min_value`.
inline size_t Scaled(size_t base, double scale, size_t min_value = 1) {
  double scaled = static_cast<double>(base) * scale;
  size_t out = static_cast<size_t>(scaled);
  return out < min_value ? min_value : out;
}

/// Summarizes a sorted-ascending series at fixed quantile stops — the
/// text rendering of a Figure 2 curve.
inline std::string SeriesSummary(const std::vector<double>& sorted) {
  if (sorted.empty()) return "(empty)";
  const double stops[] = {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
  std::string out;
  char buf[48];
  for (double stop : stops) {
    size_t idx = static_cast<size_t>(stop * (sorted.size() - 1));
    std::snprintf(buf, sizeof(buf), "p%-3.0f=%.3f ", stop * 100,
                  sorted[idx]);
    out += buf;
  }
  return out;
}

/// Prints a horizontal rule + centered title.
inline void PrintHeader(const std::string& title) {
  std::printf("\n%s\n", std::string(78, '=').c_str());
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", std::string(78, '=').c_str());
}

inline void PrintRule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

}  // namespace lakeorg::bench
