// Shared helpers for the paper-artifact bench binaries: environment-driven
// scaling, series summarization, and aligned table printing.
//
// Every bench accepts LAKEORG_SCALE (a positive double, default noted per
// bench) that multiplies the workload size, so the same binaries run
// laptop-fast by default and approach the paper's scale with
// LAKEORG_SCALE=1 or higher.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace lakeorg::bench {

/// Reads a positive double from the environment, with a default.
inline double EnvScale(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value || parsed <= 0.0) return fallback;
  return parsed;
}

/// Scales a count, keeping at least `min_value`.
inline size_t Scaled(size_t base, double scale, size_t min_value = 1) {
  double scaled = static_cast<double>(base) * scale;
  size_t out = static_cast<size_t>(scaled);
  return out < min_value ? min_value : out;
}

/// Summarizes a sorted-ascending series at fixed quantile stops — the
/// text rendering of a Figure 2 curve.
inline std::string SeriesSummary(const std::vector<double>& sorted) {
  if (sorted.empty()) return "(empty)";
  const double stops[] = {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
  std::string out;
  char buf[48];
  for (double stop : stops) {
    size_t idx = static_cast<size_t>(stop * (sorted.size() - 1));
    std::snprintf(buf, sizeof(buf), "p%-3.0f=%.3f ", stop * 100,
                  sorted[idx]);
    out += buf;
  }
  return out;
}

/// Prints a horizontal rule + centered title.
inline void PrintHeader(const std::string& title) {
  std::printf("\n%s\n", std::string(78, '=').c_str());
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", std::string(78, '=').c_str());
}

inline void PrintRule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

}  // namespace lakeorg::bench
