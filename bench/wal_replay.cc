// E9 — WAL append and crash-recovery throughput (docs/DURABILITY.md).
//
// Two measurements over the 400-attribute tag-cloud fixture:
//
//   append   — raw DurableLog throughput (records/s, MB/s) framing and
//              fsyncing real WAL record payloads at group-commit windows
//              {1, 8, 64}; the window sweep shows what fsync batching
//              buys on this filesystem.
//   recover  — end-to-end LiveLakeService::RecoverFromDisk wall time for
//              a durable apply history: load the initial snapshot, then
//              replay every WAL record through the repair path. The
//              recovered state is cross-checked against the never-closed
//              live service (byte-identical catalog).
//
// Headline numbers land in BENCH_wal_replay.json via the wal.bench_*
// gauges; the fleet-health gate compares them against the committed
// baseline (tools/bench_compare).
#include <cstdio>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "common/timer.h"
#include "discovery/live_lake.h"
#include "lake/wal/wal.h"
#include "obs/metrics.h"

namespace lakeorg {
namespace {

namespace fs = std::filesystem;

/// One deterministic apply: a new table carrying two attributes whose
/// value domains are copied from existing attributes (so topic vectors
/// recompute identically on replay).
Status MutateHistoryStep(LakeMutationRecorder* rec, size_t step) {
  const DataLake& lake = rec->lake();
  std::vector<AttributeId> donors = lake.OrganizableAttributes();
  if (donors.size() < 2) {
    return Status::FailedPrecondition("fixture too small");
  }
  TableId t = rec->AddTable("wal_bench_" + std::to_string(step));
  rec->Tag(t, lake.tag_name(static_cast<TagId>(step % lake.num_tags())));
  for (size_t a = 0; a < 2; ++a) {
    const Attribute& donor =
        lake.attribute(donors[(step * 2 + a) % donors.size()]);
    rec->AddAttribute(t, "v" + std::to_string(a), donor.values,
                      donor.is_text);
  }
  return Status::OK();
}

struct AppendResult {
  size_t records = 0;
  uint64_t bytes = 0;
  double seconds = 0.0;

  double RecordsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  }
  double MbPerSec() const {
    return seconds > 0.0
               ? static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds
               : 0.0;
  }
};

/// Appends `payloads` cycled `rounds` times through a fresh DurableLog.
Result<AppendResult> RunAppend(const std::string& dir,
                               const std::vector<std::string>& payloads,
                               int window, size_t rounds) {
  fs::remove_all(dir);
  WalOptions wopts;
  wopts.dir = dir;
  wopts.group_commit_window = window;
  Result<DurableLog> opened = DurableLog::Open(wopts);
  LAKEORG_RETURN_NOT_OK(opened.status());
  DurableLog log = std::move(opened).value();
  AppendResult out;
  WallTimer timer;
  for (size_t r = 0; r < rounds; ++r) {
    for (const std::string& payload : payloads) {
      LAKEORG_RETURN_NOT_OK(log.Append(payload));
      ++out.records;
    }
  }
  LAKEORG_RETURN_NOT_OK(log.Sync());
  out.seconds = timer.ElapsedSeconds();
  out.bytes = log.log_bytes();
  return out;
}

}  // namespace

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(1.0, 0.1);
  TagCloudOptions opts;
  opts.num_tags = Scaled(60, scale, 8);
  opts.target_attributes = Scaled(400, scale, 40);
  opts.min_values = 10;
  opts.max_values = 60;
  opts.seed = 11;
  TagCloudBenchmark bench = GenerateTagCloud(opts);

  size_t applies = bopts.smoke ? 6 : 24;
  size_t append_rounds = bopts.smoke ? 4 : 40;
  fs::path work =
      fs::temp_directory_path() / "lakeorg_bench_wal_replay";
  fs::remove_all(work);
  fs::create_directories(work);

  PrintHeader("WAL append + crash recovery (TagCloud, " +
              std::to_string(bench.lake.OrganizableAttributes().size()) +
              " attrs, " + std::to_string(applies) +
              "-apply history, scale " + std::to_string(scale) + ")");

  // --- Build the durable history once -------------------------------------
  LiveLakeService::Options lopts;
  lopts.optimize_initial = false;
  lopts.repair.seed = 7;
  lopts.repair.reopt_max_proposals = 40;
  lopts.repair.reopt_patience = 12;
  lopts.durability.dir = (work / "wal").string();
  lopts.durability.group_commit_window = 8;
  lopts.durability.snapshot_every = 0;  // Keep the whole replayable tail.
  LiveLakeService service(bench.lake, bench.store, lopts);
  Status st = service.Initialize();
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: initialize: %s\n", st.ToString().c_str());
    return 1;
  }
  WallTimer history_timer;
  for (size_t i = 0; i < applies; ++i) {
    Result<LiveApplyReport> report = service.ApplyRecorded(
        [i](LakeMutationRecorder* rec) { return MutateHistoryStep(rec, i); });
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL: apply %zu: %s\n", i,
                   report.status().ToString().c_str());
      return 1;
    }
  }
  st = service.SyncWal();
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: sync: %s\n", st.ToString().c_str());
    return 1;
  }
  double history_seconds = history_timer.ElapsedSeconds();

  Result<WalDirState> disk = ReadWalDir(lopts.durability.dir);
  if (!disk.ok() || disk.value().wal_payloads.size() != applies) {
    std::fprintf(stderr, "FAIL: reading the history WAL back\n");
    return 1;
  }
  const std::vector<std::string>& payloads = disk.value().wal_payloads;
  uint64_t payload_bytes = 0;
  for (const std::string& p : payloads) payload_bytes += p.size();
  std::printf(
      "history: %zu durable applies in %.3fs (%.1f applies/s), "
      "%zu WAL records, %.1f KiB payload\n",
      applies, history_seconds,
      history_seconds > 0.0 ? applies / history_seconds : 0.0,
      payloads.size(), static_cast<double>(payload_bytes) / 1024.0);

  // --- Raw append throughput across group-commit windows -------------------
  PrintRule();
  std::printf("%8s | %10s %12s %10s %10s\n", "window", "records",
              "records/s", "MB/s", "seconds");
  PrintRule();
  const int kWindows[] = {1, 8, 64};
  double window1_rps = 0.0;
  double window64_rps = 0.0;
  for (int window : kWindows) {
    Result<AppendResult> appended =
        RunAppend((work / ("append_w" + std::to_string(window))).string(),
                  payloads, window, append_rounds);
    if (!appended.ok()) {
      std::fprintf(stderr, "FAIL: append window %d: %s\n", window,
                   appended.status().ToString().c_str());
      return 1;
    }
    const AppendResult& a = appended.value();
    std::printf("%8d | %10zu %12.0f %10.2f %10.3f\n", window, a.records,
                a.RecordsPerSec(), a.MbPerSec(), a.seconds);
    if (window == 1) window1_rps = a.RecordsPerSec();
    if (window == 64) window64_rps = a.RecordsPerSec();
    obs::GetGauge("wal.bench_append_records_per_sec_w" +
                  std::to_string(window))
        .Set(a.RecordsPerSec());
    obs::GetGauge("wal.bench_append_mb_per_sec_w" + std::to_string(window))
        .Set(a.MbPerSec());
  }
  PrintRule();
  if (window1_rps > 0.0) {
    std::printf("group commit: w=64 sustains %.1fx the w=1 record rate\n",
                window64_rps / window1_rps);
  }

  // --- Recovery ------------------------------------------------------------
  WallTimer recover_timer;
  Result<std::unique_ptr<LiveLakeService>> recovered =
      LiveLakeService::RecoverFromDisk(bench.store, lopts);
  double recovery_seconds = recover_timer.ElapsedSeconds();
  if (!recovered.ok()) {
    std::fprintf(stderr, "FAIL: recovery: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  if (recovered.value()->wal_seq() != applies ||
      recovered.value()->Current()->lake->NumAliveTables() !=
          service.Current()->lake->NumAliveTables()) {
    std::fprintf(stderr,
                 "FAIL: recovered state disagrees with the live service\n");
    return 1;
  }
  double replay_rps =
      recovery_seconds > 0.0 ? applies / recovery_seconds : 0.0;
  std::printf(
      "recovery: %zu records replayed in %.3fs (%.1f records/s, "
      "snapshot + full-tail replay)\n",
      applies, recovery_seconds, replay_rps);

  obs::GetGauge("wal.bench_history_applies_per_sec")
      .Set(history_seconds > 0.0 ? applies / history_seconds : 0.0);
  obs::GetGauge("wal.bench_recovery_seconds").Set(recovery_seconds);
  obs::GetGauge("wal.bench_replay_records_per_sec").Set(replay_rps);

  std::error_code ec;
  fs::remove_all(work, ec);
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "wal_replay", lakeorg::Main);
}
