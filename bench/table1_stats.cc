// Experiment E5 — Table 1: statistics of the 10 organizations built on the
// Socrata-like lake. One row per dimension: #Tags, #Atts, #Tables, #Reps
// (the representative set is 10% of the dimension's attributes).
//
// Paper reference (full crawl): cluster sizes are skewed — the largest
// dimension has 2,031 tags / 28,248 attrs, the smallest 43 tags / 118
// attrs; #Reps ~ #Atts / 10.
#include <cstdio>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/socrata.h"
#include "core/multidim.h"
#include "lake/lake_stats.h"

namespace lakeorg {

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(0.12, 0.01);
  SocrataOptions opts;
  opts.num_tables = Scaled(7553, scale, 80);
  opts.num_tags = Scaled(11083, scale, 60);
  opts.seed = 777;

  PrintHeader("Table 1 — statistics of the 10 organizations of the "
              "Socrata-like lake  (scale " + std::to_string(scale) + ")");
  SocrataLake soc = GenerateSocrataLake(opts);
  TagIndex index = TagIndex::Build(soc.lake);
  std::printf("%s", FormatLakeStats(ComputeLakeStats(soc.lake)).c_str());

  MultiDimOptions mopts;
  mopts.dimensions = 10;
  mopts.search.transition.gamma = 20.0;
  mopts.search.patience = 50;
  mopts.search.max_proposals = bopts.MaxProposals(300);
  mopts.search.use_representatives = true;
  mopts.search.representatives.fraction = 0.1;
  mopts.partition_seed = 99;
  MultiDimOrganization multi = bench::CheckedValue(
      BuildMultiDimOrganization(soc.lake, index, mopts),
      "multidim build");

  // Rows sorted by #Tags descending, as in the paper.
  std::vector<size_t> order(multi.num_dimensions());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&multi](size_t a, size_t b) {
    return multi.info()[a].num_tags > multi.info()[b].num_tags;
  });

  PrintRule();
  std::printf("%4s %8s %8s %8s %8s %10s %9s\n", "Org", "#Tags", "#Atts",
              "#Tables", "#Reps", "eff", "time(s)");
  PrintRule();
  size_t row_no = 1;
  for (size_t i : order) {
    const DimensionInfo& info = multi.info()[i];
    std::printf("%4zu %8zu %8zu %8zu %8zu %10.3f %9.1f\n", row_no++,
                info.num_tags, info.num_attrs, info.num_tables,
                info.num_reps, info.effectiveness, info.seconds);
  }
  PrintRule();
  std::printf("paper shape check: cluster sizes skewed (largest/smallest "
              "tags ratio %.0fx; paper ~47x), #Reps ~ #Atts/10\n",
              static_cast<double>(multi.info()[order.front()].num_tags) /
                  static_cast<double>(
                      std::max<size_t>(1,
                                       multi.info()[order.back()]
                                           .num_tags)));
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "table1_stats",
                                   lakeorg::Main);
}
