// E8 — concurrent navigation serving: a closed-loop load generator over
// NavService on the 400-attribute tag cloud (the micro_* fixture). N
// client threads each drive a set of sessions whose query attributes are
// Zipf-distributed (hot topics shared across users), stepping through
// batched requests with a simple walk policy: descend rank 0 with
// probability 0.7 (otherwise a uniform rank among the top 3), backtrack
// with probability 0.1, and restart via Refresh at a leaf or depth 12.
// The same seeded workload runs twice — transition-row cache enabled vs
// disabled — and the ISSUE 5 acceptance bar (cached >= 3x uncached step
// throughput at 4 threads) is enforced on the full (non-smoke) workload.
// Headline numbers land in the BENCH json via the nav.bench_* gauges.
#include <cstdio>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "common/timer.h"
#include "common/zipf.h"
#include "core/org_builders.h"
#include "core/org_snapshot.h"
#include "discovery/nav_service.h"
#include "obs/metrics.h"

namespace lakeorg {
namespace {

constexpr size_t kSessionsPerThread = 8;
constexpr size_t kMaxDepth = 12;

struct LoadResult {
  size_t steps = 0;
  double seconds = 0.0;

  double StepsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
  }
};

/// Drives `rounds` batched walk rounds per thread against `service`.
/// Deterministic workload shape for a fixed seed (wall time aside).
LoadResult RunLoad(NavService* service, const ZipfDistribution& zipf,
                   size_t num_threads, size_t rounds, uint64_t seed) {
  std::atomic<size_t> total_steps{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([service, &zipf, &total_steps, rounds, seed, t] {
      Rng rng(seed + t * 7919);
      std::vector<NavSessionId> ids;
      std::vector<NavView> views;
      for (size_t i = 0; i < kSessionsPerThread; ++i) {
        uint32_t attr = static_cast<uint32_t>(zipf.Sample(&rng) - 1);
        Result<NavSessionId> opened = service->Open(attr);
        if (!opened.ok()) continue;
        Result<NavView> view = service->Peek(opened.value());
        if (!view.ok()) continue;
        ids.push_back(opened.value());
        views.push_back(std::move(view).value());
      }
      size_t steps = 0;
      std::vector<NavStepRequest> batch;
      std::vector<size_t> owner;
      for (size_t round = 0; round < rounds; ++round) {
        batch.clear();
        owner.clear();
        for (size_t i = 0; i < ids.size(); ++i) {
          const NavView& view = views[i];
          if (view.NumChoices() == 0 || view.depth >= kMaxDepth) {
            // End of a walk: the user starts over at the root.
            Result<NavView> restarted = service->Refresh(ids[i]);
            if (restarted.ok()) views[i] = std::move(restarted).value();
            ++steps;
            continue;
          }
          NavStepRequest req;
          req.session = ids[i];
          if (view.depth > 0 && rng.Bernoulli(0.1)) {
            req.kind = NavStepRequest::Kind::kBack;
          } else {
            req.kind = NavStepRequest::Kind::kDescend;
            size_t top = std::min<size_t>(3, view.NumChoices());
            req.rank = rng.Bernoulli(0.7)
                           ? 0
                           : static_cast<size_t>(rng.UniformInt(
                                 0, static_cast<int64_t>(top) - 1));
          }
          batch.push_back(req);
          owner.push_back(i);
        }
        std::vector<Result<NavView>> results = service->ExecuteBatch(batch);
        for (size_t j = 0; j < results.size(); ++j) {
          if (results[j].ok()) {
            views[owner[j]] = std::move(results[j]).value();
            ++steps;
          }
        }
      }
      for (NavSessionId id : ids) (void)service->Close(id);
      total_steps.fetch_add(steps);
    });
  }
  for (std::thread& th : threads) th.join();
  LoadResult out;
  out.steps = total_steps.load();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(1.0, 0.1);
  TagCloudOptions opts;
  opts.num_tags = Scaled(60, scale, 8);
  opts.target_attributes = Scaled(400, scale, 40);
  opts.min_values = 10;
  opts.max_values = 60;
  opts.seed = 9;
  TagCloudBenchmark bench = GenerateTagCloud(opts);
  TagIndex index = TagIndex::Build(bench.lake);
  auto ctx = OrgContext::BuildFull(bench.lake, index);

  // Serving throughput is independent of organization quality; the
  // agglomerative clustering DAG (no optimization pass) keeps fixture
  // setup cheap.
  Organization clustering = BuildClusteringOrganization(ctx);
  clustering.RecomputeLevels();
  OrgSnapshotStore store;
  {
    OrgSnapshot snap;
    snap.ctx = ctx;
    snap.index = std::make_shared<const TagIndex>(std::move(index));
    snap.org = std::make_shared<const Organization>(std::move(clustering));
    store.Publish(std::move(snap));
  }
  NavService::SnapshotSource source = [&store] { return store.Current(); };

  size_t num_threads = bopts.smoke ? 2 : 4;
  size_t rounds = bopts.smoke ? 30 : 300;
  ZipfDistribution zipf(ctx->num_attrs(), 1.2);

  PrintHeader("Navigation serving — cached vs uncached transition rows "
              "(TagCloud, " +
              std::to_string(ctx->num_attrs()) + " attrs, " +
              std::to_string(num_threads) + " client threads, " +
              std::to_string(num_threads * kSessionsPerThread) +
              " sessions, scale " + std::to_string(scale) + ")");

  NavServiceOptions cached_opts;
  cached_opts.batch_threads = 2;
  NavServiceOptions uncached_opts = cached_opts;
  uncached_opts.cache_capacity = 0;

  PrintRule();
  std::printf("%10s | %10s %10s %12s\n", "config", "steps", "seconds",
              "steps/sec");
  PrintRule();

  NavService uncached(source, uncached_opts);
  LoadResult cold = RunLoad(&uncached, zipf, num_threads, rounds, 42);
  std::printf("%10s | %10zu %10.3f %12.0f\n", "uncached", cold.steps,
              cold.seconds, cold.StepsPerSec());

  NavService cached(source, cached_opts);
  LoadResult warm = RunLoad(&cached, zipf, num_threads, rounds, 42);
  std::printf("%10s | %10zu %10.3f %12.0f\n", "cached", warm.steps,
              warm.seconds, warm.StepsPerSec());
  PrintRule();

  double speedup = cold.StepsPerSec() > 0.0
                       ? warm.StepsPerSec() / cold.StepsPerSec()
                       : 0.0;
  NavServiceStats stats = cached.Stats();
  uint64_t lookups = stats.cache_hits + stats.cache_misses;
  double hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  obs::GetGauge("nav.bench_cached_steps_per_sec").Set(warm.StepsPerSec());
  obs::GetGauge("nav.bench_uncached_steps_per_sec").Set(cold.StepsPerSec());
  obs::GetGauge("nav.bench_speedup").Set(speedup);
  obs::GetGauge("nav.bench_cache_hit_rate").Set(hit_rate);
  std::printf(
      "row cache: %.1f%% hit rate (%zu hits / %zu lookups) -> %.1fx step "
      "throughput\n",
      hit_rate * 100.0, static_cast<size_t>(stats.cache_hits),
      static_cast<size_t>(lookups), speedup);

  if (!bopts.smoke && speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: cached serving speedup %.2fx is below the 3x "
                 "acceptance bar\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "nav_serving", lakeorg::Main);
}
