// Experiment E4 — Figure 3(a,b): affected-subgraph pruning on the TagCloud
// benchmark. For each local-search iteration we record the fraction of
// attribute domains (a) and states (b) whose discovery probabilities were
// re-evaluated, under exact evaluation; plus the representative-
// approximation variant, where the paper reports the evaluations dropping
// to ~6% of the attributes.
//
// Paper reference: "on average less than half of states and attributes are
// visited and evaluated for each search iteration"; approximation with a
// 10% representative set reduces discovery-probability evaluations to 6%
// of the attributes.
#include <cstdio>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "common/stats.h"
#include "core/local_search.h"
#include "core/org_builders.h"

namespace lakeorg {
namespace {

using bench::PrintHeader;
using bench::PrintRule;
using bench::Scaled;

struct PruningStats {
  double mean_states = 0.0;
  double median_states = 0.0;
  double p90_states = 0.0;
  double mean_attrs = 0.0;
  double median_attrs = 0.0;
  double p90_attrs = 0.0;
  double mean_queries = 0.0;
  size_t iterations = 0;
  double seconds = 0.0;
  double effectiveness = 0.0;
};

PruningStats Collect(const LocalSearchResult& result) {
  PruningStats stats;
  std::vector<double> states;
  std::vector<double> attrs;
  std::vector<double> queries;
  for (const IterationRecord& rec : result.history) {
    states.push_back(rec.frac_states_evaluated);
    attrs.push_back(rec.frac_attrs_evaluated);
    queries.push_back(rec.frac_queries_evaluated);
  }
  stats.mean_states = Mean(states);
  stats.median_states = Median(states);
  stats.p90_states = Percentile(states, 90);
  stats.mean_attrs = Mean(attrs);
  stats.median_attrs = Median(attrs);
  stats.p90_attrs = Percentile(attrs, 90);
  stats.mean_queries = Mean(queries);
  stats.iterations = result.history.size();
  stats.seconds = result.seconds;
  stats.effectiveness = result.effectiveness;
  return stats;
}

}  // namespace

int Main(const bench::BenchOptions& bopts) {
  double scale = bopts.Scale(0.2, 0.04);
  TagCloudOptions opts;
  opts.num_tags = Scaled(365, scale, 12);
  opts.target_attributes = Scaled(2651, scale, 60);
  opts.min_values = 10;
  opts.max_values = Scaled(300, scale, 30);
  opts.seed = 2020;

  PrintHeader("Figure 3 — pruning of domains (a) and states (b) per search"
              " iteration  (scale " + std::to_string(scale) + ")");

  TagCloudBenchmark bench = GenerateTagCloud(opts);
  TagIndex index = TagIndex::Build(bench.lake);
  auto ctx = OrgContext::BuildFull(bench.lake, index);
  std::printf("TagCloud: %zu tags, %zu attrs, %zu tables\n",
              ctx->num_tags(), ctx->num_attrs(), ctx->num_tables());

  LocalSearchOptions base;
  base.transition.gamma = 20.0;
  base.patience = 50;
  base.max_proposals = bopts.MaxProposals(500);
  base.seed = 71;
  base.record_history = true;

  // Exact evaluation with affected-subgraph pruning.
  LocalSearchResult exact = bench::CheckedValue(
      OptimizeOrganization(BuildClusteringOrganization(ctx), base),
      "exact optimize");
  PruningStats exact_stats = Collect(exact);

  // Representative approximation (10%), same pruning.
  LocalSearchOptions approx = base;
  approx.use_representatives = true;
  approx.representatives.fraction = 0.1;
  LocalSearchResult approx_run = bench::CheckedValue(
      OptimizeOrganization(BuildClusteringOrganization(ctx), approx),
      "approx optimize");
  PruningStats approx_stats = Collect(approx_run);
  // Attribute evaluations under approximation = affected queries x
  // (1 query per representative); relative to ALL attributes that is
  // frac_queries * rep_fraction.
  double approx_attr_evals = approx_stats.mean_queries * 0.1;

  PrintRule();
  std::printf("%-14s %6s %8s %8s %8s %8s %8s %8s %8s %7s\n", "variant",
              "iters", "med st%", "mean st%", "p90 st%", "med at%",
              "mean at%", "p90 at%", "eff", "time(s)");
  PrintRule();
  for (const auto& [name, stats] :
       {std::pair<const char*, const PruningStats&>{"exact+pruning",
                                                    exact_stats},
        std::pair<const char*, const PruningStats&>{"approx (10%)",
                                                    approx_stats}}) {
    std::printf(
        "%-14s %6zu %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% "
        "%8.3f %7.1f\n",
        name, stats.iterations, 100 * stats.median_states,
        100 * stats.mean_states, 100 * stats.p90_states,
        100 * stats.median_attrs, 100 * stats.mean_attrs,
        100 * stats.p90_attrs, stats.effectiveness, stats.seconds);
  }
  PrintRule();
  std::printf("paper shape check: exact states/attrs visited < 50%% on "
              "average (measured median %.1f%% / %.1f%%, mean %.1f%% / "
              "%.1f%%; our balanced dendrograms make top-level operations "
              "span more of the organization than the paper's real-data "
              "hierarchies)\n",
              100 * exact_stats.median_states,
              100 * exact_stats.median_attrs,
              100 * exact_stats.mean_states, 100 * exact_stats.mean_attrs);
  std::printf("approx discovery evaluations = %.1f%% of all attributes "
              "(paper: ~6%%)\n",
              100 * approx_attr_evals);
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "fig3_pruning",
                                   lakeorg::Main);
}
