// M2 — google-benchmark microbenchmarks for the parallel, allocation-free
// proposal-evaluation engine: serial-vs-parallel incremental
// EvaluateProposal at 1/2/4/8 threads, and clone-vs-undo proposal
// application. The fixture is the 400-attribute tag cloud also used by
// micro_core, so numbers are directly comparable with the seed's
// BM_ProposalEvaluation / BM_OrganizationClone baselines.
#include <benchmark/benchmark.h>

#include "bench/bench_gbench.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "core/evaluator.h"
#include "core/local_search.h"
#include "core/operations.h"
#include "core/org_builders.h"
#include "core/reference_evaluator.h"

namespace lakeorg {
namespace {

/// Lazily built shared fixture (generation is too slow per-iteration).
struct Shared {
  TagCloudBenchmark bench;
  TagIndex index;
  std::shared_ptr<const OrgContext> ctx;
  Organization clustering;

  Shared()
      : bench([] {
          TagCloudOptions opts;
          opts.num_tags = 60;
          opts.target_attributes = 400;
          opts.min_values = 10;
          opts.max_values = 60;
          opts.seed = 9;
          return GenerateTagCloud(opts);
        }()),
        index(TagIndex::Build(bench.lake)),
        ctx(OrgContext::BuildFull(bench.lake, index)),
        clustering(BuildClusteringOrganization(ctx)) {
    // Sanity-seed the fixture against the differential-testing oracle:
    // a benchmark over an organization the optimized evaluator scores
    // differently from the reference would measure the wrong code.
    clustering.RecomputeLevels();
    double want = ReferenceEvaluator().Effectiveness(clustering);
    double got = OrgEvaluator().Effectiveness(clustering);
    if (std::abs(got - want) > 1e-9) {
      std::fprintf(stderr,
                   "micro_evaluator fixture fails the oracle check: "
                   "optimized %.12f vs reference %.12f\n",
                   got, want);
      std::abort();
    }
  }

  static const Shared& Get() {
    static const Shared shared;
    return shared;
  }
};

/// Incremental proposal evaluation (apply + evaluate + roll back) with the
/// evaluator's worker pool at `threads` width. threads=1 is the exact
/// legacy serial path.
void BM_EvaluateProposal(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  size_t threads = static_cast<size_t>(state.range(0));
  TransitionConfig config;
  IncrementalEvaluator evaluator(config, shared.ctx,
                                 IdentityRepresentatives(*shared.ctx),
                                 threads);
  Organization current = shared.clustering.Clone();
  current.RecomputeLevels();
  evaluator.Initialize(current);
  ReachabilityFn reach = [&evaluator](StateId s) {
    return evaluator.StateReachability(s);
  };
  uint32_t leaf = 0;
  uint32_t num_attrs = static_cast<uint32_t>(shared.ctx->num_attrs());
  OpUndo undo;
  for (auto _ : state) {
    OpResult op =
        ApplyAddParent(&current, current.LeafOf(leaf), reach, &undo);
    if (op.applied) {
      ProposalEvaluation eval;
      evaluator.EvaluateProposal(current, op.topic_changed,
                                 op.children_changed, op.removed, &eval);
      benchmark::DoNotOptimize(eval.effectiveness);
    }
    current.Undo(undo);
    leaf = (leaf + 1) % num_attrs;
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_EvaluateProposal)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Seed-style proposal application: clone the whole organization, mutate
/// the clone, discard it.
void BM_ProposalApplyClone(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  Organization current = shared.clustering.Clone();
  current.RecomputeLevels();
  ReachabilityFn uniform = [](StateId) { return 1.0; };
  uint32_t leaf = 0;
  uint32_t num_attrs = static_cast<uint32_t>(shared.ctx->num_attrs());
  for (auto _ : state) {
    Organization proposal = current.Clone();
    OpResult op = ApplyAddParent(&proposal, proposal.LeafOf(leaf), uniform);
    benchmark::DoNotOptimize(op.applied);
    leaf = (leaf + 1) % num_attrs;
  }
}
BENCHMARK(BM_ProposalApplyClone);

/// Undo-log proposal application: mutate in place, roll back via the undo
/// log (the engine's reject path).
void BM_ProposalApplyUndo(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  Organization current = shared.clustering.Clone();
  current.RecomputeLevels();
  ReachabilityFn uniform = [](StateId) { return 1.0; };
  uint32_t leaf = 0;
  uint32_t num_attrs = static_cast<uint32_t>(shared.ctx->num_attrs());
  OpUndo undo;
  for (auto _ : state) {
    OpResult op =
        ApplyAddParent(&current, current.LeafOf(leaf), uniform, &undo);
    benchmark::DoNotOptimize(op.applied);
    current.Undo(undo);
    leaf = (leaf + 1) % num_attrs;
  }
}
BENCHMARK(BM_ProposalApplyUndo);

/// End-to-end local search on the fixture at different thread counts
/// (includes target-queue builds, operations, and commits).
void BM_LocalSearch(benchmark::State& state) {
  const Shared& shared = Shared::Get();
  size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    LocalSearchOptions opts;
    opts.seed = 7;
    opts.max_proposals = 200;
    opts.patience = 200;
    opts.record_history = false;
    opts.num_threads = threads;
    LocalSearchResult result = bench::CheckedValue(
        OptimizeOrganization(shared.clustering.Clone(), opts),
        "optimize");
    benchmark::DoNotOptimize(result.effectiveness);
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_LocalSearch)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::GoogleBenchMain(argc, argv, "micro_evaluator");
}
