// BenchMain's sibling for the google-benchmark micro binaries
// (micro_core, micro_evaluator). Replaces BENCHMARK_MAIN() with
//
//   int main(int argc, char** argv) {
//     return lakeorg::bench::GoogleBenchMain(argc, argv, "micro_core");
//   }
//
// adding the harness flags on top of the usual --benchmark_* set:
//   --smoke        minimal timing (--benchmark_min_time=0.001)
//   --json[=PATH]  capture every series into BENCH_<name>.json
//   --no-metrics   leave telemetry disabled (for measuring its overhead)
// Unrecognized flags pass through to google-benchmark untouched.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "obs/metrics.h"

namespace lakeorg::bench {

/// ConsoleReporter that also records each series for the JSON report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      // Aggregates (mean/median/stddev) restate the iteration runs.
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      obs::BenchResultEntry entry;
      entry.name = run.benchmark_name();
      // real_accumulated_time is total seconds across `iterations`
      // (time_unit only affects display).
      if (run.iterations > 0) {
        entry.iterations = static_cast<uint64_t>(run.iterations);
        entry.real_seconds =
            run.real_accumulated_time / static_cast<double>(run.iterations);
      } else {
        entry.iterations = 1;
        entry.real_seconds = run.real_accumulated_time;
      }
      captured.push_back(entry);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<obs::BenchResultEntry> captured;
};

inline int GoogleBenchMain(int argc, char** argv, const std::string& name) {
  bool smoke = false;
  bool emit_json = false;
  bool metrics = true;
  std::string json_path;
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--no-metrics") {
      metrics = false;
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      emit_json = true;
      if (arg.size() > 7) json_path = arg.substr(7);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  // 1.7.x takes min_time as double seconds (the "<N>x" form is newer).
  std::string min_time = "--benchmark_min_time=0.001";
  if (smoke) bench_argv.push_back(min_time.data());

  obs::SetMetricsEnabled(metrics);
  obs::ResetAllMetrics();

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 2;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (emit_json) {
    obs::BenchReport report = obs::MakeBenchReport(name, smoke);
    report.results = std::move(reporter.captured);
    report.metrics = obs::SnapshotMetrics().ToJson();
    const std::string path =
        json_path.empty() ? "BENCH_" + name + ".json" : json_path;
    Status status = obs::WriteBenchReportFile(report, path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   status.message().c_str());
      return 1;
    }
    if (path != "-") {
      std::printf("[%s] wrote %s\n", name.c_str(), path.c_str());
    }
  }
  return 0;
}

}  // namespace lakeorg::bench
