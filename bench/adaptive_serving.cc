// E11 — closed-loop adaptive serving: does serve -> observe -> repair
// actually help? A tag-cloud lake serves navigation sessions whose query
// attributes follow a DRIFTING Zipf distribution (the hot set is
// re-permuted every phase), driven by the src/study NavService agent
// (greedy users, sharper than the content prior). The service's click
// sink feeds an AdaptivePolicy that blends the observed transitions and
// re-optimizes the affected subgraph under the demand-weighted
// objective whenever drift crosses the threshold; the frozen arm keeps
// serving the initial clustering organization forever.
//
// After every phase both organizations are scored with the SAME
// demand-weighted effectiveness (OrgEvaluator::WeightedEffectiveness
// under that phase's realized click demand); the gap series is the
// headline. The non-smoke acceptance gate requires at least one repair
// and a minimum final-phase improvement of the closed loop over the
// frozen org. Headline numbers land in the BENCH json via the
// adaptive.bench_* gauges (the loop's own adaptive.* counters ride
// along automatically).
#include <cstdio>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/evaluator.h"
#include "discovery/adaptive_loop.h"
#include "discovery/live_lake.h"
#include "discovery/nav_service.h"
#include "obs/metrics.h"
#include "study/agents.h"

namespace lakeorg {
namespace {

/// Non-smoke acceptance bar: final-phase closed-loop weighted
/// effectiveness must beat the frozen organization by at least this.
constexpr double kMinImprovement = 0.002;

struct PhaseDemand {
  std::vector<uint64_t> by_attr;
  size_t clicks = 0;
  size_t sessions_ok = 0;
  size_t targets_reached = 0;
};

/// Serves one phase of Zipf-drifting sessions and returns the realized
/// per-attribute click demand (the measurement weights).
PhaseDemand ServePhase(NavService* service, const ZipfDistribution& zipf,
                       const std::vector<uint32_t>& hot_order,
                       size_t num_sessions, size_t num_threads,
                       uint64_t seed) {
  std::vector<PhaseDemand> per_thread(num_threads);
  for (PhaseDemand& d : per_thread) {
    d.by_attr.assign(hot_order.size(), 0);
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([service, &zipf, &hot_order, &per_thread,
                          num_sessions, num_threads, seed, t] {
      PhaseDemand& demand = per_thread[t];
      Rng rng(seed + t * 7919);
      NavServiceAgentOptions aopts;
      for (size_t i = t; i < num_sessions; i += num_threads) {
        uint32_t attr = hot_order[zipf.Sample(&rng) - 1];
        Result<NavServiceAgentResult> res =
            RunNavServiceAgent(service, attr, aopts, &rng);
        if (!res.ok()) continue;
        ++demand.sessions_ok;
        demand.clicks += res.value().descents;
        demand.by_attr[attr] += res.value().descents;
        if (res.value().reached_target) ++demand.targets_reached;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  PhaseDemand total;
  total.by_attr.assign(hot_order.size(), 0);
  for (const PhaseDemand& d : per_thread) {
    total.clicks += d.clicks;
    total.sessions_ok += d.sessions_ok;
    total.targets_reached += d.targets_reached;
    for (size_t a = 0; a < d.by_attr.size(); ++a) {
      total.by_attr[a] += d.by_attr[a];
    }
  }
  return total;
}

}  // namespace

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(1.0, 0.1);
  TagCloudOptions opts;
  opts.num_tags = Scaled(48, scale, 8);
  opts.target_attributes = Scaled(320, scale, 40);
  opts.min_values = 10;
  opts.max_values = 60;
  opts.seed = 11;
  TagCloudBenchmark bench = GenerateTagCloud(opts);

  // Both arms start from the same unoptimized clustering organization:
  // the headroom the closed loop gets to spend where the demand lands.
  LiveLakeService::Options lopts;
  lopts.optimize_initial = false;
  lopts.canonical_publish = true;
  LiveLakeService live(bench.lake, bench.store, lopts);
  Status init = live.Initialize();
  if (!init.ok()) {
    std::fprintf(stderr, "FAIL: initialize: %s\n", init.ToString().c_str());
    return 1;
  }
  std::shared_ptr<const OrgSnapshot> frozen = live.Current();
  const OrgContext& ctx = *frozen->ctx;

  auto sink = std::make_shared<ClickLogSink>();
  NavServiceOptions nopts;
  nopts.click_sink = sink;
  NavService service(&live, nopts);

  AdaptivePolicyOptions popts;
  popts.prior_strength = 32.0;
  popts.drift_threshold = 0.02;
  popts.min_clicks = bopts.smoke ? 10 : 50;
  // A healthy floor keeps repairs from trashing cold tables for the hot
  // few — the drift will move the hot set, and overfitted repairs would
  // be paid back with interest.
  popts.demand_floor = 4.0;
  popts.reopt.max_proposals = bopts.MaxProposals(1500, 40);
  popts.reopt.record_history = false;
  popts.reopt.num_threads = bopts.smoke ? 2 : 4;
  popts.reopt.seed = 4242;
  AdaptivePolicy policy(&live, sink, popts);

  size_t phases = bopts.smoke ? 2 : 6;
  size_t sessions_per_phase = Scaled(96, scale, 16);
  size_t num_threads = bopts.smoke ? 2 : 4;
  ZipfDistribution zipf(ctx.num_attrs(), 1.2);

  PrintHeader(
      "Adaptive serving — closed loop vs frozen org (TagCloud, " +
      std::to_string(ctx.num_attrs()) + " attrs, " +
      std::to_string(phases) + " drifting Zipf phases, " +
      std::to_string(sessions_per_phase) + " sessions/phase, " +
      std::to_string(num_threads) + " client threads, scale " +
      std::to_string(scale) + ")");

  OrgEvaluator eval(popts.reopt.transition);
  std::vector<double> frozen_disc = eval.AllAttributeDiscovery(*frozen->org);
  std::vector<double> adaptive_disc = frozen_disc;
  uint64_t adaptive_disc_version = frozen->version;

  PrintRule();
  std::printf("%5s | %7s %6s %7s %8s | %10s %10s %9s\n", "phase", "clicks",
              "found", "drift", "repaired", "frozen_eff", "adapt_eff",
              "gap");
  PrintRule();

  Rng rng(2026);
  std::vector<uint32_t> hot_order(ctx.num_attrs());
  for (uint32_t a = 0; a < ctx.num_attrs(); ++a) hot_order[a] = a;
  rng.Shuffle(&hot_order);

  double first_gap = 0.0;
  double final_gap = 0.0;
  double gap_sum = 0.0;
  double frozen_eff = 0.0;
  double adaptive_eff = 0.0;
  size_t total_clicks = 0;
  std::vector<uint64_t> cumulative_demand(ctx.num_attrs(), 0);
  for (size_t p = 0; p < phases; ++p) {
    // The drift: every phase GRADUALLY relocates the Zipf hot set (an
    // eighth of the ranks swap). Demand stays correlated across phases —
    // the regime where reacting to observed behavior can pay off — while
    // a frozen org slowly falls out of step.
    if (p > 0) {
      size_t swaps = hot_order.size() / 16 + 1;
      for (size_t k = 0; k < swaps; ++k) {
        size_t i = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(hot_order.size()) - 1));
        size_t j = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(hot_order.size()) - 1));
        std::swap(hot_order[i], hot_order[j]);
      }
    }
    PhaseDemand demand = ServePhase(&service, zipf, hot_order,
                                    sessions_per_phase, num_threads,
                                    900 + p * 101);
    total_clicks += demand.clicks;

    Result<AdaptiveTickReport> ticked = policy.Tick();
    if (!ticked.ok()) {
      std::fprintf(stderr, "FAIL: tick: %s\n",
                   ticked.status().ToString().c_str());
      return 1;
    }
    const AdaptiveTickReport& tick = ticked.value();

    // Score both arms under the CUMULATIVE realized demand (every phase
    // served so far): the steady measure of "how well has this
    // organization served the workload it actually got", with the same
    // per-table floor the policy's plan uses so cold tables still count.
    for (uint32_t a = 0; a < demand.by_attr.size(); ++a) {
      cumulative_demand[a] += demand.by_attr[a];
    }
    std::vector<double> weights(ctx.num_tables(), popts.demand_floor);
    for (uint32_t a = 0; a < cumulative_demand.size(); ++a) {
      weights[ctx.attr_table(a)] +=
          static_cast<double>(cumulative_demand[a]);
    }
    if (live.version() != adaptive_disc_version) {
      adaptive_disc = eval.AllAttributeDiscovery(*live.Current()->org);
      adaptive_disc_version = live.version();
    }
    frozen_eff =
        OrgEvaluator::WeightedEffectiveness(ctx, frozen_disc, weights);
    adaptive_eff =
        OrgEvaluator::WeightedEffectiveness(ctx, adaptive_disc, weights);
    double gap = adaptive_eff - frozen_eff;
    if (p == 0) first_gap = gap;
    final_gap = gap;
    gap_sum += gap;
    std::printf("%5zu | %7zu %6zu %7.3f %8s | %10.4f %10.4f %+9.4f\n", p,
                demand.clicks, demand.targets_reached, tick.drift,
                tick.repaired ? "yes" : "no", frozen_eff, adaptive_eff,
                gap);
  }
  PrintRule();

  uint64_t repairs = policy.repairs();
  double mean_gap = phases > 0 ? gap_sum / static_cast<double>(phases) : 0.0;
  obs::GetGauge("adaptive.bench_frozen_eff").Set(frozen_eff);
  obs::GetGauge("adaptive.bench_adaptive_eff").Set(adaptive_eff);
  obs::GetGauge("adaptive.bench_final_gap").Set(final_gap);
  obs::GetGauge("adaptive.bench_mean_gap").Set(mean_gap);
  obs::GetGauge("adaptive.bench_gap_climb").Set(final_gap - first_gap);
  obs::GetGauge("adaptive.bench_repairs").Set(static_cast<double>(repairs));
  obs::GetGauge("adaptive.bench_clicks").Set(
      static_cast<double>(total_clicks));
  std::printf(
      "closed loop: %zu repairs over %zu phases, mean gap %+.4f, final gap "
      "%+.4f (climb %+.4f vs phase 0)\n",
      static_cast<size_t>(repairs), phases, mean_gap, final_gap,
      final_gap - first_gap);

  if (!bopts.smoke) {
    if (repairs == 0) {
      std::fprintf(stderr,
                   "FAIL: the adaptive loop never repaired (drift %.3f "
                   "threshold never crossed?)\n",
                   0.0);
      return 1;
    }
    if (final_gap < kMinImprovement) {
      std::fprintf(stderr,
                   "FAIL: final closed-loop gap %+.4f is below the %.4f "
                   "acceptance bar\n",
                   final_gap, kMinImprovement);
      return 1;
    }
  }
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "adaptive_serving",
                                   lakeorg::Main);
}
