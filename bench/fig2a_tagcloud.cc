// Experiment E1 — Figure 2(a): success probability of organizations on the
// TagCloud benchmark. Reproduces every series of the paper's figure:
//   baseline (flat tag organization), clustering (agglomerative, branching
//   factor 2), 1-dim .. 4-dim optimized organizations, enriched 2-dim
//   (second tag per attribute), and 2-dim approx (10% representatives).
// Also prints construction times (the section 4.3.2 table lives in
// bench/construction_time, which reuses these runs at its own scale).
//
// Paper reference points (full scale): baseline mean 0.016; clustering
// ~10x baseline; 1-dim >3x clustering; 2-dim mean 0.426 (~40x baseline);
// approx within noise of exact. Shape, not absolute values, is the target.
//
// LAKEORG_SCALE (default 0.25) scales tag/attribute counts; 1.0 is the
// paper's 365 tags / 2,651 attributes.
#include <cstdio>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "common/timer.h"
#include "core/local_search.h"
#include "core/multidim.h"
#include "core/org_builders.h"

namespace lakeorg {
namespace {

using bench::PrintHeader;
using bench::PrintRule;
using bench::Scaled;
using bench::SeriesSummary;

struct Row {
  std::string name;
  double mean = 0.0;
  double seconds = 0.0;
  std::vector<double> series;
};

LocalSearchOptions SearchOptions(const bench::BenchOptions& bopts) {
  LocalSearchOptions opts;
  opts.transition.gamma = 20.0;
  opts.patience = 50;  // The paper's plateau termination.
  opts.max_proposals = bopts.MaxProposals(600);
  opts.seed = 71;
  // LAKEORG_THREADS pins the evaluator's pool width (0/unset = hardware
  // concurrency); results are identical for every value.
  opts.num_threads =
      static_cast<size_t>(bench::EnvScale("LAKEORG_THREADS", 0));
  return opts;
}

Row EvaluateOrg(const std::string& name, const Organization& org,
                double seconds, const TransitionConfig& config) {
  OrgEvaluator eval(config);
  auto neighbors = OrgEvaluator::AttributeNeighbors(org.ctx(), 0.9);
  SuccessReport report = eval.Success(org, neighbors);
  return Row{name, report.mean, seconds, report.SortedAscending()};
}

Row EvaluateMulti(const std::string& name, const MultiDimOrganization& org,
                  const TransitionConfig& config, size_t total_tables) {
  MultiDimSuccess success = EvaluateMultiDimSuccess(org, 0.9, config);
  Row row;
  row.name = name;
  row.series = success.SortedAscending(total_tables);
  double sum = 0.0;
  for (double s : row.series) sum += s;
  row.mean = row.series.empty()
                 ? 0.0
                 : sum / static_cast<double>(row.series.size());
  row.seconds = org.MaxDimensionSeconds();
  return row;
}

}  // namespace

int Main(const bench::BenchOptions& bopts) {
  double scale = bopts.Scale(0.25, 0.04);
  TagCloudOptions opts;
  opts.num_tags = Scaled(365, scale, 12);
  opts.target_attributes = Scaled(2651, scale, 60);
  opts.min_values = 10;
  opts.max_values = Scaled(300, scale, 30);
  opts.seed = 2020;

  PrintHeader("Figure 2(a) — success probability on TagCloud  (scale " +
              std::to_string(scale) + ": " + std::to_string(opts.num_tags) +
              " tags, " + std::to_string(opts.target_attributes) +
              " attrs)");

  WallTimer gen_timer;
  TagCloudBenchmark bench = GenerateTagCloud(opts);
  std::printf("generated TagCloud: %zu tables, %zu attrs in %.1f s\n",
              bench.lake.num_tables(), bench.lake.num_attributes(),
              gen_timer.ElapsedSeconds());
  TagIndex index = TagIndex::Build(bench.lake);
  auto ctx = OrgContext::BuildFull(bench.lake, index);
  size_t total_tables = ctx->num_tables();
  TransitionConfig config = SearchOptions(bopts).transition;

  std::vector<Row> rows;

  // Baseline: the flat tag organization.
  {
    WallTimer t;
    Organization flat = BuildFlatOrganization(ctx);
    rows.push_back(
        EvaluateOrg("baseline (flat)", flat, t.ElapsedSeconds(), config));
  }
  // Clustering: agglomerative hierarchy, branching factor 2.
  {
    WallTimer t;
    Organization clustering = BuildClusteringOrganization(ctx);
    double secs = t.ElapsedSeconds();
    rows.push_back(EvaluateOrg("clustering", clustering, secs, config));
  }
  // N-dim optimized organizations.
  for (size_t dims : {1u, 2u, 3u, 4u}) {
    MultiDimOptions mopts;
    mopts.dimensions = dims;
    mopts.search = SearchOptions(bopts);
    mopts.num_threads = 0;
    WallTimer t;
    MultiDimOrganization org = bench::CheckedValue(
        BuildMultiDimOrganization(bench.lake, index, mopts),
        "multidim build");
    Row row = EvaluateMulti(std::to_string(dims) + "-dim", org, config,
                            total_tables);
    row.seconds = org.MaxDimensionSeconds();
    (void)t;
    rows.push_back(row);
  }
  // Enriched 2-dim: every attribute gains its closest other tag.
  {
    TagCloudBenchmark enriched = GenerateTagCloud(opts, bench.vocabulary);
    EnrichTagCloud(&enriched);
    TagIndex enriched_index = TagIndex::Build(enriched.lake);
    MultiDimOptions mopts;
    mopts.dimensions = 2;
    mopts.search = SearchOptions(bopts);
    MultiDimOrganization org = bench::CheckedValue(
        BuildMultiDimOrganization(enriched.lake, enriched_index, mopts),
        "enriched multidim build");
    rows.push_back(
        EvaluateMulti("enriched 2-dim", org, config, total_tables));
  }
  // 2-dim approx: representatives at 10% of attributes.
  {
    MultiDimOptions mopts;
    mopts.dimensions = 2;
    mopts.search = SearchOptions(bopts);
    mopts.search.use_representatives = true;
    mopts.search.representatives.fraction = 0.1;
    MultiDimOrganization org = bench::CheckedValue(
        BuildMultiDimOrganization(bench.lake, index, mopts),
        "multidim build");
    rows.push_back(
        EvaluateMulti("2-dim approx", org, config, total_tables));
  }

  PrintRule();
  std::printf("%-18s %10s %10s   %s\n", "organization", "mean succ",
              "build(s)", "sorted per-table success quantiles");
  PrintRule();
  for (const Row& row : rows) {
    std::printf("%-18s %10.3f %10.1f   %s\n", row.name.c_str(), row.mean,
                row.seconds, SeriesSummary(row.series).c_str());
  }
  PrintRule();
  double baseline = rows[0].mean;
  std::printf("paper shape check: clustering/baseline = %.1fx "
              "(paper ~10x), 2-dim/baseline = %.1fx (paper ~40x 2-dim "
              "mean 0.426 vs 0.016)\n",
              baseline > 0 ? rows[1].mean / baseline : 0.0,
              baseline > 0 ? rows[3].mean / baseline : 0.0);
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "fig2a_tagcloud",
                                   lakeorg::Main);
}
