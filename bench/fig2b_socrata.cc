// Experiment E2 — Figure 2(b): success probability of the ten-dimensional
// organization on the (synthetic) Socrata lake versus the flat tag
// baseline, i.e. the current navigation mode of open data portals.
//
// Paper reference points (full crawl): mean success 0.38 for the 10-dim
// organization vs 0.12 for the tag-only baseline. The paper's full build
// took 12 hours; LAKEORG_SCALE (default 0.12) scales tables/tags, and 1.0
// approximates the published lake size.
#include <cstdio>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/socrata.h"
#include "common/timer.h"
#include "core/multidim.h"
#include "core/org_builders.h"
#include "lake/lake_stats.h"

namespace lakeorg {
namespace {

using bench::PrintHeader;
using bench::PrintRule;
using bench::Scaled;
using bench::SeriesSummary;

}  // namespace

int Main(const bench::BenchOptions& bopts) {
  double scale = bopts.Scale(0.12, 0.01);
  SocrataOptions opts;
  opts.num_tables = Scaled(7553, scale, 80);
  opts.num_tags = Scaled(11083, scale, 60);
  opts.seed = 777;

  PrintHeader("Figure 2(b) — success probability on the Socrata-like lake"
              "  (scale " + std::to_string(scale) + ")");

  WallTimer gen_timer;
  SocrataLake soc = GenerateSocrataLake(opts);
  std::printf("%s", FormatLakeStats(ComputeLakeStats(soc.lake)).c_str());
  std::printf("embedding coverage: %.1f%% (paper ~70%%), generated in "
              "%.1f s\n",
              100.0 * soc.store->coverage().Coverage(),
              gen_timer.ElapsedSeconds());
  TagIndex index = TagIndex::Build(soc.lake);

  TransitionConfig config;
  config.gamma = 20.0;

  // Flat tag baseline over all tags (one organization).
  WallTimer flat_timer;
  auto full_ctx = OrgContext::BuildFull(soc.lake, index);
  Organization flat = BuildFlatOrganization(full_ctx);
  double flat_build = flat_timer.ElapsedSeconds();
  OrgEvaluator eval(config);
  auto neighbors = OrgEvaluator::AttributeNeighbors(*full_ctx, 0.9);
  SuccessReport flat_report = eval.Success(flat, neighbors);

  // Ten-dimensional optimized organization with 10% representatives (the
  // configuration of section 4.3.4).
  MultiDimOptions mopts;
  mopts.dimensions = 10;
  mopts.search.transition = config;
  mopts.search.patience = 50;
  mopts.search.max_proposals = bopts.MaxProposals(400);
  mopts.search.use_representatives = true;
  mopts.search.representatives.fraction = 0.1;
  mopts.partition_seed = 99;
  WallTimer multi_timer;
  MultiDimOrganization multi = bench::CheckedValue(
      BuildMultiDimOrganization(soc.lake, index, mopts),
      "multidim build");
  double multi_build = multi_timer.ElapsedSeconds();
  MultiDimSuccess multi_success = EvaluateMultiDimSuccess(multi, 0.9,
                                                          config);

  size_t total_tables = full_ctx->num_tables();
  std::vector<double> flat_series = flat_report.SortedAscending();
  std::vector<double> multi_series =
      multi_success.SortedAscending(total_tables);
  double multi_mean = 0.0;
  for (double s : multi_series) multi_mean += s;
  multi_mean /= multi_series.empty() ? 1.0
                                     : static_cast<double>(
                                           multi_series.size());

  PrintRule();
  std::printf("%-22s %10s %10s   %s\n", "organization", "mean succ",
              "build(s)", "sorted per-table success quantiles");
  PrintRule();
  std::printf("%-22s %10.3f %10.1f   %s\n", "tag baseline (flat)",
              flat_report.mean, flat_build,
              SeriesSummary(flat_series).c_str());
  std::printf("%-22s %10.3f %10.1f   %s\n", "10-dim organization",
              multi_mean, multi_build,
              SeriesSummary(multi_series).c_str());
  PrintRule();
  std::printf("paper shape check: 10-dim %.3f vs baseline %.3f "
              "(paper: 0.38 vs 0.12, ~3.2x); measured ratio %.1fx\n",
              multi_mean, flat_report.mean,
              flat_report.mean > 0 ? multi_mean / flat_report.mean : 0.0);
  std::printf("wall clock: sequential dim total %.1f s, slowest dim "
              "%.1f s (dims optimize in parallel)\n",
              multi.TotalDimensionSeconds(), multi.MaxDimensionSeconds());
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "fig2b_socrata",
                                   lakeorg::Main);
}
