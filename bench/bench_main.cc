#include "bench_main.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/timer.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"

namespace lakeorg::bench {

double BenchOptions::Scale(double fallback, double smoke_scale) const {
  if (smoke) return smoke_scale;
  return EnvScale("LAKEORG_SCALE", fallback);
}

size_t BenchOptions::MaxProposals(size_t fallback, size_t smoke_value) const {
  if (smoke) return smoke_value;
  const char* value = std::getenv("LAKEORG_MAX_PROPOSALS");
  if (value == nullptr) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || parsed <= 0) return fallback;
  return static_cast<size_t>(parsed);
}

namespace {

void PrintUsage(const std::string& name) {
  std::printf(
      "usage: %s [--smoke] [--reps N] [--json[=PATH]] [--no-metrics] "
      "[--help]\n"
      "  --smoke        tiny fixture, finishes in seconds (CTest tier)\n"
      "  --reps N       repeat the workload N times; timings average\n"
      "  --json[=PATH]  write BENCH_%s.json (PATH overrides, '-' = stdout)\n"
      "  --no-metrics   leave telemetry disabled (overhead measurements)\n",
      name.c_str(), name.c_str());
}

}  // namespace

int BenchMain(int argc, char** argv, const std::string& name, BenchFn run) {
  BenchOptions opts;
  bool metrics = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--reps") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --reps needs a value\n", name.c_str());
        return 2;
      }
      long reps = std::strtol(argv[++i], nullptr, 10);
      if (reps <= 0) {
        std::fprintf(stderr, "%s: --reps must be positive\n", name.c_str());
        return 2;
      }
      opts.reps = static_cast<size_t>(reps);
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      opts.emit_json = true;
      if (arg.size() > 7) opts.json_path = arg.substr(7);
    } else if (arg == "--no-metrics") {
      metrics = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(name);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", name.c_str(),
                   arg.c_str());
      PrintUsage(name);
      return 2;
    }
  }

  // Telemetry rides along in the report; counters start from a clean slate
  // so reps accumulate from zero.
  obs::SetMetricsEnabled(metrics);
  obs::ResetAllMetrics();

  obs::BenchReport report = obs::MakeBenchReport(name, opts.smoke);
  int rc = 0;
  double total_seconds = 0.0;
  for (size_t rep = 0; rep < opts.reps; ++rep) {
    WallTimer timer;
    rc = run(opts);
    total_seconds += timer.ElapsedSeconds();
    if (rc != 0) break;
  }
  if (rc != 0) {
    std::fprintf(stderr, "%s: workload failed (exit %d)\n", name.c_str(), rc);
    return rc;
  }

  obs::BenchResultEntry entry;
  entry.name = name + "/workload";
  entry.iterations = opts.reps;
  entry.real_seconds = total_seconds / static_cast<double>(opts.reps);
  report.results.push_back(entry);
  report.metrics = obs::SnapshotMetrics().ToJson();

  std::printf("\n[%s] %zu rep(s), %.3f s/rep\n", name.c_str(), opts.reps,
              entry.real_seconds);

  if (opts.emit_json) {
    std::string path =
        opts.json_path.empty() ? "BENCH_" + name + ".json" : opts.json_path;
    Status status = obs::WriteBenchReportFile(report, path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   status.message().c_str());
      return 1;
    }
    if (path != "-") {
      std::printf("[%s] wrote %s\n", name.c_str(), path.c_str());
    }
  }
  return 0;
}

}  // namespace lakeorg::bench
