// Ablation A1 — the transition-model hyperparameters of Equation 1:
// a gamma sweep and the 1/|ch(s)| branching-factor penalty toggle, both
// evaluated on TagCloud flat vs optimized organizations. The paper fixes
// gamma but motivates the branching penalty ("the impact of high
// similarity ... diminishes when a state has a large branching factor");
// this bench quantifies both choices.
#include <cstdio>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "core/local_search.h"
#include "core/org_builders.h"

namespace lakeorg {

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(0.15, 0.02);
  TagCloudOptions opts;
  opts.num_tags = Scaled(365, scale, 12);
  opts.target_attributes = Scaled(2651, scale, 60);
  opts.min_values = 10;
  opts.max_values = Scaled(300, scale, 30);
  opts.seed = 2020;

  PrintHeader("Ablation A1 — gamma sweep and branching-factor penalty "
              "(TagCloud, scale " + std::to_string(scale) + ")");
  TagCloudBenchmark bench = GenerateTagCloud(opts);
  TagIndex index = TagIndex::Build(bench.lake);
  auto ctx = OrgContext::BuildFull(bench.lake, index);

  PrintRule();
  std::printf("%8s %10s | %12s %12s %12s\n", "gamma", "penalty",
              "flat eff", "cluster eff", "optimized");
  PrintRule();
  for (double gamma : {2.0, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    for (bool penalty : {true, false}) {
      TransitionConfig config;
      config.gamma = gamma;
      config.branching_penalty = penalty;
      OrgEvaluator eval(config);
      double flat_eff =
          eval.Effectiveness(BuildFlatOrganization(ctx));
      double cluster_eff =
          eval.Effectiveness(BuildClusteringOrganization(ctx));
      LocalSearchOptions search;
      search.transition = config;
      search.patience = 30;
      search.max_proposals = bopts.smoke ? 25 : 150;
      search.seed = 71;
      search.record_history = false;
      LocalSearchResult optimized = bench::CheckedValue(
          OptimizeOrganization(BuildClusteringOrganization(ctx), search),
          "optimize");
      std::printf("%8.1f %10s | %12.4f %12.4f %12.4f\n", gamma,
                  penalty ? "on" : "off", flat_eff, cluster_eff,
                  optimized.effectiveness);
    }
  }
  PrintRule();
  std::printf("observations to check: effectiveness rises with gamma "
              "(more decisive users); the penalty lowers the flat "
              "baseline most (huge root fanout), which is the regime the "
              "organization problem optimizes away\n");
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "ablation_gamma",
                                   lakeorg::Main);
}
