// S1 — the scalability study the paper lists as future work ("a detailed
// scalability study of our technique with respect to the size of data
// lakes"): sweep the TagCloud size and report, per size, construction
// time (initial clustering + optimization with 10% representatives),
// evaluation time, and the resulting effectiveness/success.
//
// LAKEORG_SCALE multiplies every size step (default 1.0 covers 30..360
// tags).
#include <sys/resource.h>

#include <cstdio>

#include <vector>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "common/timer.h"
#include "core/local_search.h"
#include "core/org_builders.h"
#include "obs/metrics.h"

namespace lakeorg {
namespace {

/// Process peak RSS in bytes (ru_maxrss is KiB on Linux). The SoA core's
/// memory headroom claim is gated on this column staying flat relative to
/// lake size growth (docs/PERFORMANCE.md).
double PeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
}

}  // namespace

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(1.0, 0.5);
  PrintHeader("Scalability — construction/evaluation time vs lake size "
              "(TagCloud, scale " + std::to_string(scale) + ")");
  PrintRule();
  std::printf("%7s %7s | %9s %9s %9s | %9s %9s %9s | %8s\n", "#tags",
              "#attrs", "clust(s)", "opt(s)", "eval(s)", "flat succ",
              "clus succ", "opt succ", "rss(MB)");
  PrintRule();

  // Smoke keeps only the two smallest lake sizes.
  std::vector<size_t> tag_steps = {30, 60, 120, 240, 360};
  if (bopts.smoke) tag_steps.resize(2);
  for (size_t base_tags : tag_steps) {
    TagCloudOptions opts;
    opts.num_tags = Scaled(base_tags, scale, 10);
    opts.target_attributes = Scaled(base_tags * 7, scale, 50);
    opts.min_values = 8;
    opts.max_values = 60;
    opts.seed = 4040;
    TagCloudBenchmark bench = GenerateTagCloud(opts);
    TagIndex index = TagIndex::Build(bench.lake);
    auto ctx = OrgContext::BuildFull(bench.lake, index);

    TransitionConfig config;
    config.gamma = 20.0;
    OrgEvaluator eval(config);

    WallTimer t;
    Organization clustering = BuildClusteringOrganization(ctx);
    double clustering_secs = t.ElapsedSeconds();

    LocalSearchOptions search;
    search.transition = config;
    search.patience = 50;
    search.max_proposals = bopts.MaxProposals(300);
    search.use_representatives = true;
    search.representatives.fraction = 0.1;
    search.seed = 11;
    search.record_history = false;
    t.Restart();
    LocalSearchResult optimized =
        OptimizeOrganization(clustering.Clone(), search).value();
    double opt_secs = t.ElapsedSeconds();

    t.Restart();
    auto neighbors = OrgEvaluator::AttributeNeighbors(*ctx, 0.9);
    double flat_succ =
        eval.Success(BuildFlatOrganization(ctx), neighbors).mean;
    double clus_succ = eval.Success(clustering, neighbors).mean;
    double opt_succ = eval.Success(optimized.org, neighbors).mean;
    double eval_secs = t.ElapsedSeconds();

    double peak_rss = PeakRssBytes();
    obs::GetGauge("core.peak_rss_bytes").Set(peak_rss);
    std::printf(
        "%7zu %7zu | %9.2f %9.2f %9.2f | %9.4f %9.4f %9.4f | %8.1f\n",
        ctx->num_tags(), ctx->num_attrs(), clustering_secs, opt_secs,
        eval_secs, flat_succ, clus_succ, opt_succ,
        peak_rss / (1024.0 * 1024.0));
  }
  PrintRule();
  std::printf("expected shape: construction scales near-quadratically in "
              "tags (agglomerative) and optimization cost per proposal "
              "grows with the affected subgraph; organizations' advantage "
              "over the flat baseline widens with lake size\n");
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "scalability",
                                   lakeorg::Main);
}
