// S1 — the scalability study the paper lists as future work ("a detailed
// scalability study of our technique with respect to the size of data
// lakes"). Two parts:
//
// Part A sweeps the TagCloud size and reports, per size, construction
// time (initial clustering + optimization with 10% representatives),
// evaluation time, effectiveness/success, and memory: the per-step DELTA
// of current RSS (/proc/self/statm) next to the process-lifetime peak
// (ru_maxrss). The peak is a high-water mark that can only grow across
// steps, so the flat-memory claim of docs/PERFORMANCE.md is about the
// per-step deltas, not the peak column.
//
// Part B is the Socrata-scale sharded sweep (ROADMAP "Socrata-scale
// optimization"): for each multiplier in LAKEORG_SCALABILITY_MULTIPLIERS
// (default "1,10"; "1,10,50,100" reaches 100k tables) it generates a
// Socrata-like lake of multiplier x 1,000 tables and builds ONE stitched
// organization with BuildShardedOrganization, reporting generation /
// optimize / stitch wall clock, shard count, per-shard optimizer
// effectiveness, a sampled full-organization discovery probe, and RSS.
//
// Gates (skipped under --smoke):
//   - multiplier 1 also runs the unsharded optimizer and requires the
//     sharded organization's sampled mean discovery to stay within
//     LAKEORG_SHARD_EPSILON (default 0.05) of the unsharded one;
//   - the largest multiplier >= 100 must finish generate+build within
//     LAKEORG_SCALABILITY_CEILING_S wall-clock seconds (default 1200).
//
// LAKEORG_SCALE multiplies Part A's size steps (default 1.0 covers
// 30..360 tags). LAKEORG_SHARD_BUDGET_MB (default 4096) bounds the
// estimated optimizer bytes in flight across concurrent shards.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/socrata.h"
#include "benchgen/tagcloud.h"
#include "common/timer.h"
#include "core/local_search.h"
#include "core/org_builders.h"
#include "core/sharded_search.h"
#include "obs/metrics.h"

namespace lakeorg {
namespace {

using bench::CheckedValue;
using bench::CurrentRssBytes;
using bench::PeakRssBytes;

constexpr double kMiB = 1024.0 * 1024.0;

/// Comma-separated multiplier list from the environment.
std::vector<double> ParseMultipliers(const char* name,
                                     const std::string& fallback) {
  const char* env = std::getenv(name);
  std::string spec = env != nullptr ? env : fallback;
  std::vector<double> out;
  const char* p = spec.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    double v = std::strtod(p, &end);
    if (end == p) break;
    if (v > 0.0) out.push_back(v);
    p = *end == ',' ? end + 1 : end;
  }
  if (out.empty()) out.push_back(1.0);
  return out;
}

/// "1x", "10x", "0.05x" — stable gauge/report labels per multiplier.
std::string MultLabel(double m) {
  char buf[32];
  if (m == std::floor(m)) {
    std::snprintf(buf, sizeof(buf), "%.0fx", m);
  } else {
    std::snprintf(buf, sizeof(buf), "%gx", m);
  }
  return buf;
}

/// Mean discovery probability over a deterministic evenly-strided sample
/// of attributes — the effectiveness probe at scales where the full
/// O(attrs) DP sweep is infeasible. Both orgs in the epsilon gate share
/// the full-lake context, so the sample indexes the same attributes.
double SampledMeanDiscovery(const OrgEvaluator& eval,
                            const Organization& org, size_t sample) {
  size_t n = org.ctx().num_attrs();
  if (n == 0) return 0.0;
  size_t k = std::min(sample, n);
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    uint32_t attr = static_cast<uint32_t>(i * n / k);
    sum += eval.AttributeDiscovery(org, attr);
  }
  return sum / static_cast<double>(k);
}

/// Per-shard search options of the Socrata sweep. The representative cap
/// bounds per-proposal cost on skewed shards: Zipf tag popularity
/// concentrates attributes (the largest 10x shard holds ~12.8k of 20.4k
/// attr-memberships), and 10% of a 100k-attr shard would mean 10k query
/// evaluations per proposal. Paper-scale shards sit well under the cap,
/// so it only bites where the uncapped fraction is intractable anyway.
LocalSearchOptions ShardSearch(const bench::BenchOptions& bopts) {
  LocalSearchOptions search;
  search.patience = 40;
  search.max_proposals = bopts.MaxProposals(120);
  search.use_representatives = true;
  search.representatives.fraction = 0.1;
  search.representatives.max_queries = 400;
  search.seed = 11;
  search.record_history = false;
  return search;
}

}  // namespace

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  std::vector<std::string> failures;

  // ---------------------------------------------------------------- Part A
  double scale = bopts.Scale(1.0, 0.5);
  PrintHeader("Scalability A — construction/evaluation time vs lake size "
              "(TagCloud, scale " + std::to_string(scale) + ")");
  PrintRule();
  std::printf("%7s %7s | %9s %9s %9s | %9s %9s %9s | %9s %8s\n", "#tags",
              "#attrs", "clust(s)", "opt(s)", "eval(s)", "flat succ",
              "clus succ", "opt succ", "drss(MB)", "rss(MB)");
  PrintRule();

  // Smoke keeps only the two smallest lake sizes.
  std::vector<size_t> tag_steps = {30, 60, 120, 240, 360};
  if (bopts.smoke) tag_steps.resize(2);
  for (size_t base_tags : tag_steps) {
    double rss_before = CurrentRssBytes();
    TagCloudOptions opts;
    opts.num_tags = Scaled(base_tags, scale, 10);
    opts.target_attributes = Scaled(base_tags * 7, scale, 50);
    opts.min_values = 8;
    opts.max_values = 60;
    opts.seed = 4040;
    TagCloudBenchmark bench = GenerateTagCloud(opts);
    TagIndex index = TagIndex::Build(bench.lake);
    auto ctx = OrgContext::BuildFull(bench.lake, index);

    TransitionConfig config;
    config.gamma = 20.0;
    OrgEvaluator eval(config);

    WallTimer t;
    Organization clustering = BuildClusteringOrganization(ctx);
    double clustering_secs = t.ElapsedSeconds();

    LocalSearchOptions search;
    search.transition = config;
    search.patience = 50;
    search.max_proposals = bopts.MaxProposals(300);
    search.use_representatives = true;
    search.representatives.fraction = 0.1;
    search.seed = 11;
    search.record_history = false;
    t.Restart();
    LocalSearchResult optimized = CheckedValue(
        OptimizeOrganization(clustering.Clone(), search), "optimize");
    double opt_secs = t.ElapsedSeconds();

    t.Restart();
    auto neighbors = OrgEvaluator::AttributeNeighbors(*ctx, 0.9);
    double flat_succ =
        eval.Success(BuildFlatOrganization(ctx), neighbors).mean;
    double clus_succ = eval.Success(clustering, neighbors).mean;
    double opt_succ = eval.Success(optimized.org, neighbors).mean;
    double eval_secs = t.ElapsedSeconds();

    // Per-step working set = delta of CURRENT rss across the step;
    // ru_maxrss is the process high-water mark and never shrinks, so it
    // cannot measure a per-size working set (the bug this column fixes).
    double rss_now = CurrentRssBytes();
    double peak_rss = PeakRssBytes();
    obs::GetGauge("core.current_rss_bytes").Set(rss_now);
    obs::GetGauge("core.peak_rss_bytes").Set(peak_rss);
    std::printf(
        "%7zu %7zu | %9.2f %9.2f %9.2f | %9.4f %9.4f %9.4f | %9.1f "
        "%8.1f\n",
        ctx->num_tags(), ctx->num_attrs(), clustering_secs, opt_secs,
        eval_secs, flat_succ, clus_succ, opt_succ,
        (rss_now - rss_before) / kMiB, rss_now / kMiB);
  }
  PrintRule();
  std::printf("expected shape: construction scales near-quadratically in "
              "tags (agglomerative) and optimization cost per proposal "
              "grows with the affected subgraph; organizations' advantage "
              "over the flat baseline widens with lake size. drss is the "
              "per-step growth of current RSS; peak RSS is process-wide "
              "(%.1f MB so far)\n",
              PeakRssBytes() / kMiB);

  // ---------------------------------------------------------------- Part B
  std::vector<double> multipliers =
      bopts.smoke ? std::vector<double>{0.05}
                  : ParseMultipliers("LAKEORG_SCALABILITY_MULTIPLIERS",
                                     "1,10");
  double epsilon = bench::EnvScale("LAKEORG_SHARD_EPSILON", 0.05);
  // Measured on this 1-CPU box: 100x generates in ~6 s and builds in
  // ~970 s (140 serial shard searches; multi-core machines overlap
  // them). 1200 leaves ~20% headroom while still catching superlinear
  // regressions — the O(n*k^2) k-medoids seeding this PR fixed would
  // overshoot by hours.
  double ceiling_s =
      bench::EnvScale("LAKEORG_SCALABILITY_CEILING_S", 1200.0);
  double budget_mb = bench::EnvScale("LAKEORG_SHARD_BUDGET_MB", 4096.0);
  constexpr size_t kDiscoverySample = 1500;

  PrintHeader("Scalability B — sharded Socrata sweep (multiplier x 1,000 "
              "tables, one stitched organization per lake)");
  PrintRule();
  std::printf("%6s %7s %7s %7s | %6s | %7s %8s %8s | %7s %7s | %9s %8s\n",
              "mult", "#tables", "#tags", "#attrs", "shards", "gen(s)",
              "opt(s)", "stitch(s)", "shardEf", "sampled", "drss(MB)",
              "rss(MB)");
  PrintRule();

  TransitionConfig config;
  OrgEvaluator eval(config);
  for (double m : multipliers) {
    double rss_before = CurrentRssBytes();
    WallTimer gen_t;
    SocrataLake sl = GenerateSocrataLake(ScalabilitySocrataOptions(m));
    TagIndex index = TagIndex::Build(sl.lake);
    double gen_s = gen_t.ElapsedSeconds();

    ShardedSearchOptions shopts;
    shopts.search = ShardSearch(bopts);
    shopts.memory_budget_bytes =
        static_cast<size_t>(budget_mb * kMiB);
    WallTimer build_t;
    ShardedSearchResult res = CheckedValue(
        BuildShardedOrganization(sl.lake, index, shopts), "sharded build");
    double build_s = build_t.ElapsedSeconds();

    double shard_eff = res.MeanShardEffectiveness();
    double sampled =
        SampledMeanDiscovery(eval, res.org, kDiscoverySample);
    double rss_now = CurrentRssBytes();
    const OrgContext& ctx = res.org.ctx();

    std::string label = "scalability." + MultLabel(m);
    obs::GetGauge(label + ".gen_seconds").Set(gen_s);
    obs::GetGauge(label + ".optimize_seconds").Set(res.optimize_seconds);
    obs::GetGauge(label + ".stitch_seconds").Set(res.stitch_seconds);
    obs::GetGauge(label + ".total_seconds").Set(gen_s + build_s);
    obs::GetGauge(label + ".shards")
        .Set(static_cast<double>(res.shards.size()));
    obs::GetGauge(label + ".mean_shard_effectiveness").Set(shard_eff);
    obs::GetGauge(label + ".sampled_discovery").Set(sampled);
    obs::GetGauge(label + ".rss_delta_bytes").Set(rss_now - rss_before);
    obs::GetGauge(label + ".peak_inflight_bytes")
        .Set(static_cast<double>(res.peak_inflight_bytes));

    std::printf(
        "%6s %7zu %7zu %7zu | %6zu | %7.1f %8.1f %8.2f | %7.4f %7.4f | "
        "%9.1f %8.1f\n",
        MultLabel(m).c_str(), ctx.num_tables(), ctx.num_tags(),
        ctx.num_attrs(), res.shards.size(), gen_s, res.optimize_seconds,
        res.stitch_seconds, shard_eff, sampled,
        (rss_now - rss_before) / kMiB, rss_now / kMiB);

    // Slowest shards: where does the optimize time actually go? (Shard
    // sizes are skewed — k-medoids balances topic coherence, not load.)
    std::vector<size_t> by_time(res.shards.size());
    for (size_t i = 0; i < by_time.size(); ++i) by_time[i] = i;
    std::sort(by_time.begin(), by_time.end(), [&res](size_t a, size_t b) {
      return res.shards[a].seconds > res.shards[b].seconds;
    });
    for (size_t i = 0; i < std::min<size_t>(3, by_time.size()); ++i) {
      const ShardSearchInfo& s = res.shards[by_time[i]];
      std::printf(
          "%6s   slow shard #%zu: %zu tags, %zu attrs, %zu queries, "
          "%zu proposals, %.1fs\n",
          "", by_time[i], s.num_tags, s.num_attrs, s.num_queries,
          s.proposals, s.seconds);
    }

    // Epsilon gate: at the paper-scale multiplier the stitched
    // organization must hold its own against the monolithic optimizer on
    // the SAME deterministic attribute sample.
    if (!bopts.smoke && m == 1.0) {
      auto full_ctx = OrgContext::BuildFull(sl.lake, index);
      LocalSearchResult unsharded = CheckedValue(
          OptimizeOrganization(BuildClusteringOrganization(full_ctx),
                               ShardSearch(bopts)),
          "unsharded optimize");
      double unsharded_sampled =
          SampledMeanDiscovery(eval, unsharded.org, kDiscoverySample);
      double gap = unsharded_sampled - sampled;
      obs::GetGauge(label + ".unsharded_sampled_discovery")
          .Set(unsharded_sampled);
      obs::GetGauge(label + ".sharded_gap").Set(gap);
      std::printf("%6s   epsilon gate: sharded %.4f vs unsharded %.4f "
                  "(gap %+.4f, epsilon %.3f)\n",
                  "", sampled, unsharded_sampled, gap, epsilon);
      if (gap > epsilon) {
        char msg[160];
        std::snprintf(msg, sizeof(msg),
                      "sharded effectiveness gap %.4f exceeds epsilon "
                      "%.3f at multiplier 1",
                      gap, epsilon);
        failures.push_back(msg);
      }
    }

    // Ceiling gate: paper-scale x100 must build in minutes on this box.
    if (!bopts.smoke && m >= 100.0 && gen_s + build_s > ceiling_s) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "%s generate+build took %.0fs, over the %.0fs ceiling",
                    MultLabel(m).c_str(), gen_s + build_s, ceiling_s);
      failures.push_back(msg);
    }
  }
  PrintRule();
  std::printf("peak RSS %.1f MB; shardEf is the query-weighted mean of "
              "per-shard optimizer effectiveness, sampled is the mean "
              "discovery probability over %zu evenly-strided attributes "
              "of the stitched organization\n",
              PeakRssBytes() / kMiB, kDiscoverySample);

  for (const std::string& f : failures) {
    std::fprintf(stderr, "FAIL scalability: %s\n", f.c_str());
  }
  return failures.empty() ? 0 : 1;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "scalability",
                                   lakeorg::Main);
}
