// Ablation A2 — the operation mix of section 3.3: local search with
// ADD_PARENT only, DELETE_PARENT only, and both, from the same clustering
// initialization. Shows that both operations contribute: DELETE_PARENT
// flattens the deep dendrogram (shorter discovery paths), ADD_PARENT adds
// discovery paths for poorly reachable states.
#include <cstdio>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "core/local_search.h"
#include "core/org_builders.h"

namespace lakeorg {

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(0.15, 0.02);
  TagCloudOptions opts;
  opts.num_tags = Scaled(365, scale, 12);
  opts.target_attributes = Scaled(2651, scale, 60);
  opts.min_values = 10;
  opts.max_values = Scaled(300, scale, 30);
  opts.seed = 2020;

  PrintHeader("Ablation A2 — operation mix (TagCloud, scale " +
              std::to_string(scale) + ")");
  TagCloudBenchmark bench = GenerateTagCloud(opts);
  TagIndex index = TagIndex::Build(bench.lake);
  auto ctx = OrgContext::BuildFull(bench.lake, index);

  struct Variant {
    const char* name;
    bool add;
    bool del;
  };
  const Variant variants[] = {
      {"add-only", true, false},
      {"delete-only", false, true},
      {"both (paper)", true, true},
  };

  PrintRule();
  std::printf("%-14s %10s %10s %9s %9s %9s %9s\n", "variant", "init eff",
              "final eff", "props", "accepted", "states", "max lvl");
  PrintRule();
  for (const Variant& variant : variants) {
    LocalSearchOptions search;
    search.transition.gamma = 20.0;
    search.patience = 40;
    search.max_proposals = bopts.smoke ? 25 : 300;
    search.seed = 71;
    search.enable_add_parent = variant.add;
    search.enable_delete_parent = variant.del;
    search.record_history = false;
    LocalSearchResult result = bench::CheckedValue(
        OptimizeOrganization(BuildClusteringOrganization(ctx), search),
        "optimize");
    std::printf("%-14s %10.4f %10.4f %9zu %9zu %9zu %9d\n", variant.name,
                result.initial_effectiveness, result.effectiveness,
                result.proposals, result.accepted,
                result.org.NumAliveStates(), result.org.MaxLevel());
  }
  PrintRule();
  std::printf("expected shape: delete-only flattens (fewer states, lower "
              "max level); add-only deepens reach paths; the combined "
              "search matches or beats both\n");
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "ablation_ops",
                                   lakeorg::Main);
}
