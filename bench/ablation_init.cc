// Ablation A3 — initialization choice (section 3.3 notes "the initial
// organization may be any organization that satisfies the inclusion
// property", and suggests hierarchical clustering): start local search
// from the flat tag organization vs from the agglomerative clustering and
// compare where each converges. The flat start cannot grow new interior
// states (the operation vocabulary only grafts/removes existing states),
// which is exactly why the paper initializes with a hierarchy.
#include <cstdio>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "benchgen/tagcloud.h"
#include "core/local_search.h"
#include "core/org_builders.h"
#include "core/org_stats.h"

namespace lakeorg {

int Main(const bench::BenchOptions& bopts) {
  using bench::PrintHeader;
  using bench::PrintRule;
  using bench::Scaled;

  double scale = bopts.Scale(0.15, 0.02);
  TagCloudOptions opts;
  opts.num_tags = Scaled(365, scale, 12);
  opts.target_attributes = Scaled(2651, scale, 60);
  opts.min_values = 10;
  opts.max_values = Scaled(300, scale, 30);
  opts.seed = 2020;

  PrintHeader("Ablation A3 — initialization (TagCloud, scale " +
              std::to_string(scale) + ")");
  TagCloudBenchmark bench = GenerateTagCloud(opts);
  TagIndex index = TagIndex::Build(bench.lake);
  auto ctx = OrgContext::BuildFull(bench.lake, index);

  LocalSearchOptions search;
  search.transition.gamma = 20.0;
  search.patience = 60;
  search.max_proposals = bopts.MaxProposals(400);
  search.seed = 71;
  search.record_history = false;

  PrintRule();
  std::printf("%-22s %10s %10s %8s | %s\n", "initialization", "init eff",
              "final eff", "props", "final shape");
  PrintRule();
  struct Variant {
    const char* name;
    Organization org;
  };
  Variant variants[] = {
      {"flat (tag baseline)", BuildFlatOrganization(ctx)},
      {"agglomerative", BuildClusteringOrganization(ctx)},
  };
  for (Variant& variant : variants) {
    LocalSearchResult result = bench::CheckedValue(
        OptimizeOrganization(std::move(variant.org), search), "optimize");
    result.org.RecomputeLevels();
    std::printf("%-22s %10.4f %10.4f %8zu | %s\n", variant.name,
                result.initial_effectiveness, result.effectiveness,
                result.proposals,
                FormatOrgStats(ComputeOrgStats(result.org)).c_str());
  }
  PrintRule();
  std::printf("expected shape: the clustering start dominates — the flat "
              "start has no interior states to restructure with, so the "
              "operations can only add sideways tag-state parents\n");
  return 0;
}

}  // namespace lakeorg

int main(int argc, char** argv) {
  return lakeorg::bench::BenchMain(argc, argv, "ablation_init",
                                   lakeorg::Main);
}
