// Open-data-portal scenario: organize a Socrata-like lake (the workload
// the paper's introduction motivates) into a multi-dimensional navigation
// structure, print per-dimension statistics (Table 1 style) and show a
// labeled navigation trace through the largest dimension.
//
// Run:  ./examples/open_data_portal            (small default lake)
//       LAKEORG_SCALE=0.5 ./examples/open_data_portal
#include <cstdio>
#include <cstdlib>

#include "benchgen/socrata.h"
#include "core/multidim.h"
#include "core/navigation.h"
#include "lake/lake_stats.h"

using namespace lakeorg;

int main() {
  double scale = 0.05;
  if (const char* env = std::getenv("LAKEORG_SCALE")) {
    scale = std::atof(env) > 0 ? std::atof(env) : scale;
  }
  SocrataOptions opts;
  opts.num_tables = static_cast<size_t>(7553 * scale) + 50;
  opts.num_tags = static_cast<size_t>(11083 * scale) + 40;
  opts.seed = 2020;

  std::printf("generating a Socrata-like open data lake...\n");
  SocrataLake soc = GenerateSocrataLake(opts);
  std::printf("%s\n", FormatLakeStats(ComputeLakeStats(soc.lake)).c_str());

  TagIndex index = TagIndex::Build(soc.lake);
  MultiDimOptions mopts;
  mopts.dimensions = 5;
  mopts.search.transition.gamma = 20.0;
  mopts.search.patience = 30;
  mopts.search.max_proposals = 200;
  mopts.search.use_representatives = true;
  mopts.search.representatives.fraction = 0.1;
  std::printf("building a %zu-dimensional organization...\n",
              mopts.dimensions);
  MultiDimOrganization multi =
      BuildMultiDimOrganization(soc.lake, index, mopts).value();

  std::printf("\nper-dimension statistics:\n");
  std::printf("%4s %7s %7s %8s %7s %7s\n", "dim", "#tags", "#attrs",
              "#tables", "#reps", "eff");
  size_t largest = 0;
  for (size_t d = 0; d < multi.num_dimensions(); ++d) {
    const DimensionInfo& info = multi.info()[d];
    std::printf("%4zu %7zu %7zu %8zu %7zu %7.3f\n", d, info.num_tags,
                info.num_attrs, info.num_tables, info.num_reps,
                info.effectiveness);
    if (info.num_attrs > multi.info()[largest].num_attrs) largest = d;
  }

  // A labeled walk through the largest dimension, always taking the
  // first choice, showing what a portal user would see.
  const Organization& dim = multi.dimension(largest);
  std::printf("\nsample navigation trace (dimension %zu):\n", largest);
  NavigationSession session(&dim);
  int depth = 0;
  while (!session.AtLeaf() && depth < 12) {
    std::vector<NavChoice> choices = session.Choices();
    std::printf("  [%d] \"%s\" — %zu choices:", depth,
                StateLabel(dim, session.current()).c_str(),
                choices.size());
    for (size_t i = 0; i < choices.size() && i < 4; ++i) {
      std::printf("  (%zu) %s", i, choices[i].label.c_str());
    }
    if (choices.size() > 4) std::printf("  ...");
    std::printf("\n");
    if (!session.Choose(0).ok()) break;
    ++depth;
  }
  if (session.AtLeaf()) {
    std::printf("  reached dataset column \"%s\"\n",
                StateLabel(dim, session.current()).c_str());
  }
  return 0;
}
