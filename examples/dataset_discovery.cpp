// Dataset-discovery scenario: the paper's user-study setting in miniature.
// One lake, one information need, two modalities — keyword search (BM25 +
// query expansion) and navigation over an optimized organization — run by
// simulated users; prints what each found and how much the result sets
// diverge (the paper's disjointness metric).
//
// Run:  ./examples/dataset_discovery
#include <cstdio>

#include "benchgen/socrata.h"
#include "core/multidim.h"
#include "study/agents.h"

using namespace lakeorg;

int main() {
  SocrataOptions opts;
  opts.num_tables = 250;
  opts.num_tags = 150;
  opts.seed = 33;
  SocrataLake soc = GenerateSocrataLake(opts);
  TagIndex index = TagIndex::Build(soc.lake);
  std::printf("lake: %zu tables, %zu tags\n", soc.lake.num_tables(),
              soc.lake.num_tags());

  // The information need: the most heavily used tag's topic.
  TagId best = index.NonEmptyTags()[0];
  for (TagId t : index.NonEmptyTags()) {
    if (index.AttributesOfTag(t).size() >
        index.AttributesOfTag(best).size()) {
      best = t;
    }
  }
  Scenario scenario{"find datasets about " + soc.lake.tag_name(best),
                    index.TagTopicVector(best)};
  std::printf("scenario: \"%s\"\n\n", scenario.description.c_str());

  // Systems: a 3-dim organization and a BM25 engine over the same lake.
  MultiDimOptions mopts;
  mopts.dimensions = 3;
  mopts.search.patience = 25;
  mopts.search.max_proposals = 150;
  mopts.search.use_representatives = true;
  MultiDimOrganization org =
      BuildMultiDimOrganization(soc.lake, index, mopts).value();
  TableSearchEngine engine(&soc.lake, soc.store);

  AgentOptions agent;
  agent.action_budget = 250;
  agent.accept_threshold = 0.35;

  Rng nav_rng(7);
  AgentResult nav =
      RunNavigationAgent(org, soc.lake, scenario, agent, &nav_rng);
  Rng search_rng(7);
  AgentResult search = RunSearchAgent(engine, soc.lake, scenario, {},
                                      agent, &search_rng);

  auto print_found = [&soc](const char* label, const AgentResult& r) {
    std::printf("%s found %zu tables in %zu actions (%zu probes):\n",
                label, r.found.size(), r.actions_used, r.probes);
    for (size_t i = 0; i < r.found.size() && i < 8; ++i) {
      const Table& t = soc.lake.table(r.found[i]);
      std::printf("    %-22s %s\n", t.name.c_str(), t.title.c_str());
    }
    if (r.found.size() > 8) std::printf("    ...\n");
  };
  print_found("navigation", nav);
  print_found("keyword search", search);

  std::printf("\nresult-set disjointness (1 = no overlap): %.3f\n",
              Disjointness(nav.found, search.found));
  std::printf("the paper found ~5%% overlap between modalities on the "
              "same need — navigation surfaces tables search misses, and "
              "vice versa.\n");
  return 0;
}
