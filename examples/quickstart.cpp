// Quickstart: the smallest end-to-end use of lakeorg's public API.
//
//  1. Assemble a DataLake (tables, attributes, tags).
//  2. Compute topic vectors with an embedding model.
//  3. Build the flat baseline and an optimized organization.
//  4. Compare their effectiveness and walk the optimized organization.
//
// Run:  ./examples/quickstart
#include <cstdio>

#include "core/local_search.h"
#include "core/navigation.h"
#include "core/org_builders.h"
#include "embedding/hashed_embedding.h"
#include "lake/tag_index.h"

using namespace lakeorg;

int main() {
  // 1. A toy open-data lake: tables with values, tagged by the curator.
  DataLake lake;
  auto add = [&lake](const std::string& table_name,
                     const std::vector<std::string>& tags,
                     const std::vector<std::pair<std::string,
                                                 std::vector<std::string>>>&
                         columns) {
    TableId t = lake.AddTable(table_name);
    for (const std::string& tag : tags) lake.Tag(t, tag);
    for (const auto& [name, values] : columns) {
      lake.AddAttribute(t, name, values);
    }
  };
  add("fish_inspections", {"food-inspection", "fisheries"},
      {{"species", {"salmon", "trout", "halibut", "herring"}},
       {"result", {"passed", "failed", "pending"}}});
  add("grain_exports", {"grains", "economy"},
      {{"crop", {"wheat", "barley", "canola", "oats"}},
       {"destination", {"japan", "mexico", "germany"}}});
  add("immigration_stats", {"immigration"},
      {{"category", {"students", "workers", "refugees"}}});
  add("seafood_prices", {"fisheries", "economy"},
      {{"product", {"salmon", "lobster", "shrimp"}},
       {"market", {"boston", "halifax", "seattle"}}});

  // 2. Topic vectors via the fastText-style hashed embedder.
  auto store =
      std::make_shared<EmbeddingStore>(std::make_shared<HashedEmbedding>());
  if (Status st = lake.ComputeTopicVectors(*store); !st.ok()) {
    std::fprintf(stderr, "topic vectors failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  // 3. Organizations: the flat tag baseline vs local-search optimized.
  TagIndex index = TagIndex::Build(lake);
  auto ctx = OrgContext::BuildFull(lake, index);
  Organization flat = BuildFlatOrganization(ctx);

  LocalSearchOptions options;
  options.transition.gamma = 20.0;
  options.patience = 25;
  options.max_proposals = 200;
  options.num_threads = 0;  // Hardware concurrency; 1 forces serial.
  LocalSearchResult optimized =
      OptimizeOrganization(BuildClusteringOrganization(ctx), options).value();

  OrgEvaluator eval(options.transition);
  std::printf("organization effectiveness (expected table-discovery "
              "probability):\n");
  std::printf("  flat tag baseline : %.3f\n", eval.Effectiveness(flat));
  std::printf("  optimized         : %.3f\n", optimized.effectiveness);

  // 4. Navigate: greedy walk toward "food inspection".
  std::printf("\nnavigating for topic \"food inspection\":\n");
  Vec intent = store->DomainTopicVector({"food", "inspection"});
  NavigationSession session(&optimized.org);
  while (!session.AtLeaf()) {
    std::vector<NavChoice> choices = session.Choices();
    size_t best = 0;
    double best_sim = -2.0;
    for (size_t i = 0; i < choices.size(); ++i) {
      double sim =
          Cosine(optimized.org.state(choices[i].state).topic, intent);
      if (sim > best_sim) {
        best_sim = sim;
        best = i;
      }
    }
    std::printf("  at \"%s\": %zu choices -> \"%s\" (cosine %.2f)\n",
                StateLabel(optimized.org, session.current()).c_str(),
                choices.size(), choices[best].label.c_str(), best_sim);
    if (Status st = session.Choose(best); !st.ok()) break;
  }
  uint32_t attr = session.CurrentAttr();
  AttributeId lake_attr = ctx->lake_attr(attr);
  const Attribute& found = lake.attribute(lake_attr);
  std::printf("  discovered table \"%s\" via attribute \"%s\" in %zu "
              "actions\n",
              lake.table(found.table).name.c_str(), found.name.c_str(),
              session.actions());
  return 0;
}
