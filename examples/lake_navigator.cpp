// lake_navigator: an interactive command-line data lake navigator — the
// closest thing to the paper's user-study prototype. Ingests CSV files
// (or generates a demo lake when no files are given), builds an optimized
// organization, then serves an interactive session:
//
//   ./examples/lake_navigator [file.csv ...]
//     <n>   descend into choice n
//     b     backtrack
//     s     show the discovery path so far
//     q     quit
//
// The session records every transition into a BehaviorLog and prints the
// adaptive (Equation 1 + click counts) probabilities next to each choice.
// On exit the organization is saved to /tmp/lakeorg_navigator.org and
// reloaded on the next run when the lake is unchanged.
#include <cstdio>
#include <iostream>
#include <string>

#include "benchgen/socrata.h"
#include "core/behavior_log.h"
#include "core/local_search.h"
#include "core/navigation.h"
#include "core/org_builders.h"
#include "common/string_util.h"
#include "core/serialization.h"
#include "embedding/hashed_embedding.h"
#include "lake/csv_loader.h"
#include "lake/lake_stats.h"

using namespace lakeorg;

int main(int argc, char** argv) {
  DataLake own_lake;
  std::shared_ptr<EmbeddingStore> store;
  const DataLake* lake = nullptr;
  SocrataLake generated;  // Keeps the demo lake alive when used.

  if (argc > 1) {
    // Ingest the given CSV files; each is tagged with its own name's
    // tokens so the flat baseline has something to group by.
    store = std::make_shared<EmbeddingStore>(
        std::make_shared<HashedEmbedding>());
    for (int i = 1; i < argc; ++i) {
      Result<TableId> table = LoadCsvFile(&own_lake, argv[i], {});
      if (!table.ok()) {
        std::fprintf(stderr, "skipping %s: %s\n", argv[i],
                     table.status().ToString().c_str());
        continue;
      }
      // Tag by filename tokens.
      const std::string& name = own_lake.table(table.value()).name;
      for (const std::string& token : Split(name, "_-")) {
        if (token.size() >= 3) own_lake.Tag(table.value(), token);
      }
    }
    if (own_lake.num_tables() == 0) {
      std::fprintf(stderr, "no loadable tables\n");
      return 1;
    }
    if (Status st = own_lake.ComputeTopicVectors(*store); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    lake = &own_lake;
  } else {
    std::printf("no CSV files given; generating a demo lake\n");
    SocrataOptions opts;
    opts.num_tables = 150;
    opts.num_tags = 80;
    opts.seed = 99;
    generated = GenerateSocrataLake(opts);
    store = generated.store;
    lake = &generated.lake;
  }
  std::printf("%s\n", FormatLakeStats(ComputeLakeStats(*lake)).c_str());

  TagIndex index = TagIndex::Build(*lake);
  if (index.NonEmptyTags().empty()) {
    std::fprintf(stderr, "no organizable (tagged, embeddable, text) "
                         "attributes in this lake\n");
    return 1;
  }
  auto ctx = OrgContext::BuildFull(*lake, index);

  // Load a previously saved organization when compatible, else optimize.
  const std::string cache_path = "/tmp/lakeorg_navigator.org";
  Organization org(ctx);
  Result<Organization> cached = LoadOrganizationFromFile(ctx, cache_path);
  if (cached.ok()) {
    std::printf("loaded cached organization from %s\n",
                cache_path.c_str());
    org = std::move(cached).value();
  } else {
    std::printf("optimizing organization (cache: %s)...\n",
                cached.status().ToString().c_str());
    LocalSearchOptions options;
    options.patience = 40;
    options.max_proposals = 400;
    options.use_representatives = ctx->num_attrs() > 200;
    options.num_threads = 0;  // Hardware concurrency; 1 forces serial.
    LocalSearchResult result =
        OptimizeOrganization(BuildClusteringOrganization(ctx), options).value();
    std::printf("effectiveness %.3f -> %.3f after %zu proposals\n",
                result.initial_effectiveness, result.effectiveness,
                result.proposals);
    org = std::move(result.org);
    if (Status st = SaveOrganizationToFile(org, cache_path); !st.ok()) {
      std::fprintf(stderr, "could not cache: %s\n",
                   st.ToString().c_str());
    }
  }

  // Interactive loop with behavior logging.
  BehaviorLog log;
  AdaptiveTransitionModel model(TransitionConfig{}, 10.0);
  NavigationSession session(&org);
  Vec neutral(ctx->dim(), 0.0f);  // No intent: probabilities are uniform
                                  // until clicks accumulate.
  std::string command;
  for (;;) {
    std::printf("\nat: %s\n", StateLabel(org, session.current()).c_str());
    if (session.AtLeaf()) {
      uint32_t attr = session.CurrentAttr();
      const Attribute& a = lake->attribute(ctx->lake_attr(attr));
      std::printf("  >> dataset column discovered: table \"%s\", column "
                  "\"%s\" (%zu values)\n",
                  lake->table(a.table).name.c_str(), a.name.c_str(),
                  a.values.size());
    } else {
      std::vector<NavChoice> choices = session.Choices();
      std::vector<double> probs = model.Probabilities(
          org, log, session.current(), neutral);
      for (size_t i = 0; i < choices.size() && i < 12; ++i) {
        std::printf("  [%zu] %-44s p=%.3f\n", i,
                    choices[i].label.c_str(), probs[i]);
      }
      if (choices.size() > 12) {
        std::printf("  ... %zu more\n", choices.size() - 12);
      }
    }
    std::printf("choice (number), b=back, s=path, q=quit> ");
    if (!(std::cin >> command)) break;
    if (command == "q") break;
    if (command == "b") {
      if (Status st = session.Back(); !st.ok()) {
        std::printf("  %s\n", st.ToString().c_str());
      }
      continue;
    }
    if (command == "s") {
      std::printf("  path:");
      for (StateId s : session.path()) {
        std::printf(" -> %s", StateLabel(org, s).c_str());
      }
      std::printf("\n");
      continue;
    }
    char* end = nullptr;
    long pick = std::strtol(command.c_str(), &end, 10);
    if (end == command.c_str() || pick < 0) {
      std::printf("  unrecognized command\n");
      continue;
    }
    StateId from = session.current();
    if (Status st = session.Choose(static_cast<size_t>(pick)); !st.ok()) {
      std::printf("  %s\n", st.ToString().c_str());
    } else {
      log.Record(from, session.current());
    }
  }
  std::printf("\nsession over: %zu actions, %llu transitions logged\n",
              session.actions(),
              static_cast<unsigned long long>(log.total()));
  return 0;
}
