// Metadata-enrichment scenario (the paper's "enriched TagCloud"
// experiment as an API walkthrough): tables whose attributes carry a
// single tag are hard to discover in any organization; attaching each
// attribute's closest other tag adds discovery paths and lifts the least
// discoverable tables. Prints the bottom of the success distribution
// before and after enrichment.
//
// Run:  ./examples/lake_enrichment
#include <algorithm>
#include <cstdio>

#include "benchgen/tagcloud.h"
#include "core/evaluator.h"
#include "core/org_builders.h"

using namespace lakeorg;

namespace {

SuccessReport EvaluateFlat(const TagCloudBenchmark& bench,
                           const TransitionConfig& config) {
  TagIndex index = TagIndex::Build(bench.lake);
  auto ctx = OrgContext::BuildFull(bench.lake, index);
  Organization flat = BuildFlatOrganization(ctx);
  OrgEvaluator eval(config);
  return eval.Success(flat, OrgEvaluator::AttributeNeighbors(*ctx, 0.9));
}

}  // namespace

int main() {
  TagCloudOptions opts;
  opts.num_tags = 60;
  opts.target_attributes = 300;
  opts.min_values = 10;
  opts.max_values = 40;
  opts.seed = 12;

  TransitionConfig config;
  config.gamma = 20.0;

  TagCloudBenchmark plain = GenerateTagCloud(opts);
  std::printf("TagCloud lake: %zu tables, %zu attributes, %zu tags "
              "(one tag per attribute)\n",
              plain.lake.num_tables(), plain.lake.num_attributes(),
              plain.lake.num_tags());
  SuccessReport before = EvaluateFlat(plain, config);

  TagCloudBenchmark enriched = GenerateTagCloud(opts, plain.vocabulary);
  size_t added = EnrichTagCloud(&enriched);
  std::printf("enrichment attached %zu additional attribute-tag "
              "associations (closest other tag per attribute)\n\n",
              added);
  SuccessReport after = EvaluateFlat(enriched, config);

  std::vector<double> sorted_before = before.SortedAscending();
  std::vector<double> sorted_after = after.SortedAscending();
  std::printf("%-28s %10s %10s\n", "success probability", "before",
              "enriched");
  const std::pair<const char*, double> stops[] = {
      {"bottom decile mean", 0.10}, {"bottom quartile mean", 0.25},
      {"median", 0.50}};
  for (const auto& [label, frac] : stops) {
    auto head_mean = [frac = frac](const std::vector<double>& xs) {
      size_t n = std::max<size_t>(1, static_cast<size_t>(frac * xs.size()));
      double total = 0.0;
      for (size_t i = 0; i < n; ++i) total += xs[i];
      return total / static_cast<double>(n);
    };
    std::printf("%-28s %10.4f %10.4f\n", label, head_mean(sorted_before),
                head_mean(sorted_after));
  }
  std::printf("%-28s %10.4f %10.4f\n", "overall mean", before.mean,
              after.mean);
  std::printf("\nthe paper observed the same effect: ~70%% of the least "
              "discoverable tables had single-attribute single-tag "
              "tables; enrichment raises exactly that tail.\n");
  return 0;
}
