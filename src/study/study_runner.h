// The formal user-study harness (section 4.4): a within-subject, balanced
// latin-square design over two disjoint lakes (the Socrata-2 / Socrata-3
// analogues), each with one overview scenario. Every participant performs
// both scenarios, one with navigation and one with keyword search, with
// block order balanced. Reports the H1 statistic (relevant tables found
// per modality), the H2 statistic (pairwise result disjointness per
// modality, Mann-Whitney tested) and the navigation-vs-search overlap.
#pragma once

#include <string>
#include <vector>

#include "study/agents.h"
#include "study/mann_whitney.h"

namespace lakeorg {

/// One lake under study with its navigation and search systems.
struct StudyEnvironment {
  const DataLake* lake = nullptr;
  const MultiDimOrganization* org = nullptr;
  const TableSearchEngine* engine = nullptr;
  Scenario scenario;
  /// Name for reporting ("Socrata-2").
  std::string name;
};

/// Study-level options.
struct StudyOptions {
  /// Participants (the paper recruited 12; must be even).
  size_t participants = 12;
  AgentOptions agent;
  /// Oracle relevance threshold (the paper's collaborators' filtering;
  /// <1% of found tables were judged irrelevant).
  double oracle_threshold = 0.40;
  uint64_t seed = 4242;
};

/// One participant-session record.
struct SessionRecord {
  size_t participant = 0;
  /// 0 or 1: which environment (scenario).
  size_t environment = 0;
  /// True for navigation, false for keyword search.
  bool navigation = false;
  /// Tables found after oracle filtering.
  std::vector<TableId> found;
  size_t actions_used = 0;
  /// Tables the oracle rejected (the paper's "<1%" check).
  size_t rejected = 0;
};

/// Aggregates per modality.
struct ModalityStats {
  /// Relevant tables found per session.
  std::vector<double> found_counts;
  /// Pairwise disjointness among sessions on the same scenario.
  std::vector<double> disjointness;
  double median_found = 0.0;
  double max_found = 0.0;
  double median_disjointness = 0.0;
};

/// Full study output.
struct StudyResult {
  std::vector<SessionRecord> sessions;
  ModalityStats navigation;
  ModalityStats search;
  /// H1: found-count comparison (paper: no significant difference).
  MannWhitneyResult h1_found;
  /// H2: disjointness comparison (paper: Mdn 0.985 vs 0.916, p = 0.0019).
  MannWhitneyResult h2_disjointness;
  /// |nav ∩ search| / |nav ∪ search| pooled over scenarios (paper: ~5%).
  double nav_search_overlap = 0.0;
  /// Fraction of agent-collected tables the oracle rejected.
  double rejected_fraction = 0.0;
};

/// Runs the full latin-square study over two environments.
StudyResult RunUserStudy(const StudyEnvironment& env_a,
                         const StudyEnvironment& env_b,
                         const StudyOptions& options);

/// Renders the headline numbers as a small report block.
std::string FormatStudyResult(const StudyResult& result);

}  // namespace lakeorg
