// Result-set metrics of the user study (section 4.4): the disjointness of
// two participants' result sets and the navigation-vs-search overlap,
// plus the table topic vector / relevance oracle used by the simulated
// study.
#pragma once

#include <vector>

#include "embedding/vector_ops.h"
#include "lake/data_lake.h"

namespace lakeorg {

/// Disjointness of two result sets: 1 - |R ∩ T| / |R ∪ T| (section 4.4).
/// Two empty sets are fully overlapping (0). Inputs need not be sorted.
double Disjointness(std::vector<TableId> a, std::vector<TableId> b);

/// Overlap fraction |R ∩ T| / |R ∪ T| (the "~5% intersection" statistic).
double OverlapFraction(std::vector<TableId> a, std::vector<TableId> b);

/// Topic vector of a table: sample mean over the embedded values of its
/// text attributes (zero when none embed).
Vec TableTopicVector(const DataLake& lake, TableId table);

/// Relevance oracle: the stand-in for the paper's human relevance
/// judgement — a table is relevant to a scenario topic when its topic
/// vector's cosine to the scenario vector reaches `threshold`.
bool IsRelevant(const DataLake& lake, TableId table, const Vec& scenario,
                double threshold);

/// All tables relevant to `scenario` (the recall denominator).
std::vector<TableId> RelevantTables(const DataLake& lake,
                                    const Vec& scenario, double threshold);

}  // namespace lakeorg
