#include "study/agents.h"

#include <algorithm>

#include "core/navigation.h"
#include "core/transition.h"
#include "discovery/nav_service.h"
#include "search/tokenizer.h"

namespace lakeorg {

Vec SampleIntentVector(const Vec& topic, double noise, Rng* rng) {
  // intent = normalize(topic_unit + noise * perturbation_unit): `noise` is
  // the RELATIVE magnitude of the perturbation, independent of the
  // embedding dimension, so cos(intent, topic) ~ 1 / sqrt(1 + noise^2)
  // (e.g. noise 0.3 keeps users ~0.96-aligned with the scenario while
  // still differing from each other).
  Vec intent = topic;
  NormalizeInPlace(&intent);
  if (noise > 0.0 && !intent.empty()) {
    Vec perturbation(intent.size());
    for (float& x : perturbation) {
      x = static_cast<float>(rng->Gaussian());
    }
    NormalizeInPlace(&perturbation);
    for (size_t i = 0; i < intent.size(); ++i) {
      intent[i] += static_cast<float>(noise) * perturbation[i];
    }
    NormalizeInPlace(&intent);
  }
  return intent;
}

AgentResult RunNavigationAgent(const MultiDimOrganization& org,
                               const DataLake& lake,
                               const Scenario& scenario,
                               const AgentOptions& options, Rng* rng) {
  AgentResult result;
  if (org.num_dimensions() == 0) return result;
  Vec intent = SampleIntentVector(scenario.topic, options.intent_noise, rng);

  std::vector<char> collected(lake.num_tables(), 0);
  while (result.actions_used < options.action_budget) {
    // One episode: pick the dimension whose root children best match the
    // intent (softly), then walk to a leaf with Equation 1 choices.
    size_t dim;
    if (org.num_dimensions() == 1) {
      dim = 0;
    } else {
      std::vector<double> sims(org.num_dimensions());
      for (size_t d = 0; d < org.num_dimensions(); ++d) {
        const Organization& o = org.dimension(d);
        sims[d] = Cosine(o.state(o.root()).topic, intent);
      }
      std::vector<double> probs =
          TransitionProbabilities(sims, options.transition);
      dim = rng->Categorical(probs);
    }

    const Organization& o = org.dimension(dim);
    NavigationSession session(&o);
    // Walk with Equation 1 choices until the current state's children are
    // (mostly) leaves — the prototype then shows a list of tables.
    for (;;) {
      if (result.actions_used >= options.action_budget) break;
      const std::vector<StateId>& children =
          o.state(session.current()).children;
      if (children.empty() || session.AtLeaf()) break;
      bool leaf_level = true;
      for (StateId c : children) {
        if (o.state(c).kind != StateKind::kLeaf) {
          leaf_level = false;
          break;
        }
      }
      if (leaf_level) break;
      std::vector<double> sims(children.size());
      for (size_t i = 0; i < children.size(); ++i) {
        sims[i] = Cosine(o.state(children[i]).topic, intent);
      }
      std::vector<double> probs =
          TransitionProbabilities(sims, options.transition);
      size_t pick = rng->Categorical(probs);
      Status st = session.Choose(pick);
      (void)st;
      ++result.actions_used;
    }
    // At a leaf-parent (tag) state the user scans the listed tables, most
    // similar first, up to the same per-stop inspection budget the search
    // modality gets per result page.
    const std::vector<StateId>& listed =
        o.state(session.current()).children;
    if (!listed.empty() &&
        o.state(listed[0]).kind == StateKind::kLeaf) {
      ++result.probes;
      std::vector<std::pair<double, StateId>> ranked;
      ranked.reserve(listed.size());
      for (StateId c : listed) {
        ranked.emplace_back(Cosine(o.state(c).topic, intent), c);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      size_t inspected = 0;
      for (const auto& [sim, leaf] : ranked) {
        if (inspected >= options.results_per_query ||
            result.actions_used >= options.action_budget) {
          break;
        }
        ++result.actions_used;  // Inspecting one listed table.
        ++inspected;
        uint32_t local_attr = o.state(leaf).attr;
        AttributeId lake_attr = o.ctx().lake_attr(local_attr);
        TableId table = lake.attribute(lake_attr).table;
        if (collected[table]) continue;
        Vec table_topic = TableTopicVector(lake, table);
        if (!table_topic.empty() &&
            Cosine(table_topic, intent) >= options.accept_threshold) {
          collected[table] = 1;
          result.found.push_back(table);
        }
      }
    }
    // Restarting from a root costs one action (the prototype's backtrack).
    ++result.actions_used;
  }
  return result;
}

AgentResult RunSearchAgent(const TableSearchEngine& engine,
                           const DataLake& lake, const Scenario& scenario,
                           const std::vector<std::string>& keyword_pool,
                           const AgentOptions& options, Rng* rng) {
  AgentResult result;
  Vec intent = SampleIntentVector(scenario.topic, options.intent_noise, rng);

  std::vector<std::string> scenario_terms = Tokenize(scenario.description);
  if (scenario_terms.empty() && keyword_pool.empty()) return result;

  std::vector<char> collected(lake.num_tables(), 0);
  while (result.actions_used + options.query_cost <=
         options.action_budget) {
    // Compose a 1-3 term query, biased toward the shared scenario terms.
    size_t n_terms = static_cast<size_t>(rng->UniformInt(1, 3));
    std::vector<std::string> terms;
    for (size_t i = 0; i < n_terms; ++i) {
      bool from_scenario = keyword_pool.empty() ||
                           rng->Bernoulli(options.scenario_term_prob);
      const std::vector<std::string>& pool =
          from_scenario && !scenario_terms.empty() ? scenario_terms
                                                   : keyword_pool;
      if (pool.empty()) break;
      terms.push_back(pool[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(pool.size() - 1)))]);
    }
    if (terms.empty()) break;
    std::string query;
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) query += " ";
      query += terms[i];
    }
    result.actions_used += options.query_cost;
    ++result.probes;

    std::vector<TableHit> hits = engine.Search(
        query, options.results_per_query, options.use_query_expansion);
    for (const TableHit& hit : hits) {
      if (result.actions_used >= options.action_budget) break;
      ++result.actions_used;  // Inspecting one result.
      if (collected[hit.table]) continue;
      Vec table_topic = TableTopicVector(lake, hit.table);
      if (!table_topic.empty() &&
          Cosine(table_topic, intent) >= options.accept_threshold) {
        collected[hit.table] = 1;
        result.found.push_back(hit.table);
      }
    }
  }
  return result;
}

Result<NavServiceAgentResult> RunNavServiceAgent(
    NavService* service, uint32_t query_attr,
    const NavServiceAgentOptions& options, Rng* rng) {
  NavServiceAgentResult result;
  Result<NavSessionId> opened = service->Open(query_attr);
  if (!opened.ok()) return opened.status();
  NavSessionId id = opened.value();
  Result<NavView> view = service->Peek(id);
  while (view.ok() && result.steps < options.max_steps) {
    const NavView& v = view.value();
    if (v.at_leaf) {
      if (v.attr == query_attr) {
        // Found it: the session ends successfully.
        result.reached_target = true;
        result.steps_to_target = result.steps;
        break;
      }
      // Wrong leaf: back out and keep browsing.
      view = service->Back(id);
      ++result.steps;
      continue;
    }
    size_t choices = v.NumChoices();
    if (choices == 0) {
      if (v.depth == 0) break;  // Childless root: nowhere to go.
      view = service->Back(id);
      ++result.steps;
      continue;
    }
    if (v.depth > 0 && rng->Bernoulli(options.back_prob)) {
      view = service->Back(id);
      ++result.steps;
      continue;
    }
    // Users read the served labels, so they are sharper than the content
    // prior: mostly the top-ranked choice, otherwise a draw from the
    // served Equation 1 row.
    size_t rank = 0;
    if (!rng->Bernoulli(options.greed)) {
      std::vector<double> probs(choices);
      for (size_t r = 0; r < choices; ++r) probs[r] = v.ChoiceProb(r);
      rank = rng->Categorical(probs);
    }
    view = service->Descend(id, rank);
    ++result.steps;
    if (view.ok()) ++result.descents;
  }
  (void)service->Close(id);
  if (!view.ok()) return view.status();
  return result;
}

}  // namespace lakeorg
