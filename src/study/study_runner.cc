#include "study/study_runner.h"

#include <algorithm>
#include <sstream>

#include "common/stats.h"
#include "common/string_util.h"

namespace lakeorg {
namespace {

/// The user's personal expansion vocabulary: terms from a few tables the
/// user skimmed before starting (participant-specific noise source).
std::vector<std::string> PersonalKeywordPool(const DataLake& lake,
                                             Rng* rng) {
  std::vector<std::string> pool;
  if (lake.num_tables() == 0) return pool;
  for (int i = 0; i < 3; ++i) {
    TableId t = static_cast<TableId>(rng->UniformInt(
        0, static_cast<int64_t>(lake.num_tables() - 1)));
    for (TagId tag : lake.table(t).tags) {
      for (const std::string& tok : Split(lake.tag_name(tag), "_ ")) {
        if (tok.size() >= 3) pool.push_back(tok);
      }
    }
  }
  return pool;
}

/// Oracle filtering: drop found tables whose topic does not actually match
/// the scenario (the collaborators' relevance check).
void OracleFilter(const StudyEnvironment& env, double threshold,
                  SessionRecord* record) {
  std::vector<TableId> kept;
  for (TableId t : record->found) {
    if (IsRelevant(*env.lake, t, env.scenario.topic, threshold)) {
      kept.push_back(t);
    } else {
      ++record->rejected;
    }
  }
  record->found = std::move(kept);
}

}  // namespace

StudyResult RunUserStudy(const StudyEnvironment& env_a,
                         const StudyEnvironment& env_b,
                         const StudyOptions& options) {
  StudyResult result;
  Rng rng(options.seed);
  const StudyEnvironment* envs[2] = {&env_a, &env_b};

  // Balanced latin-square blocks: (first env, first modality) cycles
  // through the four combinations; each participant does both scenarios,
  // one per modality.
  for (size_t p = 0; p < options.participants; ++p) {
    size_t block = p % 4;
    size_t first_env = block / 2;           // 0 or 1
    bool first_is_navigation = (block % 2) == 0;
    Rng participant_rng = rng.Fork();

    for (size_t leg = 0; leg < 2; ++leg) {
      size_t env_index = leg == 0 ? first_env : 1 - first_env;
      bool navigation = leg == 0 ? first_is_navigation
                                 : !first_is_navigation;
      const StudyEnvironment& env = *envs[env_index];

      SessionRecord record;
      record.participant = p;
      record.environment = env_index;
      record.navigation = navigation;

      Rng session_rng = participant_rng.Fork();
      AgentResult agent;
      if (navigation) {
        agent = RunNavigationAgent(*env.org, *env.lake, env.scenario,
                                   options.agent, &session_rng);
      } else {
        std::vector<std::string> pool =
            PersonalKeywordPool(*env.lake, &session_rng);
        agent = RunSearchAgent(*env.engine, *env.lake, env.scenario, pool,
                               options.agent, &session_rng);
      }
      record.found = std::move(agent.found);
      record.actions_used = agent.actions_used;
      OracleFilter(env, options.oracle_threshold, &record);
      result.sessions.push_back(std::move(record));
    }
  }

  // Aggregate per modality.
  size_t total_found = 0;
  size_t total_rejected = 0;
  for (const SessionRecord& s : result.sessions) {
    ModalityStats& stats = s.navigation ? result.navigation : result.search;
    stats.found_counts.push_back(static_cast<double>(s.found.size()));
    total_found += s.found.size();
    total_rejected += s.rejected;
  }
  // Pairwise disjointness among sessions with the same scenario+modality.
  for (size_t i = 0; i < result.sessions.size(); ++i) {
    for (size_t j = i + 1; j < result.sessions.size(); ++j) {
      const SessionRecord& a = result.sessions[i];
      const SessionRecord& b = result.sessions[j];
      if (a.environment != b.environment ||
          a.navigation != b.navigation) {
        continue;
      }
      if (a.found.empty() && b.found.empty()) continue;
      double d = Disjointness(a.found, b.found);
      (a.navigation ? result.navigation : result.search)
          .disjointness.push_back(d);
    }
  }
  for (ModalityStats* stats : {&result.navigation, &result.search}) {
    stats->median_found = Median(stats->found_counts);
    stats->max_found = Max(stats->found_counts);
    stats->median_disjointness = Median(stats->disjointness);
  }

  result.h1_found = MannWhitneyUTest(result.navigation.found_counts,
                                     result.search.found_counts);
  result.h2_disjointness = MannWhitneyUTest(result.navigation.disjointness,
                                            result.search.disjointness);

  // Navigation vs search overlap, pooled per scenario then averaged.
  double overlap_total = 0.0;
  size_t overlap_scenarios = 0;
  for (size_t e = 0; e < 2; ++e) {
    std::vector<TableId> nav_found;
    std::vector<TableId> search_found;
    for (const SessionRecord& s : result.sessions) {
      if (s.environment != e) continue;
      auto& sink = s.navigation ? nav_found : search_found;
      sink.insert(sink.end(), s.found.begin(), s.found.end());
    }
    if (nav_found.empty() && search_found.empty()) continue;
    overlap_total += OverlapFraction(nav_found, search_found);
    ++overlap_scenarios;
  }
  result.nav_search_overlap =
      overlap_scenarios == 0 ? 0.0 : overlap_total / overlap_scenarios;
  result.rejected_fraction =
      (total_found + total_rejected) == 0
          ? 0.0
          : static_cast<double>(total_rejected) /
                static_cast<double>(total_found + total_rejected);
  return result;
}

std::string FormatStudyResult(const StudyResult& result) {
  std::ostringstream out;
  out << "participants: " << result.sessions.size() / 2 << "\n"
      << "H1 relevant tables found  nav Mdn="
      << FormatDouble(result.navigation.median_found, 1)
      << " max=" << FormatDouble(result.navigation.max_found, 0)
      << " | search Mdn=" << FormatDouble(result.search.median_found, 1)
      << " max=" << FormatDouble(result.search.max_found, 0)
      << "  (U=" << FormatDouble(result.h1_found.u, 1)
      << ", p=" << FormatDouble(result.h1_found.p_two_tailed, 4) << ")\n"
      << "H2 disjointness           nav Mdn="
      << FormatDouble(result.navigation.median_disjointness, 3)
      << " | search Mdn="
      << FormatDouble(result.search.median_disjointness, 3)
      << "  (U=" << FormatDouble(result.h2_disjointness.u, 1)
      << ", p=" << FormatDouble(result.h2_disjointness.p_two_tailed, 4)
      << ")\n"
      << "nav/search result overlap: "
      << FormatDouble(100.0 * result.nav_search_overlap, 1) << "%\n"
      << "oracle-rejected fraction:  "
      << FormatDouble(100.0 * result.rejected_fraction, 1) << "%\n";
  return out.str();
}

}  // namespace lakeorg
