// Stochastic user agents: the shippable stand-in for the paper's 12 human
// participants (DESIGN.md substitution 4). Both agents share a per-user
// noisy intent vector derived from the scenario topic and a bounded action
// budget (the 20-minute session). The navigation agent samples walks from
// the paper's own transition model (Equation 1); the keyword agent samples
// small keyword subsets of the scenario — the behaviour participants
// showed ("very similar keywords" across users) that drives hypothesis H2.
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "core/multidim.h"
#include "search/engine.h"
#include "study/metrics.h"

namespace lakeorg {

/// An information-need scenario (e.g. "smart city", "clinical research").
struct Scenario {
  /// Free-text description shown to the agent (keyword source).
  std::string description;
  /// Topic vector of the information need.
  Vec topic;
};

/// Behavioural parameters shared by both agents.
struct AgentOptions {
  /// Total navigation/search actions per session (the 20-minute budget).
  size_t action_budget = 150;
  /// Gaussian noise scale applied per user to the scenario vector.
  double intent_noise = 0.30;
  /// Transition-model sharpness when the navigation agent picks children.
  TransitionConfig transition;
  /// Agent-side relevance acceptance threshold (cosine of table topic to
  /// the user's own intent vector).
  double accept_threshold = 0.55;
  /// Keyword agent: results inspected per query.
  size_t results_per_query = 10;
  /// Keyword agent: actions charged per issued query.
  size_t query_cost = 5;
  /// Keyword agent: probability a query term comes from the shared
  /// scenario description rather than the user's personal expansion pool.
  double scenario_term_prob = 0.8;
  /// Keyword agent: query expansion toggle (the prototype's optional
  /// expansion).
  bool use_query_expansion = true;
};

/// Outcome of one simulated session.
struct AgentResult {
  /// Tables the agent collected as relevant (deduplicated, in discovery
  /// order).
  std::vector<TableId> found;
  /// Actions actually spent.
  size_t actions_used = 0;
  /// Distinct leaves visited / queries issued (diagnostics).
  size_t probes = 0;
};

/// Draws this user's intent vector: normalize(topic + noise * gaussian).
Vec SampleIntentVector(const Vec& topic, double noise, Rng* rng);

/// Simulates a navigation session over a multi-dimensional organization.
AgentResult RunNavigationAgent(const MultiDimOrganization& org,
                               const DataLake& lake,
                               const Scenario& scenario,
                               const AgentOptions& options, Rng* rng);

/// Simulates a keyword-search session. `keyword_pool` augments the
/// scenario description with user-specific vocabulary (may be empty).
AgentResult RunSearchAgent(const TableSearchEngine& engine,
                           const DataLake& lake, const Scenario& scenario,
                           const std::vector<std::string>& keyword_pool,
                           const AgentOptions& options, Rng* rng);

class NavService;

/// Behaviour of one served navigation session (RunNavServiceAgent).
struct NavServiceAgentOptions {
  /// Navigation actions before the user gives up.
  size_t max_steps = 40;
  /// Probability of taking the top-ranked choice; the rest of the mass
  /// samples the served Equation 1 probabilities. Real users are sharper
  /// than the content prior (they read the labels), which is exactly the
  /// behaviour gap the adaptive loop's drift score detects.
  double greed = 0.8;
  /// Probability of backtracking instead of descending (depth > 0).
  double back_prob = 0.1;
};

/// Outcome of one served navigation session.
struct NavServiceAgentResult {
  /// Actions the service acknowledged.
  size_t steps = 0;
  /// Successful descends (each one emits a click when a sink is wired).
  size_t descents = 0;
  /// Whether the walk reached a leaf of the session's query attribute.
  bool reached_target = false;
  /// Actions spent when the target leaf was first reached.
  size_t steps_to_target = 0;
};

/// Simulates one user session against a live NavService: opens a session
/// for `query_attr`, walks by sampling the served (ranked) choices with
/// a greedy bias, backtracks out of dead ends, and closes the session.
/// This is the traffic source of bench/adaptive_serving: with a click
/// sink on the service every descend feeds the adaptive loop.
Result<NavServiceAgentResult> RunNavServiceAgent(
    NavService* service, uint32_t query_attr,
    const NavServiceAgentOptions& options, Rng* rng);

}  // namespace lakeorg
