#include "study/metrics.h"

#include <algorithm>

namespace lakeorg {
namespace {

/// Sorted-unique copy.
std::vector<TableId> Canonical(std::vector<TableId> xs) {
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

}  // namespace

double OverlapFraction(std::vector<TableId> a, std::vector<TableId> b) {
  a = Canonical(std::move(a));
  b = Canonical(std::move(b));
  if (a.empty() && b.empty()) return 1.0;
  std::vector<TableId> inter;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  size_t union_size = a.size() + b.size() - inter.size();
  return static_cast<double>(inter.size()) /
         static_cast<double>(union_size);
}

double Disjointness(std::vector<TableId> a, std::vector<TableId> b) {
  return 1.0 - OverlapFraction(std::move(a), std::move(b));
}

Vec TableTopicVector(const DataLake& lake, TableId table) {
  const Table& t = lake.table(table);
  TopicAccumulator acc;
  bool initialized = false;
  for (AttributeId aid : t.attributes) {
    const Attribute& attr = lake.attribute(aid);
    if (!attr.is_text || !attr.HasTopic()) continue;
    if (!initialized) {
      acc.Reset(attr.topic_sum.size());
      initialized = true;
    }
    acc.AddSum(attr.topic_sum, attr.embedded_count);
  }
  return acc.Mean();
}

bool IsRelevant(const DataLake& lake, TableId table, const Vec& scenario,
                double threshold) {
  Vec topic = TableTopicVector(lake, table);
  if (topic.empty()) return false;
  return Cosine(topic, scenario) >= threshold;
}

std::vector<TableId> RelevantTables(const DataLake& lake,
                                    const Vec& scenario, double threshold) {
  std::vector<TableId> out;
  for (const Table& t : lake.tables()) {
    if (IsRelevant(lake, t.id, scenario, threshold)) out.push_back(t.id);
  }
  return out;
}

}  // namespace lakeorg
