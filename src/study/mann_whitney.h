// The Mann-Whitney U test — the significance test the paper's user study
// uses for its two-tailed hypotheses (section 4.4). Normal approximation
// with tie correction and continuity correction; appropriate for the
// study's sample sizes.
#pragma once

#include <cstddef>
#include <vector>

namespace lakeorg {

/// Result of a two-sample Mann-Whitney U test.
struct MannWhitneyResult {
  /// U statistic of sample A (rank-sum based) and of sample B.
  double u_a = 0.0;
  double u_b = 0.0;
  /// min(u_a, u_b), the conventionally reported U.
  double u = 0.0;
  /// Tie-corrected z score (0 when the variance degenerates).
  double z = 0.0;
  /// Two-tailed p-value from the normal approximation.
  double p_two_tailed = 1.0;
  /// Sample medians and sizes, for reporting.
  double median_a = 0.0;
  double median_b = 0.0;
  size_t n_a = 0;
  size_t n_b = 0;
};

/// Runs the test on samples `a` and `b`. Either sample may be empty, in
/// which case p = 1.
MannWhitneyResult MannWhitneyUTest(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Standard normal upper-tail survival function Q(z) = P(Z > z).
double NormalSurvival(double z);

}  // namespace lakeorg
