#include "study/mann_whitney.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace lakeorg {

double NormalSurvival(double z) {
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

MannWhitneyResult MannWhitneyUTest(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  MannWhitneyResult result;
  result.n_a = a.size();
  result.n_b = b.size();
  result.median_a = Median(a);
  result.median_b = Median(b);
  if (a.empty() || b.empty()) return result;

  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());

  // Midranks over the pooled sample.
  std::vector<double> pooled = a;
  pooled.insert(pooled.end(), b.begin(), b.end());
  std::vector<double> ranks = MidRanks(pooled);
  double rank_sum_a = 0.0;
  for (size_t i = 0; i < a.size(); ++i) rank_sum_a += ranks[i];

  result.u_a = rank_sum_a - na * (na + 1.0) / 2.0;
  result.u_b = na * nb - result.u_a;
  result.u = std::min(result.u_a, result.u_b);

  // Tie-corrected variance.
  std::vector<double> sorted = pooled;
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  size_t i = 0;
  size_t n = sorted.size();
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && sorted[j + 1] == sorted[i]) ++j;
    double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  double total = na + nb;
  double variance =
      na * nb / 12.0 *
      ((total + 1.0) - tie_term / (total * (total - 1.0)));
  if (variance <= 0.0) return result;

  double mean_u = na * nb / 2.0;
  // Continuity correction toward the mean.
  double diff = result.u_a - mean_u;
  double correction = diff > 0.0 ? -0.5 : (diff < 0.0 ? 0.5 : 0.0);
  result.z = (diff + correction) / std::sqrt(variance);
  result.p_two_tailed =
      std::min(1.0, 2.0 * NormalSurvival(std::abs(result.z)));
  return result;
}

}  // namespace lakeorg
