// Okapi BM25 ranking over an InvertedIndex — the document-search model the
// paper's comparison search engine uses (section 4.4, via Xapian).
#pragma once

#include <string>
#include <vector>

#include "search/inverted_index.h"

namespace lakeorg {

/// BM25 parameters (standard defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// One ranked search hit.
struct SearchHit {
  DocId doc = 0;
  double score = 0.0;
};

/// BM25 scorer over a borrowed index (must outlive the scorer).
class Bm25Scorer {
 public:
  explicit Bm25Scorer(const InvertedIndex* index, Bm25Params params = {})
      : index_(index), params_(params) {}

  /// IDF of a term (Robertson-Sparck Jones with +1 smoothing, non-negative).
  double Idf(const std::string& term) const;

  /// Scores all documents matching any query term; returns the top `k`
  /// hits sorted by descending score (ties by ascending doc id).
  /// `weights` (optional, same length as `terms`) scales each term's
  /// contribution — used by query expansion to down-weight expansions.
  std::vector<SearchHit> TopK(const std::vector<std::string>& terms,
                              size_t k,
                              const std::vector<double>& weights = {}) const;

 private:
  const InvertedIndex* index_;
  Bm25Params params_;
};

}  // namespace lakeorg
