// Embedding-based query expansion: the paper's search engine uses
// pretrained GloVe vectors to identify similar terms and expand queries
// (section 4.4, optional per query). Here expansion candidates come from
// the indexed vocabulary ranked by embedding cosine against each query
// term.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "embedding/embedding_store.h"

namespace lakeorg {

/// An expanded query: original terms plus similar terms with weights.
struct ExpandedQuery {
  std::vector<std::string> terms;
  /// Per-term weights: 1.0 for originals, the cosine-derived weight for
  /// expansions.
  std::vector<double> weights;
};

/// Options for QueryExpander.
struct QueryExpansionOptions {
  /// Expansions added per original term.
  size_t expansions_per_term = 2;
  /// Minimum cosine for an expansion candidate.
  double min_similarity = 0.55;
  /// Weight multiplier applied to an expansion's cosine.
  double expansion_weight = 0.6;
};

/// Expands query terms against a fixed vocabulary via embedding cosine.
class QueryExpander {
 public:
  /// `vocabulary` is the candidate term pool (typically the index's terms);
  /// terms without embeddings are skipped.
  QueryExpander(std::shared_ptr<const EmbeddingStore> store,
                std::vector<std::string> vocabulary,
                QueryExpansionOptions options = {});

  /// Expands `terms`; originals keep weight 1.0 and are never duplicated.
  ExpandedQuery Expand(const std::vector<std::string>& terms) const;

 private:
  std::shared_ptr<const EmbeddingStore> store_;
  std::vector<std::string> vocab_;
  std::vector<Vec> vocab_vecs_;
  QueryExpansionOptions options_;
};

}  // namespace lakeorg
