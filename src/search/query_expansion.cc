#include "search/query_expansion.h"

#include <algorithm>

namespace lakeorg {

QueryExpander::QueryExpander(std::shared_ptr<const EmbeddingStore> store,
                             std::vector<std::string> vocabulary,
                             QueryExpansionOptions options)
    : store_(std::move(store)), options_(options) {
  for (std::string& term : vocabulary) {
    std::optional<Vec> v = store_->Embed(term);
    if (v.has_value()) {
      vocab_.push_back(std::move(term));
      vocab_vecs_.push_back(std::move(*v));
    }
  }
}

ExpandedQuery QueryExpander::Expand(
    const std::vector<std::string>& terms) const {
  ExpandedQuery out;
  for (const std::string& t : terms) {
    out.terms.push_back(t);
    out.weights.push_back(1.0);
  }
  auto already_present = [&out](const std::string& term) {
    return std::find(out.terms.begin(), out.terms.end(), term) !=
           out.terms.end();
  };
  for (const std::string& t : terms) {
    std::optional<Vec> tv = store_->Embed(t);
    if (!tv.has_value()) continue;
    // Rank vocabulary terms by cosine; keep the best few above threshold.
    std::vector<std::pair<double, size_t>> scored;
    for (size_t i = 0; i < vocab_.size(); ++i) {
      if (vocab_[i] == t) continue;
      double sim = Cosine(*tv, vocab_vecs_[i]);
      if (sim >= options_.min_similarity) scored.emplace_back(sim, i);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    size_t added = 0;
    for (const auto& [sim, i] : scored) {
      if (added >= options_.expansions_per_term) break;
      if (already_present(vocab_[i])) continue;
      out.terms.push_back(vocab_[i]);
      out.weights.push_back(sim * options_.expansion_weight);
      ++added;
    }
  }
  return out;
}

}  // namespace lakeorg
