// A term -> postings inverted index over documents, the storage layer of
// the BM25 keyword-search engine.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lakeorg {

/// Document id within an InvertedIndex.
using DocId = uint32_t;

/// One posting: a document and the term's frequency in it.
struct Posting {
  DocId doc = 0;
  uint32_t term_frequency = 0;
};

/// Append-only inverted index with document lengths.
class InvertedIndex {
 public:
  /// Adds a document from its token stream; returns its id.
  DocId AddDocument(const std::vector<std::string>& tokens);

  /// Number of indexed documents.
  size_t num_documents() const { return doc_lengths_.size(); }

  /// Number of distinct terms.
  size_t num_terms() const { return postings_.size(); }

  /// Token count of document `doc`.
  size_t doc_length(DocId doc) const { return doc_lengths_.at(doc); }

  /// Mean document length; 0 when empty.
  double average_doc_length() const;

  /// Postings for `term`; empty when unseen. Postings are ordered by doc
  /// id (documents are appended in order).
  const std::vector<Posting>& PostingsFor(const std::string& term) const;

  /// Number of documents containing `term`.
  size_t DocumentFrequency(const std::string& term) const {
    return PostingsFor(term).size();
  }

  /// All indexed terms (unordered).
  std::vector<std::string> Terms() const;

 private:
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<size_t> doc_lengths_;
  static const std::vector<Posting> kEmptyPostings;
};

}  // namespace lakeorg
