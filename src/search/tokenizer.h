// Tokenization for the keyword-search engine (section 4.4 comparison
// system): lowercase, alphanumeric word splitting, stopword removal.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lakeorg {

/// Options for Tokenize.
struct TokenizerOptions {
  /// Drop tokens shorter than this.
  size_t min_token_length = 2;
  /// Drop common English stopwords.
  bool remove_stopwords = true;
};

/// Splits `text` into lowercase alphanumeric tokens.
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options = {});

/// True iff `token` (lowercase) is a stopword.
bool IsStopword(const std::string& token);

}  // namespace lakeorg
