// TableSearchEngine: the keyword-search comparison system of section 4.4.
// Indexes each table as one document over its metadata (name, title,
// description, tags, attribute names) and a sample of attribute values,
// ranks with BM25, and optionally expands queries with embedding-similar
// terms (the GloVe role). Users of the paper's prototype could disable
// expansion; Search takes the same toggle.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lake/data_lake.h"
#include "search/bm25.h"
#include "search/query_expansion.h"
#include "search/tokenizer.h"

namespace lakeorg {

/// Options for TableSearchEngine.
struct SearchEngineOptions {
  Bm25Params bm25;
  TokenizerOptions tokenizer;
  QueryExpansionOptions expansion;
  /// Values per attribute folded into the document (caps index size).
  size_t max_values_per_attribute = 50;
};

/// One table hit.
struct TableHit {
  TableId table = 0;
  double score = 0.0;
};

/// Keyword search over a data lake's tables.
class TableSearchEngine {
 public:
  /// Indexes `lake` (borrowed; must outlive the engine). `store` powers
  /// query expansion and may be null to disable it.
  TableSearchEngine(const DataLake* lake,
                    std::shared_ptr<const EmbeddingStore> store,
                    SearchEngineOptions options = {});

  /// Runs a keyword query; returns up to `k` tables by descending BM25
  /// score. `expand` toggles embedding query expansion.
  std::vector<TableHit> Search(const std::string& query, size_t k,
                               bool expand = true) const;

  /// Number of indexed tables.
  size_t num_documents() const { return index_.num_documents(); }

  /// The underlying inverted index (for tests/inspection).
  const InvertedIndex& index() const { return index_; }

 private:
  const DataLake* lake_;
  SearchEngineOptions options_;
  InvertedIndex index_;
  std::vector<TableId> doc_to_table_;
  std::unique_ptr<QueryExpander> expander_;
};

}  // namespace lakeorg
