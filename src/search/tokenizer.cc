#include "search/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace lakeorg {
namespace {

const std::unordered_set<std::string>& Stopwords() {
  static const std::unordered_set<std::string> kStopwords = {
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",
      "for",  "from", "has",  "have", "in",   "is",   "it",   "its",
      "of",   "on",   "or",   "that", "the",  "this", "to",   "was",
      "were", "will", "with", "not",  "but",  "they", "you",  "we",
      "which", "their", "about", "into", "than", "then", "these"};
  return kStopwords;
}

}  // namespace

bool IsStopword(const std::string& token) {
  return Stopwords().count(token) > 0;
}

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&tokens, &current, &options]() {
    if (current.size() >= options.min_token_length &&
        (!options.remove_stopwords || !IsStopword(current))) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char ch : text) {
    unsigned char uc = static_cast<unsigned char>(ch);
    if (std::isalnum(uc)) {
      current.push_back(
          static_cast<char>(std::tolower(uc)));
    } else if (ch == '_' || ch == '\'') {
      // Treat as intra-word separators that merge ("smart_city" stays one
      // concept only when split): split on them.
      flush();
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace lakeorg
