#include "search/engine.h"

#include <algorithm>

namespace lakeorg {

TableSearchEngine::TableSearchEngine(
    const DataLake* lake, std::shared_ptr<const EmbeddingStore> store,
    SearchEngineOptions options)
    : lake_(lake), options_(options) {
  // One document per table: metadata + attribute names + value samples.
  // Tombstoned tables (live lake evolution) are not indexed.
  for (const Table& table : lake_->tables()) {
    if (table.removed) continue;
    std::vector<std::string> tokens;
    auto add_text = [this, &tokens](const std::string& text) {
      std::vector<std::string> ts = Tokenize(text, options_.tokenizer);
      tokens.insert(tokens.end(), ts.begin(), ts.end());
    };
    add_text(table.name);
    add_text(table.title);
    add_text(table.description);
    for (TagId t : table.tags) add_text(lake_->tag_name(t));
    for (AttributeId aid : table.attributes) {
      const Attribute& attr = lake_->attribute(aid);
      add_text(attr.name);
      size_t limit =
          std::min(options_.max_values_per_attribute, attr.values.size());
      for (size_t i = 0; i < limit; ++i) add_text(attr.values[i]);
    }
    DocId doc = index_.AddDocument(tokens);
    (void)doc;
    doc_to_table_.push_back(table.id);
  }
  if (store != nullptr) {
    expander_ = std::make_unique<QueryExpander>(
        std::move(store), index_.Terms(), options_.expansion);
  }
}

std::vector<TableHit> TableSearchEngine::Search(const std::string& query,
                                                size_t k, bool expand) const {
  std::vector<std::string> terms = Tokenize(query, options_.tokenizer);
  std::vector<double> weights;
  if (expand && expander_ != nullptr) {
    ExpandedQuery expanded = expander_->Expand(terms);
    terms = std::move(expanded.terms);
    weights = std::move(expanded.weights);
  }
  Bm25Scorer scorer(&index_, options_.bm25);
  std::vector<SearchHit> hits = scorer.TopK(terms, k, weights);
  std::vector<TableHit> out;
  out.reserve(hits.size());
  for (const SearchHit& h : hits) {
    out.push_back(TableHit{doc_to_table_[h.doc], h.score});
  }
  return out;
}

}  // namespace lakeorg
