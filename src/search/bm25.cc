#include "search/bm25.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

namespace lakeorg {

double Bm25Scorer::Idf(const std::string& term) const {
  double n = static_cast<double>(index_->num_documents());
  double df = static_cast<double>(index_->DocumentFrequency(term));
  // log((N - df + 0.5) / (df + 0.5) + 1) is always positive.
  return std::log((n - df + 0.5) / (df + 0.5) + 1.0);
}

std::vector<SearchHit> Bm25Scorer::TopK(
    const std::vector<std::string>& terms, size_t k,
    const std::vector<double>& weights) const {
  assert(weights.empty() || weights.size() == terms.size());
  double avgdl = index_->average_doc_length();
  std::unordered_map<DocId, double> scores;
  for (size_t i = 0; i < terms.size(); ++i) {
    const std::string& term = terms[i];
    double weight = weights.empty() ? 1.0 : weights[i];
    if (weight <= 0.0) continue;
    double idf = Idf(term);
    for (const Posting& p : index_->PostingsFor(term)) {
      double tf = static_cast<double>(p.term_frequency);
      double dl = static_cast<double>(index_->doc_length(p.doc));
      double denom =
          tf + params_.k1 * (1.0 - params_.b +
                             params_.b * (avgdl > 0.0 ? dl / avgdl : 1.0));
      scores[p.doc] += weight * idf * tf * (params_.k1 + 1.0) / denom;
    }
  }
  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    hits.push_back(SearchHit{doc, score});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace lakeorg
