#include "search/inverted_index.h"

#include <map>

namespace lakeorg {

const std::vector<Posting> InvertedIndex::kEmptyPostings = {};

DocId InvertedIndex::AddDocument(const std::vector<std::string>& tokens) {
  DocId doc = static_cast<DocId>(doc_lengths_.size());
  doc_lengths_.push_back(tokens.size());
  std::map<std::string, uint32_t> counts;
  for (const std::string& t : tokens) ++counts[t];
  for (const auto& [term, tf] : counts) {
    postings_[term].push_back(Posting{doc, tf});
  }
  return doc;
}

double InvertedIndex::average_doc_length() const {
  if (doc_lengths_.empty()) return 0.0;
  size_t total = 0;
  for (size_t len : doc_lengths_) total += len;
  return static_cast<double>(total) /
         static_cast<double>(doc_lengths_.size());
}

const std::vector<Posting>& InvertedIndex::PostingsFor(
    const std::string& term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? kEmptyPostings : it->second;
}

std::vector<std::string> InvertedIndex::Terms() const {
  std::vector<std::string> terms;
  terms.reserve(postings_.size());
  for (const auto& [term, _] : postings_) terms.push_back(term);
  return terms;
}

}  // namespace lakeorg
