// Average-linkage (UPGMA) agglomerative hierarchical clustering over cosine
// distance. The paper uses it twice: to build the binary "clustering"
// organization over tag states (section 4.3.1) and as the initial
// organization handed to local search (section 3.3).
//
// Implemented with the nearest-neighbor-chain algorithm, O(n^2) time and
// memory, which is exact for reducible linkages such as average linkage.
#pragma once

#include <cstddef>
#include <vector>

#include "embedding/vector_ops.h"

namespace lakeorg {

/// One merge step of a dendrogram. Node ids: [0, n) are the input items
/// (leaves); merge i creates node n + i.
struct DendrogramMerge {
  /// Ids of the two merged nodes.
  size_t left = 0;
  size_t right = 0;
  /// Linkage distance at which the merge happened.
  double height = 0.0;
  /// Number of leaves under the merged node.
  size_t size = 0;
};

/// A full binary merge tree over n items (n - 1 merges).
struct Dendrogram {
  /// Number of clustered items.
  size_t num_items = 0;
  /// Merges in the order they were performed; merges[i] creates node
  /// num_items + i.
  std::vector<DendrogramMerge> merges;

  /// Id of the final (root) node; for n == 1 this is item 0.
  size_t Root() const {
    return merges.empty() ? 0 : num_items + merges.size() - 1;
  }

  /// Total number of nodes (leaves + merges).
  size_t NumNodes() const { return num_items + merges.size(); }

  /// Flat cluster assignment obtained by cutting into `k` clusters
  /// (undoing the last k - 1 merges). assignment[i] in [0, k).
  std::vector<int> Cut(size_t k) const;
};

/// Clusters `items` bottom-up with average linkage over cosine distance.
/// Requires items.size() >= 1; all vectors share one dimension.
Dendrogram AgglomerativeCluster(const std::vector<Vec>& items);

/// As above but over a caller-supplied condensed pairwise distance matrix:
/// dist(i, j) = distances[i * n + j] (symmetric, zero diagonal).
Dendrogram AgglomerativeClusterFromDistances(
    const std::vector<double>& distances, size_t n);

}  // namespace lakeorg
