#include "cluster/agglomerative.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace lakeorg {
namespace {

/// Union-find over dendrogram construction, mapping each component root to
/// its current dendrogram node id.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), node_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
    std::iota(node_.begin(), node_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the components of a and b; the new component is labeled with
  /// dendrogram node `node_id`. Returns the merged leaf count.
  size_t Union(size_t a, size_t b, size_t node_id) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    assert(ra != rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    node_[ra] = node_id;
    return size_[ra];
  }

  /// Dendrogram node id of x's component.
  size_t NodeOf(size_t x) { return node_[Find(x)]; }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> node_;
  std::vector<size_t> size_;
};

struct RawMerge {
  size_t leaf_a;
  size_t leaf_b;
  double height;
};

}  // namespace

std::vector<int> Dendrogram::Cut(size_t k) const {
  assert(k >= 1);
  std::vector<int> assignment(num_items, 0);
  if (num_items == 0) return assignment;
  k = std::min(k, num_items);

  // Apply all but the last (k - 1) merges, then label components. Merges
  // reference dendrogram node ids; for union-find we track a representative
  // leaf per node id, which stays a member of every merged supercluster.
  size_t applied = merges.size() >= (k - 1) ? merges.size() - (k - 1) : 0;
  std::vector<int> labels(num_items, -1);
  UnionFind uf(num_items);
  std::vector<size_t> rep(num_items + merges.size());
  for (size_t i = 0; i < num_items; ++i) rep[i] = i;
  for (size_t i = 0; i < applied; ++i) {
    size_t la = rep[merges[i].left];
    size_t lb = rep[merges[i].right];
    uf.Union(la, lb, num_items + i);
    rep[num_items + i] = la;
  }
  int next = 0;
  for (size_t i = 0; i < num_items; ++i) {
    size_t root = uf.Find(i);
    if (labels[root] == -1) labels[root] = next++;
    assignment[i] = labels[root];
  }
  return assignment;
}

Dendrogram AgglomerativeClusterFromDistances(
    const std::vector<double>& distances, size_t n) {
  assert(n >= 1);
  assert(distances.size() == n * n);
  Dendrogram out;
  out.num_items = n;
  if (n == 1) return out;

  // Working copies: slot-based distance matrix with Lance-Williams
  // average-linkage updates; a merged pair keeps the lower slot.
  std::vector<double> d = distances;
  std::vector<char> active(n, 1);
  std::vector<size_t> size(n, 1);
  std::vector<size_t> rep(n);  // A leaf that lives in each slot's cluster.
  std::iota(rep.begin(), rep.end(), size_t{0});

  auto dist = [&d, n](size_t i, size_t j) -> double { return d[i * n + j]; };
  auto set_dist = [&d, n](size_t i, size_t j, double v) {
    d[i * n + j] = v;
    d[j * n + i] = v;
  };

  std::vector<RawMerge> raw;
  raw.reserve(n - 1);
  std::vector<size_t> chain;
  chain.reserve(n);

  size_t remaining = n;
  while (remaining > 1) {
    if (chain.empty()) {
      for (size_t i = 0; i < n; ++i) {
        if (active[i]) {
          chain.push_back(i);
          break;
        }
      }
    }
    for (;;) {
      size_t top = chain.back();
      // Nearest active neighbor of `top` (ties broken toward the chain's
      // previous element so reciprocity is detected).
      size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : n;
      size_t best = n;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < n; ++j) {
        if (!active[j] || j == top) continue;
        double dj = dist(top, j);
        if (dj < best_d || (dj == best_d && j == prev)) {
          best_d = dj;
          best = j;
        }
      }
      assert(best != n);
      if (best == prev) {
        // Reciprocal nearest neighbors: merge top and prev into prev's slot.
        chain.pop_back();
        chain.pop_back();
        size_t a = prev;
        size_t b = top;
        raw.push_back(RawMerge{rep[a], rep[b], best_d});
        double sa = static_cast<double>(size[a]);
        double sb = static_cast<double>(size[b]);
        for (size_t k = 0; k < n; ++k) {
          if (!active[k] || k == a || k == b) continue;
          set_dist(a, k, (sa * dist(a, k) + sb * dist(b, k)) / (sa + sb));
        }
        size[a] += size[b];
        active[b] = 0;
        --remaining;
        break;
      }
      chain.push_back(best);
    }
  }

  // Sort merges by height (valid for reducible linkages) and relabel with
  // union-find, scipy-style.
  std::stable_sort(raw.begin(), raw.end(),
                   [](const RawMerge& x, const RawMerge& y) {
                     return x.height < y.height;
                   });
  UnionFind uf(n);
  out.merges.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    DendrogramMerge m;
    m.left = uf.NodeOf(raw[i].leaf_a);
    m.right = uf.NodeOf(raw[i].leaf_b);
    m.height = raw[i].height;
    m.size = uf.Union(raw[i].leaf_a, raw[i].leaf_b, n + i);
    out.merges.push_back(m);
  }
  return out;
}

Dendrogram AgglomerativeCluster(const std::vector<Vec>& items) {
  size_t n = items.size();
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double dij = CosineDistance(items[i], items[j]);
      d[i * n + j] = dij;
      d[j * n + i] = dij;
    }
  }
  return AgglomerativeClusterFromDistances(d, n);
}

}  // namespace lakeorg
