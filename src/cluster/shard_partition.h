// Topic-shard partitioning of a lake's tag space: k-medoids over tag
// topic vectors, shared by the multi-dimensional builder (section 2.5,
// one organization per cluster) and the sharded optimizer (one shard DAG
// per cluster, stitched under a synthetic lake root afterwards).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/kmedoids.h"
#include "lake/tag_index.h"

namespace lakeorg {

/// Options for PartitionTagsByTopic.
struct ShardPartitionOptions {
  /// Requested number of shards; clamped to the number of non-empty tags.
  /// 0 derives the count from target_tags_per_shard.
  size_t shards = 0;
  /// When shards == 0: shards = ceil(num_tags / target_tags_per_shard).
  size_t target_tags_per_shard = 96;
  /// Seed of the k-medoids run (the partition is deterministic in it and
  /// independent of any thread count).
  uint64_t seed = 99;
  KMedoidsOptions kmedoids;
};

/// Partitions `index`'s non-empty tags into topic shards with k-medoids
/// over `TagTopicVector`. Returns non-empty groups of lake tag ids; with
/// one shard (or one tag) the single group is NonEmptyTags() verbatim, in
/// index order. Deterministic for a fixed seed: the RNG draw sequence
/// depends only on the tag list and options, never on threads.
std::vector<std::vector<TagId>> PartitionTagsByTopic(
    const TagIndex& index, const ShardPartitionOptions& options);

}  // namespace lakeorg
