#include "cluster/shard_partition.h"

#include <algorithm>
#include <cassert>

namespace lakeorg {

std::vector<std::vector<TagId>> PartitionTagsByTopic(
    const TagIndex& index, const ShardPartitionOptions& options) {
  const std::vector<TagId>& tags = index.NonEmptyTags();
  assert(!tags.empty());
  size_t requested = options.shards;
  if (requested == 0) {
    size_t per_shard = std::max<size_t>(1, options.target_tags_per_shard);
    requested = (tags.size() + per_shard - 1) / per_shard;
  }
  size_t k = std::min(requested, tags.size());

  std::vector<std::vector<TagId>> partition(std::max<size_t>(1, k));
  if (k <= 1) {
    partition[0] = tags;
    return partition;
  }
  std::vector<Vec> items;
  items.reserve(tags.size());
  for (TagId t : tags) items.push_back(index.TagTopicVector(t));
  Rng rng(options.seed);
  KMedoidsResult clusters = KMedoids(items, k, &rng, options.kmedoids);
  partition.assign(clusters.medoids.size(), {});
  for (size_t i = 0; i < tags.size(); ++i) {
    partition[static_cast<size_t>(clusters.assignment[i])].push_back(
        tags[i]);
  }
  // Drop empty clusters (possible when duplicated medoids collapse).
  partition.erase(std::remove_if(partition.begin(), partition.end(),
                                 [](const std::vector<TagId>& p) {
                                   return p.empty();
                                 }),
                  partition.end());
  return partition;
}

}  // namespace lakeorg
