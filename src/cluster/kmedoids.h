// k-medoids clustering over cosine distance. The paper partitions a lake's
// tags into k groups with k-medoids before building one organization per
// group (sections 2.5 and 4.3.4), and the representative-approximation uses
// medoids of attribute partitions as representatives (section 3.4).
//
// Implemented as Voronoi iteration (alternate k-medoids): k-means++-style
// seeding, then alternate (assign to nearest medoid, re-pick each cluster's
// cost-minimizing member) until stable. Exact PAM is O(k (n-k)^2) per
// sweep and does not scale to data-lake tag counts.
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "embedding/vector_ops.h"

namespace lakeorg {

/// Result of a k-medoids run.
struct KMedoidsResult {
  /// Item indices chosen as medoids (size <= k when n < k).
  std::vector<size_t> medoids;
  /// assignment[i] = cluster index in [0, medoids.size()).
  std::vector<int> assignment;
  /// Sum of distances from items to their medoid.
  double total_cost = 0.0;
  /// Voronoi iterations performed.
  size_t iterations = 0;
};

/// Options for KMedoids.
struct KMedoidsOptions {
  /// Maximum Voronoi iterations.
  size_t max_iterations = 50;
  /// Independent restarts; the lowest-cost run wins.
  size_t restarts = 2;
};

/// Clusters `items` into `k` groups by cosine distance. Deterministic given
/// `rng`'s state. Requires k >= 1.
KMedoidsResult KMedoids(const std::vector<Vec>& items, size_t k, Rng* rng,
                        const KMedoidsOptions& options = {});

}  // namespace lakeorg
