#include "cluster/kmedoids.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace lakeorg {
namespace {

KMedoidsResult RunOnce(const std::vector<Vec>& items, size_t k, Rng* rng,
                       const KMedoidsOptions& options) {
  size_t n = items.size();
  KMedoidsResult result;

  // Norms are reused across every pairwise distance below; CosineWithNorms
  // evaluates the exact expression Cosine does, so caching them keeps
  // every distance bit-identical to the uncached path.
  std::vector<double> norm(n);
  for (size_t i = 0; i < n; ++i) norm[i] = Norm(items[i]);
  auto dist = [&items, &norm](size_t a, size_t b) {
    return (1.0 - CosineWithNorms(items[a], norm[a], items[b], norm[b])) /
           2.0;
  };

  // k-means++-style seeding: first medoid uniform, then proportional to
  // distance-to-nearest-chosen. nearest[] is maintained incrementally —
  // adding a medoid can only lower a point's nearest distance, and min is
  // exact, so each round sees bit-identical values to a full recompute
  // while the seeding stays O(n*k) distances instead of O(n*k^2) (which
  // dominated sharded-scale representative selection, where k is a
  // fraction of n).
  std::vector<size_t> medoids;
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  auto add_medoid = [&](size_t m) {
    medoids.push_back(m);
    for (size_t i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i], dist(i, m));
    }
  };
  add_medoid(static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(n - 1))));
  while (medoids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += nearest[i];
    size_t pick;
    if (total <= 0.0) {
      pick = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(n - 1)));
    } else {
      pick = rng->Categorical(nearest);
    }
    if (std::find(medoids.begin(), medoids.end(), pick) == medoids.end()) {
      add_medoid(pick);
    } else {
      // Duplicate (all mass on chosen points); fall back to first unused.
      for (size_t i = 0; i < n; ++i) {
        if (std::find(medoids.begin(), medoids.end(), i) == medoids.end()) {
          add_medoid(i);
          break;
        }
      }
    }
  }

  std::vector<int> assignment(n, 0);
  double cost = 0.0;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assign.
    cost = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < medoids.size(); ++c) {
        double d = dist(i, medoids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      assignment[i] = best_c;
      cost += best;
    }
    // Update: each cluster's cost-minimizing member becomes its medoid.
    bool changed = false;
    std::vector<std::vector<size_t>> members(medoids.size());
    for (size_t i = 0; i < n; ++i) {
      members[static_cast<size_t>(assignment[i])].push_back(i);
    }
    for (size_t c = 0; c < medoids.size(); ++c) {
      const std::vector<size_t>& ms = members[c];
      if (ms.empty()) {
        // Reseed an emptied cluster deterministically: move its medoid to
        // the non-medoid point farthest from every current medoid. Leaving
        // the stale medoid in place collapses the clustering below k.
        double far_dist = -1.0;
        size_t far_i = medoids[c];
        for (size_t i = 0; i < n; ++i) {
          if (std::find(medoids.begin(), medoids.end(), i) != medoids.end()) {
            continue;
          }
          double nearest_m = std::numeric_limits<double>::infinity();
          for (size_t m : medoids) {
            nearest_m = std::min(nearest_m, dist(i, m));
          }
          if (nearest_m > far_dist) {
            far_dist = nearest_m;
            far_i = i;
          }
        }
        if (far_i != medoids[c]) {
          medoids[c] = far_i;
          changed = true;
        }
        continue;
      }
      double best_cost = std::numeric_limits<double>::infinity();
      size_t best_m = medoids[c];
      for (size_t cand : ms) {
        double cand_cost = 0.0;
        for (size_t other : ms) {
          cand_cost += dist(cand, other);
          if (cand_cost >= best_cost) break;
        }
        if (cand_cost < best_cost) {
          best_cost = cand_cost;
          best_m = cand;
        }
      }
      if (best_m != medoids[c]) {
        medoids[c] = best_m;
        changed = true;
      }
    }
    if (!changed) break;
  }

  result.medoids = std::move(medoids);
  result.assignment = std::move(assignment);
  result.total_cost = cost;
  return result;
}

}  // namespace

KMedoidsResult KMedoids(const std::vector<Vec>& items, size_t k, Rng* rng,
                        const KMedoidsOptions& options) {
  assert(k >= 1);
  size_t n = items.size();
  KMedoidsResult best;
  if (n == 0) return best;
  k = std::min(k, n);

  best.total_cost = std::numeric_limits<double>::infinity();
  size_t restarts = std::max<size_t>(1, options.restarts);
  for (size_t r = 0; r < restarts; ++r) {
    KMedoidsResult run = RunOnce(items, k, rng, options);
    if (run.total_cost < best.total_cost) best = std::move(run);
  }
  return best;
}

}  // namespace lakeorg
