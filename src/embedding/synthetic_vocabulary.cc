#include "embedding/synthetic_vocabulary.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace lakeorg {
namespace {

// Pronounceable word synthesis: deterministic syllable strings, so the BM25
// engine and labels operate on plausible "words" rather than raw ids.
const char* const kOnsets[] = {"b", "d", "f", "g", "k", "l", "m",
                               "n", "p", "r", "s", "t", "v", "z"};
const char* const kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ou"};

std::string MakeWord(Rng* rng, size_t syllables) {
  std::string w;
  for (size_t i = 0; i < syllables; ++i) {
    w += kOnsets[rng->UniformInt(0, 13)];
    w += kNuclei[rng->UniformInt(0, 6)];
  }
  return w;
}

Vec RandomUnitVec(Rng* rng, size_t dim) {
  Vec v(dim);
  for (float& x : v) x = static_cast<float>(rng->Gaussian());
  NormalizeInPlace(&v);
  return v;
}

}  // namespace

SyntheticVocabulary::SyntheticVocabulary(SyntheticVocabularyOptions options)
    : options_(options) {
  assert(options_.dim >= 2);
  assert(options_.num_topics >= 1);
  Rng rng(options_.seed);

  // Sample topic centers with bounded pairwise cosine. Rejection sampling
  // with a fallback: after too many failures, relax the bound slightly so
  // construction always terminates (relevant for high topic counts in a
  // low dimension).
  double bound = options_.max_center_cosine;
  int failures = 0;
  while (centers_.size() < options_.num_topics) {
    Vec candidate = RandomUnitVec(&rng, options_.dim);
    bool accepted = true;
    for (const Vec& c : centers_) {
      if (Cosine(candidate, c) > bound) {
        accepted = false;
        break;
      }
    }
    if (accepted) {
      centers_.push_back(std::move(candidate));
      failures = 0;
    } else if (++failures > 2000) {
      bound += 0.05;
      failures = 0;
    }
  }

  // Generate words around each center.
  size_t total = options_.num_topics * options_.words_per_topic;
  words_.reserve(total);
  vectors_.reserve(total);
  topic_of_.reserve(total);
  for (size_t t = 0; t < options_.num_topics; ++t) {
    for (size_t w = 0; w < options_.words_per_topic; ++w) {
      Vec v = centers_[t];
      for (float& x : v) {
        x += static_cast<float>(rng.Gaussian() * options_.word_noise);
      }
      NormalizeInPlace(&v);
      // Unique word string: pronounceable stem + disambiguating suffix.
      std::string word;
      do {
        word = MakeWord(&rng, 2 + static_cast<size_t>(rng.UniformInt(0, 1)));
      } while (index_.count(word) > 0 && word.size() < 24);
      if (index_.count(word) > 0) {
        word += "_" + std::to_string(words_.size());
      }
      index_.emplace(word, words_.size());
      words_.push_back(std::move(word));
      vectors_.push_back(std::move(v));
      topic_of_.push_back(t);
    }
  }
}

std::optional<Vec> SyntheticVocabulary::Embed(const std::string& word) const {
  auto it = index_.find(word);
  if (it == index_.end()) return std::nullopt;
  return vectors_[it->second];
}

std::optional<size_t> SyntheticVocabulary::IndexOf(
    const std::string& word) const {
  auto it = index_.find(word);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<size_t> SyntheticVocabulary::NearestWords(const Vec& query,
                                                      size_t k) const {
  return NearestWords(query, k, {});
}

std::vector<size_t> SyntheticVocabulary::NearestWords(
    const Vec& query, size_t k, const std::vector<size_t>& exclude) const {
  std::vector<char> skip(vectors_.size(), 0);
  for (size_t e : exclude) {
    if (e < skip.size()) skip[e] = 1;
  }
  // Min-heap of (similarity, index) keeping the k best.
  using Entry = std::pair<double, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (size_t i = 0; i < vectors_.size(); ++i) {
    if (skip[i]) continue;
    double sim = Cosine(query, vectors_[i]);
    if (heap.size() < k) {
      heap.emplace(sim, i);
    } else if (!heap.empty() && sim > heap.top().first) {
      heap.pop();
      heap.emplace(sim, i);
    }
  }
  std::vector<size_t> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

std::vector<size_t> SyntheticVocabulary::SampleSeparatedWords(
    size_t m, double max_pairwise_cosine, Rng* rng) const {
  std::vector<size_t> order(vectors_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  std::vector<size_t> chosen;
  chosen.reserve(m);
  for (size_t idx : order) {
    bool accepted = true;
    for (size_t c : chosen) {
      if (Cosine(vectors_[idx], vectors_[c]) > max_pairwise_cosine) {
        accepted = false;
        break;
      }
    }
    if (accepted) {
      chosen.push_back(idx);
      if (chosen.size() == m) break;
    }
  }
  return chosen;
}

}  // namespace lakeorg
