#include "embedding/hashed_embedding.h"

#include <cctype>

#include "common/string_util.h"

namespace lakeorg {
namespace {

// 64-bit FNV-1a over a byte string mixed with a seed; stable across runs.
uint64_t HashNgram(const char* data, size_t len, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  // Final avalanche (splitmix64 tail) so low bits are well mixed.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

bool IsNumericWord(const std::string& w) {
  bool any_digit = false;
  for (char c : w) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isdigit(uc)) {
      any_digit = true;
    } else if (uc != '.' && uc != '-' && uc != '+' && uc != ',') {
      return false;
    }
  }
  return any_digit;
}

}  // namespace

HashedEmbedding::HashedEmbedding(HashedEmbeddingOptions options)
    : options_(options) {}

std::optional<Vec> HashedEmbedding::Embed(const std::string& word) const {
  std::string w = ToLower(Trim(word));
  if (w.size() < options_.min_word_length) return std::nullopt;
  if (options_.reject_numeric && IsNumericWord(w)) return std::nullopt;

  // Boundary markers give n-grams positional information, as in fastText.
  std::string padded = "<" + w + ">";
  Vec v(options_.dim, 0.0f);
  size_t ngrams = 0;
  for (size_t n = options_.min_ngram; n <= options_.max_ngram; ++n) {
    if (padded.size() < n) break;
    for (size_t i = 0; i + n <= padded.size(); ++i) {
      uint64_t h = HashNgram(padded.data() + i, n, options_.seed);
      size_t coord = h % options_.dim;
      float sign = ((h >> 32) & 1) ? 1.0f : -1.0f;
      v[coord] += sign;
      ++ngrams;
    }
  }
  if (ngrams == 0) return std::nullopt;
  NormalizeInPlace(&v);
  return v;
}

}  // namespace lakeorg
