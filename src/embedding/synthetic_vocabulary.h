// A synthetic clustered vocabulary: the offline stand-in for the pretrained
// fastText/GloVe word-vector databases (DESIGN.md, substitution 1).
//
// Words are generated around well-separated unit-sphere topic centers, so
// cosine similarity reflects "semantic" relatedness by construction: words
// in one topic are close to each other and to their center; words in
// different topics are far apart. The vocabulary supports the two
// operations the paper's pipeline needs from fastText: (a) embedding lookup
// for values, and (b) k-nearest-words queries (used by the TagCloud
// generator to synthesize attribute domains, section 4.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "embedding/embedding_model.h"

namespace lakeorg {

/// Options controlling the synthetic vocabulary geometry.
struct SyntheticVocabularyOptions {
  /// Embedding dimension.
  size_t dim = 50;
  /// Number of topic clusters.
  size_t num_topics = 48;
  /// Words generated per topic.
  size_t words_per_topic = 48;
  /// Maximum cosine allowed between two topic centers (rejection-sampled).
  double max_center_cosine = 0.35;
  /// Gaussian noise scale for words around their center; smaller values
  /// give tighter topics.
  double word_noise = 0.35;
  /// RNG seed; the vocabulary is fully determined by its options.
  uint64_t seed = 7;
};

/// Deterministic clustered word-vector vocabulary. Thread-safe after
/// construction.
class SyntheticVocabulary final : public EmbeddingModel {
 public:
  explicit SyntheticVocabulary(SyntheticVocabularyOptions options = {});

  // EmbeddingModel:
  size_t dim() const override { return options_.dim; }
  std::optional<Vec> Embed(const std::string& word) const override;

  /// Number of words.
  size_t size() const { return words_.size(); }

  /// The i-th word string.
  const std::string& word(size_t i) const { return words_[i]; }

  /// All word strings, index-aligned with vector(i).
  const std::vector<std::string>& words() const { return words_; }

  /// The i-th word vector (unit norm).
  const Vec& vector(size_t i) const { return vectors_[i]; }

  /// Topic id of the i-th word.
  size_t topic_of(size_t i) const { return topic_of_[i]; }

  /// The unit-norm center of topic `t`.
  const Vec& topic_center(size_t t) const { return centers_[t]; }

  /// Number of topics.
  size_t num_topics() const { return centers_.size(); }

  /// Word index for `word`, or nullopt when out of vocabulary.
  std::optional<size_t> IndexOf(const std::string& word) const;

  /// Indices of the k words most cosine-similar to `query`, descending by
  /// similarity (exact scan). `exclude` (optional, sorted not required) is
  /// removed from candidates.
  std::vector<size_t> NearestWords(const Vec& query, size_t k) const;
  std::vector<size_t> NearestWords(const Vec& query, size_t k,
                                   const std::vector<size_t>& exclude) const;

  /// Samples `m` word indices whose pairwise cosine does not exceed
  /// `max_pairwise_cosine` (greedy rejection; the TagCloud tag-sampling
  /// procedure "choosing a sample of words ... that are not very close").
  /// Returns fewer than `m` if the vocabulary cannot supply them.
  std::vector<size_t> SampleSeparatedWords(size_t m,
                                           double max_pairwise_cosine,
                                           Rng* rng) const;

 private:
  SyntheticVocabularyOptions options_;
  std::vector<Vec> centers_;
  std::vector<std::string> words_;
  std::vector<Vec> vectors_;
  std::vector<size_t> topic_of_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace lakeorg
