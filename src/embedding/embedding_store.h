// EmbeddingStore: memoizing facade over an EmbeddingModel that computes the
// topic vectors of attribute domains (section 3.1: an attribute is
// represented by the sample mean of its values' embedding vectors) and
// tracks vocabulary coverage (the paper reports ~70% value coverage).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "embedding/embedding_model.h"

namespace lakeorg {

/// Coverage statistics from topic-vector computation.
struct CoverageStats {
  /// Values seen (with multiplicity collapsed per call site).
  size_t total_values = 0;
  /// Values that had an embedding.
  size_t embedded_values = 0;

  /// Fraction of values with an embedding; 1.0 for an empty population.
  double Coverage() const {
    return total_values == 0
               ? 1.0
               : static_cast<double>(embedded_values) /
                     static_cast<double>(total_values);
  }
};

/// Memoizing embedding lookup + domain aggregation. Thread-safe.
class EmbeddingStore {
 public:
  /// Wraps `model` (not owned by value semantics; shared).
  explicit EmbeddingStore(std::shared_ptr<const EmbeddingModel> model);

  /// Embedding dimension.
  size_t dim() const { return model_->dim(); }

  /// Cached lookup of a single word.
  std::optional<Vec> Embed(const std::string& word) const;

  /// Accumulates the embeddable values of `values` into `acc` and updates
  /// the store-wide coverage statistics. Returns the number of values that
  /// had embeddings.
  size_t AccumulateDomain(const std::vector<std::string>& values,
                          TopicAccumulator* acc) const;

  /// Topic vector (sample mean) of a domain; all-zero when nothing embeds.
  Vec DomainTopicVector(const std::vector<std::string>& values) const;

  /// Store-wide coverage counters across all AccumulateDomain calls.
  CoverageStats coverage() const;

  /// The wrapped model.
  const EmbeddingModel& model() const { return *model_; }

 private:
  std::shared_ptr<const EmbeddingModel> model_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, std::optional<Vec>> cache_;
  mutable CoverageStats coverage_;
};

}  // namespace lakeorg
