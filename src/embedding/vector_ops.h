// Dense-vector kernels. Topic vectors (section 3.1) are sample means of
// word-embedding vectors; transition similarity kappa is cosine.
#pragma once

#include <cstddef>
#include <vector>

namespace lakeorg {

/// Embedding vector type used across the library.
using Vec = std::vector<float>;

/// Dot product. Requires equal dimensions.
double Dot(const Vec& a, const Vec& b);

/// Euclidean (L2) norm.
double Norm(const Vec& a);

/// Cosine similarity in [-1, 1]; 0 when either vector is all-zero.
double Cosine(const Vec& a, const Vec& b);

/// Cosine via precomputed norms (0 when either norm is zero). The hot-path
/// kernel behind the evaluators and the serving-layer transition rows:
/// using it with cached norms is bit-identical to every other caller, so
/// cached and recomputed rows compare exactly.
double CosineWithNorms(const Vec& a, double norm_a, const Vec& b,
                       double norm_b);

/// Angular distance derived from cosine: (1 - cosine) / 2, in [0, 1].
double CosineDistance(const Vec& a, const Vec& b);

/// a += b. Requires equal dimensions.
void AddInPlace(Vec* a, const Vec& b);

/// a *= s.
void ScaleInPlace(Vec* a, float s);

/// Normalizes `a` to unit L2 norm; leaves an all-zero vector unchanged.
void NormalizeInPlace(Vec* a);

/// Returns a + b.
Vec Add(const Vec& a, const Vec& b);

/// Accumulates value vectors and yields their sample mean (the "topic
/// vector" of Definition 4). Supports merging, which is how interior-state
/// topic vectors are assembled from attribute-level accumulators.
class TopicAccumulator {
 public:
  /// Creates an accumulator for `dim`-dimensional vectors.
  explicit TopicAccumulator(size_t dim = 0) : sum_(dim, 0.0f) {}

  /// Adds one sample.
  void Add(const Vec& v);

  /// Adds a pre-summed population: `sum` over `count` samples.
  void AddSum(const Vec& sum, size_t count);

  /// Merges another accumulator's population into this one.
  void Merge(const TopicAccumulator& other) { AddSum(other.sum_, other.count_); }

  /// Number of samples accumulated.
  size_t count() const { return count_; }

  /// The running component-wise sum.
  const Vec& sum() const { return sum_; }

  /// Sample mean; all-zero when no samples were added.
  Vec Mean() const;

  /// Resets to an empty population of dimension `dim`.
  void Reset(size_t dim);

 private:
  Vec sum_;
  size_t count_ = 0;
};

}  // namespace lakeorg
