// Dense-vector kernels. Topic vectors (section 3.1) are sample means of
// word-embedding vectors; transition similarity kappa is cosine.
//
// The read-only primitives take std::span<const float> so they accept both
// owned vectors (Vec) and rows of the organization's packed struct-of-arrays
// topic matrix without copying.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace lakeorg {

/// Embedding vector type used across the library.
using Vec = std::vector<float>;

/// Dot product. Requires equal dimensions. Defined inline: this is the
/// kernel under every cosine of the reach DP, and the call sits inside
/// the evaluators' per-child loops.
///
/// Eight fixed-lane partial sums: element i always lands in lane i % 8,
/// and the lanes fold pairwise at the end, so the summation order is
/// deterministic for a given length — but the lanes are independent, so
/// the f32->f64 multiply-add loop vectorizes instead of serializing on
/// one accumulator.
inline double Dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  const size_t n = a.size();
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t k = 0; k < 8; ++k) {
      acc[k] += static_cast<double>(a[i + k]) * static_cast<double>(b[i + k]);
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return (((acc[0] + acc[4]) + (acc[2] + acc[6])) +
          ((acc[1] + acc[5]) + (acc[3] + acc[7]))) +
         tail;
}

/// Euclidean (L2) norm.
inline double Norm(std::span<const float> a) { return std::sqrt(Dot(a, a)); }

/// Cosine similarity in [-1, 1]; 0 when either vector is all-zero.
inline double Cosine(std::span<const float> a, std::span<const float> b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  double c = Dot(a, b) / (na * nb);
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return c;
}

/// Cosine via precomputed norms (0 when either norm is zero). The hot-path
/// kernel behind the evaluators and the serving-layer transition rows:
/// using it with cached norms is bit-identical to every other caller, so
/// cached and recomputed rows compare exactly.
inline double CosineWithNorms(std::span<const float> a, double norm_a,
                              std::span<const float> b, double norm_b) {
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  double c = Dot(a, b) / (norm_a * norm_b);
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return c;
}

/// Angular distance derived from cosine: (1 - cosine) / 2, in [0, 1].
double CosineDistance(std::span<const float> a, std::span<const float> b);

/// a += b. Requires equal dimensions.
void AddInPlace(Vec* a, std::span<const float> b);

/// a += b over raw rows (the SoA topic-matrix update path).
void AddInPlace(std::span<float> a, std::span<const float> b);

/// a *= s.
void ScaleInPlace(Vec* a, float s);

/// a *= s over a raw row.
void ScaleInPlace(std::span<float> a, float s);

/// Normalizes `a` to unit L2 norm; leaves an all-zero vector unchanged.
void NormalizeInPlace(Vec* a);

/// Returns a + b.
Vec Add(const Vec& a, const Vec& b);

// Initializer-list conveniences: std::span cannot bind a brace list, so
// literal-heavy callers (tests, examples) get thin forwarding overloads.
inline std::span<const float> AsSpan(std::initializer_list<float> v) {
  return std::span<const float>(v.begin(), v.size());
}
inline double Norm(std::initializer_list<float> a) { return Norm(AsSpan(a)); }
inline double Cosine(std::initializer_list<float> a,
                     std::initializer_list<float> b) {
  return Cosine(AsSpan(a), AsSpan(b));
}
inline double CosineDistance(std::initializer_list<float> a,
                             std::initializer_list<float> b) {
  return CosineDistance(AsSpan(a), AsSpan(b));
}
inline void AddInPlace(Vec* a, std::initializer_list<float> b) {
  AddInPlace(a, AsSpan(b));
}

/// Accumulates value vectors and yields their sample mean (the "topic
/// vector" of Definition 4). Supports merging, which is how interior-state
/// topic vectors are assembled from attribute-level accumulators.
class TopicAccumulator {
 public:
  /// Creates an accumulator for `dim`-dimensional vectors.
  explicit TopicAccumulator(size_t dim = 0) : sum_(dim, 0.0f) {}

  /// Adds one sample.
  void Add(std::span<const float> v);
  void Add(std::initializer_list<float> v) { Add(AsSpan(v)); }

  /// Adds a pre-summed population: `sum` over `count` samples.
  void AddSum(std::span<const float> sum, size_t count);
  void AddSum(std::initializer_list<float> sum, size_t count) {
    AddSum(AsSpan(sum), count);
  }

  /// Merges another accumulator's population into this one.
  void Merge(const TopicAccumulator& other) { AddSum(other.sum_, other.count_); }

  /// Number of samples accumulated.
  size_t count() const { return count_; }

  /// The running component-wise sum.
  const Vec& sum() const { return sum_; }

  /// Sample mean; all-zero when no samples were added.
  Vec Mean() const;

  /// Resets to an empty population of dimension `dim`.
  void Reset(size_t dim);

 private:
  Vec sum_;
  size_t count_ = 0;
};

}  // namespace lakeorg
