// A fastText-style subword embedder built from character-n-gram feature
// hashing. It needs no external vector file: each n-gram of a word hashes
// to a signed coordinate, so morphologically similar strings land near each
// other in embedding space. This is the string-level stand-in for the
// pretrained fastText database (DESIGN.md, substitution 1).
#pragma once

#include <cstdint>
#include <string>

#include "embedding/embedding_model.h"

namespace lakeorg {

/// Options for HashedEmbedding.
struct HashedEmbeddingOptions {
  /// Embedding dimension.
  size_t dim = 64;
  /// Minimum character n-gram length.
  size_t min_ngram = 3;
  /// Maximum character n-gram length.
  size_t max_ngram = 5;
  /// Hash seed; different seeds give independent embedding spaces.
  uint64_t seed = 0x5EED5EEDULL;
  /// Words shorter than this are treated as out of vocabulary, emulating
  /// the coverage gaps of a pretrained vector file (codes, ids, numbers).
  size_t min_word_length = 2;
  /// When true, purely numeric strings are out of vocabulary; the paper
  /// builds organizations over text attributes only (section 3.1).
  bool reject_numeric = true;
};

/// Deterministic char-n-gram hashing embedder. Thread-safe.
class HashedEmbedding final : public EmbeddingModel {
 public:
  explicit HashedEmbedding(HashedEmbeddingOptions options = {});

  size_t dim() const override { return options_.dim; }
  std::optional<Vec> Embed(const std::string& word) const override;

  const HashedEmbeddingOptions& options() const { return options_; }

 private:
  HashedEmbeddingOptions options_;
};

}  // namespace lakeorg
