#include "embedding/vector_ops.h"

#include <cassert>
#include <cmath>

namespace lakeorg {

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

double Cosine(const Vec& a, const Vec& b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  double c = Dot(a, b) / (na * nb);
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return c;
}

double CosineWithNorms(const Vec& a, double norm_a, const Vec& b,
                       double norm_b) {
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  double c = Dot(a, b) / (norm_a * norm_b);
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return c;
}

double CosineDistance(const Vec& a, const Vec& b) {
  return (1.0 - Cosine(a, b)) / 2.0;
}

void AddInPlace(Vec* a, const Vec& b) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < a->size(); ++i) (*a)[i] += b[i];
}

void ScaleInPlace(Vec* a, float s) {
  for (float& x : *a) x *= s;
}

void NormalizeInPlace(Vec* a) {
  double n = Norm(*a);
  if (n == 0.0) return;
  ScaleInPlace(a, static_cast<float>(1.0 / n));
}

Vec Add(const Vec& a, const Vec& b) {
  Vec out = a;
  AddInPlace(&out, b);
  return out;
}

void TopicAccumulator::Add(const Vec& v) {
  assert(v.size() == sum_.size());
  AddInPlace(&sum_, v);
  ++count_;
}

void TopicAccumulator::AddSum(const Vec& sum, size_t count) {
  assert(sum.size() == sum_.size());
  AddInPlace(&sum_, sum);
  count_ += count;
}

Vec TopicAccumulator::Mean() const {
  Vec mean = sum_;
  if (count_ > 0) {
    ScaleInPlace(&mean, static_cast<float>(1.0 / static_cast<double>(count_)));
  }
  return mean;
}

void TopicAccumulator::Reset(size_t dim) {
  sum_.assign(dim, 0.0f);
  count_ = 0;
}

}  // namespace lakeorg
