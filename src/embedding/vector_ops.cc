#include "embedding/vector_ops.h"

#include <cassert>
#include <cmath>

namespace lakeorg {

double CosineDistance(std::span<const float> a, std::span<const float> b) {
  return (1.0 - Cosine(a, b)) / 2.0;
}

void AddInPlace(Vec* a, std::span<const float> b) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < a->size(); ++i) (*a)[i] += b[i];
}

void AddInPlace(std::span<float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void ScaleInPlace(Vec* a, float s) {
  for (float& x : *a) x *= s;
}

void ScaleInPlace(std::span<float> a, float s) {
  for (float& x : a) x *= s;
}

void NormalizeInPlace(Vec* a) {
  double n = Norm(*a);
  if (n == 0.0) return;
  ScaleInPlace(a, static_cast<float>(1.0 / n));
}

Vec Add(const Vec& a, const Vec& b) {
  Vec out = a;
  AddInPlace(&out, b);
  return out;
}

void TopicAccumulator::Add(std::span<const float> v) {
  assert(v.size() == sum_.size());
  AddInPlace(&sum_, v);
  ++count_;
}

void TopicAccumulator::AddSum(std::span<const float> sum, size_t count) {
  assert(sum.size() == sum_.size());
  AddInPlace(&sum_, sum);
  count_ += count;
}

Vec TopicAccumulator::Mean() const {
  Vec mean = sum_;
  if (count_ > 0) {
    ScaleInPlace(&mean, static_cast<float>(1.0 / static_cast<double>(count_)));
  }
  return mean;
}

void TopicAccumulator::Reset(size_t dim) {
  sum_.assign(dim, 0.0f);
  count_ = 0;
}

}  // namespace lakeorg
