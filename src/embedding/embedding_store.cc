#include "embedding/embedding_store.h"

#include <cassert>

namespace lakeorg {

EmbeddingStore::EmbeddingStore(std::shared_ptr<const EmbeddingModel> model)
    : model_(std::move(model)) {
  assert(model_ != nullptr);
}

std::optional<Vec> EmbeddingStore::Embed(const std::string& word) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(word);
    if (it != cache_.end()) return it->second;
  }
  std::optional<Vec> v = model_->Embed(word);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.emplace(word, v);
  }
  return v;
}

size_t EmbeddingStore::AccumulateDomain(
    const std::vector<std::string>& values, TopicAccumulator* acc) const {
  size_t embedded = 0;
  for (const std::string& value : values) {
    std::optional<Vec> v = Embed(value);
    if (v.has_value()) {
      acc->Add(*v);
      ++embedded;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    coverage_.total_values += values.size();
    coverage_.embedded_values += embedded;
  }
  return embedded;
}

Vec EmbeddingStore::DomainTopicVector(
    const std::vector<std::string>& values) const {
  TopicAccumulator acc(dim());
  AccumulateDomain(values, &acc);
  return acc.Mean();
}

CoverageStats EmbeddingStore::coverage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coverage_;
}

}  // namespace lakeorg
