// The embedding-provider interface. The paper uses pretrained fastText
// vectors (section 3.1) covering ~70% of text values; this library keeps
// that dependency behind an interface and ships two offline providers
// (see DESIGN.md, substitution 1).
#pragma once

#include <optional>
#include <string>

#include "embedding/vector_ops.h"

namespace lakeorg {

/// Maps words (data values) to dense vectors. Implementations must be
/// deterministic and thread-safe for concurrent Embed calls.
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  /// Embedding dimension.
  virtual size_t dim() const = 0;

  /// The vector for `word`, or nullopt when the word is out of vocabulary
  /// (mirrors fastText coverage gaps on data-lake values).
  virtual std::optional<Vec> Embed(const std::string& word) const = 0;

  /// True iff `word` is in vocabulary.
  virtual bool Contains(const std::string& word) const {
    return Embed(word).has_value();
  }
};

}  // namespace lakeorg
