// The two local-search operations of section 3.3.
//
// ADD_PARENT(s): graft the most-reachable non-parent state at level
// level(s) - 1 as an additional parent of s, propagating s's attributes
// (and tags) to the new parent and its ancestors to restore the inclusion
// property, and refusing grafts that would create a cycle.
//
// DELETE_PARENT(s): eliminate s's least-reachable eligible parent r along
// with r's multi-tag interior siblings, reconnecting every eliminated
// state's children to its parents (tag states and leaves are fixed and are
// never eliminated, section 3.2).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/organization.h"

namespace lakeorg {

/// Which operation an OpResult describes.
enum class OpKind { kAddParent, kDeleteParent };

/// Result of applying an operation in place. The changed-state lists feed
/// the IncrementalEvaluator's affected-subgraph computation.
struct OpResult {
  /// False when the operation was not applicable (nothing was modified).
  bool applied = false;
  OpKind kind = OpKind::kAddParent;
  /// The state the operation targeted.
  StateId target = kInvalidId;
  /// ADD_PARENT: the grafted parent.
  StateId new_parent = kInvalidId;
  /// States whose topic vector changed (attr propagation).
  std::vector<StateId> topic_changed;
  /// States whose children set changed.
  std::vector<StateId> children_changed;
  /// States removed from the organization.
  std::vector<StateId> removed;
  /// Why the operation was skipped, when !applied.
  std::string message;

  /// Resets to the default state keeping vector/string capacity, so a
  /// reused OpResult makes the optimizer inner loop allocation-free.
  void Clear() {
    applied = false;
    kind = OpKind::kAddParent;
    target = kInvalidId;
    new_parent = kInvalidId;
    topic_changed.clear();
    children_changed.clear();
    removed.clear();
    message.clear();
  }
};

/// State-reachability oracle used to rank candidates (Equation 10).
using ReachabilityFn = std::function<double(StateId)>;

/// Applies ADD_PARENT to `s` in place. Requires levels to be current;
/// recomputes them on success. When `undo` is non-null it records the
/// prior state of every touched state, so a rejected proposal rolls back
/// with org->Undo(*undo) instead of evaluating on a full clone; on the
/// not-applied paths nothing is mutated and `undo` stays empty.
OpResult ApplyAddParent(Organization* org, StateId s,
                        const ReachabilityFn& reachability,
                        OpUndo* undo = nullptr);

/// Applies DELETE_PARENT to `s` in place. Requires levels to be current;
/// recomputes them on success. `undo` as in ApplyAddParent.
OpResult ApplyDeleteParent(Organization* org, StateId s,
                           const ReachabilityFn& reachability,
                           OpUndo* undo = nullptr);

/// Out-parameter variants: `result` is Clear()ed and filled in place, so a
/// caller that reuses one OpResult across proposals allocates nothing in
/// the steady state (the search inner loop uses these).
void ApplyAddParent(Organization* org, StateId s,
                    const ReachabilityFn& reachability, OpUndo* undo,
                    OpResult* result);
void ApplyDeleteParent(Organization* org, StateId s,
                       const ReachabilityFn& reachability, OpUndo* undo,
                       OpResult* result);

}  // namespace lakeorg
