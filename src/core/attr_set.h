// Interned attribute set with a small-size inline representation.
//
// Most states in a real organization carry few attributes (leaves carry one,
// tag states a handful); only states near the root hold wide sets. Storing
// every D_s as a full bitset over a 100k-attribute universe makes each state
// pay O(universe/8) bytes and pulls a cold cache line per inclusion test.
// AttrSet instead keeps up to kInlineCap sorted ids inline (one cache line,
// no heap), and spills to a shared copy-on-write DynamicBitset only when a
// set outgrows the inline capacity.
//
// Two properties matter for the undo journal and the zero-steady-state-
// allocation guarantee:
//   * Clear() never reverts a spilled set to the inline representation, so
//     rolling back journaled added bits restores a spilled set exactly,
//     with no representation flip mid-undo.
//   * The heap bitset is RETAINED when a set is restored to the inline rep
//     (RestoreInline): the next spill reuses the buffer when this set is its
//     sole owner, so an apply/undo cycle that repeatedly crosses the inline
//     boundary allocates only once, not once per operation.
//
// Copying an AttrSet shares the spilled bitset (atomic refcount; concurrent
// readers are safe). The first mutation of a shared spilled set clones it
// (copy-on-write), which is what keeps Organization::Clone cheap.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/dynamic_bitset.h"

namespace lakeorg {

class AttrSet {
 public:
  /// Ids held inline before spilling to a heap bitset. 12 ids keep the
  /// whole struct within one 64-byte cache line alongside its metadata.
  static constexpr size_t kInlineCap = 12;

  /// Trivially-copyable snapshot of the inline representation; the undo
  /// journal embeds one per touched state that was inline at first touch.
  struct InlineRep {
    std::array<uint32_t, kInlineCap> ids{};  // sorted; first `count` valid
    uint8_t count = 0;
  };

  explicit AttrSet(size_t universe = 0) : universe_(universe) {}

  /// Resets to an empty set over `universe`. Retains any heap buffer for
  /// allocation-free re-spilling.
  void Reset(size_t universe) {
    universe_ = universe;
    inline_.count = 0;
    spilled_ = false;
  }

  /// Universe size (number of addressable attribute ids).
  size_t size() const { return universe_; }

  /// True while the set is stored inline (no heap bitset in use).
  bool inline_rep() const { return !spilled_; }

  size_t Count() const { return spilled_ ? heap_->Count() : inline_.count; }
  bool Empty() const { return Count() == 0; }

  bool Test(size_t i) const {
    if (spilled_) return heap_->Test(i);
    const uint32_t v = static_cast<uint32_t>(i);
    const uint32_t* begin = inline_.ids.data();
    const uint32_t* end = begin + inline_.count;
    const uint32_t* it = std::lower_bound(begin, end, v);
    return it != end && *it == v;
  }

  /// Inserts element `i` (idempotent). May spill to the heap bitset when
  /// the inline capacity is exceeded.
  void Set(size_t i) {
    assert(i < universe_);
    if (spilled_) {
      if (!heap_->Test(i)) MutableHeap()->Set(i);
      return;
    }
    const uint32_t v = static_cast<uint32_t>(i);
    uint32_t* begin = inline_.ids.data();
    uint32_t* end = begin + inline_.count;
    uint32_t* it = std::lower_bound(begin, end, v);
    if (it != end && *it == v) return;
    if (inline_.count < kInlineCap) {
      std::move_backward(it, end, end + 1);
      *it = v;
      ++inline_.count;
      return;
    }
    Spill();
    heap_->Set(i);  // Spill() leaves heap_ uniquely owned.
  }

  /// Removes element `i` (idempotent). Never un-spills: a spilled set stays
  /// spilled even when its population drops below kInlineCap, so undo can
  /// restore journaled bits without a representation change.
  void Clear(size_t i) {
    assert(i < universe_);
    if (spilled_) {
      if (heap_->Test(i)) MutableHeap()->Clear(i);
      return;
    }
    const uint32_t v = static_cast<uint32_t>(i);
    uint32_t* begin = inline_.ids.data();
    uint32_t* end = begin + inline_.count;
    uint32_t* it = std::lower_bound(begin, end, v);
    if (it == end || *it != v) return;
    std::move(it + 1, end, it);
    --inline_.count;
  }

  /// this |= other.
  void UnionWith(const DynamicBitset& other) {
    assert(other.size() == universe_);
    if (spilled_) {
      if (!other.IsSubsetOf(*heap_)) MutableHeap()->UnionWith(other);
      return;
    }
    if (inline_.count + other.Count() <= kInlineCap) {
      // The union cannot exceed the inline capacity, so Set never spills
      // mid-iteration.
      other.ForEachBit([this](size_t i) { Set(i); });
      return;
    }
    Spill();
    heap_->UnionWith(other);
  }

  /// True iff this ⊆ other.
  bool IsSubsetOf(const AttrSet& other) const {
    assert(universe_ == other.universe_);
    if (!spilled_) {
      for (size_t k = 0; k < inline_.count; ++k) {
        if (!other.Test(inline_.ids[k])) return false;
      }
      return true;
    }
    if (other.spilled_) return heap_->IsSubsetOf(*other.heap_);
    if (heap_->Count() > other.inline_.count) return false;
    bool ok = true;
    heap_->ForEachBit([&](size_t i) { ok = ok && other.Test(i); });
    return ok;
  }

  /// True iff every element of `other` (a plain bitset) is in this set.
  bool ContainsAll(const DynamicBitset& other) const {
    assert(other.size() == universe_);
    if (spilled_) return other.IsSubsetOf(*heap_);
    if (other.Count() > inline_.count) return false;
    bool ok = true;
    other.ForEachBit([&](size_t i) { ok = ok && Test(i); });
    return ok;
  }

  /// Calls `fn(i)` for every element i, ascending — the same order in both
  /// representations, which the bit-identity guarantees depend on.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (spilled_) {
      heap_->ForEachBit(fn);
      return;
    }
    for (size_t k = 0; k < inline_.count; ++k) {
      fn(static_cast<size_t>(inline_.ids[k]));
    }
  }

  /// Materializes the set as a plain bitset.
  DynamicBitset ToBitset() const {
    if (spilled_) return *heap_;
    DynamicBitset out(universe_);
    for (size_t k = 0; k < inline_.count; ++k) out.Set(inline_.ids[k]);
    return out;
  }

  /// Content-based equality across representations.
  bool operator==(const AttrSet& other) const {
    if (universe_ != other.universe_) return false;
    if (!spilled_ && !other.spilled_) {
      return inline_.count == other.inline_.count &&
             std::equal(inline_.ids.begin(),
                        inline_.ids.begin() + inline_.count,
                        other.inline_.ids.begin());
    }
    if (Count() != other.Count()) return false;
    if (spilled_ && other.spilled_) return *heap_ == *other.heap_;
    const AttrSet& small = spilled_ ? other : *this;  // the inline one
    const AttrSet& big = spilled_ ? *this : other;
    for (size_t k = 0; k < small.inline_.count; ++k) {
      if (!big.Test(small.inline_.ids[k])) return false;
    }
    return true;
  }

  // Undo-journal hooks --------------------------------------------------------

  /// Snapshot of the inline representation. Requires inline_rep().
  InlineRep SnapshotInline() const {
    assert(!spilled_);
    return inline_;
  }

  /// Restores a snapshot taken by SnapshotInline, reverting any spill that
  /// happened since. The heap buffer is deliberately kept alive so the next
  /// spill reuses it without allocating.
  void RestoreInline(const InlineRep& snap) {
    inline_ = snap;
    spilled_ = false;
  }

 private:
  /// Moves the inline contents into the heap bitset and switches reps.
  /// Postcondition: spilled_ and heap_ uniquely owned by this set.
  void Spill() {
    if (heap_ != nullptr && heap_.use_count() == 1) {
      if (heap_->size() == universe_) {
        heap_->ClearAll();
      } else {
        heap_->Reset(universe_);
      }
    } else {
      heap_ = std::make_shared<DynamicBitset>(universe_);
    }
    for (size_t k = 0; k < inline_.count; ++k) heap_->Set(inline_.ids[k]);
    spilled_ = true;
  }

  /// Copy-on-write: clones the heap bitset when it is shared with another
  /// AttrSet (e.g. after Organization::Clone).
  DynamicBitset* MutableHeap() {
    if (heap_.use_count() != 1) {
      heap_ = std::make_shared<DynamicBitset>(*heap_);
    }
    return heap_.get();
  }

  InlineRep inline_;
  size_t universe_ = 0;
  bool spilled_ = false;
  /// Heap representation; meaningful only while spilled_, but retained
  /// across RestoreInline/Reset for allocation-free reuse.
  std::shared_ptr<DynamicBitset> heap_;
};

}  // namespace lakeorg
