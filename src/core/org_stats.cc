#include "core/org_stats.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace lakeorg {

OrgStats ComputeOrgStats(const Organization& org) {
  OrgStats stats;
  size_t leaf_depth_total = 0;
  size_t branching_total = 0;
  size_t branching_nodes = 0;
  for (StateId s = 0; s < org.num_states(); ++s) {
    const OrgState& st = org.state(s);
    if (!st.alive || st.level < 0) continue;
    ++stats.num_states;
    switch (st.kind) {
      case StateKind::kRoot:
      case StateKind::kInterior:
        ++stats.num_interior;
        break;
      case StateKind::kTag:
        ++stats.num_tag_states;
        break;
      case StateKind::kLeaf:
        ++stats.num_leaves;
        leaf_depth_total += static_cast<size_t>(st.level);
        stats.max_leaf_depth = std::max(stats.max_leaf_depth, st.level);
        break;
    }
    stats.num_edges += st.children.size();
    if (!st.children.empty()) {
      branching_total += st.children.size();
      ++branching_nodes;
      stats.max_branching =
          std::max(stats.max_branching, st.children.size());
    }
    if (st.parents.size() > 1) ++stats.multi_parent_states;
  }
  if (stats.num_leaves > 0) {
    stats.mean_leaf_depth = static_cast<double>(leaf_depth_total) /
                            static_cast<double>(stats.num_leaves);
  }
  if (branching_nodes > 0) {
    stats.mean_branching = static_cast<double>(branching_total) /
                           static_cast<double>(branching_nodes);
  }
  return stats;
}

std::string FormatOrgStats(const OrgStats& s) {
  std::ostringstream out;
  out << "states=" << s.num_states << " (interior=" << s.num_interior
      << " tags=" << s.num_tag_states << " leaves=" << s.num_leaves
      << ") edges=" << s.num_edges << " leaf depth max=" << s.max_leaf_depth
      << " mean=" << FormatDouble(s.mean_leaf_depth, 2)
      << " branching max=" << s.max_branching
      << " mean=" << FormatDouble(s.mean_branching, 2)
      << " multi-parent=" << s.multi_parent_states;
  return out.str();
}

}  // namespace lakeorg
