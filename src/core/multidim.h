// Multi-dimensional organizations (sections 2.5 and 4.3): partition the
// lake's tags into k groups with k-medoids over tag topic vectors, build
// and optimize one organization per group (independently, in parallel),
// and navigate/evaluate them collectively — a table is discovered in the
// multi-dimensional organization if it is discovered in any dimension
// (Equation 8).
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/local_search.h"
#include "core/org_builders.h"
#include "lake/data_lake.h"
#include "lake/tag_index.h"

namespace lakeorg {

/// Per-dimension statistics (the columns of the paper's Table 1).
struct DimensionInfo {
  size_t num_tags = 0;
  size_t num_attrs = 0;
  size_t num_tables = 0;
  /// Representatives used during optimization (0 in exact mode).
  size_t num_reps = 0;
  /// Effectiveness over the dimension's query set after optimization.
  double effectiveness = 0.0;
  /// Optimization wall-clock seconds for this dimension.
  double seconds = 0.0;
  size_t proposals = 0;
};

/// Options for building a multi-dimensional organization.
struct MultiDimOptions {
  /// Number of dimensions (tag clusters).
  size_t dimensions = 2;
  /// Per-dimension local-search options; the per-dimension seed is
  /// search.seed + dimension index.
  LocalSearchOptions search;
  /// Initial organization per dimension.
  enum class Initial { kClustering, kFlat };
  Initial initial = Initial::kClustering;
  /// Worker threads (0 = hardware concurrency). Dimensions are optimized
  /// "independently and in parallel" (section 4.3.2).
  size_t num_threads = 0;
  /// Seed for the k-medoids tag partitioning.
  uint64_t partition_seed = 99;
  /// Skip optimization entirely (evaluate the initial organizations).
  bool optimize = true;
};

/// A set of organizations used collectively for navigation.
class MultiDimOrganization {
 public:
  MultiDimOrganization(std::vector<Organization> dims,
                       std::vector<DimensionInfo> info)
      : dims_(std::move(dims)), info_(std::move(info)) {}

  size_t num_dimensions() const { return dims_.size(); }
  const Organization& dimension(size_t i) const { return dims_[i]; }
  const std::vector<Organization>& dimensions() const { return dims_; }
  const std::vector<DimensionInfo>& info() const { return info_; }
  /// Wall clock of the slowest dimension (the paper's reported multi-dim
  /// construction time: dimensions run in parallel).
  double MaxDimensionSeconds() const;
  /// Sum of per-dimension optimization times.
  double TotalDimensionSeconds() const;

 private:
  std::vector<Organization> dims_;
  std::vector<DimensionInfo> info_;
};

/// Builds organizations over an explicit tag partition (each entry is a set
/// of lake tag ids). Fails on invalid `options.search` (see
/// ValidateLocalSearchOptions).
Result<MultiDimOrganization> BuildMultiDimFromPartition(
    const DataLake& lake, const TagIndex& index,
    const std::vector<std::vector<TagId>>& partition,
    const MultiDimOptions& options);

/// Partitions all non-empty tags with k-medoids and builds one organization
/// per cluster. Fails on invalid `options.search`.
Result<MultiDimOrganization> BuildMultiDimOrganization(
    const DataLake& lake, const TagIndex& index,
    const MultiDimOptions& options);

/// Combined per-table success probabilities across dimensions
/// (section 4.2 measure + Equation 8 combination).
struct MultiDimSuccess {
  /// Lake table ids covered by at least one dimension.
  std::vector<TableId> tables;
  /// Success probability per entry of `tables`.
  std::vector<double> success;
  /// Mean over `tables`.
  double mean = 0.0;

  /// Success values sorted ascending (the Figure 2 series). When
  /// `pad_to_tables` exceeds tables.size(), uncovered tables contribute
  /// leading zeros.
  std::vector<double> SortedAscending(size_t pad_to_tables = 0) const;
};

/// Evaluates the success probability (threshold `theta`) of every covered
/// table across all dimensions.
MultiDimSuccess EvaluateMultiDimSuccess(const MultiDimOrganization& org,
                                        double theta,
                                        const TransitionConfig& config);

/// Combined per-table discovery probability (Equations 5 + 8) across
/// dimensions, keyed by lake table id; `mean` is over covered tables.
MultiDimSuccess EvaluateMultiDimDiscovery(const MultiDimOrganization& org,
                                          const TransitionConfig& config);

}  // namespace lakeorg
