#include "core/repair.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"
#include "core/evaluator.h"
#include "core/representatives.h"
#include "obs/metrics.h"

namespace lakeorg {
namespace {

/// Telemetry handles for the repair path (docs/OBSERVABILITY.md).
struct RepairMetrics {
  obs::Counter& repairs = obs::GetCounter("repair.repairs_total");
  obs::Counter& leaves_added = obs::GetCounter("repair.leaves_added_total");
  obs::Counter& leaves_removed =
      obs::GetCounter("repair.leaves_removed_total");
  obs::Counter& states_dropped =
      obs::GetCounter("repair.states_dropped_total");
  obs::Counter& reopt_proposals =
      obs::GetCounter("repair.reopt_proposals_total");
  obs::Gauge& effectiveness = obs::GetGauge("repair.effectiveness");
  obs::Gauge& splice_effectiveness =
      obs::GetGauge("repair.splice_effectiveness");
  obs::Gauge& reopt_gain = obs::GetGauge("repair.reopt_effectiveness_gain");
  obs::Histogram& latency_us = obs::GetHistogram("repair.latency_us");
  obs::Histogram& states_touched = obs::GetHistogram(
      "repair.states_touched",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});

  static RepairMetrics& Get() {
    static RepairMetrics metrics;
    return metrics;
  }
};

/// Grows `mask` to cover `s` and marks it.
void Mark(std::vector<char>* mask, StateId s) {
  if (s >= mask->size()) mask->resize(s + 1, 0);
  (*mask)[s] = 1;
}

}  // namespace

Result<RepairResult> RepairOrganization(const Organization& org,
                                        const DataLake& lake,
                                        const TagIndex& index,
                                        const LakeDelta& delta,
                                        const RepairOptions& options) {
  WallTimer timer;
  RepairMetrics& rm = RepairMetrics::Get();
  obs::ScopedTimer latency_span(&rm.latency_us);

  LakeDelta d = delta;
  d.Normalize();
  const OrgContext& oldc = org.ctx();

  // ---- 1. The repaired context: same dimension, post-delta catalog. ----
  std::vector<TagId> tags = options.dimension_tags;
  if (tags.empty()) {
    for (size_t t = 0; t < oldc.num_tags(); ++t) {
      tags.push_back(oldc.lake_tag(t));
    }
    tags.insert(tags.end(), d.added_tags.begin(), d.added_tags.end());
    // Tags that a new or retagged attribute carries may predate the delta
    // with a previously empty extent (absent from the old context).
    auto add_attr_tags = [&](const std::vector<AttributeId>& attrs) {
      for (AttributeId a : attrs) {
        if (a >= lake.num_attributes()) continue;
        const Attribute& attr = lake.attribute(a);
        tags.insert(tags.end(), attr.tags.begin(), attr.tags.end());
      }
    };
    add_attr_tags(d.added_attrs);
    add_attr_tags(d.retagged_attrs);
    std::sort(tags.begin(), tags.end());
    tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  }
  std::shared_ptr<const OrgContext> ctx =
      OrgContext::Build(lake, index, std::move(tags));
  if (ctx->num_tags() == 0) {
    return Status::FailedPrecondition(
        "repair: no non-empty tags survive the delta");
  }

  // ---- 2. Old-local -> new-local id remappings. ----
  std::unordered_map<TagId, uint32_t> new_tag_of_lake;
  for (uint32_t t = 0; t < ctx->num_tags(); ++t) {
    new_tag_of_lake.emplace(ctx->lake_tag(t), t);
  }
  std::unordered_map<AttributeId, uint32_t> new_attr_of_lake;
  for (uint32_t a = 0; a < ctx->num_attrs(); ++a) {
    new_attr_of_lake.emplace(ctx->lake_attr(a), a);
  }
  auto map_tag = [&](uint32_t old_t) -> uint32_t {
    auto it = new_tag_of_lake.find(oldc.lake_tag(old_t));
    return it == new_tag_of_lake.end() ? kInvalidId : it->second;
  };
  std::vector<uint32_t> attr_old2new(oldc.num_attrs(), kInvalidId);
  for (uint32_t a = 0; a < oldc.num_attrs(); ++a) {
    auto it = new_attr_of_lake.find(oldc.lake_attr(a));
    if (it != new_attr_of_lake.end()) attr_old2new[a] = it->second;
  }

  // Leaves to (re-)home under their tags' tag states: brand-new attributes
  // and retagged survivors (their old edges are stale).
  std::vector<char> reattach(ctx->num_attrs(), 0);
  auto mark_reattach = [&](const std::vector<AttributeId>& attrs) {
    for (AttributeId a : attrs) {
      auto it = new_attr_of_lake.find(a);
      if (it != new_attr_of_lake.end()) reattach[it->second] = 1;
    }
  };
  mark_reattach(d.added_attrs);
  mark_reattach(d.retagged_attrs);

  // ---- 3. Splice pass 1: map surviving states in topological order. ----
  Organization out(ctx);
  // The splice copies nearly every old state plus one leaf (and possibly
  // one tag state) per added attribute; presize the arenas so pass 1-3
  // never reallocate per state.
  out.Reserve(org.num_states() + d.added_attrs.size() + d.added_tags.size(),
              org.NumEdges() +
                  4 * (d.added_attrs.size() + d.added_tags.size() +
                       d.retagged_attrs.size()));
  std::vector<StateId> topo = org.TopologicalOrder();
  std::vector<StateId> mapped(org.num_states(), kInvalidId);
  std::vector<char> has_old_leaf(ctx->num_attrs(), 0);
  std::vector<StateId> tag_state_of(ctx->num_tags(), kInvalidId);
  std::vector<char> affected;  // Mask over new StateIds.
  size_t leaves_added = 0;
  size_t leaves_removed = 0;
  size_t states_dropped = 0;

  std::vector<uint32_t> all_tags(ctx->num_tags());
  std::iota(all_tags.begin(), all_tags.end(), 0);

  for (StateId s : topo) {
    const OrgState& st = org.state(s);
    switch (st.kind) {
      case StateKind::kRoot:
        mapped[s] = out.AddRoot(all_tags);
        break;
      case StateKind::kLeaf: {
        uint32_t na = attr_old2new[st.attr];
        if (na == kInvalidId) {
          ++leaves_removed;
        } else {
          mapped[s] = out.AddLeaf(na);
          has_old_leaf[na] = 1;
        }
        break;
      }
      case StateKind::kTag: {
        uint32_t nt = map_tag(st.tags[0]);
        if (nt == kInvalidId) {
          ++states_dropped;
        } else {
          mapped[s] = out.AddTagState(nt);
          tag_state_of[nt] = mapped[s];
        }
        break;
      }
      case StateKind::kInterior: {
        std::vector<uint32_t> state_tags;
        for (uint32_t t : st.tags) {
          uint32_t nt = map_tag(t);
          if (nt != kInvalidId) state_tags.push_back(nt);
        }
        if (state_tags.empty()) {
          ++states_dropped;
        } else {
          mapped[s] = out.AddInteriorState(std::move(state_tags));
        }
        break;
      }
    }
    // Re-apply surviving propagated extras (attributes beyond the state's
    // tag extents that ADD_PARENT had pushed upward). The root covers the
    // whole universe already.
    if (mapped[s] != kInvalidId && st.kind != StateKind::kLeaf &&
        st.kind != StateKind::kRoot) {
      DynamicBitset extent = oldc.MakeAttrSet();
      for (uint32_t t : st.tags) extent.UnionWith(oldc.tag_extent(t));
      std::vector<uint32_t> extras;
      st.attrs.ForEach([&](size_t a) {
        if (extent.Test(a)) return;
        uint32_t na = attr_old2new[a];
        if (na != kInvalidId) extras.push_back(na);
      });
      if (!extras.empty()) out.AddExtraAttrs(mapped[s], extras);
    }
  }

  // ---- 4. Splice pass 2: attachment points and edges. ----
  // attach[s] = images of s's nearest surviving ancestors (s's own image
  // when it survived). Children of a dropped state lift their edges to
  // these; the states that lost a child this way are re-opt targets.
  std::vector<std::vector<StateId>> attach(org.num_states());
  for (StateId s : topo) {
    const OrgState& st = org.state(s);
    if (mapped[s] != kInvalidId) {
      attach[s] = {mapped[s]};
      continue;
    }
    std::vector<StateId>& pts = attach[s];
    for (StateId p : st.parents) {
      pts.insert(pts.end(), attach[p].begin(), attach[p].end());
    }
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    // Every surviving ancestor image lost this state (or its subtree).
    for (StateId ap : pts) Mark(&affected, ap);
  }

  for (StateId s : topo) {
    StateId nc = mapped[s];
    if (nc == kInvalidId || s == org.root()) continue;
    const OrgState& st = org.state(s);
    if (st.kind == StateKind::kLeaf && reattach[out.state(nc).attr]) {
      continue;  // Re-homed below; old edges are stale.
    }
    bool lifted = false;
    for (StateId p : st.parents) {
      if (mapped[p] == kInvalidId) lifted = true;
      for (StateId ap : attach[p]) {
        Status est = out.AddEdge(ap, nc);
        if (est.ok()) continue;
        if (est.code() == StatusCode::kAlreadyExists) continue;
        // Inclusion violation: the child picked up attributes (new
        // extent members) that this parent only held via propagated
        // extras. Restore the invariant the way ADD_PARENT does —
        // propagate the missing attributes upward — then retry.
        DynamicBitset child_set = out.StateAttrSet(nc);
        const AttrSet& parent_set = out.attrs(ap);
        DynamicBitset missing = ctx->MakeAttrSet();
        child_set.ForEach([&](size_t a) {
          if (!parent_set.Test(a)) missing.Set(a);
        });
        std::vector<StateId> touched;
        out.PropagateAttrsUpward(ap, missing, {}, &touched);
        for (StateId ts : touched) Mark(&affected, ts);
        est = out.AddEdge(ap, nc);
        if (!est.ok()) {
          return Status::Internal("repair: cannot splice edge " +
                                  std::to_string(ap) + " -> " +
                                  std::to_string(nc) + ": " +
                                  est.ToString());
        }
      }
    }
    if (lifted) Mark(&affected, nc);
  }

  // ---- 5. Splice pass 3: home new and retagged leaves. ----
  StateId new_root = out.root();
  for (uint32_t na = 0; na < ctx->num_attrs(); ++na) {
    bool is_new = !has_old_leaf[na];
    if (!is_new && !reattach[na]) continue;
    StateId leaf = is_new ? out.AddLeaf(na) : out.LeafOf(na);
    if (is_new) ++leaves_added;
    Mark(&affected, leaf);
    for (uint32_t t : ctx->attr_tags(na)) {
      StateId ts = tag_state_of[t];
      if (ts == kInvalidId) {
        // A tag with no penultimate state yet (brand-new tag, or one the
        // old organization never materialized): create it under the root.
        ts = out.AddTagState(t);
        tag_state_of[t] = ts;
        Status est = out.AddEdge(new_root, ts);
        if (!est.ok()) {
          return Status::Internal("repair: cannot attach tag state: " +
                                  est.ToString());
        }
      }
      Status est = out.AddEdge(ts, leaf);
      if (!est.ok() && est.code() != StatusCode::kAlreadyExists) {
        return Status::Internal("repair: cannot home leaf: " +
                                est.ToString());
      }
      Mark(&affected, ts);
    }
  }

  out.RecomputeLevels();
  if (options.validate) {
    Status valid = out.Validate();
    if (!valid.ok()) {
      return Status::Internal("repair produced an invalid organization: " +
                              valid.ToString());
    }
  }

  // ---- 6. Affected set -> localized re-optimization targets. ----
  std::vector<StateId> affected_states;
  for (StateId s = 0; s < affected.size(); ++s) {
    if (affected[s] && s != new_root && out.state(s).alive) {
      affected_states.push_back(s);
    }
  }

  RepairResult res{std::move(out), ctx};
  res.leaves_added = leaves_added;
  res.leaves_removed = leaves_removed;
  res.states_dropped = states_dropped;
  res.affected_states = affected_states;
  res.states_touched = affected_states.size();

  if (options.reopt_max_proposals > 0 && !affected_states.empty()) {
    LocalSearchOptions search;
    search.transition = options.transition;
    search.patience = options.reopt_patience;
    search.max_proposals = options.reopt_max_proposals;
    search.seed = options.seed;
    search.acceptance_sharpness = options.acceptance_sharpness;
    search.record_history = false;
    search.num_threads = options.num_threads;
    search.restrict_targets = std::move(affected_states);
    Result<LocalSearchResult> opt =
        OptimizeOrganization(std::move(res.org), search);
    if (!opt.ok()) return opt.status();
    LocalSearchResult lsr = std::move(opt).value();
    // OptimizeOrganization tracks the best organization starting from the
    // initial one, so effectiveness >= splice_effectiveness always.
    res.org = std::move(lsr.org);
    res.splice_effectiveness = lsr.initial_effectiveness;
    res.effectiveness = lsr.effectiveness;
    res.reopt_proposals = lsr.proposals;
  } else {
    IncrementalEvaluator eval(options.transition, ctx,
                              IdentityRepresentatives(*ctx),
                              options.num_threads);
    eval.Initialize(res.org);
    res.splice_effectiveness = eval.effectiveness();
    res.effectiveness = eval.effectiveness();
  }

  res.seconds = timer.ElapsedSeconds();
  if (obs::MetricsEnabled()) {
    rm.repairs.Add();
    rm.leaves_added.Add(res.leaves_added);
    rm.leaves_removed.Add(res.leaves_removed);
    rm.states_dropped.Add(res.states_dropped);
    rm.reopt_proposals.Add(res.reopt_proposals);
    rm.effectiveness.Set(res.effectiveness);
    rm.splice_effectiveness.Set(res.splice_effectiveness);
    rm.reopt_gain.Set(res.effectiveness - res.splice_effectiveness);
    rm.states_touched.Observe(static_cast<double>(res.states_touched));
  }
  LAKEORG_LOG(kDebug) << "repair: " << res.states_touched
                      << " states touched, +" << res.leaves_added << "/-"
                      << res.leaves_removed << " leaves, effectiveness "
                      << res.splice_effectiveness << " -> "
                      << res.effectiveness << " in " << res.seconds << " s";
  return res;
}

}  // namespace lakeorg
