#include "core/navigation.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace lakeorg {

std::string StateLabel(const Organization& org, StateId s) {
  const OrgState& st = org.state(s);
  const OrgContext& ctx = org.ctx();
  switch (st.kind) {
    case StateKind::kLeaf: {
      // The paper labels leaves with their table name; we append the
      // attribute for disambiguation ("table.attr").
      return ctx.attr_label(st.attr);
    }
    case StateKind::kTag:
      return ctx.tag_name(st.tags[0]);
    case StateKind::kRoot:
      if (st.children.empty()) return "(root)";
      [[fallthrough]];
    case StateKind::kInterior: {
      // Count tag occurrences among children's tag sets.
      std::map<uint32_t, size_t> count;
      std::map<uint32_t, std::vector<StateId>> owners;
      for (StateId c : st.children) {
        const OrgState& cs = org.state(c);
        for (uint32_t t : cs.tags) {
          ++count[t];
          owners[t].push_back(c);
        }
      }
      if (count.empty()) {
        // Children are leaves only; fall back to own tags.
        std::string label;
        for (size_t i = 0; i < st.tags.size() && i < 2; ++i) {
          if (i > 0) label += " / ";
          label += ctx.tag_name(st.tags[i]);
        }
        return label.empty() ? "(untagged)" : label;
      }
      // Order tags by occurrence, descending; ties by id for determinism.
      std::vector<std::pair<uint32_t, size_t>> freq(count.begin(),
                                                    count.end());
      std::sort(freq.begin(), freq.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      uint32_t first = freq[0].first;
      std::string label = ctx.tag_name(first);
      if (freq.size() == 1) return label;
      // Second tag: prefer one contributed by a child that does not own
      // the first tag ("if these tags belong to the label of the same
      // child, choose the third most occurring tag and so on").
      const std::vector<StateId>& first_owners = owners[first];
      auto shares_owner = [&first_owners, &owners](uint32_t t) {
        for (StateId o : owners[t]) {
          if (std::find(first_owners.begin(), first_owners.end(), o) ==
              first_owners.end()) {
            return false;  // Has an owner outside first's owners.
          }
        }
        return true;
      };
      uint32_t second = freq[1].first;
      for (size_t i = 1; i < freq.size(); ++i) {
        if (!shares_owner(freq[i].first)) {
          second = freq[i].first;
          break;
        }
      }
      return label + " / " + ctx.tag_name(second);
    }
  }
  return "(unknown)";
}

NavigationSession::NavigationSession(const Organization* org) : org_(org) {
  path_.push_back(org_->root());
}

NavigationSession::NavigationSession(
    std::shared_ptr<const OrgSnapshot> snapshot)
    : org_(snapshot->org.get()), snapshot_(std::move(snapshot)) {
  assert(org_ != nullptr && "snapshot session requires snapshot->org");
  path_.push_back(org_->root());
}

bool NavigationSession::AtLeaf() const {
  return org_->state(current()).kind == StateKind::kLeaf;
}

uint32_t NavigationSession::CurrentAttr() const {
  const OrgState& st = org_->state(current());
  return st.kind == StateKind::kLeaf ? st.attr : kInvalidId;
}

std::vector<NavChoice> NavigationSession::Choices() const {
  std::vector<NavChoice> out;
  for (StateId c : org_->state(current()).children) {
    out.push_back(NavChoice{c, StateLabel(*org_, c)});
  }
  return out;
}

Status NavigationSession::Choose(size_t index) {
  const auto& children = org_->state(current()).children;
  if (index >= children.size()) {
    return Status::OutOfRange("choice index out of range");
  }
  path_.push_back(children[index]);
  ++actions_;
  return Status::OK();
}

Status NavigationSession::ChooseState(StateId child) {
  const auto& children = org_->state(current()).children;
  if (std::find(children.begin(), children.end(), child) == children.end()) {
    return Status::NotFound("not a child of the current state");
  }
  path_.push_back(child);
  ++actions_;
  return Status::OK();
}

Status NavigationSession::Back() {
  if (path_.size() <= 1) {
    return Status::FailedPrecondition("already at the root");
  }
  path_.pop_back();
  ++actions_;
  return Status::OK();
}

}  // namespace lakeorg
