// Structural statistics of an organization: the quantities the paper
// reasons about qualitatively in section 1.1 ("branching factor", "length
// of the discovery path", where structure is deep vs shallow), computed
// exactly. Used by the benches, the examples, and the ablation reports.
#pragma once

#include <string>

#include "core/organization.h"

namespace lakeorg {

/// Aggregate shape metrics of an organization's alive, reachable states.
struct OrgStats {
  size_t num_states = 0;
  size_t num_interior = 0;  // Root + interior (non-tag, non-leaf) states.
  size_t num_tag_states = 0;
  size_t num_leaves = 0;
  size_t num_edges = 0;
  /// Shortest-path depth stats over leaves (the discovery path length).
  int max_leaf_depth = 0;
  double mean_leaf_depth = 0.0;
  /// Branching stats over states with children.
  size_t max_branching = 0;
  double mean_branching = 0.0;
  /// Leaves with more than one parent (DAG shortcuts added by ADD_PARENT).
  size_t multi_parent_states = 0;
};

/// Computes shape metrics for `org` (levels must be current).
OrgStats ComputeOrgStats(const Organization& org);

/// One-line rendering: "states=.. leaves=.. depth=../avg.. branch=../avg..".
std::string FormatOrgStats(const OrgStats& stats);

}  // namespace lakeorg
