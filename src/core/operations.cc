#include "core/operations.h"

#include <algorithm>
#include <cassert>

namespace lakeorg {
namespace {

bool IsParentOf(const Organization& org, StateId maybe_parent, StateId s) {
  const auto& parents = org.state(s).parents;
  return std::find(parents.begin(), parents.end(), maybe_parent) !=
         parents.end();
}

/// Activates the organization's undo journal for the enclosing scope
/// (no-op when the caller passed no log).
class UndoLogScope {
 public:
  UndoLogScope(Organization* org, OpUndo* undo)
      : org_(undo != nullptr ? org : nullptr) {
    if (org_ != nullptr) org_->BeginUndoLog(undo);
  }
  ~UndoLogScope() {
    if (org_ != nullptr) org_->EndUndoLog();
  }
  UndoLogScope(const UndoLogScope&) = delete;
  UndoLogScope& operator=(const UndoLogScope&) = delete;

 private:
  Organization* org_;
};

}  // namespace

OpResult ApplyAddParent(Organization* org, StateId s,
                        const ReachabilityFn& reachability, OpUndo* undo) {
  UndoLogScope log_scope(org, undo);
  OpResult result;
  result.kind = OpKind::kAddParent;
  result.target = s;

  const OrgState& st = org->state(s);
  if (!st.alive || s == org->root() || st.level <= 0) {
    result.message = "target not eligible";
    return result;
  }

  // Candidate: highest-reachability non-leaf state at level l-1 that is not
  // already a parent and is not a descendant of s (cycle safety).
  int parent_level = st.level - 1;
  StateId best = kInvalidId;
  double best_reach = -1.0;
  for (StateId cand : org->StatesAtLevel(parent_level)) {
    const OrgState& cs = org->state(cand);
    if (cs.kind == StateKind::kLeaf || cand == s) continue;
    if (IsParentOf(*org, cand, s)) continue;
    if (org->WouldCreateCycle(cand, s)) continue;
    double r = reachability(cand);
    if (r > best_reach || (r == best_reach && cand < best)) {
      best_reach = r;
      best = cand;
    }
  }
  if (best == kInvalidId) {
    result.message = "no eligible parent candidate at level " +
                     std::to_string(parent_level);
    return result;
  }

  // Restore the inclusion property: the new parent and its ancestors gain
  // s's attributes. For tag/interior targets also merge their tag sets so
  // labels stay meaningful; a leaf contributes its single attribute only.
  DynamicBitset attrs = org->StateAttrSet(s);
  std::vector<uint32_t> tags =
      st.kind == StateKind::kLeaf ? std::vector<uint32_t>{} : st.tags;
  org->PropagateAttrsUpward(best, attrs, tags, &result.topic_changed);

  Status edge = org->AddEdge(best, s);
  assert(edge.ok());
  (void)edge;
  result.children_changed.push_back(best);
  result.new_parent = best;
  result.applied = true;
  org->RecomputeLevels();
  return result;
}

OpResult ApplyDeleteParent(Organization* org, StateId s,
                           const ReachabilityFn& reachability, OpUndo* undo) {
  UndoLogScope log_scope(org, undo);
  OpResult result;
  result.kind = OpKind::kDeleteParent;
  result.target = s;

  const OrgState& st = org->state(s);
  if (!st.alive || s == org->root()) {
    result.message = "target not eligible";
    return result;
  }

  // Least-reachable eligible parent. Only interior states can be
  // eliminated: the root, tag states and leaves are fixed (section 3.2).
  StateId r = kInvalidId;
  double worst_reach = 0.0;
  for (StateId p : st.parents) {
    const OrgState& ps = org->state(p);
    if (ps.kind != StateKind::kInterior) continue;
    if (ps.parents.empty()) continue;  // Would orphan its children.
    double reach = reachability(p);
    if (r == kInvalidId || reach < worst_reach ||
        (reach == worst_reach && p < r)) {
      worst_reach = reach;
      r = p;
    }
  }
  if (r == kInvalidId) {
    result.message = "no eliminable parent";
    return result;
  }

  // Elimination set: r plus its interior siblings (children of r's parents)
  // except single-tag states. s itself and states without parents are
  // protected.
  std::vector<StateId> to_eliminate = {r};
  for (StateId p : org->state(r).parents) {
    for (StateId sib : org->state(p).children) {
      if (sib == r || sib == s) continue;
      const OrgState& ss = org->state(sib);
      if (ss.kind != StateKind::kInterior) continue;
      if (ss.tags.size() <= 1) continue;  // "except siblings with one tag"
      if (std::find(to_eliminate.begin(), to_eliminate.end(), sib) ==
          to_eliminate.end()) {
        to_eliminate.push_back(sib);
      }
    }
  }

  // Eliminate iteratively: reconnect children to parents, then remove.
  // Processing one state at a time keeps the graph consistent even if an
  // eliminated state is an ancestor of another one.
  for (StateId e : to_eliminate) {
    const OrgState& es = org->state(e);
    if (!es.alive) continue;  // Already handled through another parent.
    if (es.parents.empty()) continue;
    std::vector<StateId> parents = es.parents;
    std::vector<StateId> children = es.children;
    for (StateId p : parents) {
      for (StateId c : children) {
        Status edge = org->AddEdge(p, c);
        // AlreadyExists is fine: the child may already hang under p.
        assert(edge.ok() || edge.code() == StatusCode::kAlreadyExists);
        (void)edge;
      }
      if (std::find(result.children_changed.begin(),
                    result.children_changed.end(),
                    p) == result.children_changed.end()) {
        result.children_changed.push_back(p);
      }
    }
    Status removed = org->RemoveState(e);
    assert(removed.ok());
    (void)removed;
    result.removed.push_back(e);
  }

  if (result.removed.empty()) {
    result.message = "nothing eliminated";
    return result;
  }
  // Parents that were themselves eliminated must not be reported as
  // changed.
  auto& cc = result.children_changed;
  cc.erase(std::remove_if(cc.begin(), cc.end(),
                          [org](StateId p) { return !org->state(p).alive; }),
           cc.end());
  result.applied = true;
  org->RecomputeLevels();
  return result;
}

}  // namespace lakeorg
