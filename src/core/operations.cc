#include "core/operations.h"

#include <algorithm>
#include <cassert>

namespace lakeorg {
namespace {

bool IsParentOf(const Organization& org, StateId maybe_parent, StateId s) {
  IdSpan parents = org.parents(s);
  return std::find(parents.begin(), parents.end(), maybe_parent) !=
         parents.end();
}

/// Activates the organization's undo journal for the enclosing scope
/// (no-op when the caller passed no log).
class UndoLogScope {
 public:
  UndoLogScope(Organization* org, OpUndo* undo)
      : org_(undo != nullptr ? org : nullptr) {
    if (org_ != nullptr) org_->BeginUndoLog(undo);
  }
  ~UndoLogScope() {
    if (org_ != nullptr) org_->EndUndoLog();
  }
  UndoLogScope(const UndoLogScope&) = delete;
  UndoLogScope& operator=(const UndoLogScope&) = delete;

 private:
  Organization* org_;
};

/// Reused working buffers. Adjacency spans go stale the moment the
/// organization mutates, so the elimination loop snapshots each state's
/// neighbor lists here first; thread_local keeps concurrent searches on
/// distinct organizations independent without locking.
struct OpScratch {
  std::vector<StateId> level_states;
  std::vector<StateId> to_eliminate;
  std::vector<StateId> parents;
  std::vector<StateId> children;
  AttrSet leaf_attrs;
};

OpScratch& Scratch() {
  thread_local OpScratch scratch;
  return scratch;
}

}  // namespace

void ApplyAddParent(Organization* org, StateId s,
                    const ReachabilityFn& reachability, OpUndo* undo,
                    OpResult* result) {
  UndoLogScope log_scope(org, undo);
  result->Clear();
  result->kind = OpKind::kAddParent;
  result->target = s;

  if (!org->alive(s) || s == org->root() || org->level(s) <= 0) {
    result->message = "target not eligible";
    return;
  }

  // Candidate: highest-reachability non-leaf state at level l-1 that is not
  // already a parent and is not a descendant of s (cycle safety).
  int parent_level = org->level(s) - 1;
  OpScratch& scratch = Scratch();
  org->StatesAtLevelInto(parent_level, &scratch.level_states);
  StateId best = kInvalidId;
  double best_reach = -1.0;
  for (StateId cand : scratch.level_states) {
    if (org->kind(cand) == StateKind::kLeaf || cand == s) continue;
    if (IsParentOf(*org, cand, s)) continue;
    if (org->WouldCreateCycle(cand, s)) continue;
    double r = reachability(cand);
    if (r > best_reach || (r == best_reach && cand < best)) {
      best_reach = r;
      best = cand;
    }
  }
  if (best == kInvalidId) {
    result->message = "no eligible parent candidate at level " +
                      std::to_string(parent_level);
    return;
  }

  // Restore the inclusion property: the new parent and its ancestors gain
  // s's attributes. For tag/interior targets also merge their tag sets so
  // labels stay meaningful; a leaf contributes its single attribute only.
  // PropagateAttrsUpward copies the tag span before mutating, so passing
  // s's own arena-backed spans/sets is safe.
  if (org->kind(s) == StateKind::kLeaf) {
    scratch.leaf_attrs.Reset(org->ctx().num_attrs());
    scratch.leaf_attrs.Set(org->attr_of(s));
    org->PropagateAttrsUpward(best, scratch.leaf_attrs, TagSpan(),
                              &result->topic_changed);
  } else {
    org->PropagateAttrsUpward(best, org->attrs(s), org->tags(s),
                              &result->topic_changed);
  }

  Status edge = org->AddEdge(best, s);
  assert(edge.ok());
  (void)edge;
  result->children_changed.push_back(best);
  result->new_parent = best;
  result->applied = true;
  org->RecomputeLevels();
}

void ApplyDeleteParent(Organization* org, StateId s,
                       const ReachabilityFn& reachability, OpUndo* undo,
                       OpResult* result) {
  UndoLogScope log_scope(org, undo);
  result->Clear();
  result->kind = OpKind::kDeleteParent;
  result->target = s;

  if (!org->alive(s) || s == org->root()) {
    result->message = "target not eligible";
    return;
  }

  // Least-reachable eligible parent. Only interior states can be
  // eliminated: the root, tag states and leaves are fixed (section 3.2).
  StateId r = kInvalidId;
  double worst_reach = 0.0;
  for (StateId p : org->parents(s)) {
    if (org->kind(p) != StateKind::kInterior) continue;
    if (org->parents(p).empty()) continue;  // Would orphan its children.
    double reach = reachability(p);
    if (r == kInvalidId || reach < worst_reach ||
        (reach == worst_reach && p < r)) {
      worst_reach = reach;
      r = p;
    }
  }
  if (r == kInvalidId) {
    result->message = "no eliminable parent";
    return;
  }

  // Elimination set: r plus its interior siblings (children of r's parents)
  // except single-tag states. s itself and states without parents are
  // protected.
  OpScratch& scratch = Scratch();
  std::vector<StateId>& to_eliminate = scratch.to_eliminate;
  to_eliminate.clear();
  to_eliminate.push_back(r);
  for (StateId p : org->parents(r)) {
    for (StateId sib : org->children(p)) {
      if (sib == r || sib == s) continue;
      if (org->kind(sib) != StateKind::kInterior) continue;
      if (org->tags(sib).size() <= 1) continue;  // "except siblings w/ 1 tag"
      if (std::find(to_eliminate.begin(), to_eliminate.end(), sib) ==
          to_eliminate.end()) {
        to_eliminate.push_back(sib);
      }
    }
  }

  // Eliminate iteratively: reconnect children to parents, then remove.
  // Processing one state at a time keeps the graph consistent even if an
  // eliminated state is an ancestor of another one. AddEdge can relocate
  // arena ranges, so each state's neighbor lists are snapshotted before
  // the splice.
  for (StateId e : to_eliminate) {
    if (!org->alive(e)) continue;  // Already handled through another parent.
    if (org->parents(e).empty()) continue;
    IdSpan ps = org->parents(e);
    IdSpan cs = org->children(e);
    scratch.parents.assign(ps.begin(), ps.end());
    scratch.children.assign(cs.begin(), cs.end());
    for (StateId p : scratch.parents) {
      for (StateId c : scratch.children) {
        Status edge = org->AddEdge(p, c);
        // AlreadyExists is fine: the child may already hang under p.
        assert(edge.ok() || edge.code() == StatusCode::kAlreadyExists);
        (void)edge;
      }
      if (std::find(result->children_changed.begin(),
                    result->children_changed.end(),
                    p) == result->children_changed.end()) {
        result->children_changed.push_back(p);
      }
    }
    Status removed = org->RemoveState(e);
    assert(removed.ok());
    (void)removed;
    result->removed.push_back(e);
  }

  if (result->removed.empty()) {
    result->message = "nothing eliminated";
    return;
  }
  // Parents that were themselves eliminated must not be reported as
  // changed.
  auto& cc = result->children_changed;
  cc.erase(std::remove_if(cc.begin(), cc.end(),
                          [org](StateId p) { return !org->alive(p); }),
           cc.end());
  result->applied = true;
  org->RecomputeLevels();
}

OpResult ApplyAddParent(Organization* org, StateId s,
                        const ReachabilityFn& reachability, OpUndo* undo) {
  OpResult result;
  ApplyAddParent(org, s, reachability, undo, &result);
  return result;
}

OpResult ApplyDeleteParent(Organization* org, StateId s,
                           const ReachabilityFn& reachability, OpUndo* undo) {
  OpResult result;
  ApplyDeleteParent(org, s, reachability, undo, &result);
  return result;
}

}  // namespace lakeorg
