#include "core/multidim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <future>
#include <map>

#include "cluster/shard_partition.h"
#include "common/logging.h"

namespace lakeorg {

double MultiDimOrganization::MaxDimensionSeconds() const {
  double max_s = 0.0;
  for (const DimensionInfo& d : info_) max_s = std::max(max_s, d.seconds);
  return max_s;
}

double MultiDimOrganization::TotalDimensionSeconds() const {
  double total = 0.0;
  for (const DimensionInfo& d : info_) total += d.seconds;
  return total;
}

Result<MultiDimOrganization> BuildMultiDimFromPartition(
    const DataLake& lake, const TagIndex& index,
    const std::vector<std::vector<TagId>>& partition,
    const MultiDimOptions& options) {
  // Fail fast, before any dimension spins up a worker pool. With valid
  // options and no target restriction the per-dimension searches below
  // cannot fail, so the parallel lambdas stay Status-free.
  if (options.optimize) {
    LAKEORG_RETURN_NOT_OK(ValidateLocalSearchOptions(options.search));
    if (!options.search.restrict_targets.empty()) {
      return Status::InvalidArgument(
          "restrict_targets is per-organization and cannot apply across "
          "dimensions");
    }
  }

  struct DimOutput {
    Organization org;
    DimensionInfo info;
  };

  size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads;
  // When dimensions themselves run in parallel, an unset per-dimension
  // thread count would oversubscribe the machine (dims x queries pools);
  // keep each dimension's search serial unless the caller pinned it.
  bool parallel_dims = threads > 1 && partition.size() > 1;

  auto build_dimension = [&lake, &index, &options, parallel_dims](
                             const std::vector<TagId>& tags,
                             size_t dim_index) -> DimOutput {
    std::shared_ptr<const OrgContext> ctx =
        OrgContext::Build(lake, index, tags);
    Organization initial =
        options.initial == MultiDimOptions::Initial::kClustering
            ? BuildClusteringOrganization(ctx)
            : BuildFlatOrganization(ctx);

    DimensionInfo info;
    info.num_tags = ctx->num_tags();
    info.num_attrs = ctx->num_attrs();
    info.num_tables = ctx->num_tables();
    if (!options.optimize) {
      return DimOutput{std::move(initial), info};
    }
    LocalSearchOptions search = options.search;
    search.seed = options.search.seed + dim_index;
    if (search.num_threads == 0 && parallel_dims) search.num_threads = 1;
    LocalSearchResult result =
        OptimizeOrganization(std::move(initial), search).value();
    info.num_reps = options.search.use_representatives
                        ? result.num_queries
                        : 0;
    info.effectiveness = result.effectiveness;
    info.seconds = result.seconds;
    info.proposals = result.proposals;
    return DimOutput{std::move(result.org), info};
  };

  std::vector<DimOutput> outputs;
  outputs.reserve(partition.size());
  if (threads <= 1 || partition.size() <= 1) {
    for (size_t i = 0; i < partition.size(); ++i) {
      outputs.push_back(build_dimension(partition[i], i));
    }
  } else {
    ThreadPool pool(std::min(threads, partition.size()));
    std::vector<std::future<DimOutput>> futures;
    futures.reserve(partition.size());
    for (size_t i = 0; i < partition.size(); ++i) {
      futures.push_back(pool.Submit(
          [&build_dimension, &partition, i]() {
            return build_dimension(partition[i], i);
          }));
    }
    for (auto& f : futures) outputs.push_back(f.get());
  }

  std::vector<Organization> dims;
  std::vector<DimensionInfo> info;
  dims.reserve(outputs.size());
  info.reserve(outputs.size());
  for (DimOutput& out : outputs) {
    dims.push_back(std::move(out.org));
    info.push_back(out.info);
  }
  return MultiDimOrganization(std::move(dims), std::move(info));
}

Result<MultiDimOrganization> BuildMultiDimOrganization(
    const DataLake& lake, const TagIndex& index,
    const MultiDimOptions& options) {
  assert(!index.NonEmptyTags().empty());
  ShardPartitionOptions popts;
  popts.shards = std::max<size_t>(1, options.dimensions);
  popts.seed = options.partition_seed;
  std::vector<std::vector<TagId>> partition =
      PartitionTagsByTopic(index, popts);
  LAKEORG_LOG(kInfo) << "multi-dim: " << partition.size()
                     << " tag clusters over " << index.NonEmptyTags().size()
                     << " tags";
  return BuildMultiDimFromPartition(lake, index, partition, options);
}

std::vector<double> MultiDimSuccess::SortedAscending(
    size_t pad_to_tables) const {
  std::vector<double> out = success;
  if (pad_to_tables > out.size()) {
    out.insert(out.end(), pad_to_tables - out.size(), 0.0);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Combines per-dimension per-table probabilities with Equation 8.
MultiDimSuccess CombineAcrossDims(
    const MultiDimOrganization& org,
    const std::vector<std::vector<double>>& per_dim_table_probs) {
  std::map<TableId, double> miss;  // 1 - combined probability so far.
  for (size_t d = 0; d < org.num_dimensions(); ++d) {
    const OrgContext& ctx = org.dimension(d).ctx();
    const std::vector<double>& probs = per_dim_table_probs[d];
    for (uint32_t t = 0; t < ctx.num_tables(); ++t) {
      TableId lake_id = ctx.lake_table(t);
      auto [it, inserted] = miss.emplace(lake_id, 1.0);
      it->second *= (1.0 - probs[t]);
    }
  }
  MultiDimSuccess out;
  double total = 0.0;
  for (const auto& [table, m] : miss) {
    out.tables.push_back(table);
    out.success.push_back(1.0 - m);
    total += 1.0 - m;
  }
  out.mean = out.tables.empty()
                 ? 0.0
                 : total / static_cast<double>(out.tables.size());
  return out;
}

}  // namespace

MultiDimSuccess EvaluateMultiDimSuccess(const MultiDimOrganization& org,
                                        double theta,
                                        const TransitionConfig& config) {
  OrgEvaluator eval(config);
  std::vector<std::vector<double>> per_dim(org.num_dimensions());
  for (size_t d = 0; d < org.num_dimensions(); ++d) {
    const Organization& dim = org.dimension(d);
    auto neighbors = OrgEvaluator::AttributeNeighbors(dim.ctx(), theta);
    per_dim[d] = eval.Success(dim, neighbors).per_table;
  }
  return CombineAcrossDims(org, per_dim);
}

MultiDimSuccess EvaluateMultiDimDiscovery(const MultiDimOrganization& org,
                                          const TransitionConfig& config) {
  OrgEvaluator eval(config);
  std::vector<std::vector<double>> per_dim(org.num_dimensions());
  for (size_t d = 0; d < org.num_dimensions(); ++d) {
    const Organization& dim = org.dimension(d);
    std::vector<double> discovery = eval.AllAttributeDiscovery(dim);
    std::vector<double>& table_probs = per_dim[d];
    table_probs.resize(dim.ctx().num_tables());
    for (uint32_t t = 0; t < dim.ctx().num_tables(); ++t) {
      table_probs[t] =
          OrgEvaluator::TableDiscovery(dim.ctx(), t, discovery);
    }
  }
  return CombineAcrossDims(org, per_dim);
}

}  // namespace lakeorg
