#include "core/alloc_stats.h"

#include "obs/metrics.h"

namespace lakeorg {
namespace {

std::atomic<const std::atomic<uint64_t>*> g_calls{nullptr};
std::atomic<const std::atomic<uint64_t>*> g_bytes{nullptr};
std::atomic<uint64_t> g_published_calls{0};
std::atomic<uint64_t> g_published_bytes{0};

}  // namespace

void SetAllocStatsSource(const std::atomic<uint64_t>* calls,
                         const std::atomic<uint64_t>* bytes) {
  g_calls.store(calls, std::memory_order_release);
  g_bytes.store(bytes, std::memory_order_release);
  g_published_calls.store(calls != nullptr ? calls->load() : 0);
  g_published_bytes.store(bytes != nullptr ? bytes->load() : 0);
}

bool AllocStatsAvailable() {
  return g_calls.load(std::memory_order_acquire) != nullptr;
}

uint64_t AllocCallsNow() {
  const std::atomic<uint64_t>* c = g_calls.load(std::memory_order_acquire);
  return c != nullptr ? c->load(std::memory_order_relaxed) : 0;
}

uint64_t AllocBytesNow() {
  const std::atomic<uint64_t>* b = g_bytes.load(std::memory_order_acquire);
  return b != nullptr ? b->load(std::memory_order_relaxed) : 0;
}

void PublishCoreAllocMetrics() {
  if (!AllocStatsAvailable()) return;
  uint64_t calls = AllocCallsNow();
  uint64_t bytes = AllocBytesNow();
  uint64_t prev_calls = g_published_calls.exchange(calls);
  uint64_t prev_bytes = g_published_bytes.exchange(bytes);
  if (!obs::MetricsEnabled()) return;
  obs::GetCounter("core.alloc_calls_total").Add(calls - prev_calls);
  obs::GetCounter("core.alloc_bytes_total").Add(bytes - prev_bytes);
}

}  // namespace lakeorg
