// Incremental organization repair for live lake evolution: instead of
// rebuilding (and re-optimizing) the whole navigation DAG after a batch
// of catalog mutations, RepairOrganization splices the LakeDelta into the
// existing organization — new leaves hang under the tag states of their
// tags, dead leaves and dead tag states are pruned with their edges
// lifted to surviving ancestors, retagged attributes are re-homed — and
// then runs a short localized re-optimization restricted to the affected
// states (LocalSearchOptions::restrict_targets). See docs/EVOLUTION.md.
#pragma once

#include <memory>
#include <vector>

#include "core/local_search.h"
#include "core/organization.h"
#include "lake/data_lake.h"
#include "lake/lake_delta.h"
#include "lake/tag_index.h"

namespace lakeorg {

/// Tunables of the repair path.
struct RepairOptions {
  /// Transition-model hyperparameters (shared with the evaluators).
  TransitionConfig transition;
  /// Explicit dimension tag set (lake tag ids) for the repaired context.
  /// Empty = derive it: the old context's tags, plus delta.added_tags,
  /// plus the tags of added/retagged attributes. Repairing one dimension
  /// of a multi-dimensional organization should pass the dimension's tag
  /// partition here so another dimension's tags are not pulled in.
  std::vector<TagId> dimension_tags;
  /// Proposal budget of the localized re-optimization (0 = splice only).
  size_t reopt_max_proposals = 200;
  /// Plateau patience of the localized re-optimization.
  size_t reopt_patience = 25;
  /// Metropolis acceptance sharpness of the re-optimization.
  double acceptance_sharpness = 400.0;
  /// RNG seed of the re-optimization.
  uint64_t seed = 1234;
  /// Evaluator worker threads (0 = hardware concurrency; results are
  /// bit-identical for every value).
  size_t num_threads = 1;
  /// Run Organization::Validate() on the spliced DAG before evaluating
  /// (cheap relative to a rebuild; returns Internal on violation).
  bool validate = true;
};

/// Output of one repair.
struct RepairResult {
  /// The repaired organization, over `ctx`.
  Organization org;
  /// The freshly built context the repaired organization lives in.
  std::shared_ptr<const OrgContext> ctx;
  /// Effectiveness after splice + localized re-optimization.
  double effectiveness = 0.0;
  /// Effectiveness of the splice alone (the re-optimization starts here;
  /// effectiveness >= splice_effectiveness by construction).
  double splice_effectiveness = 0.0;
  /// Distinct states the splice touched (created, re-homed, propagated
  /// into, or left with changed children) — the re-optimization targets.
  size_t states_touched = 0;
  /// New-context state ids of those states.
  std::vector<StateId> affected_states;
  size_t leaves_added = 0;
  size_t leaves_removed = 0;
  /// Non-leaf states of the old organization dropped by the splice
  /// (dead tags, emptied interiors).
  size_t states_dropped = 0;
  /// Proposals the localized re-optimization evaluated.
  size_t reopt_proposals = 0;
  /// Wall-clock seconds for the whole repair.
  double seconds = 0.0;
};

/// Splices `delta` into `org` and locally re-optimizes. `lake` and
/// `index` must reflect the post-delta catalog (topics computed for the
/// appended attributes, TagIndex rebuilt); `org` must be a valid
/// organization over the pre-delta catalog. Fails on invalid options or
/// when the splice produces an invalid DAG (with options.validate).
Result<RepairResult> RepairOrganization(const Organization& org,
                                        const DataLake& lake,
                                        const TagIndex& index,
                                        const LakeDelta& delta,
                                        const RepairOptions& options);

}  // namespace lakeorg
