// OrgContext: the immutable, per-dimension view of a data lake that an
// organization is built over. A dimension is a subset of the lake's tags
// (section 2.5); the context re-indexes those tags, their attribute extents
// (data(t), Definition 5), the attributes' topic vectors, and the tables
// they cover into dense local id spaces so organization states can use
// bitsets and flat arrays.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/dynamic_bitset.h"
#include "lake/data_lake.h"
#include "lake/tag_index.h"

namespace lakeorg {

/// Immutable per-dimension catalog snapshot. Local ids: tags are
/// [0, num_tags), attributes [0, num_attrs), tables [0, num_tables).
class OrgContext {
 public:
  /// Builds a context over `tags` (lake tag ids; empty extents dropped).
  /// Attributes = union of the tags' extents; tables = tables owning those
  /// attributes. Requires lake.topic_vectors_computed().
  static std::shared_ptr<const OrgContext> Build(const DataLake& lake,
                                                 const TagIndex& index,
                                                 std::vector<TagId> tags);

  /// Context over every non-empty tag of the lake.
  static std::shared_ptr<const OrgContext> BuildFull(const DataLake& lake,
                                                     const TagIndex& index);

  size_t num_tags() const { return lake_tags_.size(); }
  size_t num_attrs() const { return lake_attrs_.size(); }
  size_t num_tables() const { return lake_tables_.size(); }
  /// Embedding dimension of all topic vectors.
  size_t dim() const { return dim_; }

  /// Lake-level ids for local ids.
  TagId lake_tag(size_t t) const { return lake_tags_[t]; }
  AttributeId lake_attr(size_t a) const { return lake_attrs_[a]; }
  TableId lake_table(size_t tb) const { return lake_tables_[tb]; }

  /// Tag display name.
  const std::string& tag_name(size_t t) const { return tag_names_[t]; }
  /// Tag-state topic vector (Definition 5).
  const Vec& tag_vector(size_t t) const { return tag_vectors_[t]; }
  /// Extent of tag t as a bitset over local attributes.
  const DynamicBitset& tag_extent(size_t t) const { return tag_extents_[t]; }
  /// Extent of tag t as an ascending id list.
  const std::vector<uint32_t>& tag_extent_list(size_t t) const {
    return tag_extent_lists_[t];
  }

  /// Attribute topic vector (sample mean of value embeddings).
  const Vec& attr_vector(size_t a) const { return attr_vectors_[a]; }
  /// Component-wise sum of the attribute's value embeddings.
  const Vec& attr_sum(size_t a) const { return attr_sums_[a]; }
  /// Number of embedded values behind attr_sum.
  size_t attr_value_count(size_t a) const { return attr_value_counts_[a]; }
  /// Local tags carried by attribute a (ascending).
  const std::vector<uint32_t>& attr_tags(size_t a) const {
    return attr_tags_[a];
  }
  /// Local table owning attribute a.
  uint32_t attr_table(size_t a) const { return attr_tables_[a]; }
  /// "table_name.attr_name" display label.
  const std::string& attr_label(size_t a) const { return attr_labels_[a]; }

  /// Local attributes of local table tb that are inside this dimension.
  const std::vector<uint32_t>& table_attrs(size_t tb) const {
    return table_attrs_[tb];
  }
  /// Display name of local table tb.
  const std::string& table_name(size_t tb) const { return table_names_[tb]; }

  /// An empty bitset sized to the attribute universe (for copying).
  DynamicBitset MakeAttrSet() const { return DynamicBitset(num_attrs()); }

 private:
  OrgContext() = default;

  size_t dim_ = 0;
  std::vector<TagId> lake_tags_;
  std::vector<AttributeId> lake_attrs_;
  std::vector<TableId> lake_tables_;
  std::vector<std::string> tag_names_;
  std::vector<Vec> tag_vectors_;
  std::vector<DynamicBitset> tag_extents_;
  std::vector<std::vector<uint32_t>> tag_extent_lists_;
  std::vector<Vec> attr_vectors_;
  std::vector<Vec> attr_sums_;
  std::vector<size_t> attr_value_counts_;
  std::vector<std::vector<uint32_t>> attr_tags_;
  std::vector<uint32_t> attr_tables_;
  std::vector<std::string> attr_labels_;
  std::vector<std::vector<uint32_t>> table_attrs_;
  std::vector<std::string> table_names_;
};

}  // namespace lakeorg
