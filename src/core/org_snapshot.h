// RCU-style snapshot publishing for live serving: readers (navigation
// sessions, keyword search, the simulated-user study) pin an immutable
// OrgSnapshot with one constant-time pointer copy and keep it alive for
// as long as they need it, while a writer builds the next version off to
// the side and publishes it with a single shared-ptr swap. No reader
// ever blocks on a repair (the mutex below only guards the pointer copy,
// never the seconds-long rebuild work) and no repair ever mutates state
// a reader can see. See docs/EVOLUTION.md.
//
// The swap is guarded by a plain mutex rather than
// std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic unlocks its
// internal spinlock with relaxed ordering on the reader path, which
// ThreadSanitizer (correctly, per the C++ memory model) reports as a
// data race against the writer. A mutex-held pointer copy is a few
// nanoseconds, TSan-clean, and keeps the same publish/pin semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/org_context.h"
#include "core/organization.h"
#include "lake/data_lake.h"
#include "lake/tag_index.h"

namespace lakeorg {

class MultiDimOrganization;
class TableSearchEngine;

/// One immutable, internally consistent serving version: the lake, the
/// derived indexes, the organization(s), and the keyword-search engine
/// all describe the same catalog state. Everything is held by
/// shared_ptr-to-const, so a snapshot outlives its store for as long as
/// any reader still references it.
struct OrgSnapshot {
  /// Monotonic version, assigned by OrgSnapshotStore::Publish (1-based;
  /// 0 only on hand-built unpublished snapshots).
  uint64_t version = 0;
  std::shared_ptr<const DataLake> lake;
  std::shared_ptr<const TagIndex> index;
  std::shared_ptr<const OrgContext> ctx;
  /// The (single-dimension) navigation DAG; may be null when `multi` is
  /// the serving surface.
  std::shared_ptr<const Organization> org;
  /// Multi-dimensional organization; may be null.
  std::shared_ptr<const MultiDimOrganization> multi;
  /// Keyword-search engine over `lake`; may be null.
  std::shared_ptr<const TableSearchEngine> engine;
  /// Effectiveness of `org` at publish time (repair/build telemetry).
  double effectiveness = 0.0;
};

/// The swappable current snapshot. Current() copies the pointer under a
/// briefly held mutex; Publish() assigns the next version and swaps the
/// pointer in. Multiple concurrent readers and one (externally
/// serialized) writer is the intended regime, but Publish itself is also
/// thread-safe.
class OrgSnapshotStore {
 public:
  /// The latest published snapshot; null before the first Publish.
  std::shared_ptr<const OrgSnapshot> Current() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  /// Stamps `snapshot` with the next version, publishes it, and returns
  /// the version. Readers holding the previous snapshot keep it alive;
  /// new readers see the new one immediately.
  uint64_t Publish(OrgSnapshot snapshot);

  /// Version of the latest published snapshot (0 before the first).
  uint64_t version() const {
    return published_version_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const OrgSnapshot> current_;
  std::atomic<uint64_t> next_version_{1};
  std::atomic<uint64_t> published_version_{0};
};

}  // namespace lakeorg
