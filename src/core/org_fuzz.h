// Randomized differential-testing harness for the organization model.
//
// Three layers, all deterministic for a fixed seed:
//   1. MakeFuzzLake — a small random benchgen lake (TagCloud shape with
//      randomized tag/attribute counts) plus its TagIndex and OrgContext.
//   2. RandomOrganization — a random valid DAG over a context: leaves, tag
//      states and the root as in section 3.2, plus random interior states
//      over random tag subsets and random extra edges, every edge admitted
//      through Organization::AddEdge's own inclusion/cycle checks.
//   3. RunDiffTrial — one end-to-end differential trial: build a lake and
//      random organization(s), compare OrgEvaluator (serial and pooled)
//      and IncrementalEvaluator (serial and multi-threaded) against
//      ReferenceEvaluator, then drive a random ADD_PARENT / DELETE_PARENT
//      sequence with interleaved accept / reject-rollback, re-checking the
//      oracle, Validate() and the topic invariants after every step. With
//      dims > 1 the final organizations are also combined and checked
//      against the oracle's Eq. 8 aggregation.
//
// tools/difftest.cc drives RunDiffTrial from the command line; the
// fuzz-labeled CTest tier runs a fixed-seed corpus through the same code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "benchgen/tagcloud.h"
#include "common/random.h"
#include "core/org_context.h"
#include "core/organization.h"
#include "lake/tag_index.h"

namespace lakeorg {

/// Size envelope for random fuzz lakes; actual counts are drawn uniformly
/// from these ranges per lake.
struct FuzzLakeOptions {
  size_t min_tags = 5;
  size_t max_tags = 14;
  size_t min_attrs = 24;
  size_t max_attrs = 70;
};

/// A generated lake with its index and full-lake context.
struct FuzzLake {
  TagCloudBenchmark bench;
  TagIndex index;
  std::shared_ptr<const OrgContext> ctx;
};

/// Generates a random lake. Deterministic given `rng`'s state.
FuzzLake MakeFuzzLake(Rng* rng, const FuzzLakeOptions& options = {});

/// Knobs for RandomOrganization.
struct RandomOrgOptions {
  /// Interior states sampled over random tag subsets (kept only when some
  /// edge to them survives the inclusion/cycle checks).
  size_t max_interior_states = 6;
  /// Probability of each optional structural edge being attempted.
  double edge_prob = 0.35;
  /// Probability of an extra interior -> leaf shortcut edge per (state,
  /// leaf-in-extent) pair that passes the inclusion check.
  double shortcut_prob = 0.02;
};

/// Builds a random valid organization over `ctx`: every attribute gets a
/// leaf, every tag a tag state reachable from the root, interiors and extra
/// edges are random. Levels are recomputed and the result always passes
/// Validate().
Organization RandomOrganization(std::shared_ptr<const OrgContext> ctx,
                                Rng* rng,
                                const RandomOrgOptions& options = {});

/// One differential trial's configuration.
struct DiffTrialOptions {
  /// Trial seed; drives the lake, organizations and op sequence. Printed
  /// with every failure so a trial can be replayed exactly.
  uint64_t seed = 1;
  /// Evaluator worker threads for the parallel comparisons (serial runs
  /// are always performed too).
  size_t threads = 4;
  /// Number of dimensions; 1 fuzzes a single full-lake organization,
  /// > 1 partitions the tags randomly and also checks Eq. 8 aggregation.
  size_t dims = 1;
  /// Length of the random accept/reject op sequence.
  size_t num_ops = 24;
  /// Probability an applied operation is committed (vs rolled back).
  double accept_prob = 0.5;
  /// Comparison tolerance for |optimized - reference|.
  double tolerance = 1e-9;
  /// Success-probability neighborhood threshold (§4.2).
  double success_theta = 0.8;
  FuzzLakeOptions lake;
  RandomOrgOptions org;
};

/// Outcome of one trial. Max diffs are over every comparison performed.
struct DiffTrialResult {
  bool ok = true;
  /// First failure, with the trial seed embedded; empty when ok.
  std::string error;
  double max_reach_diff = 0.0;
  double max_discovery_diff = 0.0;
  double max_effectiveness_diff = 0.0;
  double max_success_diff = 0.0;
  size_t num_states = 0;
  size_t num_attrs = 0;
  size_t ops_applied = 0;
  size_t ops_committed = 0;
  size_t ops_rolled_back = 0;
};

/// Runs one differential trial.
DiffTrialResult RunDiffTrial(const DiffTrialOptions& options);

/// One repair differential trial's configuration (tools/difftest.cc
/// --repair). Deterministic for a fixed seed, like RunDiffTrial.
struct RepairTrialOptions {
  /// Trial seed; drives the lake, the organization and the mutation batch.
  uint64_t seed = 1;
  /// Evaluator worker threads for the repair (the reference re-evaluation
  /// is always serial).
  size_t threads = 1;
  /// |incremental - reference| tolerance on the repaired organization.
  double tolerance = 1e-9;
  /// Mutations per batch; each is an add-table, remove-table or
  /// retag-attribute drawn at random.
  size_t num_mutations = 3;
  /// Proposal budget of the localized re-optimization (0 = splice only).
  size_t reopt_max_proposals = 60;
  FuzzLakeOptions lake;
  RandomOrgOptions org;
};

/// Outcome of one repair trial.
struct RepairTrialResult {
  bool ok = true;
  /// First failure, with the trial seed embedded; empty when ok.
  std::string error;
  /// |IncrementalEvaluator - ReferenceEvaluator| on the repaired
  /// organization.
  double effectiveness_diff = 0.0;
  /// effectiveness - splice_effectiveness of the repair (the localized
  /// re-optimization's contribution; >= 0 by construction).
  double reopt_gain = 0.0;
  size_t leaves_added = 0;
  size_t leaves_removed = 0;
  size_t states_dropped = 0;
  size_t states_touched = 0;
};

/// Runs one repair differential trial: random lake -> random organization
/// -> random BeginDelta/TakeDelta mutation batch -> RepairOrganization.
/// Checks that the repaired organization passes Validate() and the topic
/// invariants, that its effectiveness matches ReferenceEvaluator to the
/// tolerance, and that repair + re-optimization is never worse than the
/// splice alone.
RepairTrialResult RunRepairTrial(const RepairTrialOptions& options);

/// One state-recycling differential trial's configuration
/// (tools/difftest.cc --recycle). Deterministic for a fixed seed.
///
/// Stresses the arena free list: rounds of delete-biased op churn kill
/// interior states, RecycleDeadStates() pushes their slots onto the free
/// list, and fresh random interior states must come back on exactly those
/// slots — with bumped slot versions, stable leaf StateIds, a valid
/// organization, and evaluator results that still match the naive
/// ReferenceEvaluator oracle after re-initialization.
struct RecycleTrialOptions {
  /// Trial seed; drives the lake, the organization and the churn.
  uint64_t seed = 1;
  /// Worker threads of the threaded IncrementalEvaluator (a serial one
  /// always runs too and must agree bit-for-bit).
  size_t threads = 4;
  /// Churn rounds; each is ops -> RecycleDeadStates -> slot reuse ->
  /// re-initialize -> oracle check.
  size_t num_rounds = 4;
  /// Random ops per round, biased toward DELETE_PARENT so states die.
  size_t ops_per_round = 10;
  /// Probability an applied op is committed (vs rolled back). Rollbacks
  /// exercise the undo journal against recycled and relocated slots.
  double accept_prob = 0.8;
  /// Probability a churn op is DELETE_PARENT (vs ADD_PARENT).
  double delete_prob = 0.7;
  /// |optimized - reference| tolerance.
  double tolerance = 1e-9;
  FuzzLakeOptions lake;
  RandomOrgOptions org;
};

/// Outcome of one recycle trial.
struct RecycleTrialResult {
  bool ok = true;
  /// First failure, with the trial seed embedded; empty when ok.
  std::string error;
  size_t ops_applied = 0;
  /// Dead slots pushed onto the free list across all rounds.
  size_t states_recycled = 0;
  /// New states that came back on recycled slots.
  size_t slots_reused = 0;
  double max_effectiveness_diff = 0.0;
  double max_discovery_diff = 0.0;
};

/// Runs one state-recycling differential trial.
RecycleTrialResult RunRecycleTrial(const RecycleTrialOptions& options);

/// One sharded-optimization differential trial's configuration
/// (tools/difftest.cc --sharded). Deterministic for a fixed seed.
///
/// Properties checked per trial:
///   - shard-count-1 BuildShardedOrganization is BYTE-identical (via
///     SaveOrganization) to the unsharded OptimizeOrganization path, with
///     exactly equal effectiveness;
///   - a multi-shard build is byte-deterministic across thread counts and
///     under a deliberately tiny memory budget (serialized admission);
///   - the stitched organization passes Validate() and the topic
///     invariants, covers every context attribute with a leaf, has one
///     root child per shard, and its OrgEvaluator effectiveness matches
///     the naive ReferenceEvaluator oracle within the tolerance.
struct ShardedTrialOptions {
  /// Trial seed; drives the lake, shard count, and search seeds.
  uint64_t seed = 1;
  /// Shard-level pool width of the threaded build (a 1-thread build always
  /// runs too and must serialize identically).
  size_t threads = 4;
  /// Shard count is drawn from [2, 1 + max_shards].
  size_t max_shards = 4;
  /// |stitched - reference| effectiveness tolerance.
  double tolerance = 1e-9;
  /// Per-shard local-search proposal budget.
  size_t max_proposals = 40;
  FuzzLakeOptions lake;
};

/// Outcome of one sharded trial.
struct ShardedTrialResult {
  bool ok = true;
  /// First failure, with the trial seed embedded; empty when ok.
  std::string error;
  size_t shards_built = 0;
  size_t states_stitched = 0;
  /// |OrgEvaluator - ReferenceEvaluator| effectiveness on the stitched
  /// organization.
  double effectiveness_diff = 0.0;
  /// |stitched - unsharded| full-context effectiveness gap (reported, not
  /// gated — shard quality at fuzz scale is noisy by construction).
  double sharded_vs_unsharded_gap = 0.0;
};

/// Runs one sharded-optimization differential trial.
ShardedTrialResult RunShardedTrial(const ShardedTrialOptions& options);

}  // namespace lakeorg
