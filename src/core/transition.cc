#include "core/transition.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lakeorg {

std::vector<double> TransitionProbabilities(const std::vector<double>& sims,
                                            const TransitionConfig& config) {
  std::vector<double> probs(sims.size());
  TransitionProbabilitiesInto(sims, config, probs);
  return probs;
}

void TransitionProbabilitiesInto(std::span<const double> sims,
                                 const TransitionConfig& config,
                                 std::span<double> out) {
  assert(!sims.empty());
  assert(out.size() == sims.size());
  assert(config.gamma > 0.0);
  double scale = config.branching_penalty
                     ? config.gamma / static_cast<double>(sims.size())
                     : config.gamma;
  double max_sim = *std::max_element(sims.begin(), sims.end());
  double total = 0.0;
  for (size_t i = 0; i < sims.size(); ++i) {
    out[i] = std::exp(scale * (sims[i] - max_sim));
    total += out[i];
  }
  for (double& p : out) p /= total;
}

std::vector<double> ChildSimilarities(const std::vector<const Vec*>& children,
                                      const Vec& query) {
  std::vector<double> sims(children.size());
  for (size_t i = 0; i < children.size(); ++i) {
    sims[i] = Cosine(*children[i], query);
  }
  return sims;
}

}  // namespace lakeorg
