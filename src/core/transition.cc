#include "core/transition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lakeorg {

std::vector<double> TransitionProbabilities(const std::vector<double>& sims,
                                            const TransitionConfig& config) {
  std::vector<double> probs(sims.size());
  TransitionProbabilitiesInto(sims, config, probs);
  return probs;
}

void TransitionProbabilitiesInto(std::span<const double> sims,
                                 const TransitionConfig& config,
                                 std::span<double> out) {
  assert(!sims.empty());
  assert(out.size() == sims.size());
  assert(config.gamma > 0.0);
  double scale = config.branching_penalty
                     ? config.gamma / static_cast<double>(sims.size())
                     : config.gamma;
  double max_sim = *std::max_element(sims.begin(), sims.end());
  double total = 0.0;
  for (size_t i = 0; i < sims.size(); ++i) {
    out[i] = std::exp(scale * (sims[i] - max_sim));
    total += out[i];
  }
  for (double& p : out) p /= total;
}

std::vector<double> ChildSimilarities(const std::vector<const Vec*>& children,
                                      const Vec& query) {
  std::vector<double> sims(children.size());
  for (size_t i = 0; i < children.size(); ++i) {
    sims[i] = Cosine(*children[i], query);
  }
  return sims;
}

void ComputeTransitionRow(const Organization& org, StateId s, const Vec& query,
                          double query_norm, const TransitionConfig& config,
                          TransitionRow* out) {
  const OrgState& st = org.state(s);
  out->children.assign(st.children.begin(), st.children.end());
  out->probs.resize(st.children.size());
  out->ranking.resize(st.children.size());
  if (st.children.empty()) return;
  // Similarities land in `probs`, then the softmax runs in place — the
  // same CosineWithNorms + TransitionProbabilitiesInto sequence as the
  // evaluators, so results are bit-identical to a reach-DP row.
  for (size_t i = 0; i < st.children.size(); ++i) {
    const OrgState& child = org.state(st.children[i]);
    out->probs[i] =
        CosineWithNorms(child.topic, child.topic_norm, query, query_norm);
  }
  TransitionProbabilitiesInto(out->probs, config, out->probs);
  std::iota(out->ranking.begin(), out->ranking.end(), 0u);
  std::sort(out->ranking.begin(), out->ranking.end(),
            [out](uint32_t a, uint32_t b) {
              if (out->probs[a] != out->probs[b]) {
                return out->probs[a] > out->probs[b];
              }
              return a < b;
            });
}

}  // namespace lakeorg
