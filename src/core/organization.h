// Organization: the navigation DAG of section 2.1. States are nodes; every
// leaf corresponds to one attribute; every non-leaf state carries a set of
// tags and the union of their attributes; an edge (s, c) requires
// D_c ⊆ D_s (the inclusion property). The DAG supports the incremental
// mutations the local-search operations need (edge add/remove, state
// removal, upward attribute propagation) while keeping topic vectors and
// levels consistent.
//
// Storage is struct-of-arrays: per-state scalars live in parallel arrays,
// topic/topic_sum rows in one contiguous row-major matrix (stride padded to
// a multiple of 8 floats), adjacency and tag lists as CSR-style index
// ranges into shared arenas (with per-range slack so in-place edits stay
// O(1)), and attribute sets as inline-or-spilled AttrSets. `state(s)`
// returns a read-only VIEW (spans into the arenas) so existing call sites
// keep their shape; the view is invalidated by any mutation of the
// organization. Hot paths use the per-field accessors instead.
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/dynamic_bitset.h"
#include "common/status.h"
#include "core/attr_set.h"
#include "core/org_context.h"

namespace lakeorg {

/// Index of a state within an Organization.
using StateId = uint32_t;

/// Role of a state in the organization (section 3.2: leaves are single
/// attributes, their parents are single-tag "tag states", everything above
/// carries tag sets).
enum class StateKind {
  kRoot,
  kInterior,  // Multi- or single-tag internal state above tag states.
  kTag,       // Penultimate single-tag state.
  kLeaf,      // Single attribute.
};

/// Read-only view over a contiguous run of one of the SoA arenas. Derives
/// from std::span and adds element-wise equality (against other spans and
/// against owned vectors) plus conversion to an owned vector, so call
/// sites written against the old per-state std::vector members keep
/// working unchanged.
template <typename T>
class ConstSpan : public std::span<const T> {
 public:
  using std::span<const T>::span;
  constexpr ConstSpan(std::span<const T> s) : std::span<const T>(s) {}

  operator std::vector<T>() const {
    return std::vector<T>(this->begin(), this->end());
  }

  friend bool operator==(ConstSpan a, ConstSpan b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(ConstSpan a, const std::vector<T>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<T>& a, ConstSpan b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
};

using IdSpan = ConstSpan<StateId>;
using TagSpan = ConstSpan<uint32_t>;
using FloatSpan = ConstSpan<float>;

/// Read-only view of one state, assembled from the SoA arrays by
/// Organization::state(). Spans point into the shared arenas and the
/// AttrSet reference points at the per-state set; both are invalidated by
/// the next mutating Organization call.
struct OrgState {
  StateKind kind = StateKind::kInterior;
  /// Removed states stay in the arena with alive == false so StateIds are
  /// stable across mutations (explicit recycling aside).
  bool alive = true;
  /// Local attribute id for leaves; kInvalidId otherwise.
  uint32_t attr = kInvalidId;
  /// Shortest-path distance from the root (section 3.3's level); -1 when
  /// unreachable or not yet computed.
  int level = -1;
  /// Number of embedded values behind topic_sum.
  size_t value_count = 0;
  /// Cached L2 norm of `topic`, maintained whenever the topic changes.
  double topic_norm = 0.0;
  IdSpan parents;
  IdSpan children;
  /// Local tag ids (sorted); empty for leaves.
  TagSpan tags;
  /// Attribute set D_s (non-leaf).
  const AttrSet& attrs;
  /// Sum of value-embedding vectors over dom(s), for O(dim) topic updates.
  FloatSpan topic_sum;
  /// Topic vector mu_s = topic_sum / value_count (Definition 4/5).
  FloatSpan topic;
};

/// Undo log for one local-search operation. While a log is active
/// (BeginUndoLog .. EndUndoLog), every mutating Organization entry point
/// journals each state it modifies on first touch: scalars and the
/// adjacency/tag/topic-row contents go into flat pools here (self-
/// contained, so rollback is exact even if the arenas relocate or compact
/// afterwards), and attribute sets are journaled either as an inline
/// snapshot or — for already-spilled sets — as the list of bits the
/// operation added (operations only ever add attribute bits). Reusable
/// across operations; Clear() keeps pool capacity, which is what makes the
/// optimizer inner loop allocation-free at steady state.
struct OpUndo {
  struct Entry {
    StateId id = kInvalidId;
    StateKind kind = StateKind::kInterior;
    bool alive = true;
    /// Representation of the state's AttrSet at first touch. Inline sets
    /// restore from `attrs_snapshot`; spilled sets restore by clearing the
    /// journaled `attr_bits_added` (they never un-spill mid-operation).
    bool attrs_inline = true;
    int level = -1;
    size_t value_count = 0;
    double topic_norm = 0.0;
    uint32_t parents_begin = 0, parents_size = 0;  // range into `ids`
    uint32_t children_begin = 0, children_size = 0;
    uint32_t tags_begin = 0, tags_size = 0;  // range into `tags`
    /// Start of 2*dim floats in `floats`: the topic_sum row, then topic.
    uint32_t floats_begin = 0;
    AttrSet::InlineRep attrs_snapshot;  // valid iff attrs_inline
  };

  std::vector<Entry> states;
  std::vector<StateId> ids;
  std::vector<uint32_t> tags;
  std::vector<float> floats;
  /// (state, attribute) bits added to originally-spilled sets.
  std::vector<std::pair<StateId, uint32_t>> attr_bits_added;
  /// True when the operation ran RecomputeLevels (undo re-runs the BFS,
  /// since level changes are not confined to the touched set).
  bool levels_changed = false;

  void Clear() {
    states.clear();
    ids.clear();
    tags.clear();
    floats.clear();
    attr_bits_added.clear();
    levels_changed = false;
  }
};

/// The navigation DAG. All mutating calls keep parents/children symmetric;
/// levels are recomputed explicitly via RecomputeLevels() after a batch of
/// mutations (the local-search operations do this once per operation).
///
/// Thread-safety: concurrent reads through the per-field accessors and
/// state() views are safe (evaluator worker threads rely on this), EXCEPT
/// the scratch-backed queries WouldCreateCycle / TopologicalOrderInto /
/// StatesAtLevelInto, which reuse per-organization scratch buffers and must
/// only be called from the thread that owns the organization. Mutations are
/// single-threaded per organization.
class Organization {
 public:
  /// Creates an empty organization over `ctx`.
  explicit Organization(std::shared_ptr<const OrgContext> ctx);

  /// Deep copy sharing the immutable context (spilled attribute sets are
  /// shared copy-on-write, so cloning is cheap even for wide sets).
  Organization Clone() const;

  /// Deep copy of `other` into this organization, reusing the existing
  /// buffers. A fresh Clone pays for ~350KB of new heap (and the kernel
  /// page faults behind it) every call; repeated snapshot targets — the
  /// local search's best-so-far copy, restart reseeding — stay an order
  /// of magnitude cheaper by copy-assigning into held capacity.
  void CopyFrom(const Organization& other);

  /// Presizes the per-state arrays, the topic matrix, and the shared edge
  /// arena for `states` states and `edges` edges (builders and repair call
  /// this so construction does not reallocate per state).
  void Reserve(size_t states, size_t edges);

  // Construction ------------------------------------------------------------

  /// Adds the leaf state for local attribute `attr`. One leaf per
  /// attribute; asserts on duplicates.
  StateId AddLeaf(uint32_t attr);

  /// Adds a single-tag (penultimate) state for local tag `tag`.
  StateId AddTagState(uint32_t tag);

  /// Adds an interior state carrying `tags` (deduplicated, sorted); its
  /// attribute set and topic are derived from the tags' extents.
  StateId AddInteriorState(std::vector<uint32_t> tags);

  /// Adds the root state over `tags` (usually all tags of the context).
  StateId AddRoot(std::vector<uint32_t> tags);

  /// Adds edge parent -> child. Fails on dead/unknown states, duplicate
  /// edges, self-loops, edges into the root, edges out of a leaf, or
  /// inclusion-property violations. Does NOT check acyclicity (callers use
  /// WouldCreateCycle when the edge direction is not structurally safe).
  Status AddEdge(StateId parent, StateId child);

  /// Removes edge parent -> child; fails when absent. Order-preserving for
  /// the surviving siblings (transition rows depend on child order).
  Status RemoveEdge(StateId parent, StateId child);

  /// Detaches `s` from all neighbors and marks it dead. Fails for the root
  /// and for leaves (leaves are permanent, section 3.2).
  Status RemoveState(StateId s);

  /// True iff adding parent -> child would create a cycle, i.e. `parent`
  /// is reachable from `child` via child edges. Uses scratch buffers: only
  /// call from the owning thread.
  bool WouldCreateCycle(StateId parent, StateId child) const;

  // Invariant maintenance ----------------------------------------------------

  /// Adds `attrs` (and `tags`) to state `s` and to all its ancestors,
  /// updating topic sums incrementally. Appends every state whose
  /// attribute set actually grew to `touched` (if non-null). Used by
  /// ADD_PARENT to restore the inclusion property. `attrs` may alias
  /// state s's own set; `tags` is copied internally before any mutation.
  void PropagateAttrsUpward(StateId s, const AttrSet& attrs,
                            std::span<const uint32_t> tags,
                            std::vector<StateId>* touched);

  /// Same, with a plain-bitset source (the repair path computes missing
  /// attribute sets as DynamicBitsets).
  void PropagateAttrsUpward(StateId s, const DynamicBitset& attrs,
                            std::span<const uint32_t> tags,
                            std::vector<StateId>* touched);

  /// Recomputes `level` for all states via BFS from the root.
  void RecomputeLevels();

  // Undo log -----------------------------------------------------------------

  /// Activates `undo` (cleared first) as the journal for subsequent
  /// mutations. At most one log may be active; the caller must
  /// EndUndoLog before Clone/Undo. May compact the arenas first when
  /// enough garbage accumulated (never under an active journal).
  void BeginUndoLog(OpUndo* undo);

  /// Deactivates the current journal (no-op when none is active).
  void EndUndoLog();

  /// Rolls back every state journaled in `undo` to its pre-operation
  /// contents and, when the operation changed levels, re-runs the level
  /// BFS. Requires no active journal. Safe on an empty log. The journal is
  /// self-contained, so rollback stays exact even after later operations
  /// relocated or compacted the arenas — but it must not be replayed after
  /// RecycleDeadStates (it could resurrect a recycled slot).
  void Undo(const OpUndo& undo);

  /// Recomputes the attribute set and topic of one non-leaf state from its
  /// tag set (root/interior/tag states only).
  void RecomputeStateFromTags(StateId s);

  /// Adds attributes to a single non-leaf state without propagating to
  /// ancestors. Used by deserialization to restore attributes that
  /// ADD_PARENT operations had propagated beyond the state's tag extents;
  /// general callers should use PropagateAttrsUpward to keep the
  /// inclusion property intact.
  void AddExtraAttrs(StateId s, const std::vector<uint32_t>& attrs);

  /// Recomputes every non-leaf state's attribute-derived fields (attrs,
  /// topic_sum, value_count, topic, topic_norm) from scratch, accumulating
  /// in the same order the deserialization path uses (tag extents in
  /// ascending attribute order, then propagated extras in ascending
  /// order). Incremental maintenance during search accumulates float sums
  /// in operation order instead, so a save/load round trip is normally
  /// only equal up to float accumulation error; after this call it is
  /// bit-identical, and scores computed before saving match scores
  /// computed after reloading exactly.
  void RecomputeAllTopics();

  // Arena management ---------------------------------------------------------

  /// Rewrites the edge and tag arenas without garbage or slack (ranges are
  /// re-packed in state order). Requires no active undo log. Outstanding
  /// OpUndo journals remain replayable (they are self-contained).
  void CompactStorage();

  /// Pushes every dead, detached state onto the free list so NewState can
  /// reuse its slot (bumping the slot's version); returns how many were
  /// recycled. num_states() is unchanged — StateIds of live states remain
  /// stable. Requires no active undo log, and callers must drop outstanding
  /// OpUndo journals and reinitialize evaluator caches afterwards (a
  /// recycled id changes identity, which slot_version makes observable).
  size_t RecycleDeadStates();

  /// Number of recycled slots awaiting reuse.
  size_t FreeListSize() const { return free_list_.size(); }

  /// Version of slot `s`, bumped each time the slot is recycled into a new
  /// state. A (StateId, version) pair is a stable identity across reuse.
  uint32_t slot_version(StateId s) const { return slot_version_[s]; }

  /// Dead slots currently occupying the shared arenas (compaction
  /// trigger input); in arena elements, not bytes.
  size_t ArenaGarbageSlots() const { return edge_garbage_ + tag_garbage_; }

  // Queries -------------------------------------------------------------------

  const OrgContext& ctx() const { return *ctx_; }
  std::shared_ptr<const OrgContext> ctx_ptr() const { return ctx_; }

  /// The root id; kInvalidId before AddRoot.
  StateId root() const { return root_; }

  /// Arena size (alive + dead states).
  size_t num_states() const { return kind_.size(); }

  /// Number of alive states.
  size_t NumAliveStates() const;

  /// Assembled read-only view of state `s`; invalidated by any mutation.
  OrgState state(StateId s) const {
    assert(s < num_states());
    return OrgState{kind_[s],        alive_[s] != 0, attr_[s],
                    level_[s],       value_count_[s], topic_norm_[s],
                    parents(s),      children(s),     tags(s),
                    attrs_[s],       topic_sum(s),    topic(s)};
  }

  // Per-field accessors: the evaluator/serving hot paths read these
  // directly (no view assembly, no indirection beyond the arena base).
  StateKind kind(StateId s) const { return kind_[s]; }
  bool alive(StateId s) const { return alive_[s] != 0; }
  int level(StateId s) const { return level_[s]; }
  uint32_t attr_of(StateId s) const { return attr_[s]; }
  size_t value_count(StateId s) const { return value_count_[s]; }
  double topic_norm(StateId s) const { return topic_norm_[s]; }
  const AttrSet& attrs(StateId s) const { return attrs_[s]; }
  IdSpan parents(StateId s) const {
    const Range& r = parents_r_[s];
    return IdSpan(std::span<const StateId>(edge_slots_.data() + r.begin,
                                           r.size));
  }
  IdSpan children(StateId s) const {
    const Range& r = children_r_[s];
    return IdSpan(std::span<const StateId>(edge_slots_.data() + r.begin,
                                           r.size));
  }
  TagSpan tags(StateId s) const {
    const Range& r = tags_r_[s];
    return TagSpan(std::span<const uint32_t>(tag_slots_.data() + r.begin,
                                             r.size));
  }
  FloatSpan topic(StateId s) const {
    return FloatSpan(std::span<const float>(
        topic_.data() + static_cast<size_t>(s) * stride_, dim_));
  }
  FloatSpan topic_sum(StateId s) const {
    return FloatSpan(std::span<const float>(
        topic_sum_.data() + static_cast<size_t>(s) * stride_, dim_));
  }

  /// Leaf id of local attribute `attr`; kInvalidId when absent.
  StateId LeafOf(uint32_t attr) const { return leaf_of_attr_.at(attr); }

  /// Alive states reachable from the root, parents before children.
  /// Allocates its result; safe to call concurrently with other readers.
  std::vector<StateId> TopologicalOrder() const;

  /// Scratch-backed variant for the evaluator hot path (no allocation at
  /// steady state). Owning thread only.
  void TopologicalOrderInto(std::vector<StateId>* out) const;

  /// Alive states (reachable from the root) at the given level.
  std::vector<StateId> StatesAtLevel(int level) const;

  /// Scratch-free variant reusing `out`'s capacity.
  void StatesAtLevelInto(int level, std::vector<StateId>* out) const;

  /// Maximum level over alive reachable states.
  int MaxLevel() const;

  /// The attribute set of any state, materialized: the leaf's singleton or
  /// the non-leaf set as a plain bitset.
  DynamicBitset StateAttrSet(StateId s) const;

  /// The attribute ids a non-leaf state carries beyond its tag extents
  /// (the attrs ADD_PARENT propagated into it), ascending. Serialization
  /// persists these; the shard stitcher remaps them across contexts.
  std::vector<uint32_t> ExtraAttrs(StateId s) const;

  /// Number of edges among alive states.
  size_t NumEdges() const;

  /// Approximate heap footprint in bytes: capacities of the per-state
  /// arrays, the shared adjacency/tag arenas, the topic matrices, and an
  /// upper bound for spilled attribute sets (copy-on-write sharing is
  /// charged to every holder). The sharded optimizer's memory-budget
  /// accounting reads this.
  size_t HeapBytes() const;

  /// Full structural check: parent/child symmetry, acyclicity, inclusion
  /// property, one leaf per attribute, topic-sum consistency, level
  /// correctness. O(V * A / 64 + E); for tests and debugging.
  Status Validate() const;

  /// Human-readable multi-line rendering (small orgs; tests/examples).
  std::string DebugString() const;

  /// Test hook: overwrites the cached topic norm (to exercise staleness
  /// detection). Not for production use.
  void SetTopicNormForTest(StateId s, double v) { topic_norm_[s] = v; }

 private:
  /// CSR range into a shared arena: `size` live elements at `begin`, with
  /// `cap - size` slack elements for in-place growth.
  struct Range {
    uint32_t begin = 0;
    uint32_t size = 0;
    uint32_t cap = 0;
  };

  static constexpr size_t kNoJournal = static_cast<size_t>(-1);

  /// Allocates (or recycles) a state slot and resets its fields.
  StateId NewState(StateKind kind);
  void RefreshTopic(StateId s);
  /// Journals `s` into the active undo log on its first touch. Returns the
  /// journal entry index (existing or new) or kNoJournal when no log is
  /// active.
  size_t JournalTouch(StateId s);
  /// Appends `v` to a range, relocating it to the arena tail with doubled
  /// capacity when full (the old block becomes garbage).
  void AppendSlot(Range* r, std::vector<uint32_t>* slots, size_t* garbage,
                  uint32_t v);
  /// Overwrites a range's contents from a journal snapshot, growing its
  /// block if it was compacted below the snapshot size in the meantime.
  void RestoreRange(Range* r, std::vector<uint32_t>* slots, size_t* garbage,
                    const uint32_t* data, uint32_t n);
  /// Order-preserving erase of `v` from an edge range (never relocates).
  void EraseFromRange(Range* r, uint32_t v);
  /// Sorted insert of `t` into s's tag list (no-op when present).
  void InsertTagSorted(StateId s, uint32_t t);
  void MaybeCompact();

  template <typename SetT>
  void AddAttrsToState(StateId s, const SetT& new_attrs,
                       std::span<const uint32_t> new_tags, bool* grew);
  template <typename SetT>
  void PropagateImpl(StateId s, const SetT& attrs,
                     std::span<const uint32_t> tags,
                     std::vector<StateId>* touched);

  std::span<float> MutableTopicSum(StateId s) {
    return std::span<float>(topic_sum_.data() + static_cast<size_t>(s) * stride_,
                            dim_);
  }

  std::shared_ptr<const OrgContext> ctx_;

  // Per-state parallel arrays (index = StateId).
  std::vector<StateKind> kind_;
  std::vector<uint8_t> alive_;
  std::vector<int> level_;
  std::vector<uint32_t> attr_;
  std::vector<size_t> value_count_;
  std::vector<double> topic_norm_;
  std::vector<AttrSet> attrs_;
  std::vector<Range> parents_r_;
  std::vector<Range> children_r_;
  std::vector<Range> tags_r_;
  std::vector<uint32_t> slot_version_;
  std::vector<uint8_t> in_free_list_;

  // Shared arenas.
  std::vector<StateId> edge_slots_;  // parent and child ranges
  std::vector<uint32_t> tag_slots_;
  std::vector<float> topic_;      // row-major, one stride_-row per state
  std::vector<float> topic_sum_;  // row-major, one stride_-row per state

  size_t dim_ = 0;
  size_t stride_ = 0;  // dim_ rounded up to a multiple of 8 floats
  size_t edge_garbage_ = 0;
  size_t tag_garbage_ = 0;

  std::vector<StateId> free_list_;
  std::vector<StateId> leaf_of_attr_;
  StateId root_ = kInvalidId;

  /// Active undo journal; never copied (Clone asserts none is active).
  OpUndo* undo_ = nullptr;

  // Scratch buffers for the scratch-backed queries and invariant
  // maintenance (owning-thread only; see class comment). Mutable so const
  // queries can reuse them without allocating.
  mutable std::vector<char> scratch_visited_;
  mutable std::vector<StateId> scratch_stack_;
  mutable std::vector<StateId> scratch_queue_;
  mutable std::vector<uint32_t> scratch_pending_;
  std::vector<uint32_t> scratch_tags_;
  std::vector<uint32_t> compact_scratch_;
};

}  // namespace lakeorg
