// Organization: the navigation DAG of section 2.1. States are nodes; every
// leaf corresponds to one attribute; every non-leaf state carries a set of
// tags and the union of their attributes; an edge (s, c) requires
// D_c ⊆ D_s (the inclusion property). The DAG supports the incremental
// mutations the local-search operations need (edge add/remove, state
// removal, upward attribute propagation) while keeping topic vectors and
// levels consistent.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/dynamic_bitset.h"
#include "common/status.h"
#include "core/org_context.h"

namespace lakeorg {

/// Index of a state within an Organization.
using StateId = uint32_t;

/// Role of a state in the organization (section 3.2: leaves are single
/// attributes, their parents are single-tag "tag states", everything above
/// carries tag sets).
enum class StateKind {
  kRoot,
  kInterior,  // Multi- or single-tag internal state above tag states.
  kTag,       // Penultimate single-tag state.
  kLeaf,      // Single attribute.
};

/// One state of the organization.
struct OrgState {
  StateKind kind = StateKind::kInterior;
  /// Removed states stay in the arena with alive == false so StateIds are
  /// stable across mutations.
  bool alive = true;
  std::vector<StateId> parents;
  std::vector<StateId> children;
  /// Local tag ids (sorted); empty for leaves.
  std::vector<uint32_t> tags;
  /// Local attribute id for leaves; kInvalidId otherwise.
  uint32_t attr = kInvalidId;
  /// Attribute set D_s as a bitset over local attribute ids (non-leaf).
  DynamicBitset attrs;
  /// Sum of value-embedding vectors over dom(s), for O(dim) topic updates.
  Vec topic_sum;
  /// Number of embedded values behind topic_sum.
  size_t value_count = 0;
  /// Topic vector mu_s = topic_sum / value_count (Definition 4/5).
  Vec topic;
  /// Cached L2 norm of `topic`, maintained whenever the topic changes
  /// (construction, attribute propagation, deserialization). The
  /// evaluators' cosine hot path reads this instead of recomputing
  /// Norm(topic) per child per query.
  double topic_norm = 0.0;
  /// Shortest-path distance from the root (section 3.3's level); -1 when
  /// unreachable or not yet computed.
  int level = -1;
};

/// Snapshot of one state, captured before its first mutation within an
/// operation (the undo-log unit).
struct StateSnapshot {
  StateId id = kInvalidId;
  StateKind kind = StateKind::kInterior;
  bool alive = true;
  std::vector<StateId> parents;
  std::vector<StateId> children;
  std::vector<uint32_t> tags;
  DynamicBitset attrs;
  Vec topic_sum;
  size_t value_count = 0;
  Vec topic;
  double topic_norm = 0.0;
  int level = -1;
};

/// Undo log for one local-search operation. While a log is active
/// (BeginUndoLog .. EndUndoLog), every mutating Organization entry point
/// journals a first-touch snapshot of each state it modifies, so a
/// rejected proposal rolls back in O(|touched states|) instead of a full
/// O(|org|) clone. Reusable across operations (Clear keeps capacity).
struct OpUndo {
  std::vector<StateSnapshot> states;
  /// True when the operation ran RecomputeLevels (undo re-runs the BFS,
  /// since level changes are not confined to the touched set).
  bool levels_changed = false;

  void Clear() {
    states.clear();
    levels_changed = false;
  }
};

/// The navigation DAG. All mutating calls keep parents/children symmetric;
/// levels are recomputed explicitly via RecomputeLevels() after a batch of
/// mutations (the local-search operations do this once per operation).
class Organization {
 public:
  /// Creates an empty organization over `ctx`.
  explicit Organization(std::shared_ptr<const OrgContext> ctx);

  /// Deep copy sharing the immutable context.
  Organization Clone() const;

  // Construction ------------------------------------------------------------

  /// Adds the leaf state for local attribute `attr`. One leaf per
  /// attribute; asserts on duplicates.
  StateId AddLeaf(uint32_t attr);

  /// Adds a single-tag (penultimate) state for local tag `tag`.
  StateId AddTagState(uint32_t tag);

  /// Adds an interior state carrying `tags` (deduplicated, sorted); its
  /// attribute set and topic are derived from the tags' extents.
  StateId AddInteriorState(std::vector<uint32_t> tags);

  /// Adds the root state over `tags` (usually all tags of the context).
  StateId AddRoot(std::vector<uint32_t> tags);

  /// Adds edge parent -> child. Fails on dead/unknown states, duplicate
  /// edges, self-loops, edges into the root, edges out of a leaf, or
  /// inclusion-property violations. Does NOT check acyclicity (callers use
  /// WouldCreateCycle when the edge direction is not structurally safe).
  Status AddEdge(StateId parent, StateId child);

  /// Removes edge parent -> child; fails when absent.
  Status RemoveEdge(StateId parent, StateId child);

  /// Detaches `s` from all neighbors and marks it dead. Fails for the root
  /// and for leaves (leaves are permanent, section 3.2).
  Status RemoveState(StateId s);

  /// True iff adding parent -> child would create a cycle, i.e. `parent`
  /// is reachable from `child` via child edges.
  bool WouldCreateCycle(StateId parent, StateId child) const;

  // Invariant maintenance ----------------------------------------------------

  /// Adds `attrs` (and `tags`) to state `s` and to all its ancestors,
  /// updating topic sums incrementally. Appends every state whose
  /// attribute set actually grew to `touched` (if non-null). Used by
  /// ADD_PARENT to restore the inclusion property.
  void PropagateAttrsUpward(StateId s, const DynamicBitset& attrs,
                            const std::vector<uint32_t>& tags,
                            std::vector<StateId>* touched);

  /// Recomputes `level` for all states via BFS from the root.
  void RecomputeLevels();

  // Undo log -----------------------------------------------------------------

  /// Activates `undo` (cleared first) as the journal for subsequent
  /// mutations. At most one log may be active; the caller must
  /// EndUndoLog before Clone/Undo.
  void BeginUndoLog(OpUndo* undo);

  /// Deactivates the current journal (no-op when none is active).
  void EndUndoLog();

  /// Rolls back every state snapshotted in `undo` to its pre-operation
  /// contents and, when the operation changed levels, re-runs the level
  /// BFS. Requires no active journal. Safe on an empty log.
  void Undo(const OpUndo& undo);

  /// Recomputes the attribute set and topic of one non-leaf state from its
  /// tag set (root/interior/tag states only).
  void RecomputeStateFromTags(StateId s);

  /// Adds attributes to a single non-leaf state without propagating to
  /// ancestors. Used by deserialization to restore attributes that
  /// ADD_PARENT operations had propagated beyond the state's tag extents;
  /// general callers should use PropagateAttrsUpward to keep the
  /// inclusion property intact.
  void AddExtraAttrs(StateId s, const std::vector<uint32_t>& attrs);

  /// Recomputes every non-leaf state's attribute-derived fields (attrs,
  /// topic_sum, value_count, topic, topic_norm) from scratch, accumulating
  /// in the same order the deserialization path uses (tag extents in
  /// ascending attribute order, then propagated extras in ascending
  /// order). Incremental maintenance during search accumulates float sums
  /// in operation order instead, so a save/load round trip is normally
  /// only equal up to float accumulation error; after this call it is
  /// bit-identical, and scores computed before saving match scores
  /// computed after reloading exactly.
  void RecomputeAllTopics();

  // Queries -------------------------------------------------------------------

  const OrgContext& ctx() const { return *ctx_; }
  std::shared_ptr<const OrgContext> ctx_ptr() const { return ctx_; }

  /// The root id; kInvalidId before AddRoot.
  StateId root() const { return root_; }

  /// Arena size (alive + dead states).
  size_t num_states() const { return states_.size(); }

  /// Number of alive states.
  size_t NumAliveStates() const;

  const OrgState& state(StateId s) const { return states_.at(s); }

  /// Leaf id of local attribute `attr`; kInvalidId when absent.
  StateId LeafOf(uint32_t attr) const { return leaf_of_attr_.at(attr); }

  /// Alive states reachable from the root, parents before children.
  std::vector<StateId> TopologicalOrder() const;

  /// Alive states (reachable from the root) at the given level.
  std::vector<StateId> StatesAtLevel(int level) const;

  /// Maximum level over alive reachable states.
  int MaxLevel() const;

  /// The attribute set of any state, materialized: the leaf's singleton or
  /// the non-leaf bitset.
  DynamicBitset StateAttrSet(StateId s) const;

  /// Number of edges among alive states.
  size_t NumEdges() const;

  /// Full structural check: parent/child symmetry, acyclicity, inclusion
  /// property, one leaf per attribute, topic-sum consistency, level
  /// correctness. O(V * A / 64 + E); for tests and debugging.
  Status Validate() const;

  /// Human-readable multi-line rendering (small orgs; tests/examples).
  std::string DebugString() const;

 private:
  StateId NewState(OrgState&& state);
  void AddAttrsToState(StateId s, const DynamicBitset& new_attrs,
                       const std::vector<uint32_t>& new_tags, bool* grew);
  void RefreshTopic(StateId s);
  /// Snapshots `s` into the active undo log on its first touch (no-op
  /// when no log is active or `s` is already journaled).
  void JournalTouch(StateId s);

  std::shared_ptr<const OrgContext> ctx_;
  std::vector<OrgState> states_;
  std::vector<StateId> leaf_of_attr_;
  StateId root_ = kInvalidId;
  /// Active undo journal; never copied (Clone asserts none is active).
  OpUndo* undo_ = nullptr;
};

}  // namespace lakeorg
