#include "core/behavior_log.h"

#include <cassert>

namespace lakeorg {

void BehaviorLog::Record(StateId from, StateId to) {
  ++edge_counts_[Key(from, to)];
  ++out_counts_[from];
  ++total_;
}

void BehaviorLog::RecordPath(const std::vector<StateId>& path) {
  for (size_t i = 1; i < path.size(); ++i) {
    Record(path[i - 1], path[i]);
  }
}

uint64_t BehaviorLog::EdgeCount(StateId from, StateId to) const {
  auto it = edge_counts_.find(Key(from, to));
  return it == edge_counts_.end() ? 0 : it->second;
}

uint64_t BehaviorLog::OutCount(StateId from) const {
  auto it = out_counts_.find(from);
  return it == out_counts_.end() ? 0 : it->second;
}

void BehaviorLog::Merge(const BehaviorLog& other) {
  for (const auto& [key, count] : other.edge_counts_) {
    edge_counts_[key] += count;
  }
  for (const auto& [state, count] : other.out_counts_) {
    out_counts_[state] += count;
  }
  total_ += other.total_;
}

void BehaviorLog::Clear() {
  edge_counts_.clear();
  out_counts_.clear();
  total_ = 0;
}

std::vector<double> AdaptiveTransitionModel::PriorProbabilities(
    const Organization& org, StateId s, const Vec& query) const {
  const OrgState& st = org.state(s);
  assert(!st.children.empty());
  std::vector<double> sims(st.children.size());
  for (size_t i = 0; i < st.children.size(); ++i) {
    sims[i] = Cosine(org.state(st.children[i]).topic, query);
  }
  return TransitionProbabilities(sims, config_);
}

std::vector<double> AdaptiveTransitionModel::Probabilities(
    const Organization& org, const BehaviorLog& log, StateId s,
    const Vec& query) const {
  assert(prior_strength_ > 0.0);
  const OrgState& st = org.state(s);
  assert(!st.children.empty());

  // Content prior (Equation 1).
  std::vector<double> prior = PriorProbabilities(org, s, query);

  // Dirichlet blend with observed counts. Counts toward children that
  // were removed since logging naturally drop out (they are no longer in
  // the children list); the denominator uses only surviving edges so the
  // result stays a distribution.
  double observed_total = 0.0;
  std::vector<double> observed(st.children.size(), 0.0);
  for (size_t i = 0; i < st.children.size(); ++i) {
    observed[i] = static_cast<double>(log.EdgeCount(s, st.children[i]));
    observed_total += observed[i];
  }
  std::vector<double> posterior(st.children.size());
  double denom = prior_strength_ + observed_total;
  for (size_t i = 0; i < st.children.size(); ++i) {
    posterior[i] = (prior_strength_ * prior[i] + observed[i]) / denom;
  }
  return posterior;
}

}  // namespace lakeorg
