#include "core/representatives.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cluster/kmedoids.h"

namespace lakeorg {

RepresentativeSet SelectRepresentatives(const OrgContext& ctx,
                                        const RepresentativeOptions& options,
                                        Rng* rng) {
  size_t n = ctx.num_attrs();
  assert(n > 0);
  size_t k = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options.fraction *
                                          static_cast<double>(n))));
  if (options.max_queries > 0) k = std::min(k, options.max_queries);
  k = std::min(k, n);

  std::vector<Vec> items(n);
  for (size_t a = 0; a < n; ++a) items[a] = ctx.attr_vector(a);

  KMedoidsOptions km;
  km.max_iterations = options.refine_iterations;
  km.restarts = 1;
  KMedoidsResult clusters = KMedoids(items, k, rng, km);

  RepresentativeSet reps;
  reps.query_attrs.reserve(clusters.medoids.size());
  for (size_t m : clusters.medoids) {
    reps.query_attrs.push_back(static_cast<uint32_t>(m));
  }
  reps.rep_of.resize(n);
  reps.members.assign(clusters.medoids.size(), {});
  for (uint32_t a = 0; a < n; ++a) {
    uint32_t c = static_cast<uint32_t>(clusters.assignment[a]);
    reps.rep_of[a] = c;
    reps.members[c].push_back(a);
  }
  // Guarantee every representative is a member of its own partition (the
  // one-to-one mapping of section 3.4); k-medoids already ensures this,
  // but empty partitions can appear if a medoid lost all members: fold
  // them away by reassigning the medoid to itself.
  for (uint32_t q = 0; q < reps.query_attrs.size(); ++q) {
    uint32_t medoid = reps.query_attrs[q];
    if (reps.rep_of[medoid] != q) {
      auto& old_members = reps.members[reps.rep_of[medoid]];
      old_members.erase(
          std::remove(old_members.begin(), old_members.end(), medoid),
          old_members.end());
      reps.rep_of[medoid] = q;
      reps.members[q].push_back(medoid);
    }
  }
  return reps;
}

}  // namespace lakeorg
