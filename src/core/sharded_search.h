// Cluster-sharded local search: the scalability path for lakes 10-100x
// the paper's crawl (ROADMAP "Socrata-scale optimization: shard the lake,
// not just the dims").
//
// The monolithic optimizer's per-proposal cost grows superlinearly with
// the context (queries x affected subgraph), so at 100k tables a single
// search is intractable. BuildShardedOrganization instead:
//
//   1. partitions the tag space into topic shards (the same k-medoids
//      path the multi-dimensional builder uses — cluster/shard_partition),
//   2. builds and optimizes one organization per shard concurrently on a
//      thread pool, each over its own small OrgContext and arena, with
//      admission control enforcing a total memory budget across the
//      shards in flight,
//   3. stitches the shard DAGs under a synthetic lake root
//      (StitchShardOrganizations) into ONE organization over the full
//      context — the root's transition row is the ordinary Equation 1
//      softmax over the shard roots, so navigation, OrgEvaluator and
//      Success treat the result like any other organization.
//
// Determinism: the partition depends only on (tags, partition_seed); each
// shard optimizes with seed = search.seed + shard_index; the stitch order
// is the shard order. The result is therefore byte-identical across
// thread counts and memory budgets. With one shard the stitch is skipped
// entirely and the optimized organization is returned as-is — bit-
// identical to the unsharded OptimizeOrganization path (difftest
// --sharded gates this).
#pragma once

#include <cstdint>
#include <vector>

#include "core/local_search.h"
#include "core/org_builders.h"
#include "lake/data_lake.h"
#include "lake/tag_index.h"

namespace lakeorg {

/// Tunables of the sharded optimizer.
struct ShardedSearchOptions {
  /// Number of topic shards; clamped to the number of non-empty tags.
  /// 0 derives the count from target_tags_per_shard.
  size_t shards = 0;
  /// Auto shard count: ceil(num_tags / target_tags_per_shard). ~100 tags
  /// keeps each shard at the paper's per-dimension scale.
  size_t target_tags_per_shard = 96;
  /// Seed of the k-medoids tag partition.
  uint64_t partition_seed = 99;
  /// Per-shard local search; shard i runs with seed = search.seed + i.
  LocalSearchOptions search;
  /// Initial organization per shard.
  enum class Initial { kClustering, kFlat };
  Initial initial = Initial::kClustering;
  /// Worker threads for concurrent shard optimization (0 = hardware
  /// concurrency). When shards run in parallel, each shard's search is
  /// forced serial unless the caller pinned search.num_threads.
  size_t num_threads = 0;
  /// Total bytes of estimated optimizer state allowed in flight across
  /// concurrent shards (0 = unlimited). A shard whose estimate does not
  /// fit waits for running shards to finish; a shard is always admitted
  /// when nothing is in flight, so progress is guaranteed even when one
  /// shard alone exceeds the budget.
  size_t memory_budget_bytes = 0;
  /// Skip optimization (stitch the initial shard organizations).
  bool optimize = true;
};

/// Per-shard construction statistics.
struct ShardSearchInfo {
  size_t num_tags = 0;
  size_t num_attrs = 0;
  size_t num_tables = 0;
  /// Effectiveness over the shard's query set after / before optimization.
  double effectiveness = 0.0;
  double initial_effectiveness = 0.0;
  /// Optimization wall-clock seconds for this shard.
  double seconds = 0.0;
  size_t proposals = 0;
  size_t num_queries = 0;
  /// Memory-budget admission estimate for this shard's optimization.
  size_t estimated_bytes = 0;
  /// Organization::HeapBytes() of the optimized shard DAG.
  size_t org_heap_bytes = 0;
};

/// Output of BuildShardedOrganization.
struct ShardedSearchResult {
  /// The stitched organization over the full context (or, with one shard,
  /// the optimized organization itself).
  Organization org;
  std::vector<ShardSearchInfo> shards;
  /// False when the single-shard short circuit returned the shard org
  /// verbatim (no synthetic root added).
  bool stitched = false;
  /// Wall clock of the whole optimize phase (shards run concurrently).
  double optimize_seconds = 0.0;
  double stitch_seconds = 0.0;
  /// Peak sum of admission estimates concurrently in flight.
  size_t peak_inflight_bytes = 0;

  /// Query-weighted mean of per-shard optimizer effectiveness — the cheap
  /// construction-time quality signal at scales where a full-context
  /// evaluation is infeasible.
  double MeanShardEffectiveness() const;
};

/// Bytes of optimizer state one shard's search is expected to pin:
/// evaluator reach/kappa caches (queries x states), the organization's
/// topic matrices and arenas, and the best-so-far snapshot copy.
size_t EstimateShardSearchBytes(const OrgContext& ctx,
                                const LocalSearchOptions& search);

/// Partitions, optimizes, and stitches. Fails on invalid search options,
/// restrict_targets (per-organization, cannot span shards), or a stitch
/// inconsistency. The lake must have topic vectors computed.
Result<ShardedSearchResult> BuildShardedOrganization(
    const DataLake& lake, const TagIndex& index,
    const ShardedSearchOptions& options);

}  // namespace lakeorg
