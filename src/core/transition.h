// The navigation transition model of Equation 1:
//
//   P(c | s, X, O) = exp(gamma / |ch(s)| * kappa(c, X))
//                    / sum_t exp(gamma / |ch(s)| * kappa(t, X))
//
// where kappa is cosine similarity between the child state's topic vector
// and the query topic vector, and the 1/|ch(s)| factor penalizes large
// branching factors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/organization.h"
#include "embedding/vector_ops.h"

namespace lakeorg {

/// Transition-model hyperparameters.
struct TransitionConfig {
  /// The strictly positive gamma of Equation 1. Larger values make users
  /// more decisive (probability mass concentrates on the best child).
  double gamma = 20.0;
  /// When false, the 1/|ch(s)| branching penalty is disabled (ablation);
  /// the softmax scale is then gamma itself.
  bool branching_penalty = true;
};

/// Softmax of Equation 1 over one state's children. `sims[i]` is
/// kappa(child_i, X); returns P(child_i | s, X). Numerically stable; a
/// single child gets probability 1. Requires sims non-empty.
std::vector<double> TransitionProbabilities(const std::vector<double>& sims,
                                            const TransitionConfig& config);

/// Allocation-free variant: writes P(child_i | s, X) into
/// out[0, sims.size()). Requires out.size() == sims.size(); `out` may
/// alias `sims` (each element is read before it is overwritten). This is
/// the hot-path kernel behind the evaluators' reusable scratch buffers.
void TransitionProbabilitiesInto(std::span<const double> sims,
                                 const TransitionConfig& config,
                                 std::span<double> out);

/// Convenience: kappa values of `children` topic vectors against `query`.
std::vector<double> ChildSimilarities(const std::vector<const Vec*>& children,
                                      const Vec& query);

/// One state's full outgoing transition row for a fixed query: the child
/// list (in organization child order), the Eq. 1 probabilities over it,
/// and the children ranked by descending probability — everything a
/// navigation step needs to present and resolve choices. Immutable once
/// computed, which is what makes it cacheable per (snapshot, state,
/// query) in the serving layer (discovery/nav_service).
struct TransitionRow {
  /// Children of the state, in organization child order.
  std::vector<StateId> children;
  /// probs[i] = P(children[i] | s, X, O) per Equation 1.
  std::vector<double> probs;
  /// Indices into `children`/`probs` sorted by descending probability;
  /// ties break on the lower index, so the ranking is deterministic.
  std::vector<uint32_t> ranking;
};

/// Computes the transition row of state `s` against `query` (whose L2
/// norm is passed in, as in the evaluators' hot path). Uses the states'
/// cached topic norms; the arithmetic is bit-identical to
/// OrgEvaluator::ReachProbabilities' per-state softmax, so a cached row
/// and a freshly recomputed one compare exactly. A leaf (or any state
/// with no children) yields an empty row.
void ComputeTransitionRow(const Organization& org, StateId s, const Vec& query,
                          double query_norm, const TransitionConfig& config,
                          TransitionRow* out);

}  // namespace lakeorg
