// The local-search organization optimizer of section 3.3, with the
// affected-subgraph pruning and representative approximation of section
// 3.4. Starting from an initial organization (usually the agglomerative
// clustering of tags), it sweeps the levels top-down, proposes ADD_PARENT /
// DELETE_PARENT on states ordered by ascending reachability, evaluates each
// proposal incrementally, accepts improving moves and accepts worsening
// moves with probability P(T|O') / P(T|O) (Equation 9), and stops when the
// effectiveness has not improved significantly for `patience` iterations.
#pragma once

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/evaluator.h"
#include "core/operations.h"
#include "core/organization.h"
#include "core/representatives.h"

namespace lakeorg {

/// Tunables of the optimizer.
struct LocalSearchOptions {
  /// Transition-model hyperparameters (Equation 1).
  TransitionConfig transition;
  /// Stop after this many consecutive proposals without significant
  /// improvement of the best effectiveness (the paper uses 50).
  size_t patience = 50;
  /// Relative improvement that resets the plateau counter.
  double min_relative_improvement = 1e-3;
  /// Hard cap on evaluated proposals.
  size_t max_proposals = 4000;
  /// RNG seed (operation choice and Metropolis acceptance).
  uint64_t seed = 1234;
  /// Acceptance sharpness k: a worsening proposal is accepted with
  /// probability (P(T|O') / P(T|O))^k. k = 1 is the literal Equation 9
  /// ratio, which in practice accepts almost every small worsening (the
  /// per-move effectiveness deltas are tiny relative to the total) and
  /// turns the search into a downhill random walk; the default tempers
  /// the ratio so the walk hill-climbs while still escaping plateaus
  /// (a 1% worsening is accepted ~2% of the time).
  double acceptance_sharpness = 400.0;
  /// At sweep boundaries, restart the walk from the best organization
  /// found when the current one has drifted below it by this relative
  /// margin (0 disables restarts).
  double restart_margin = 0.02;
  /// Evaluate on attribute representatives (section 3.4) instead of every
  /// attribute.
  bool use_representatives = false;
  /// Representative selection parameters (when enabled).
  RepresentativeOptions representatives;
  /// Probability of proposing ADD_PARENT (vs DELETE_PARENT) on states
  /// where both are applicable.
  double add_parent_prob = 0.5;
  /// Operation toggles (ablation A2 in DESIGN.md).
  bool enable_add_parent = true;
  bool enable_delete_parent = true;
  /// Keep per-proposal instrumentation (Figure 3 inputs).
  bool record_history = true;
  /// Worker threads for the evaluator's per-query loops. 0 = hardware
  /// concurrency, 1 = the exact legacy serial path. Results are
  /// bit-identical for every value: parallel tasks write disjoint
  /// per-query state and all reductions stay serial.
  size_t num_threads = 0;
  /// When non-empty, only these states are eligible proposal targets —
  /// the localized re-optimization RepairOrganization runs over the
  /// spliced subgraph. Empty = every alive non-root state (the normal
  /// full search; target-queue order is unchanged, so existing fixed-seed
  /// traces are unaffected). Ids must be alive states of the initial
  /// organization.
  std::vector<StateId> restrict_targets;
  /// Optional per-table objective weights: the search maximizes
  /// sum_t w_t * P(T_t | O) / sum_t w_t instead of the uniform mean over
  /// tables — the adaptive loop's demand-weighted objective. One finite,
  /// non-negative entry per context table with a positive sum. Empty =
  /// uniform (the exact legacy objective; existing fixed-seed traces are
  /// unaffected).
  std::vector<double> table_weights;
};

/// Validates optimizer tunables: rejects non-positive or non-finite
/// acceptance_sharpness (k = 0 turns Equation 9 into pow(ratio, 0) == 1 —
/// every worsening move accepted, a pure random walk), zero iteration
/// budgets, probabilities outside [0, 1], negative margins, and option
/// sets with every operation disabled. OptimizeOrganization calls this
/// first and refuses to run on invalid options instead of silently
/// degenerating.
Status ValidateLocalSearchOptions(const LocalSearchOptions& options);

/// Per-proposal instrumentation record.
struct IterationRecord {
  size_t proposal_index = 0;
  /// 'A' = ADD_PARENT, 'D' = DELETE_PARENT.
  char op = '?';
  bool accepted = false;
  /// Effectiveness of the current organization after the accept/reject
  /// decision.
  double effectiveness = 0.0;
  /// |dirty states| / alive states for this proposal (Figure 3b).
  double frac_states_evaluated = 0.0;
  /// Affected attributes / all attributes (Figure 3a).
  double frac_attrs_evaluated = 0.0;
  /// Affected queries / query-set size (the section 4.3.3 "6%" number).
  double frac_queries_evaluated = 0.0;
};

/// Output of one optimization run.
struct LocalSearchResult {
  /// Best organization found.
  Organization org;
  /// Its effectiveness over the evaluator's query set.
  double effectiveness = 0.0;
  /// Effectiveness of the initial organization (same query set).
  double initial_effectiveness = 0.0;
  /// Proposals evaluated / accepted.
  size_t proposals = 0;
  size_t accepted = 0;
  /// Wall-clock optimization time.
  double seconds = 0.0;
  /// Query-set size used for evaluation.
  size_t num_queries = 0;
  /// Per-proposal records (when record_history).
  std::vector<IterationRecord> history;
};

/// Runs local search from `initial` and returns the best organization.
/// Fails (without running) on invalid options — see
/// ValidateLocalSearchOptions — or on restrict_targets naming dead or
/// out-of-range states.
Result<LocalSearchResult> OptimizeOrganization(
    Organization initial, const LocalSearchOptions& options);

}  // namespace lakeorg
