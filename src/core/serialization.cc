#include "core/serialization.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

namespace lakeorg {
namespace {

constexpr const char* kMagic = "lakeorg-organization";
constexpr const char* kVersion = "v1";

char KindChar(StateKind kind) {
  switch (kind) {
    case StateKind::kRoot:
      return 'R';
    case StateKind::kInterior:
      return 'I';
    case StateKind::kTag:
      return 'T';
    case StateKind::kLeaf:
      return 'L';
  }
  return '?';
}

Result<StateKind> KindFromChar(char c) {
  switch (c) {
    case 'R':
      return StateKind::kRoot;
    case 'I':
      return StateKind::kInterior;
    case 'T':
      return StateKind::kTag;
    case 'L':
      return StateKind::kLeaf;
    default:
      return Status::InvalidArgument(std::string("unknown state kind '") +
                                     c + "'");
  }
}

}  // namespace

Status SaveOrganization(const Organization& org, std::ostream* out) {
  if (org.root() == kInvalidId) {
    return Status::FailedPrecondition("organization has no root");
  }
  // Alive states with the root first, compact file ids.
  std::vector<StateId> order = {org.root()};
  for (StateId s = 0; s < org.num_states(); ++s) {
    if (org.state(s).alive && s != org.root()) order.push_back(s);
  }
  std::unordered_map<StateId, size_t> file_id;
  for (size_t i = 0; i < order.size(); ++i) file_id.emplace(order[i], i);

  *out << kMagic << " " << kVersion << "\n";
  *out << "states " << order.size() << "\n";
  for (size_t i = 0; i < order.size(); ++i) {
    const OrgState& st = org.state(order[i]);
    *out << "state " << i << " " << KindChar(st.kind) << " ";
    if (st.kind == StateKind::kLeaf) {
      *out << st.attr << " T 0 X 0\n";
      continue;
    }
    *out << -1 << " T " << st.tags.size();
    for (uint32_t t : st.tags) *out << " " << t;
    std::vector<uint32_t> extras = org.ExtraAttrs(order[i]);
    *out << " X " << extras.size();
    for (uint32_t a : extras) *out << " " << a;
    *out << "\n";
  }
  size_t edges = 0;
  for (StateId s : order) edges += org.state(s).children.size();
  *out << "edges " << edges << "\n";
  for (StateId s : order) {
    for (StateId c : org.state(s).children) {
      *out << "edge " << file_id.at(s) << " " << file_id.at(c) << "\n";
    }
  }
  *out << "end\n";
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status SaveOrganizationToFile(const Organization& org,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  LAKEORG_RETURN_NOT_OK(SaveOrganization(org, &out));
  out.flush();
  if (!out) {
    return Status::Internal("short write saving organization to " + path);
  }
  return Status::OK();
}

Result<Organization> LoadOrganization(
    std::shared_ptr<const OrgContext> ctx, std::istream* in) {
  std::string magic;
  std::string version;
  if (!(*in >> magic >> version) || magic != kMagic ||
      version != kVersion) {
    return Status::InvalidArgument("bad header: expected '" +
                                   std::string(kMagic) + " " + kVersion +
                                   "'");
  }
  std::string keyword;
  size_t num_states = 0;
  if (!(*in >> keyword >> num_states) || keyword != "states") {
    return Status::InvalidArgument("expected 'states <n>'");
  }
  if (num_states == 0) {
    return Status::InvalidArgument("organization with zero states");
  }

  Organization org(ctx);
  std::vector<StateId> of_file_id(num_states, kInvalidId);
  for (size_t i = 0; i < num_states; ++i) {
    size_t fid = 0;
    char kind_char = 0;
    int64_t attr = -1;
    size_t n_tags = 0;
    std::string t_marker;
    std::string x_marker;
    if (!(*in >> keyword >> fid >> kind_char >> attr >> t_marker >>
          n_tags) ||
        keyword != "state" || t_marker != "T" || fid != i) {
      return Status::InvalidArgument("malformed state line " +
                                     std::to_string(i));
    }
    std::vector<uint32_t> tags(n_tags);
    for (uint32_t& t : tags) {
      if (!(*in >> t) || t >= ctx->num_tags()) {
        return Status::InvalidArgument("bad tag id in state " +
                                       std::to_string(i));
      }
    }
    size_t n_extras = 0;
    if (!(*in >> x_marker >> n_extras) || x_marker != "X") {
      return Status::InvalidArgument("malformed extras in state " +
                                     std::to_string(i));
    }
    std::vector<uint32_t> extras(n_extras);
    for (uint32_t& a : extras) {
      if (!(*in >> a) || a >= ctx->num_attrs()) {
        return Status::InvalidArgument("bad extra attr id in state " +
                                       std::to_string(i));
      }
    }

    Result<StateKind> kind = KindFromChar(kind_char);
    if (!kind.ok()) return kind.status();
    StateId sid = kInvalidId;
    switch (kind.value()) {
      case StateKind::kRoot:
        if (i != 0) {
          return Status::InvalidArgument("root must be the first state");
        }
        sid = org.AddRoot(tags);
        break;
      case StateKind::kLeaf:
        if (attr < 0 ||
            static_cast<size_t>(attr) >= ctx->num_attrs()) {
          return Status::InvalidArgument("bad leaf attribute id");
        }
        if (org.LeafOf(static_cast<uint32_t>(attr)) != kInvalidId) {
          return Status::InvalidArgument("duplicate leaf for attribute " +
                                         std::to_string(attr));
        }
        sid = org.AddLeaf(static_cast<uint32_t>(attr));
        break;
      case StateKind::kTag:
        if (tags.size() != 1) {
          return Status::InvalidArgument(
              "tag state must carry exactly one tag");
        }
        sid = org.AddTagState(tags[0]);
        break;
      case StateKind::kInterior:
        if (tags.empty()) {
          return Status::InvalidArgument("interior state with no tags");
        }
        sid = org.AddInteriorState(tags);
        break;
    }
    if (!extras.empty()) org.AddExtraAttrs(sid, extras);
    of_file_id[i] = sid;
  }
  if (org.root() == kInvalidId) {
    return Status::InvalidArgument("file contains no root state");
  }

  size_t num_edges = 0;
  if (!(*in >> keyword >> num_edges) || keyword != "edges") {
    return Status::InvalidArgument("expected 'edges <n>'");
  }
  for (size_t e = 0; e < num_edges; ++e) {
    size_t p = 0;
    size_t c = 0;
    if (!(*in >> keyword >> p >> c) || keyword != "edge" ||
        p >= num_states || c >= num_states) {
      return Status::InvalidArgument("malformed edge line " +
                                     std::to_string(e));
    }
    Status st = org.AddEdge(of_file_id[p], of_file_id[c]);
    if (!st.ok()) {
      return Status::InvalidArgument("edge " + std::to_string(p) + "->" +
                                     std::to_string(c) +
                                     " rejected: " + st.ToString());
    }
  }
  if (!(*in >> keyword) || keyword != "end") {
    return Status::InvalidArgument("missing 'end' marker");
  }

  org.RecomputeLevels();
  LAKEORG_RETURN_NOT_OK(org.Validate());
  return org;
}

Result<Organization> LoadOrganizationFromFile(
    std::shared_ptr<const OrgContext> ctx, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open for reading: " + path);
  Result<Organization> org = LoadOrganization(std::move(ctx), &in);
  if (in.bad()) {
    return Status::Internal("read error loading organization from " + path);
  }
  return org;
}

// ---------------------------------------------------------------------------
// Multi-dimensional organizations
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kMultiMagic = "lakeorg-multidim";
}  // namespace

Status SaveMultiDimOrganization(const MultiDimOrganization& org,
                                std::ostream* out) {
  *out << kMultiMagic << " " << kVersion << "\n";
  *out << "dimensions " << org.num_dimensions() << "\n";
  for (size_t d = 0; d < org.num_dimensions(); ++d) {
    const OrgContext& ctx = org.dimension(d).ctx();
    *out << "dimension " << d << " tags " << ctx.num_tags();
    for (size_t t = 0; t < ctx.num_tags(); ++t) {
      *out << " " << ctx.lake_tag(t);
    }
    *out << "\n";
    LAKEORG_RETURN_NOT_OK(SaveOrganization(org.dimension(d), out));
  }
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status SaveMultiDimOrganizationToFile(const MultiDimOrganization& org,
                                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  LAKEORG_RETURN_NOT_OK(SaveMultiDimOrganization(org, &out));
  out.flush();
  if (!out) {
    return Status::Internal("short write saving organization to " + path);
  }
  return Status::OK();
}

Result<MultiDimOrganization> LoadMultiDimOrganization(
    const DataLake& lake, const TagIndex& index, std::istream* in) {
  std::string magic;
  std::string version;
  if (!(*in >> magic >> version) || magic != kMultiMagic ||
      version != kVersion) {
    return Status::InvalidArgument("bad multidim header");
  }
  std::string keyword;
  size_t num_dims = 0;
  if (!(*in >> keyword >> num_dims) || keyword != "dimensions" ||
      num_dims == 0) {
    return Status::InvalidArgument("expected 'dimensions <n>'");
  }
  std::vector<Organization> dims;
  std::vector<DimensionInfo> info;
  dims.reserve(num_dims);
  info.reserve(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    size_t dim_no = 0;
    size_t num_tags = 0;
    if (!(*in >> keyword >> dim_no) || keyword != "dimension" ||
        dim_no != d) {
      return Status::InvalidArgument("malformed dimension header " +
                                     std::to_string(d));
    }
    if (!(*in >> keyword >> num_tags) || keyword != "tags" ||
        num_tags == 0) {
      return Status::InvalidArgument("malformed tag list in dimension " +
                                     std::to_string(d));
    }
    std::vector<TagId> tags(num_tags);
    for (TagId& t : tags) {
      if (!(*in >> t) || t >= lake.num_tags()) {
        return Status::InvalidArgument("bad lake tag id in dimension " +
                                       std::to_string(d));
      }
    }
    std::shared_ptr<const OrgContext> ctx =
        OrgContext::Build(lake, index, tags);
    if (ctx->num_tags() != num_tags) {
      return Status::FailedPrecondition(
          "lake does not match the saved partition (dimension " +
          std::to_string(d) + " expected " + std::to_string(num_tags) +
          " non-empty tags, lake provides " +
          std::to_string(ctx->num_tags()) + ")");
    }
    Result<Organization> org = LoadOrganization(ctx, in);
    if (!org.ok()) return org.status();
    DimensionInfo di;
    di.num_tags = ctx->num_tags();
    di.num_attrs = ctx->num_attrs();
    di.num_tables = ctx->num_tables();
    info.push_back(di);
    dims.push_back(std::move(org).value());
  }
  return MultiDimOrganization(std::move(dims), std::move(info));
}

Result<MultiDimOrganization> LoadMultiDimOrganizationFromFile(
    const DataLake& lake, const TagIndex& index, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open for reading: " + path);
  Result<MultiDimOrganization> org = LoadMultiDimOrganization(lake, index, &in);
  if (in.bad()) {
    return Status::Internal("read error loading organization from " + path);
  }
  return org;
}

}  // namespace lakeorg
