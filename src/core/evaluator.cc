#include "core/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace lakeorg {
namespace {

/// Cosine via precomputed norms (0 when either side has zero norm).
double CosineWithNorms(const Vec& a, double norm_a, const Vec& b,
                       double norm_b) {
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  double c = Dot(a, b) / (norm_a * norm_b);
  return std::clamp(c, -1.0, 1.0);
}

}  // namespace

std::vector<double> SuccessReport::SortedAscending() const {
  std::vector<double> out = per_table;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> OrgEvaluator::ReachProbabilities(const Organization& org,
                                                     const Vec& query) const {
  std::vector<double> reach(org.num_states(), 0.0);
  if (org.root() == kInvalidId) return reach;
  reach[org.root()] = 1.0;

  // Per-state topic norms, computed lazily.
  std::vector<double> norm(org.num_states(), -1.0);
  auto topic_norm = [&org, &norm](StateId s) -> double {
    if (norm[s] < 0.0) norm[s] = Norm(org.state(s).topic);
    return norm[s];
  };
  double query_norm = Norm(query);

  std::vector<StateId> topo = org.TopologicalOrder();
  std::vector<double> sims;
  for (StateId s : topo) {
    const OrgState& st = org.state(s);
    if (st.children.empty() || reach[s] == 0.0) continue;
    sims.resize(st.children.size());
    for (size_t i = 0; i < st.children.size(); ++i) {
      StateId c = st.children[i];
      sims[i] = CosineWithNorms(org.state(c).topic, topic_norm(c), query,
                                query_norm);
    }
    std::vector<double> probs = TransitionProbabilities(sims, config_);
    for (size_t i = 0; i < st.children.size(); ++i) {
      reach[st.children[i]] += probs[i] * reach[s];
    }
  }
  return reach;
}

double OrgEvaluator::AttributeDiscovery(const Organization& org,
                                        uint32_t attr) const {
  const Vec& query = org.ctx().attr_vector(attr);
  std::vector<double> reach = ReachProbabilities(org, query);
  return reach[org.LeafOf(attr)];
}

std::vector<double> OrgEvaluator::AllAttributeDiscovery(
    const Organization& org) const {
  size_t n = org.ctx().num_attrs();
  std::vector<double> discovery(n, 0.0);
  for (uint32_t a = 0; a < n; ++a) {
    discovery[a] = AttributeDiscovery(org, a);
  }
  return discovery;
}

double OrgEvaluator::TableDiscovery(const OrgContext& ctx, uint32_t table,
                                    const std::vector<double>& attr_discovery) {
  double miss = 1.0;
  for (uint32_t a : ctx.table_attrs(table)) {
    miss *= (1.0 - attr_discovery[a]);
  }
  return 1.0 - miss;
}

double OrgEvaluator::Effectiveness(const OrgContext& ctx,
                                   const std::vector<double>& attr_discovery) {
  if (ctx.num_tables() == 0) return 0.0;
  double total = 0.0;
  for (uint32_t t = 0; t < ctx.num_tables(); ++t) {
    total += TableDiscovery(ctx, t, attr_discovery);
  }
  return total / static_cast<double>(ctx.num_tables());
}

double OrgEvaluator::Effectiveness(const Organization& org) const {
  return Effectiveness(org.ctx(), AllAttributeDiscovery(org));
}

std::vector<std::vector<uint32_t>> OrgEvaluator::AttributeNeighbors(
    const OrgContext& ctx, double theta) {
  size_t n = ctx.num_attrs();
  // Pre-normalize attribute vectors once; neighbor search is then dots.
  std::vector<Vec> unit(n);
  for (size_t a = 0; a < n; ++a) {
    unit[a] = ctx.attr_vector(a);
    NormalizeInPlace(&unit[a]);
  }
  std::vector<std::vector<uint32_t>> neighbors(n);
  for (uint32_t a = 0; a < n; ++a) neighbors[a].push_back(a);
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) {
      if (Dot(unit[a], unit[b]) >= theta) {
        neighbors[a].push_back(b);
        neighbors[b].push_back(a);
      }
    }
  }
  return neighbors;
}

SuccessReport OrgEvaluator::Success(
    const Organization& org,
    const std::vector<std::vector<uint32_t>>& neighbors) const {
  const OrgContext& ctx = org.ctx();
  size_t n = ctx.num_attrs();
  assert(neighbors.size() == n);

  std::vector<double> attr_success(n, 0.0);
  for (uint32_t a = 0; a < n; ++a) {
    std::vector<double> reach = ReachProbabilities(org, ctx.attr_vector(a));
    double miss = 1.0;
    for (uint32_t nb : neighbors[a]) {
      miss *= (1.0 - reach[org.LeafOf(nb)]);
    }
    attr_success[a] = 1.0 - miss;
  }

  SuccessReport report;
  report.per_table.resize(ctx.num_tables(), 0.0);
  double total = 0.0;
  for (uint32_t t = 0; t < ctx.num_tables(); ++t) {
    double miss = 1.0;
    for (uint32_t a : ctx.table_attrs(t)) miss *= (1.0 - attr_success[a]);
    report.per_table[t] = 1.0 - miss;
    total += report.per_table[t];
  }
  report.mean = ctx.num_tables() == 0
                    ? 0.0
                    : total / static_cast<double>(ctx.num_tables());
  return report;
}

std::vector<double> OrgEvaluator::StateReachability(
    const Organization& org, const std::vector<uint32_t>& query_attrs) const {
  std::vector<double> sums(org.num_states(), 0.0);
  for (uint32_t a : query_attrs) {
    std::vector<double> reach =
        ReachProbabilities(org, org.ctx().attr_vector(a));
    for (size_t s = 0; s < sums.size(); ++s) sums[s] += reach[s];
  }
  if (!query_attrs.empty()) {
    for (double& v : sums) v /= static_cast<double>(query_attrs.size());
  }
  return sums;
}

RepresentativeSet IdentityRepresentatives(const OrgContext& ctx) {
  RepresentativeSet reps;
  size_t n = ctx.num_attrs();
  reps.query_attrs.resize(n);
  reps.rep_of.resize(n);
  reps.members.resize(n);
  for (uint32_t a = 0; a < n; ++a) {
    reps.query_attrs[a] = a;
    reps.rep_of[a] = a;
    reps.members[a] = {a};
  }
  return reps;
}

// ---------------------------------------------------------------------------
// IncrementalEvaluator
// ---------------------------------------------------------------------------

IncrementalEvaluator::IncrementalEvaluator(
    TransitionConfig config, std::shared_ptr<const OrgContext> ctx,
    RepresentativeSet reps)
    : config_(config), ctx_(std::move(ctx)), reps_(std::move(reps)) {
  assert(reps_.rep_of.size() == ctx_->num_attrs());
  // tables_of_query_[q]: tables containing any member of q's partition.
  tables_of_query_.resize(reps_.query_attrs.size());
  for (uint32_t q = 0; q < reps_.query_attrs.size(); ++q) {
    std::vector<uint32_t>& tabs = tables_of_query_[q];
    for (uint32_t a : reps_.members[q]) tabs.push_back(ctx_->attr_table(a));
    std::sort(tabs.begin(), tabs.end());
    tabs.erase(std::unique(tabs.begin(), tabs.end()), tabs.end());
  }
}

std::vector<double> IncrementalEvaluator::TransitionsFrom(
    const Organization& org, StateId parent, const Vec& query) const {
  const OrgState& p = org.state(parent);
  std::vector<double> sims(p.children.size());
  double query_norm = Norm(query);
  for (size_t i = 0; i < p.children.size(); ++i) {
    const Vec& topic = org.state(p.children[i]).topic;
    sims[i] = CosineWithNorms(topic, Norm(topic), query, query_norm);
  }
  return TransitionProbabilities(sims, config_);
}

void IncrementalEvaluator::Initialize(const Organization& org) {
  committed_ = &org;
  size_t num_q = reps_.query_attrs.size();
  OrgEvaluator eval(config_);
  reach_.assign(num_q, {});
  stale_.assign(num_q, DynamicBitset(org.num_states()));
  query_discovery_.assign(num_q, 0.0);
  for (uint32_t q = 0; q < num_q; ++q) {
    reach_[q] = eval.ReachProbabilities(org, QueryVec(q));
    query_discovery_[q] = reach_[q][org.LeafOf(reps_.query_attrs[q])];
  }
  // Table probabilities through the representative mapping.
  table_prob_.assign(ctx_->num_tables(), 0.0);
  double total = 0.0;
  for (uint32_t t = 0; t < ctx_->num_tables(); ++t) {
    double miss = 1.0;
    for (uint32_t a : ctx_->table_attrs(t)) {
      miss *= (1.0 - query_discovery_[reps_.rep_of[a]]);
    }
    table_prob_[t] = 1.0 - miss;
    total += table_prob_[t];
  }
  effectiveness_ = ctx_->num_tables() == 0
                       ? 0.0
                       : total / static_cast<double>(ctx_->num_tables());
}

double IncrementalEvaluator::StateReachability(StateId s) const {
  if (reach_.empty()) return 0.0;
  double total = 0.0;
  for (const std::vector<double>& r : reach_) total += r[s];
  return total / static_cast<double>(reach_.size());
}

double IncrementalEvaluator::AttrDiscovery(uint32_t attr) const {
  return query_discovery_[reps_.rep_of[attr]];
}

double IncrementalEvaluator::EnsureFresh(uint32_t q, StateId s) {
  if (!stale_[q].Test(s)) return reach_[q][s];
  const Organization& org = *committed_;
  stale_[q].Clear(s);  // Clear first: guards against cycles (there are none).
  double value = 0.0;
  const OrgState& st = org.state(s);
  if (!st.alive) {
    reach_[q][s] = 0.0;
    return 0.0;
  }
  for (StateId p : st.parents) {
    double parent_reach = EnsureFresh(q, p);
    if (parent_reach == 0.0) continue;
    std::vector<double> probs = TransitionsFrom(org, p, QueryVec(q));
    const OrgState& ps = org.state(p);
    for (size_t i = 0; i < ps.children.size(); ++i) {
      if (ps.children[i] == s) {
        value += probs[i] * parent_reach;
        break;
      }
    }
  }
  reach_[q][s] = value;
  return value;
}

void IncrementalEvaluator::EvaluateProposal(
    const Organization& proposal, const std::vector<StateId>& topic_changed,
    const std::vector<StateId>& children_changed,
    const std::vector<StateId>& removed, ProposalEvaluation* out) {
  assert(committed_ != nullptr);
  size_t n = proposal.num_states();
  assert(n == committed_->num_states() &&
         "operations must not grow the state arena");

  // Seeds: states whose incoming transition probabilities changed.
  std::vector<char> dirty_mark(n, 0);
  std::deque<StateId> frontier;
  auto seed_children_of = [&](StateId u) {
    if (!proposal.state(u).alive) return;
    for (StateId c : proposal.state(u).children) {
      if (!dirty_mark[c]) {
        dirty_mark[c] = 1;
        frontier.push_back(c);
      }
    }
  };
  for (StateId u : children_changed) seed_children_of(u);
  for (StateId u : topic_changed) {
    if (!proposal.state(u).alive) continue;
    for (StateId p : proposal.state(u).parents) seed_children_of(p);
  }
  // Descendant closure.
  while (!frontier.empty()) {
    StateId cur = frontier.front();
    frontier.pop_front();
    for (StateId c : proposal.state(cur).children) {
      if (!dirty_mark[c]) {
        dirty_mark[c] = 1;
        frontier.push_back(c);
      }
    }
  }
  // Removed states are handled separately (reach 0), not recomputed.
  for (StateId r : removed) dirty_mark[r] = 0;

  out->removed = removed;
  out->dirty.clear();
  std::vector<StateId> topo = proposal.TopologicalOrder();
  for (StateId s : topo) {
    if (dirty_mark[s]) out->dirty.push_back(s);
  }

  // Affected queries: those whose own leaf lies in the dirty closure.
  out->affected_queries.clear();
  for (uint32_t q = 0; q < reps_.query_attrs.size(); ++q) {
    StateId leaf = proposal.LeafOf(reps_.query_attrs[q]);
    if (dirty_mark[leaf]) out->affected_queries.push_back(q);
  }

  // Recompute reach over the dirty set for each affected query, push-style
  // along the proposal's topological order. Frontier (non-dirty) parents
  // contribute their committed-org values, repaired on demand.
  out->new_reach.assign(out->affected_queries.size(), {});
  std::vector<double> scratch(n, 0.0);
  for (size_t qi = 0; qi < out->affected_queries.size(); ++qi) {
    uint32_t q = out->affected_queries[qi];
    const Vec& query = QueryVec(q);
    for (StateId d : out->dirty) scratch[d] = 0.0;
    for (StateId s : topo) {
      const OrgState& st = proposal.state(s);
      if (st.children.empty()) continue;
      bool any_dirty_child = false;
      for (StateId c : st.children) {
        if (dirty_mark[c]) {
          any_dirty_child = true;
          break;
        }
      }
      if (!any_dirty_child) continue;
      double value = dirty_mark[s] ? scratch[s] : EnsureFresh(q, s);
      if (value == 0.0) continue;
      std::vector<double> probs = TransitionsFrom(proposal, s, query);
      for (size_t i = 0; i < st.children.size(); ++i) {
        if (dirty_mark[st.children[i]]) {
          scratch[st.children[i]] += probs[i] * value;
        }
      }
    }
    out->new_reach[qi].reserve(out->dirty.size());
    for (StateId d : out->dirty) out->new_reach[qi].push_back(scratch[d]);
  }

  // Effectiveness delta: tables containing members of affected queries.
  std::vector<double> new_discovery(reps_.query_attrs.size(), -1.0);
  out->affected_attrs = 0;
  std::vector<uint32_t> affected_tables;
  for (size_t qi = 0; qi < out->affected_queries.size(); ++qi) {
    uint32_t q = out->affected_queries[qi];
    StateId leaf = proposal.LeafOf(reps_.query_attrs[q]);
    // Position of the leaf within the dirty vector.
    double disc = 0.0;
    for (size_t j = 0; j < out->dirty.size(); ++j) {
      if (out->dirty[j] == leaf) {
        disc = out->new_reach[qi][j];
        break;
      }
    }
    new_discovery[q] = disc;
    out->affected_attrs += reps_.members[q].size();
    affected_tables.insert(affected_tables.end(), tables_of_query_[q].begin(),
                           tables_of_query_[q].end());
  }
  std::sort(affected_tables.begin(), affected_tables.end());
  affected_tables.erase(
      std::unique(affected_tables.begin(), affected_tables.end()),
      affected_tables.end());

  out->new_table_probs.clear();
  double delta = 0.0;
  for (uint32_t t : affected_tables) {
    double miss = 1.0;
    for (uint32_t a : ctx_->table_attrs(t)) {
      uint32_t rq = reps_.rep_of[a];
      double disc =
          new_discovery[rq] >= 0.0 ? new_discovery[rq] : query_discovery_[rq];
      miss *= (1.0 - disc);
    }
    double prob = 1.0 - miss;
    out->new_table_probs.emplace_back(t, prob);
    delta += prob - table_prob_[t];
  }
  out->effectiveness =
      effectiveness_ + (ctx_->num_tables() == 0
                            ? 0.0
                            : delta / static_cast<double>(ctx_->num_tables()));
}

void IncrementalEvaluator::Commit(const Organization& new_org,
                                  ProposalEvaluation&& eval) {
  committed_ = &new_org;
  size_t num_q = reps_.query_attrs.size();

  // Removed states: zero everywhere, never stale.
  for (StateId r : eval.removed) {
    for (uint32_t q = 0; q < num_q; ++q) {
      reach_[q][r] = 0.0;
      stale_[q].Clear(r);
    }
  }
  // Mark dirty states stale for every query, then overwrite + unmark the
  // re-evaluated ones.
  for (uint32_t q = 0; q < num_q; ++q) {
    for (StateId d : eval.dirty) stale_[q].Set(d);
  }
  for (size_t qi = 0; qi < eval.affected_queries.size(); ++qi) {
    uint32_t q = eval.affected_queries[qi];
    for (size_t j = 0; j < eval.dirty.size(); ++j) {
      reach_[q][eval.dirty[j]] = eval.new_reach[qi][j];
      stale_[q].Clear(eval.dirty[j]);
    }
    query_discovery_[q] =
        reach_[q][new_org.LeafOf(reps_.query_attrs[q])];
  }
  for (const auto& [t, prob] : eval.new_table_probs) table_prob_[t] = prob;
  effectiveness_ = eval.effectiveness;
}

}  // namespace lakeorg
