#include "core/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"

namespace lakeorg {
namespace {

/// Telemetry handles for the incremental evaluator (docs/OBSERVABILITY.md).
struct EvalMetrics {
  obs::Counter& proposals = obs::GetCounter("eval.proposals_total");
  obs::Counter& initializes = obs::GetCounter("eval.initializes_total");
  obs::Counter& dirty_states = obs::GetCounter("eval.dirty_states_total");
  obs::Counter& alive_states = obs::GetCounter("eval.alive_states_total");
  obs::Counter& affected_queries =
      obs::GetCounter("eval.affected_queries_total");
  obs::Counter& queries = obs::GetCounter("eval.queries_total");
  obs::Counter& affected_attrs =
      obs::GetCounter("eval.affected_attrs_total");
  obs::Counter& cache_hits = obs::GetCounter("eval.reach_cache_hits_total");
  obs::Counter& cache_repairs =
      obs::GetCounter("eval.reach_cache_repairs_total");
  obs::Histogram& initialize_us = obs::GetHistogram("eval.initialize_us");
  obs::Histogram& proposal_us = obs::GetHistogram("eval.proposal_us");

  static EvalMetrics& Get() {
    static EvalMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::vector<double> SuccessReport::SortedAscending() const {
  std::vector<double> out = per_table;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> OrgEvaluator::ReachProbabilities(const Organization& org,
                                                     const Vec& query) const {
  std::vector<double> reach(org.num_states(), 0.0);
  if (org.root() == kInvalidId) return reach;
  reach[org.root()] = 1.0;

  double query_norm = Norm(query);

  std::vector<StateId> topo = org.TopologicalOrder();
  std::vector<double> sims;
  for (StateId s : topo) {
    IdSpan children = org.children(s);
    if (children.empty() || reach[s] == 0.0) continue;
    sims.resize(children.size());
    for (size_t i = 0; i < children.size(); ++i) {
      StateId c = children[i];
      sims[i] = CosineWithNorms(org.topic(c), org.topic_norm(c), query,
                                query_norm);
    }
    // In-place softmax over sims; the child loop below only needs probs.
    TransitionProbabilitiesInto(sims, config_, sims);
    for (size_t i = 0; i < children.size(); ++i) {
      reach[children[i]] += sims[i] * reach[s];
    }
  }
  return reach;
}

double OrgEvaluator::AttributeDiscovery(const Organization& org,
                                        uint32_t attr) const {
  const Vec& query = org.ctx().attr_vector(attr);
  std::vector<double> reach = ReachProbabilities(org, query);
  return reach[org.LeafOf(attr)];
}

std::vector<double> OrgEvaluator::AllAttributeDiscovery(
    const Organization& org) const {
  size_t n = org.ctx().num_attrs();
  std::vector<double> discovery(n, 0.0);
  size_t chunks = pool_ != nullptr ? pool_->num_threads() : 1;
  ParallelChunks(pool_, n, chunks,
                 [&](size_t /*chunk*/, size_t begin, size_t end) {
                   for (size_t a = begin; a < end; ++a) {
                     discovery[a] =
                         AttributeDiscovery(org, static_cast<uint32_t>(a));
                   }
                 });
  return discovery;
}

double OrgEvaluator::TableDiscovery(const OrgContext& ctx, uint32_t table,
                                    const std::vector<double>& attr_discovery) {
  double miss = 1.0;
  for (uint32_t a : ctx.table_attrs(table)) {
    miss *= (1.0 - attr_discovery[a]);
  }
  return 1.0 - miss;
}

double OrgEvaluator::Effectiveness(const OrgContext& ctx,
                                   const std::vector<double>& attr_discovery) {
  if (ctx.num_tables() == 0) return 0.0;
  double total = 0.0;
  for (uint32_t t = 0; t < ctx.num_tables(); ++t) {
    total += TableDiscovery(ctx, t, attr_discovery);
  }
  return total / static_cast<double>(ctx.num_tables());
}

double OrgEvaluator::Effectiveness(const Organization& org) const {
  return Effectiveness(org.ctx(), AllAttributeDiscovery(org));
}

double OrgEvaluator::WeightedEffectiveness(
    const OrgContext& ctx, const std::vector<double>& attr_discovery,
    const std::vector<double>& table_weights) {
  assert(table_weights.size() == ctx.num_tables());
  double total = 0.0;
  double weight_total = 0.0;
  for (uint32_t t = 0; t < ctx.num_tables(); ++t) {
    total += table_weights[t] * TableDiscovery(ctx, t, attr_discovery);
    weight_total += table_weights[t];
  }
  return weight_total > 0.0 ? total / weight_total : 0.0;
}

std::vector<std::vector<uint32_t>> OrgEvaluator::AttributeNeighbors(
    const OrgContext& ctx, double theta, ThreadPool* pool) {
  size_t n = ctx.num_attrs();
  // Pre-normalize attribute vectors once; neighbor search is then dots.
  std::vector<Vec> unit(n);
  for (size_t a = 0; a < n; ++a) {
    unit[a] = ctx.attr_vector(a);
    NormalizeInPlace(&unit[a]);
  }
  // Upper-triangle matches, row-parallel: row a is written only by the
  // task that owns a.
  std::vector<std::vector<uint32_t>> upper(n);
  size_t chunks = pool != nullptr ? pool->num_threads() : 1;
  ParallelChunks(pool, n, chunks,
                 [&](size_t /*chunk*/, size_t begin, size_t end) {
                   for (size_t a = begin; a < end; ++a) {
                     for (size_t b = a + 1; b < n; ++b) {
                       if (Dot(unit[a], unit[b]) >= theta) {
                         upper[a].push_back(static_cast<uint32_t>(b));
                       }
                     }
                   }
                 });
  // Serial symmetric merge in ascending (a, b) order — the exact
  // insertion order of the serial pair loop.
  std::vector<std::vector<uint32_t>> neighbors(n);
  for (uint32_t a = 0; a < n; ++a) neighbors[a].push_back(a);
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b : upper[a]) {
      neighbors[a].push_back(b);
      neighbors[b].push_back(a);
    }
  }
  return neighbors;
}

SuccessReport OrgEvaluator::Success(
    const Organization& org,
    const std::vector<std::vector<uint32_t>>& neighbors) const {
  const OrgContext& ctx = org.ctx();
  size_t n = ctx.num_attrs();
  assert(neighbors.size() == n);

  std::vector<double> attr_success(n, 0.0);
  size_t chunks = pool_ != nullptr ? pool_->num_threads() : 1;
  ParallelChunks(pool_, n, chunks,
                 [&](size_t /*chunk*/, size_t begin, size_t end) {
                   for (size_t a = begin; a < end; ++a) {
                     std::vector<double> reach =
                         ReachProbabilities(org, ctx.attr_vector(a));
                     double miss = 1.0;
                     for (uint32_t nb : neighbors[a]) {
                       miss *= (1.0 - reach[org.LeafOf(nb)]);
                     }
                     attr_success[a] = 1.0 - miss;
                   }
                 });

  SuccessReport report;
  report.per_table.resize(ctx.num_tables(), 0.0);
  double total = 0.0;
  for (uint32_t t = 0; t < ctx.num_tables(); ++t) {
    double miss = 1.0;
    for (uint32_t a : ctx.table_attrs(t)) miss *= (1.0 - attr_success[a]);
    report.per_table[t] = 1.0 - miss;
    total += report.per_table[t];
  }
  report.mean = ctx.num_tables() == 0
                    ? 0.0
                    : total / static_cast<double>(ctx.num_tables());
  return report;
}

std::vector<double> OrgEvaluator::StateReachability(
    const Organization& org, const std::vector<uint32_t>& query_attrs) const {
  std::vector<double> sums(org.num_states(), 0.0);
  for (uint32_t a : query_attrs) {
    std::vector<double> reach =
        ReachProbabilities(org, org.ctx().attr_vector(a));
    for (size_t s = 0; s < sums.size(); ++s) sums[s] += reach[s];
  }
  if (!query_attrs.empty()) {
    for (double& v : sums) v /= static_cast<double>(query_attrs.size());
  }
  return sums;
}

RepresentativeSet IdentityRepresentatives(const OrgContext& ctx) {
  RepresentativeSet reps;
  size_t n = ctx.num_attrs();
  reps.query_attrs.resize(n);
  reps.rep_of.resize(n);
  reps.members.resize(n);
  for (uint32_t a = 0; a < n; ++a) {
    reps.query_attrs[a] = a;
    reps.rep_of[a] = a;
    reps.members[a] = {a};
  }
  return reps;
}

// ---------------------------------------------------------------------------
// IncrementalEvaluator
// ---------------------------------------------------------------------------

IncrementalEvaluator::IncrementalEvaluator(
    TransitionConfig config, std::shared_ptr<const OrgContext> ctx,
    RepresentativeSet reps, size_t num_threads)
    : config_(config), ctx_(std::move(ctx)), reps_(std::move(reps)) {
  assert(reps_.rep_of.size() == ctx_->num_attrs());
  size_t threads =
      num_threads == 0 ? ThreadPool::DefaultThreads() : num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  scratch_.resize(threads);
  // Query topic norms never change; compute them once.
  query_norms_.resize(reps_.query_attrs.size());
  for (size_t q = 0; q < reps_.query_attrs.size(); ++q) {
    query_norms_[q] = Norm(QueryVec(static_cast<uint32_t>(q)));
  }
  // tables_of_query_[q]: tables containing any member of q's partition.
  tables_of_query_.resize(reps_.query_attrs.size());
  for (uint32_t q = 0; q < reps_.query_attrs.size(); ++q) {
    std::vector<uint32_t>& tabs = tables_of_query_[q];
    for (uint32_t a : reps_.members[q]) tabs.push_back(ctx_->attr_table(a));
    std::sort(tabs.begin(), tabs.end());
    tabs.erase(std::unique(tabs.begin(), tabs.end()), tabs.end());
  }
}

namespace {
/// kappa_cache_ sentinel: cosine is clamped to [-1, 1], so 2.0 is free.
constexpr double kKappaInvalid = 2.0;
}  // namespace

const std::vector<double>& IncrementalEvaluator::TransitionsFromInto(
    const Organization& org, StateId parent, uint32_t q, const Vec& query,
    double query_norm, EvalScratch* scratch) const {
  IdSpan children = org.children(parent);
  std::vector<double>& sims = scratch->sims;
  std::vector<double>& probs = scratch->probs;
  sims.resize(children.size());
  // Row of query q's memoized cosines; misses (invalidated or first
  // touch) recompute and store. Only this query's owning chunk writes
  // the row, so the parallel region needs no synchronization.
  double* krow = kappa_cache_.data() + static_cast<size_t>(q) * kappa_stride_;
  for (size_t i = 0; i < children.size(); ++i) {
    StateId c = children[i];
    double kappa = krow[c];
    if (kappa == kKappaInvalid) {
      kappa = CosineWithNorms(org.topic(c), org.topic_norm(c), query,
                              query_norm);
      krow[c] = kappa;
    }
    sims[i] = kappa;
  }
  probs.resize(children.size());
  TransitionProbabilitiesInto(sims, config_, probs);
  return probs;
}

void IncrementalEvaluator::InvalidateKappa(
    const std::vector<StateId>& states) {
  const size_t num_q = reps_.query_attrs.size();
  for (StateId s : states) {
    double* col = kappa_cache_.data() + s;
    for (size_t q = 0; q < num_q; ++q) col[q * kappa_stride_] = kKappaInvalid;
  }
}

Status IncrementalEvaluator::SetTableWeights(std::vector<double> weights) {
  if (weights.empty()) {
    table_weights_.clear();
    weight_total_ = 0.0;
    return Status::OK();
  }
  if (weights.size() != ctx_->num_tables()) {
    return Status::InvalidArgument("table_weights size mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument("table_weights must be finite and >= 0");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument("table_weights must have a positive sum");
  }
  table_weights_ = std::move(weights);
  weight_total_ = total;
  return Status::OK();
}

void IncrementalEvaluator::Initialize(const Organization& org) {
  EvalMetrics& em = EvalMetrics::Get();
  obs::ScopedTimer span(&em.initialize_us);
  em.initializes.Add();
  committed_ = &org;
  size_t num_q = reps_.query_attrs.size();
  OrgEvaluator eval(config_);
  kappa_stride_ = org.num_states();
  kappa_cache_.assign(num_q * kappa_stride_, kKappaInvalid);
  prev_topic_changed_.clear();
  reach_.assign(num_q, {});
  stale_.assign(num_q, DynamicBitset(org.num_states()));
  query_discovery_.assign(num_q, 0.0);
  // Each query's row is written only by its owning chunk; the table
  // reduction below stays serial, so results match the serial loop.
  ParallelChunks(pool_.get(), num_q, scratch_.size(),
                 [&](size_t /*chunk*/, size_t begin, size_t end) {
                   for (size_t qi = begin; qi < end; ++qi) {
                     uint32_t q = static_cast<uint32_t>(qi);
                     reach_[q] = eval.ReachProbabilities(org, QueryVec(q));
                     query_discovery_[q] =
                         reach_[q][org.LeafOf(reps_.query_attrs[q])];
                   }
                 });
  // Table probabilities through the representative mapping. The weighted
  // branch keeps the unweighted arithmetic untouched: legacy callers stay
  // bit-identical.
  table_prob_.assign(ctx_->num_tables(), 0.0);
  double total = 0.0;
  for (uint32_t t = 0; t < ctx_->num_tables(); ++t) {
    double miss = 1.0;
    for (uint32_t a : ctx_->table_attrs(t)) {
      miss *= (1.0 - query_discovery_[reps_.rep_of[a]]);
    }
    table_prob_[t] = 1.0 - miss;
    total += table_weights_.empty() ? table_prob_[t]
                                    : table_weights_[t] * table_prob_[t];
  }
  if (!table_weights_.empty()) {
    effectiveness_ = total / weight_total_;
  } else {
    effectiveness_ = ctx_->num_tables() == 0
                         ? 0.0
                         : total / static_cast<double>(ctx_->num_tables());
  }
}

double IncrementalEvaluator::StateReachability(StateId s) const {
  if (reach_.empty()) return 0.0;
  double total = 0.0;
  for (const std::vector<double>& r : reach_) total += r[s];
  return total / static_cast<double>(reach_.size());
}

double IncrementalEvaluator::AttrDiscovery(uint32_t attr) const {
  return query_discovery_[reps_.rep_of[attr]];
}

double IncrementalEvaluator::EnsureFresh(uint32_t q, StateId s,
                                         EvalScratch* scratch) {
  if (!stale_[q].Test(s)) {
    // Non-atomic per-chunk tally; flushed after the parallel region.
    ++scratch->cache_hits;
    return reach_[q][s];
  }
  const Organization& org = *committed_;
  // Explicit-stack DFS toward stale ancestors; a state is repaired only
  // once all its parents are fresh, so the per-state accumulation below
  // runs in parent-list order exactly like the recursive formulation.
  std::vector<StateId>& stack = scratch->stack;
  stack.clear();
  stack.push_back(s);
  while (!stack.empty()) {
    StateId cur = stack.back();
    if (!stale_[q].Test(cur)) {  // Repaired while deeper on the stack.
      stack.pop_back();
      continue;
    }
    if (!org.alive(cur)) {
      stale_[q].Clear(cur);
      reach_[q][cur] = 0.0;
      ++scratch->cache_repairs;
      stack.pop_back();
      continue;
    }
    IdSpan parents = org.parents(cur);
    bool pushed = false;
    for (StateId p : parents) {
      if (stale_[q].Test(p)) {
        stack.push_back(p);
        pushed = true;
      }
    }
    if (pushed) continue;  // Revisit `cur` after its parents are fresh.
    double value = 0.0;
    for (StateId p : parents) {
      double parent_reach = reach_[q][p];
      if (parent_reach == 0.0) continue;
      const std::vector<double>& probs = TransitionsFromInto(
          org, p, q, QueryVec(q), query_norms_[q], scratch);
      IdSpan siblings = org.children(p);
      for (size_t i = 0; i < siblings.size(); ++i) {
        if (siblings[i] == cur) {
          value += probs[i] * parent_reach;
          break;
        }
      }
    }
    stale_[q].Clear(cur);
    reach_[q][cur] = value;
    ++scratch->cache_repairs;
    stack.pop_back();
  }
  return reach_[q][s];
}

void IncrementalEvaluator::EvaluateProposal(
    const Organization& proposal, const std::vector<StateId>& topic_changed,
    const std::vector<StateId>& children_changed,
    const std::vector<StateId>& removed, ProposalEvaluation* out) {
  assert(committed_ != nullptr);
  EvalMetrics& em = EvalMetrics::Get();
  obs::ScopedTimer span(&em.proposal_us);
  size_t n = proposal.num_states();
  assert(n == committed_->num_states() &&
         "operations must not grow the state arena");

  // Drop memoized cosines for the topics this operation changed, and for
  // the previous proposal's set: if the caller Undid that proposal, those
  // topics reverted without the evaluator seeing it, so their cached
  // entries (stored at proposal values) must not be reused. If the caller
  // Committed instead, re-deriving them once is merely redundant.
  InvalidateKappa(prev_topic_changed_);
  InvalidateKappa(topic_changed);
  prev_topic_changed_.assign(topic_changed.begin(), topic_changed.end());

  // Seeds: states whose incoming transition probabilities changed. The
  // member frontier vector doubles as a FIFO (head index) so the steady
  // state allocates nothing.
  dirty_mark_.assign(n, 0);
  frontier_.clear();
  auto seed_children_of = [&](StateId u) {
    if (!proposal.alive(u)) return;
    for (StateId c : proposal.children(u)) {
      if (!dirty_mark_[c]) {
        dirty_mark_[c] = 1;
        frontier_.push_back(c);
      }
    }
  };
  for (StateId u : children_changed) seed_children_of(u);
  for (StateId u : topic_changed) {
    if (!proposal.alive(u)) continue;
    for (StateId p : proposal.parents(u)) seed_children_of(p);
  }
  // Descendant closure (BFS; same visit order as the old deque).
  for (size_t head = 0; head < frontier_.size(); ++head) {
    StateId cur = frontier_[head];
    for (StateId c : proposal.children(cur)) {
      if (!dirty_mark_[c]) {
        dirty_mark_[c] = 1;
        frontier_.push_back(c);
      }
    }
  }
  // Removed states are handled separately (reach 0), not recomputed.
  for (StateId r : removed) dirty_mark_[r] = 0;

  out->removed = removed;
  out->dirty.clear();
  proposal.TopologicalOrderInto(&topo_);
  for (StateId s : topo_) {
    if (dirty_mark_[s]) out->dirty.push_back(s);
  }

  // Affected queries: those whose own leaf lies in the dirty closure.
  out->affected_queries.clear();
  for (uint32_t q = 0; q < reps_.query_attrs.size(); ++q) {
    StateId leaf = proposal.LeafOf(reps_.query_attrs[q]);
    if (dirty_mark_[leaf]) out->affected_queries.push_back(q);
  }

  // Recompute reach over the dirty set for each affected query, push-style
  // along the proposal's topological order. Frontier (non-dirty) parents
  // contribute their committed-org values, repaired on demand; those
  // states have only non-dirty ancestors, whose edges and child topics
  // the operation did not touch, so the repair is valid even when
  // `proposal` is the committed organization mutated in place.
  //
  // Parallel over affected queries: EnsureFresh touches only reach_[q] /
  // stale_[q] for the owning query, every other write goes to chunk-owned
  // scratch or the query's own new_reach row.
  // Query-independent DP skeleton: the topo-ordered states with a dirty
  // child. Hoisting this out of the per-query loop removes a full
  // graph scan per affected query; the per-query arithmetic below visits
  // the same states in the same order, so results are bit-identical.
  relevant_parents_.clear();
  for (StateId s : topo_) {
    for (StateId c : proposal.children(s)) {
      if (dirty_mark_[c]) {
        relevant_parents_.push_back(s);
        break;
      }
    }
  }

  const size_t stride = out->dirty.size();
  out->new_reach.assign(out->affected_queries.size() * stride, 0.0);
  ParallelChunks(
      pool_.get(), out->affected_queries.size(), scratch_.size(),
      [&](size_t chunk, size_t begin, size_t end) {
        EvalScratch& sc = scratch_[chunk];
        std::vector<double>& scr = sc.state_reach;
        scr.resize(n);
        for (size_t qi = begin; qi < end; ++qi) {
          uint32_t q = out->affected_queries[qi];
          const Vec& query = QueryVec(q);
          for (StateId d : out->dirty) scr[d] = 0.0;
          for (StateId s : relevant_parents_) {
            IdSpan children = proposal.children(s);
            double value = dirty_mark_[s] ? scr[s] : EnsureFresh(q, s, &sc);
            if (value == 0.0) continue;
            const std::vector<double>& probs = TransitionsFromInto(
                proposal, s, q, query, query_norms_[q], &sc);
            for (size_t i = 0; i < children.size(); ++i) {
              if (dirty_mark_[children[i]]) {
                scr[children[i]] += probs[i] * value;
              }
            }
          }
          for (size_t j = 0; j < stride; ++j) {
            out->new_reach[qi * stride + j] = scr[out->dirty[j]];
          }
        }
      });

  // Effectiveness delta: tables containing members of affected queries.
  new_discovery_.assign(reps_.query_attrs.size(), -1.0);
  out->affected_attrs = 0;
  affected_tables_.clear();
  for (size_t qi = 0; qi < out->affected_queries.size(); ++qi) {
    uint32_t q = out->affected_queries[qi];
    StateId leaf = proposal.LeafOf(reps_.query_attrs[q]);
    // Position of the leaf within the dirty vector.
    double disc = 0.0;
    for (size_t j = 0; j < out->dirty.size(); ++j) {
      if (out->dirty[j] == leaf) {
        disc = out->new_reach[qi * stride + j];
        break;
      }
    }
    new_discovery_[q] = disc;
    out->affected_attrs += reps_.members[q].size();
    affected_tables_.insert(affected_tables_.end(),
                            tables_of_query_[q].begin(),
                            tables_of_query_[q].end());
  }
  std::sort(affected_tables_.begin(), affected_tables_.end());
  affected_tables_.erase(
      std::unique(affected_tables_.begin(), affected_tables_.end()),
      affected_tables_.end());

  out->new_table_probs.clear();
  double delta = 0.0;
  for (uint32_t t : affected_tables_) {
    double miss = 1.0;
    for (uint32_t a : ctx_->table_attrs(t)) {
      uint32_t rq = reps_.rep_of[a];
      double disc = new_discovery_[rq] >= 0.0 ? new_discovery_[rq]
                                              : query_discovery_[rq];
      miss *= (1.0 - disc);
    }
    double prob = 1.0 - miss;
    out->new_table_probs.emplace_back(t, prob);
    delta += table_weights_.empty() ? prob - table_prob_[t]
                                    : table_weights_[t] * (prob - table_prob_[t]);
  }
  if (!table_weights_.empty()) {
    out->effectiveness = effectiveness_ + delta / weight_total_;
  } else {
    out->effectiveness =
        effectiveness_ +
        (ctx_->num_tables() == 0
             ? 0.0
             : delta / static_cast<double>(ctx_->num_tables()));
  }

  // Pruning/cache telemetry. The per-chunk tallies are drained even when
  // metrics are off, so a later enable never flushes stale garbage; the
  // atomic adds happen once per proposal, not per state.
  uint64_t hits = 0;
  uint64_t repairs = 0;
  for (EvalScratch& sc : scratch_) {
    hits += sc.cache_hits;
    repairs += sc.cache_repairs;
    sc.cache_hits = 0;
    sc.cache_repairs = 0;
  }
  if (obs::MetricsEnabled()) {
    em.proposals.Add();
    em.dirty_states.Add(out->dirty.size());
    em.alive_states.Add(proposal.NumAliveStates());
    em.affected_queries.Add(out->affected_queries.size());
    em.queries.Add(reps_.query_attrs.size());
    em.affected_attrs.Add(out->affected_attrs);
    em.cache_hits.Add(hits);
    em.cache_repairs.Add(repairs);
  }
}

void IncrementalEvaluator::Commit(const Organization& new_org,
                                  const ProposalEvaluation& eval) {
  committed_ = &new_org;
  size_t num_q = reps_.query_attrs.size();

  // Removed states: zero everywhere, never stale.
  for (StateId r : eval.removed) {
    for (uint32_t q = 0; q < num_q; ++q) {
      reach_[q][r] = 0.0;
      stale_[q].Clear(r);
    }
  }
  // Mark dirty states stale for every query, then overwrite + unmark the
  // re-evaluated ones.
  for (uint32_t q = 0; q < num_q; ++q) {
    for (StateId d : eval.dirty) stale_[q].Set(d);
  }
  for (size_t qi = 0; qi < eval.affected_queries.size(); ++qi) {
    uint32_t q = eval.affected_queries[qi];
    for (size_t j = 0; j < eval.dirty.size(); ++j) {
      reach_[q][eval.dirty[j]] = eval.new_reach[qi * eval.dirty.size() + j];
      stale_[q].Clear(eval.dirty[j]);
    }
    query_discovery_[q] =
        reach_[q][new_org.LeafOf(reps_.query_attrs[q])];
  }
  for (const auto& [t, prob] : eval.new_table_probs) table_prob_[t] = prob;
  effectiveness_ = eval.effectiveness;
}

}  // namespace lakeorg
