// Evaluation of organizations.
//
// OrgEvaluator: stateless batch evaluation — reach probabilities via the
// topological DP of Equation 4, attribute/table discovery probabilities
// (Definitions 1-2), organization effectiveness (Equations 6-7), and the
// success-probability measure of section 4.2.
//
// IncrementalEvaluator: the search-time evaluator of section 3.4. It keeps
// per-query reach caches, restricts re-evaluation to the affected subgraph
// of a proposed operation (descendant closure of the changed states), and
// optionally evaluates only attribute representatives. Cache entries that
// an accepted operation may have invalidated for queries that were not
// re-evaluated are tracked with per-query stale bits and repaired on
// demand, so table discovery probabilities stay exact for the query set in
// use.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/dynamic_bitset.h"
#include "common/thread_pool.h"
#include "core/organization.h"
#include "core/transition.h"

namespace lakeorg {

/// Per-table success probabilities (section 4.2) for one organization.
struct SuccessReport {
  /// Success probability per local table id.
  std::vector<double> per_table;
  /// Mean over tables.
  double mean = 0.0;

  /// The per-table values sorted ascending (the Figure 2 series).
  std::vector<double> SortedAscending() const;
};

/// Stateless batch evaluator. An optional non-owning thread pool
/// parallelizes the per-attribute loops (AllAttributeDiscovery, Success);
/// null means serial. Results are identical either way: every parallel
/// task writes disjoint outputs and reductions run serially.
class OrgEvaluator {
 public:
  explicit OrgEvaluator(TransitionConfig config = {},
                        ThreadPool* pool = nullptr)
      : config_(config), pool_(pool) {}

  /// Reach probability P(s | X, O) for every state (indexed by StateId;
  /// dead/unreachable states get 0), for query topic vector `query`.
  std::vector<double> ReachProbabilities(const Organization& org,
                                         const Vec& query) const;

  /// Discovery probability of one attribute (Definition 1): reach of its
  /// leaf under the attribute's own topic vector as the query.
  double AttributeDiscovery(const Organization& org, uint32_t attr) const;

  /// Discovery probabilities of all context attributes (one DP per
  /// attribute; the exact, non-approximate evaluation).
  std::vector<double> AllAttributeDiscovery(const Organization& org) const;

  /// Table discovery probability (Equation 5) from per-attribute values.
  static double TableDiscovery(const OrgContext& ctx, uint32_t table,
                               const std::vector<double>& attr_discovery);

  /// Organization effectiveness (Equations 6-7) from per-attribute values.
  static double Effectiveness(const OrgContext& ctx,
                              const std::vector<double>& attr_discovery);

  /// Demand-weighted effectiveness: sum_t w_t * P(T_t | O) / sum_t w_t.
  /// With uniform weights this equals Effectiveness(). The adaptive loop
  /// scores organizations against observed query demand with this.
  /// `table_weights` must have one finite, non-negative entry per table
  /// and a positive sum.
  static double WeightedEffectiveness(const OrgContext& ctx,
                                      const std::vector<double>& attr_discovery,
                                      const std::vector<double>& table_weights);

  /// Exact organization effectiveness (runs AllAttributeDiscovery).
  double Effectiveness(const Organization& org) const;

  /// neighbors[a] = attributes A_i with cosine(A_i, a) >= theta, including
  /// a itself (the success-probability candidate sets of section 4.2).
  /// The O(n^2) pair loop runs row-parallel on `pool` when non-null;
  /// symmetric entries are merged serially afterwards, so the result is
  /// identical to the serial order.
  static std::vector<std::vector<uint32_t>> AttributeNeighbors(
      const OrgContext& ctx, double theta, ThreadPool* pool = nullptr);

  /// Success probabilities per table (section 4.2): one DP per attribute
  /// query; Success(A|O) = 1 - prod_{A_i in neighbors[A]} (1 - P(A_i|A,O)).
  SuccessReport Success(const Organization& org,
                        const std::vector<std::vector<uint32_t>>& neighbors)
      const;

  /// Mean reach of every state over a set of attribute queries
  /// (Equation 10's reachability probability).
  std::vector<double> StateReachability(
      const Organization& org, const std::vector<uint32_t>& query_attrs) const;

  const TransitionConfig& config() const { return config_; }

 private:
  TransitionConfig config_;
  /// Non-owning; null = serial.
  ThreadPool* pool_ = nullptr;
};

/// Attribute representatives (section 3.4): a query set (medoid attributes)
/// plus the attribute -> representative mapping.
struct RepresentativeSet {
  /// Local attribute ids used as queries.
  std::vector<uint32_t> query_attrs;
  /// For every context attribute, the index into query_attrs of its
  /// representative.
  std::vector<uint32_t> rep_of;
  /// Members of each representative's partition (indices are context
  /// attribute ids).
  std::vector<std::vector<uint32_t>> members;
};

/// Outcome of evaluating one proposed operation without committing it.
struct ProposalEvaluation {
  /// Effectiveness of the proposal organization.
  double effectiveness = 0.0;
  /// Dirty states (descendant closure of the operation's changes), in the
  /// proposal organization's topological order.
  std::vector<StateId> dirty;
  /// Indices into the query set whose leaf lies in the dirty closure.
  std::vector<uint32_t> affected_queries;
  /// Flattened row-major matrix, one row of dirty.size() entries per
  /// affected query: new_reach[i * dirty.size() + j] = reach of dirty[j]
  /// for affected_queries[i]. Flat so a reused ProposalEvaluation holds
  /// its capacity across proposals (no per-row vectors to reallocate).
  std::vector<double> new_reach;
  /// (local table, new discovery probability) for affected tables.
  std::vector<std::pair<uint32_t, double>> new_table_probs;
  /// Number of context attributes whose discovery probability was
  /// re-evaluated (members of affected representatives).
  size_t affected_attrs = 0;
  /// States removed by the operation.
  std::vector<StateId> removed;
};

/// Search-time incremental evaluator over a fixed query set.
///
/// Threading: `num_threads > 1` creates an owned worker pool over which
/// Initialize and EvaluateProposal partition their per-query loops. Each
/// query's caches (reach_[q], stale_[q]) are touched only by the task
/// that owns that query, so the loops need no synchronization, and every
/// reduction runs serially afterwards — results are bit-identical for
/// any thread count. `num_threads == 1` (default) is the exact legacy
/// serial path; 0 means hardware concurrency.
class IncrementalEvaluator {
 public:
  /// `reps` defines the query set; use IdentityRepresentatives for exact
  /// evaluation (section 3.4 approximation disabled).
  IncrementalEvaluator(TransitionConfig config,
                       std::shared_ptr<const OrgContext> ctx,
                       RepresentativeSet reps, size_t num_threads = 1);

  /// Installs per-table objective weights: effectiveness becomes
  /// sum_t w_t * P(T_t | O) / sum_t w_t instead of the uniform mean over
  /// tables (the adaptive loop's demand-weighted objective). Must be
  /// called before Initialize. `weights` needs one finite, non-negative
  /// entry per context table with a positive sum; empty restores the
  /// unweighted objective, whose arithmetic is bit-identical to the
  /// pre-weighting evaluator.
  Status SetTableWeights(std::vector<double> weights);

  /// Full evaluation of `org`; resets all caches. `org` becomes the
  /// committed organization (the caller must keep it alive and unmodified
  /// until the next Commit).
  void Initialize(const Organization& org);

  /// Effectiveness of the committed organization over the query set.
  double effectiveness() const { return effectiveness_; }

  /// Mean cached reach of a state over the query set (Equation 10).
  /// Entries not re-evaluated for skipped queries may be slightly stale;
  /// the local search uses this only to order proposals.
  double StateReachability(StateId s) const;

  /// Evaluates `proposal`: either a mutated clone of the committed
  /// organization, or the committed organization itself mutated in place
  /// (the local search's undo-log path — valid because cache repair only
  /// reads non-dirty states, which the operation did not touch; callers
  /// must Undo or Commit before the next proposal). `topic_changed` /
  /// `children_changed` / `removed` come from the operation.
  void EvaluateProposal(const Organization& proposal,
                        const std::vector<StateId>& topic_changed,
                        const std::vector<StateId>& children_changed,
                        const std::vector<StateId>& removed,
                        ProposalEvaluation* out);

  /// Commits an evaluated proposal: `new_org` replaces the committed
  /// organization and the caches absorb `eval`. `eval` is only read, so
  /// the caller can keep reusing its buffers for the next proposal.
  void Commit(const Organization& new_org, const ProposalEvaluation& eval);

  /// Number of queries in the query set.
  size_t num_queries() const { return reps_.query_attrs.size(); }

  /// The representative set in use.
  const RepresentativeSet& reps() const { return reps_; }

  /// Discovery probability currently cached for a context attribute
  /// (through its representative).
  double AttrDiscovery(uint32_t attr) const;

  /// Cached per-table discovery probabilities.
  const std::vector<double>& table_probs() const { return table_prob_; }

 private:
  /// Reusable per-worker-slot scratch: sims/probs for one state's child
  /// list, a per-state accumulation vector for EvaluateProposal, and the
  /// explicit DFS stack of EnsureFresh. Owned by chunk index, never
  /// shared across concurrent tasks.
  struct EvalScratch {
    std::vector<double> sims;
    std::vector<double> probs;
    std::vector<double> state_reach;
    std::vector<StateId> stack;
    /// Per-chunk telemetry, flushed serially into the shared counters
    /// after each parallel region so the hot loops never touch an atomic.
    uint64_t cache_hits = 0;
    uint64_t cache_repairs = 0;
  };

  /// Ensures reach_[q][s] is fresh for the committed organization,
  /// repairing stale ancestors with an explicit-stack DFS (deep
  /// organizations must not overflow the call stack). Only touches
  /// query q's caches, so concurrent calls for distinct q are safe.
  double EnsureFresh(uint32_t q, StateId s, EvalScratch* scratch);

  /// Writes the transition probabilities from `parent` to each of its
  /// children in `org` into scratch->probs and returns it. Allocation-free
  /// in the steady state. Child-topic cosines come from kappa_cache_
  /// (see below), so only children whose topic changed since the last
  /// proposal pay for a dot product.
  const std::vector<double>& TransitionsFromInto(const Organization& org,
                                                 StateId parent, uint32_t q,
                                                 const Vec& query,
                                                 double query_norm,
                                                 EvalScratch* scratch) const;

  /// Marks the kappa_cache_ entries of `states` invalid for every query.
  void InvalidateKappa(const std::vector<StateId>& states);

  const Vec& QueryVec(uint32_t q) const {
    return ctx_->attr_vector(reps_.query_attrs[q]);
  }

  TransitionConfig config_;
  std::shared_ptr<const OrgContext> ctx_;
  RepresentativeSet reps_;
  /// Worker pool (null when num_threads == 1) and one scratch per slot.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<EvalScratch> scratch_;
  /// L2 norms of the query topic vectors, fixed for the evaluator's
  /// lifetime.
  std::vector<double> query_norms_;
  /// Reusable per-proposal buffers (main thread only).
  std::vector<char> dirty_mark_;
  std::vector<double> new_discovery_;
  std::vector<uint32_t> affected_tables_;
  std::vector<StateId> frontier_;
  std::vector<StateId> topo_;
  /// Topo-ordered states with at least one dirty child — the
  /// query-independent skeleton of the proposal DP, computed once per
  /// proposal instead of rescanning the full graph per affected query.
  std::vector<StateId> relevant_parents_;

  /// Memoized child-topic cosines: kappa_cache_[q * kappa_stride_ + s] =
  /// cosine(topic(s), query q), or kKappaInvalid. Query vectors are fixed
  /// for the evaluator's lifetime and a state's cosine row only changes
  /// when its topic does, so EvaluateProposal invalidates just the ops'
  /// `topic_changed` states — plus the previous proposal's set, because an
  /// Undo since then reverts those topics behind the evaluator's back.
  /// Entries are written only from the owning query's chunk (mutable so
  /// the const hot path can fill them); values are bit-identical to
  /// recomputation, since a hit returns exactly the bits a fresh
  /// CosineWithNorms over the unchanged topic row would produce.
  mutable std::vector<double> kappa_cache_;
  size_t kappa_stride_ = 0;
  std::vector<StateId> prev_topic_changed_;

  const Organization* committed_ = nullptr;
  /// reach_[q][state] for the committed organization; stale_[q] marks
  /// entries that must be repaired before reading.
  std::vector<std::vector<double>> reach_;
  std::vector<DynamicBitset> stale_;
  /// Discovery probability per query (reach at the query's own leaf).
  std::vector<double> query_discovery_;
  /// Discovery probability per table (Equation 5 with representative
  /// approximation), and their mean.
  std::vector<double> table_prob_;
  /// Optional per-table objective weights and their sum; empty = uniform
  /// mean (the exact legacy arithmetic).
  std::vector<double> table_weights_;
  double weight_total_ = 0.0;
  double effectiveness_ = 0.0;
  /// attr -> tables is static; tables_of_query_[q] = tables containing any
  /// member attribute of query q's partition.
  std::vector<std::vector<uint32_t>> tables_of_query_;
};

/// Exact query set: every attribute represents itself.
RepresentativeSet IdentityRepresentatives(const OrgContext& ctx);

}  // namespace lakeorg
