#include "core/org_fuzz.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/evaluator.h"
#include "core/operations.h"
#include "core/reference_evaluator.h"
#include "core/repair.h"
#include "core/representatives.h"
#include "core/serialization.h"
#include "core/sharded_search.h"

namespace lakeorg {
namespace {

/// Attempts parent -> child, first through the explicit cycle check, then
/// through AddEdge's own validation. Returns true when the edge was added.
bool TryEdge(Organization* org, StateId parent, StateId child) {
  if (org->WouldCreateCycle(parent, child)) return false;
  return org->AddEdge(parent, child).ok();
}

}  // namespace

FuzzLake MakeFuzzLake(Rng* rng, const FuzzLakeOptions& options) {
  TagCloudOptions opts;
  opts.num_tags = static_cast<size_t>(rng->UniformInt(
      static_cast<int64_t>(options.min_tags),
      static_cast<int64_t>(options.max_tags)));
  opts.target_attributes = static_cast<size_t>(rng->UniformInt(
      static_cast<int64_t>(options.min_attrs),
      static_cast<int64_t>(options.max_attrs)));
  opts.min_values = 5;
  opts.max_values = 20;
  opts.max_attrs_per_table = 6;
  opts.seed = static_cast<uint64_t>(rng->UniformInt(1, 1 << 30));

  FuzzLake out{GenerateTagCloud(opts), TagIndex(), nullptr};
  out.index = TagIndex::Build(out.bench.lake);
  out.ctx = OrgContext::BuildFull(out.bench.lake, out.index);
  return out;
}

Organization RandomOrganization(std::shared_ptr<const OrgContext> ctx,
                                Rng* rng, const RandomOrgOptions& options) {
  size_t num_tags = ctx->num_tags();
  size_t num_attrs = ctx->num_attrs();
  Organization org(std::move(ctx));
  const OrgContext& c = org.ctx();

  for (uint32_t a = 0; a < num_attrs; ++a) org.AddLeaf(a);
  std::vector<StateId> tag_state(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) tag_state[t] = org.AddTagState(t);
  std::vector<uint32_t> all_tags(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) all_tags[t] = t;
  StateId root = org.AddRoot(all_tags);

  // Random interior states over random tag subsets, largest tag sets
  // first so that superset -> subset edge attempts layer the DAG.
  std::vector<StateId> interiors;
  if (num_tags >= 2) {
    size_t n = static_cast<size_t>(rng->UniformInt(
        0, static_cast<int64_t>(options.max_interior_states)));
    for (size_t i = 0; i < n; ++i) {
      size_t k = static_cast<size_t>(
          rng->UniformInt(2, static_cast<int64_t>(num_tags)));
      std::vector<size_t> pick = rng->SampleWithoutReplacement(num_tags, k);
      std::vector<uint32_t> tags(pick.begin(), pick.end());
      interiors.push_back(org.AddInteriorState(std::move(tags)));
    }
    std::sort(interiors.begin(), interiors.end(),
              [&org](StateId a, StateId b) {
                size_t ca = org.state(a).attrs.Count();
                size_t cb = org.state(b).attrs.Count();
                return ca != cb ? ca > cb : a < b;
              });
  }

  // Interior wiring: bigger -> smaller with probability edge_prob (AddEdge
  // rejects inclusion violations itself); root is the fallback parent.
  for (size_t i = 0; i < interiors.size(); ++i) {
    for (size_t j = i + 1; j < interiors.size(); ++j) {
      if (rng->Bernoulli(options.edge_prob)) {
        TryEdge(&org, interiors[i], interiors[j]);
      }
    }
  }
  for (StateId s : interiors) {
    if (rng->Bernoulli(options.edge_prob) || org.state(s).parents.empty()) {
      TryEdge(&org, root, s);
    }
  }

  // Tag states hang under random interiors carrying their tag; root is the
  // fallback so every tag state is reachable.
  for (uint32_t t = 0; t < num_tags; ++t) {
    for (StateId s : interiors) {
      TagSpan tags = org.tags(s);
      if (std::find(tags.begin(), tags.end(), t) == tags.end()) continue;
      if (rng->Bernoulli(options.edge_prob)) {
        TryEdge(&org, s, tag_state[t]);
      }
    }
    if (org.state(tag_state[t]).parents.empty()) {
      TryEdge(&org, root, tag_state[t]);
    }
  }

  // Leaves hang under the tag states of their tags: one mandatory parent
  // (randomly chosen), the rest with probability edge_prob.
  for (uint32_t a = 0; a < num_attrs; ++a) {
    const std::vector<uint32_t>& tags = c.attr_tags(a);
    size_t anchor = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(tags.size()) - 1));
    for (size_t i = 0; i < tags.size(); ++i) {
      if (i == anchor || rng->Bernoulli(options.edge_prob)) {
        TryEdge(&org, tag_state[tags[i]], org.LeafOf(a));
      }
    }
  }

  // Rare interior -> leaf shortcuts (multi-level skips are legal DAG
  // structure the evaluators must handle).
  for (StateId s : interiors) {
    org.state(s).attrs.ForEach([&](size_t a) {
      if (rng->Bernoulli(options.shortcut_prob)) {
        TryEdge(&org, s, org.LeafOf(static_cast<uint32_t>(a)));
      }
    });
  }

  org.RecomputeLevels();
  return org;
}

namespace {

/// Absolute difference helper that folds into a running max.
void FoldDiff(double a, double b, double* max_diff) {
  *max_diff = std::max(*max_diff, std::abs(a - b));
}

/// Random tag partition into at most `dims` non-empty groups.
std::vector<std::vector<TagId>> RandomTagPartition(
    const std::vector<TagId>& non_empty, size_t dims, Rng* rng) {
  std::vector<TagId> tags = non_empty;
  rng->Shuffle(&tags);
  size_t k = std::min(dims, tags.size());
  std::vector<std::vector<TagId>> parts(k);
  for (size_t i = 0; i < tags.size(); ++i) {
    size_t part = i < k ? i
                        : static_cast<size_t>(rng->UniformInt(
                              0, static_cast<int64_t>(k) - 1));
    parts[part].push_back(tags[i]);
  }
  return parts;
}

}  // namespace

DiffTrialResult RunDiffTrial(const DiffTrialOptions& options) {
  DiffTrialResult res;
  auto fail = [&res, &options](const std::string& msg) {
    if (res.ok) {
      res.ok = false;
      res.error =
          "trial --seed " + std::to_string(options.seed) + ": " + msg;
    }
  };
  auto check_tol = [&](double got, double want, double* max_diff,
                       const char* what) {
    FoldDiff(got, want, max_diff);
    if (std::abs(got - want) > options.tolerance) {
      fail(std::string(what) + " mismatch: optimized " +
           std::to_string(got) + " vs reference " + std::to_string(want));
    }
  };

  Rng rng(options.seed);
  FuzzLake lake = MakeFuzzLake(&rng, options.lake);

  std::vector<std::shared_ptr<const OrgContext>> ctxs;
  if (options.dims <= 1) {
    ctxs.push_back(lake.ctx);
  } else {
    for (const std::vector<TagId>& part : RandomTagPartition(
             lake.index.NonEmptyTags(), options.dims, &rng)) {
      ctxs.push_back(OrgContext::Build(lake.bench.lake, lake.index, part));
    }
  }

  TransitionConfig config;
  ReferenceEvaluator ref(config);
  ThreadPool pool(std::max<size_t>(1, options.threads));
  OrgEvaluator serial(config);
  OrgEvaluator pooled(config, &pool);

  std::vector<Organization> orgs;
  for (const auto& ctx : ctxs) {
    orgs.push_back(RandomOrganization(ctx, &rng, options.org));
  }
  res.num_states = orgs[0].NumAliveStates();
  res.num_attrs = orgs[0].ctx().num_attrs();

  // Static comparison of every dimension's fresh random organization.
  for (size_t d = 0; d < orgs.size() && res.ok; ++d) {
    const Organization& org = orgs[d];
    Status valid = org.Validate();
    if (!valid.ok()) {
      fail("random org invalid (dim " + std::to_string(d) +
           "): " + valid.ToString());
      break;
    }
    Status topics = CheckTopicInvariants(org);
    if (!topics.ok()) {
      fail("random org topic invariants (dim " + std::to_string(d) +
           "): " + topics.ToString());
      break;
    }

    // Per-attribute discovery: serial, pooled (bit-identical to serial by
    // contract), and the oracle (within tolerance).
    std::vector<double> want = ref.AllAttributeDiscovery(org);
    std::vector<double> got = serial.AllAttributeDiscovery(org);
    std::vector<double> got_pooled = pooled.AllAttributeDiscovery(org);
    if (got != got_pooled) {
      fail("pooled AllAttributeDiscovery differs bit-wise from serial");
    }
    for (size_t a = 0; a < want.size(); ++a) {
      check_tol(got[a], want[a], &res.max_discovery_diff,
                "attribute discovery");
    }

    // Per-state reachability for a few sampled attribute queries.
    size_t samples = std::min<size_t>(5, org.ctx().num_attrs());
    for (size_t i = 0; i < samples; ++i) {
      uint32_t q = static_cast<uint32_t>(rng.UniformInt(
          0, static_cast<int64_t>(org.ctx().num_attrs()) - 1));
      std::vector<double> want_reach =
          ref.ReachProbabilities(org, org.ctx().attr_vector(q));
      std::vector<double> got_reach =
          serial.ReachProbabilities(org, org.ctx().attr_vector(q));
      for (size_t s = 0; s < want_reach.size(); ++s) {
        check_tol(got_reach[s], want_reach[s], &res.max_reach_diff,
                  "state reachability");
      }
    }

    check_tol(serial.Effectiveness(org), ref.Effectiveness(org),
              &res.max_effectiveness_diff, "effectiveness");

    ReferenceSuccess want_success = ref.Success(org, options.success_theta);
    auto neighbors = OrgEvaluator::AttributeNeighbors(
        org.ctx(), options.success_theta, &pool);
    SuccessReport got_success = serial.Success(org, neighbors);
    SuccessReport got_success_pooled = pooled.Success(org, neighbors);
    if (got_success.per_table != got_success_pooled.per_table) {
      fail("pooled Success differs bit-wise from serial");
    }
    check_tol(got_success.mean, want_success.mean, &res.max_success_diff,
              "mean success");
    for (size_t t = 0; t < want_success.per_table.size(); ++t) {
      check_tol(got_success.per_table[t], want_success.per_table[t],
                &res.max_success_diff, "per-table success");
    }
  }
  if (!res.ok) return res;

  // Randomized op sequence with interleaved accept / reject-rollback on
  // dimension 0, mirroring the local search's undo-log driving pattern.
  Organization& current = orgs[0];
  std::shared_ptr<const OrgContext> ctx0 = ctxs[0];
  IncrementalEvaluator inc1(config, ctx0, IdentityRepresentatives(*ctx0), 1);
  IncrementalEvaluator incT(config, ctx0, IdentityRepresentatives(*ctx0),
                            std::max<size_t>(1, options.threads));
  inc1.Initialize(current);
  incT.Initialize(current);
  if (inc1.effectiveness() != incT.effectiveness()) {
    fail("threaded Initialize effectiveness differs bit-wise from serial");
  }
  double ref_eff = ref.Effectiveness(current);
  check_tol(inc1.effectiveness(), ref_eff, &res.max_effectiveness_diff,
            "incremental initial effectiveness");

  ReachabilityFn reach = [&inc1](StateId s) {
    return inc1.StateReachability(s);
  };
  OpUndo undo;
  for (size_t step = 0; step < options.num_ops && res.ok; ++step) {
    std::vector<StateId> topo = current.TopologicalOrder();
    StateId target = topo[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(topo.size()) - 1))];
    bool add = rng.Bernoulli(0.5);
    double eff_before = inc1.effectiveness();

    OpResult op = add ? ApplyAddParent(&current, target, reach, &undo)
                      : ApplyDeleteParent(&current, target, reach, &undo);
    if (!op.applied) {
      if (!undo.states.empty()) {
        fail("inapplicable op journaled state mutations");
      }
      continue;
    }
    res.ops_applied++;

    Status valid = current.Validate();
    if (!valid.ok()) {
      fail("Validate after op " + std::to_string(step) + ": " +
           valid.ToString());
      break;
    }
    Status topics = CheckTopicInvariants(current);
    if (!topics.ok()) {
      fail("topic invariants after op " + std::to_string(step) + ": " +
           topics.ToString());
      break;
    }

    ProposalEvaluation ev1;
    ProposalEvaluation evT;
    inc1.EvaluateProposal(current, op.topic_changed, op.children_changed,
                          op.removed, &ev1);
    incT.EvaluateProposal(current, op.topic_changed, op.children_changed,
                          op.removed, &evT);
    if (ev1.effectiveness != evT.effectiveness) {
      fail("threaded proposal effectiveness differs bit-wise from serial");
    }
    double ref_proposal_eff = ref.Effectiveness(current);
    check_tol(ev1.effectiveness, ref_proposal_eff,
              &res.max_effectiveness_diff, "proposal effectiveness");

    // Dirty-subgraph reachability of the first affected query against a
    // full oracle DP on the mutated organization.
    if (!ev1.affected_queries.empty()) {
      uint32_t q = ev1.affected_queries[0];
      std::vector<double> want_reach = ref.ReachProbabilities(
          current, ctx0->attr_vector(inc1.reps().query_attrs[q]));
      // Row 0 of the flattened matrix (qi = 0).
      for (size_t j = 0; j < ev1.dirty.size(); ++j) {
        check_tol(ev1.new_reach[j], want_reach[ev1.dirty[j]],
                  &res.max_reach_diff, "proposal dirty reachability");
      }
    }

    if (rng.Bernoulli(options.accept_prob)) {
      inc1.Commit(current, ev1);
      incT.Commit(current, evT);
      ref_eff = ref_proposal_eff;
      res.ops_committed++;
    } else {
      current.Undo(undo);
      res.ops_rolled_back++;
      Status valid_back = current.Validate();
      if (!valid_back.ok()) {
        fail("Validate after rollback " + std::to_string(step) + ": " +
             valid_back.ToString());
        break;
      }
      Status topics_back = CheckTopicInvariants(current);
      if (!topics_back.ok()) {
        fail("topic invariants after rollback " + std::to_string(step) +
             ": " + topics_back.ToString());
        break;
      }
      if (inc1.effectiveness() != eff_before) {
        fail("rejected proposal changed committed effectiveness");
      }
      // The rolled-back organization must be bit-identical as a model:
      // the oracle's recomputation agrees with the pre-op value exactly.
      double ref_back = ref.Effectiveness(current);
      if (ref_back != ref_eff) {
        fail("rollback not bit-identical: reference effectiveness " +
             std::to_string(ref_back) + " vs " + std::to_string(ref_eff));
      }
    }
  }
  if (!res.ok) return res;

  // Final cached state vs a full oracle pass over the fuzzed organization.
  std::vector<double> want_final = ref.AllAttributeDiscovery(current);
  for (uint32_t a = 0; a < want_final.size(); ++a) {
    check_tol(inc1.AttrDiscovery(a), want_final[a],
              &res.max_discovery_diff, "final cached discovery");
    check_tol(incT.AttrDiscovery(a), want_final[a],
              &res.max_discovery_diff, "final threaded cached discovery");
  }
  check_tol(inc1.effectiveness(), ref.Effectiveness(current),
            &res.max_effectiveness_diff, "final effectiveness");

  // Multi-dimensional aggregation (Eq. 8) across the final organizations.
  if (orgs.size() > 1) {
    std::vector<DimensionInfo> info(orgs.size());
    MultiDimOrganization multi(std::move(orgs), std::move(info));
    ReferenceMultiDim want_disc = ref.MultiDimDiscovery(multi);
    MultiDimSuccess got_disc = EvaluateMultiDimDiscovery(multi, config);
    check_tol(got_disc.mean, want_disc.mean, &res.max_discovery_diff,
              "multi-dim mean discovery");
    for (size_t i = 0; i < got_disc.tables.size(); ++i) {
      auto it = want_disc.per_table.find(got_disc.tables[i]);
      if (it == want_disc.per_table.end()) {
        fail("multi-dim discovery covers unexpected table");
        break;
      }
      check_tol(got_disc.success[i], it->second, &res.max_discovery_diff,
                "multi-dim table discovery");
    }
    ReferenceMultiDim want_succ =
        ref.MultiDimSuccess(multi, options.success_theta);
    MultiDimSuccess got_succ =
        EvaluateMultiDimSuccess(multi, options.success_theta, config);
    check_tol(got_succ.mean, want_succ.mean, &res.max_success_diff,
              "multi-dim mean success");
    for (size_t i = 0; i < got_succ.tables.size(); ++i) {
      auto it = want_succ.per_table.find(got_succ.tables[i]);
      if (it == want_succ.per_table.end()) {
        fail("multi-dim success covers unexpected table");
        break;
      }
      check_tol(got_succ.success[i], it->second, &res.max_success_diff,
                "multi-dim table success");
    }
  }
  return res;
}

RepairTrialResult RunRepairTrial(const RepairTrialOptions& options) {
  RepairTrialResult res;
  auto fail = [&res, &options](const std::string& msg) {
    if (res.ok) {
      res.ok = false;
      res.error =
          "repair trial --seed " + std::to_string(options.seed) + ": " + msg;
    }
  };

  Rng rng(options.seed);
  FuzzLake fl = MakeFuzzLake(&rng, options.lake);
  Organization org = RandomOrganization(fl.ctx, &rng, options.org);

  // Random mutation batch on a copy of the generated lake, recorded as a
  // delta the way LiveLakeService::Apply records one.
  DataLake lake = fl.bench.lake;
  Status begin = lake.BeginDelta();
  if (!begin.ok()) {
    fail("BeginDelta: " + begin.ToString());
    return res;
  }
  auto alive_organizable = [&lake]() {
    return lake.OrganizableAttributes();
  };
  for (size_t m = 0; m < options.num_mutations; ++m) {
    switch (rng.UniformInt(0, 2)) {
      case 0: {  // Add a table: 1-3 attributes with domains borrowed from
                 // existing attributes (guaranteed embeddable values).
        std::vector<AttributeId> donors = alive_organizable();
        if (donors.empty()) break;
        TableId t = lake.AddTable("fuzz_added_" + std::to_string(options.seed) +
                                  "_" + std::to_string(m));
        TagId tag;
        if (rng.Bernoulli(0.7)) {
          tag = static_cast<TagId>(rng.UniformInt(
              0, static_cast<int64_t>(lake.num_tags()) - 1));
        } else {
          tag = lake.GetOrCreateTag("fuzz_tag_" + std::to_string(options.seed) +
                                    "_" + std::to_string(m));
        }
        Status st = lake.AttachTag(t, tag);
        if (!st.ok()) {
          fail("AttachTag: " + st.ToString());
          return res;
        }
        size_t n = static_cast<size_t>(rng.UniformInt(1, 3));
        for (size_t i = 0; i < n; ++i) {
          AttributeId donor = donors[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(donors.size()) - 1))];
          lake.AddAttribute(t, "col" + std::to_string(i),
                            lake.attribute(donor).values);
        }
        break;
      }
      case 1: {  // Remove a random alive table (keep the lake non-trivial).
        if (lake.NumAliveTables() <= 2) break;
        std::vector<TableId> alive;
        for (const Table& t : lake.tables()) {
          if (!t.removed) alive.push_back(t.id);
        }
        TableId victim = alive[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(alive.size()) - 1))];
        Status st = lake.RemoveTable(victim);
        if (!st.ok()) {
          fail("RemoveTable: " + st.ToString());
          return res;
        }
        break;
      }
      default: {  // Retag a random alive attribute to 1-2 random tags.
        std::vector<AttributeId> attrs = alive_organizable();
        if (attrs.empty()) break;
        AttributeId a = attrs[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(attrs.size()) - 1))];
        std::vector<TagId> tags;
        size_t n = static_cast<size_t>(rng.UniformInt(1, 2));
        for (size_t i = 0; i < n; ++i) {
          tags.push_back(static_cast<TagId>(rng.UniformInt(
              0, static_cast<int64_t>(lake.num_tags()) - 1)));
        }
        Status st = lake.RetagAttribute(a, std::move(tags));
        if (!st.ok()) {
          fail("RetagAttribute: " + st.ToString());
          return res;
        }
        break;
      }
    }
  }
  Result<LakeDelta> delta_result = lake.TakeDelta();
  if (!delta_result.ok()) {
    fail("TakeDelta: " + delta_result.status().ToString());
    return res;
  }
  LakeDelta delta = std::move(delta_result).value();
  Status topics = lake.ComputeMissingTopicVectors(*fl.bench.store);
  if (!topics.ok()) {
    fail("ComputeMissingTopicVectors: " + topics.ToString());
    return res;
  }
  TagIndex index = TagIndex::Build(lake);
  if (index.NonEmptyTags().empty()) return res;  // Trivially emptied lake.

  RepairOptions ropts;
  ropts.num_threads = options.threads;
  ropts.reopt_max_proposals = options.reopt_max_proposals;
  ropts.seed = options.seed * 7919 + 13;
  Result<RepairResult> repaired =
      RepairOrganization(org, lake, index, delta, ropts);
  if (!repaired.ok()) {
    fail("RepairOrganization: " + repaired.status().ToString());
    return res;
  }
  RepairResult rep = std::move(repaired).value();
  res.reopt_gain = rep.effectiveness - rep.splice_effectiveness;
  res.leaves_added = rep.leaves_added;
  res.leaves_removed = rep.leaves_removed;
  res.states_dropped = rep.states_dropped;
  res.states_touched = rep.states_touched;

  Status valid = rep.org.Validate();
  if (!valid.ok()) {
    fail("repaired org invalid: " + valid.ToString());
    return res;
  }
  Status inv = CheckTopicInvariants(rep.org);
  if (!inv.ok()) {
    fail("repaired org topic invariants: " + inv.ToString());
    return res;
  }
  // Every organizable attribute of the post-delta lake must have a leaf.
  size_t leaves = 0;
  for (StateId s = 0; s < rep.org.num_states(); ++s) {
    const OrgState& st = rep.org.state(s);
    if (st.alive && st.kind == StateKind::kLeaf) ++leaves;
  }
  if (leaves != rep.ctx->num_attrs()) {
    fail("leaf count " + std::to_string(leaves) + " != context attrs " +
         std::to_string(rep.ctx->num_attrs()));
    return res;
  }
  if (rep.effectiveness + options.tolerance < rep.splice_effectiveness) {
    fail("re-optimized effectiveness " + std::to_string(rep.effectiveness) +
         " below splice-only " + std::to_string(rep.splice_effectiveness));
    return res;
  }

  // Differential check: the incremental evaluator (at the trial's thread
  // count) and the brute-force reference must agree on the repaired
  // organization.
  IncrementalEvaluator inc(ropts.transition, rep.ctx,
                           IdentityRepresentatives(*rep.ctx),
                           options.threads);
  inc.Initialize(rep.org);
  double want = ReferenceEvaluator(ropts.transition).Effectiveness(rep.org);
  res.effectiveness_diff = std::abs(inc.effectiveness() - want);
  if (res.effectiveness_diff > options.tolerance) {
    fail("effectiveness mismatch: incremental " +
         std::to_string(inc.effectiveness()) + " vs reference " +
         std::to_string(want));
  }
  return res;
}

RecycleTrialResult RunRecycleTrial(const RecycleTrialOptions& options) {
  RecycleTrialResult res;
  auto fail = [&res, &options](const std::string& msg) {
    if (res.ok) {
      res.ok = false;
      res.error =
          "recycle trial --seed " + std::to_string(options.seed) + ": " + msg;
    }
  };
  auto check_tol = [&](double got, double want, double* max_diff,
                       const char* what) {
    FoldDiff(got, want, max_diff);
    if (std::abs(got - want) > options.tolerance) {
      fail(std::string(what) + " mismatch: optimized " +
           std::to_string(got) + " vs reference " + std::to_string(want));
    }
  };

  Rng rng(options.seed);
  FuzzLake fl = MakeFuzzLake(&rng, options.lake);
  std::shared_ptr<const OrgContext> ctx = fl.ctx;
  Organization current = RandomOrganization(ctx, &rng, options.org);
  const size_t num_tags = ctx->num_tags();
  const uint32_t num_attrs = static_cast<uint32_t>(ctx->num_attrs());

  TransitionConfig config;
  ReferenceEvaluator ref(config);
  IncrementalEvaluator inc1(config, ctx, IdentityRepresentatives(*ctx), 1);
  IncrementalEvaluator incT(config, ctx, IdentityRepresentatives(*ctx),
                            std::max<size_t>(1, options.threads));
  inc1.Initialize(current);
  incT.Initialize(current);

  ReachabilityFn reach = [&inc1](StateId s) {
    return inc1.StateReachability(s);
  };
  OpUndo undo;

  for (size_t round = 0; round < options.num_rounds && res.ok; ++round) {
    // Churn: a delete-biased op sequence (the second and later rounds run
    // it over recycled slots, which is the StateId-stability stress).
    for (size_t i = 0; i < options.ops_per_round && res.ok; ++i) {
      std::vector<StateId> topo = current.TopologicalOrder();
      StateId target = topo[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(topo.size()) - 1))];
      bool del = rng.Bernoulli(options.delete_prob);
      double eff_before = inc1.effectiveness();
      OpResult op = del ? ApplyDeleteParent(&current, target, reach, &undo)
                        : ApplyAddParent(&current, target, reach, &undo);
      if (!op.applied) continue;
      res.ops_applied++;

      Status valid = current.Validate();
      if (!valid.ok()) {
        fail("Validate after churn op: " + valid.ToString());
        break;
      }
      Status topics = CheckTopicInvariants(current);
      if (!topics.ok()) {
        fail("topic invariants after churn op: " + topics.ToString());
        break;
      }

      ProposalEvaluation ev1;
      ProposalEvaluation evT;
      inc1.EvaluateProposal(current, op.topic_changed, op.children_changed,
                            op.removed, &ev1);
      incT.EvaluateProposal(current, op.topic_changed, op.children_changed,
                            op.removed, &evT);
      if (ev1.effectiveness != evT.effectiveness) {
        fail("threaded churn effectiveness differs bit-wise from serial");
      }
      check_tol(ev1.effectiveness, ref.Effectiveness(current),
                &res.max_effectiveness_diff, "churn proposal effectiveness");

      if (rng.Bernoulli(options.accept_prob)) {
        inc1.Commit(current, ev1);
        incT.Commit(current, evT);
      } else {
        current.Undo(undo);
        if (inc1.effectiveness() != eff_before) {
          fail("rejected churn op changed committed effectiveness");
        }
      }
    }
    if (!res.ok) break;

    // Snapshot identities, then recycle.
    const size_t n = current.num_states();
    std::vector<StateId> leaf_before(num_attrs);
    for (uint32_t a = 0; a < num_attrs; ++a) {
      leaf_before[a] = current.LeafOf(a);
    }
    std::vector<uint32_t> version_before(n);
    for (StateId s = 0; s < n; ++s) {
      version_before[s] = current.slot_version(s);
    }

    size_t recycled = current.RecycleDeadStates();
    res.states_recycled += recycled;
    if (current.FreeListSize() < recycled) {
      fail("free list smaller than the recycled count");
      break;
    }

    // Drain the free list with fresh random interior states. Every one
    // must land on a recycled slot (num_states unchanged) with a bumped
    // slot version, and attach under the root.
    std::vector<StateId> tag_state(num_tags, kInvalidId);
    for (StateId s = 0; s < n; ++s) {
      if (current.alive(s) && current.kind(s) == StateKind::kTag) {
        tag_state[current.tags(s)[0]] = s;
      }
    }
    while (current.FreeListSize() > 0 && res.ok) {
      size_t k = static_cast<size_t>(
          rng.UniformInt(2, static_cast<int64_t>(std::max<size_t>(2, num_tags))));
      std::vector<size_t> pick =
          rng.SampleWithoutReplacement(num_tags, std::min(k, num_tags));
      std::vector<uint32_t> tags(pick.begin(), pick.end());
      StateId s = current.AddInteriorState(std::move(tags));
      res.slots_reused++;
      if (s >= n) {
        fail("reused state did not come from the free list");
        break;
      }
      if (current.slot_version(s) != version_before[s] + 1) {
        fail("slot version not bumped on reuse");
        break;
      }
      if (!TryEdge(&current, current.root(), s)) {
        fail("could not attach recycled state under the root");
        break;
      }
      TagSpan stags = current.tags(s);
      std::vector<uint32_t> own_tags(stags.begin(), stags.end());
      for (uint32_t t : own_tags) {
        if (tag_state[t] != kInvalidId && rng.Bernoulli(0.5)) {
          TryEdge(&current, s, tag_state[t]);
        }
      }
    }
    if (!res.ok) break;
    if (current.num_states() != n) {
      fail("slot reuse grew the state array");
      break;
    }

    // Once drained, allocation must resume appending at the tail.
    if (recycled > 0) {
      std::vector<size_t> pick = rng.SampleWithoutReplacement(
          num_tags, std::min<size_t>(2, num_tags));
      std::vector<uint32_t> tags(pick.begin(), pick.end());
      StateId fresh = current.AddInteriorState(std::move(tags));
      if (fresh != n) {
        fail("post-drain allocation did not extend the state array");
        break;
      }
      TryEdge(&current, current.root(), fresh);
    }

    // Leaf StateIds are permanent across recycling (section 3.2: leaves
    // are never removed, so their slots can never be reused).
    for (uint32_t a = 0; a < num_attrs && res.ok; ++a) {
      if (current.LeafOf(a) != leaf_before[a] ||
          !current.alive(leaf_before[a])) {
        fail("leaf StateId changed across recycling");
      }
    }
    if (!res.ok) break;

    current.RecomputeLevels();
    Status valid = current.Validate();
    if (!valid.ok()) {
      fail("Validate after recycle round: " + valid.ToString());
      break;
    }
    Status topics = CheckTopicInvariants(current);
    if (!topics.ok()) {
      fail("topic invariants after recycle round: " + topics.ToString());
      break;
    }

    // Recycled ids changed identity, so evaluator caches must be rebuilt
    // (the documented RecycleDeadStates contract); afterwards both
    // evaluators must again match the oracle.
    inc1.Initialize(current);
    incT.Initialize(current);
    if (inc1.effectiveness() != incT.effectiveness()) {
      fail("threaded re-init effectiveness differs bit-wise from serial");
    }
    check_tol(inc1.effectiveness(), ref.Effectiveness(current),
              &res.max_effectiveness_diff, "post-recycle effectiveness");
  }
  if (!res.ok) return res;

  // Final cached state vs a full oracle pass.
  std::vector<double> want = ref.AllAttributeDiscovery(current);
  for (uint32_t a = 0; a < want.size(); ++a) {
    check_tol(inc1.AttrDiscovery(a), want[a], &res.max_discovery_diff,
              "final cached discovery");
  }
  return res;
}

namespace {

/// Serialized bytes of an organization (the byte-identity comparator).
std::string OrgBytes(const Organization& org) {
  std::ostringstream out;
  Status st = SaveOrganization(org, &out);
  return st.ok() ? out.str() : "<save failed: " + st.ToString() + ">";
}

}  // namespace

ShardedTrialResult RunShardedTrial(const ShardedTrialOptions& options) {
  ShardedTrialResult res;
  auto fail = [&res, &options](const std::string& msg) {
    if (res.ok) {
      res.ok = false;
      res.error =
          "trial --seed " + std::to_string(options.seed) + ": " + msg;
    }
  };

  Rng rng(options.seed);
  FuzzLake fl = MakeFuzzLake(&rng, options.lake);

  LocalSearchOptions search;
  search.patience = 20;
  search.max_proposals = options.max_proposals;
  search.seed = static_cast<uint64_t>(rng.UniformInt(1, 1 << 30));
  search.record_history = false;
  search.num_threads = 1;

  // Unsharded baseline over the full context.
  Result<LocalSearchResult> unsharded = OptimizeOrganization(
      BuildClusteringOrganization(fl.ctx), search);
  if (!unsharded.ok()) {
    fail("unsharded optimize: " + unsharded.status().ToString());
    return res;
  }

  // Property 1: one shard is byte-identical to the unsharded path.
  ShardedSearchOptions sopts;
  sopts.shards = 1;
  sopts.search = search;
  sopts.num_threads = options.threads;
  Result<ShardedSearchResult> one =
      BuildShardedOrganization(fl.bench.lake, fl.index, sopts);
  if (!one.ok()) {
    fail("1-shard build: " + one.status().ToString());
    return res;
  }
  if (one.value().stitched) {
    fail("1-shard build went through the stitcher");
    return res;
  }
  if (OrgBytes(one.value().org) != OrgBytes(unsharded.value().org)) {
    fail("1-shard organization differs byte-wise from unsharded");
    return res;
  }
  if (one.value().shards[0].effectiveness !=
      unsharded.value().effectiveness) {
    fail("1-shard effectiveness differs from unsharded");
    return res;
  }

  // Property 2: a multi-shard build is byte-deterministic across thread
  // counts and under a tiny memory budget (fully serialized admission).
  sopts.shards = 2 + options.seed % std::max<size_t>(1, options.max_shards);
  sopts.num_threads = 1;
  Result<ShardedSearchResult> serial_build =
      BuildShardedOrganization(fl.bench.lake, fl.index, sopts);
  if (!serial_build.ok()) {
    fail("sharded build (1 thread): " + serial_build.status().ToString());
    return res;
  }
  const ShardedSearchResult& sharded = serial_build.value();
  std::string bytes = OrgBytes(sharded.org);

  sopts.num_threads = options.threads;
  Result<ShardedSearchResult> threaded =
      BuildShardedOrganization(fl.bench.lake, fl.index, sopts);
  if (!threaded.ok()) {
    fail("sharded build (threaded): " + threaded.status().ToString());
    return res;
  }
  if (OrgBytes(threaded.value().org) != bytes) {
    fail("threaded sharded build differs byte-wise from serial");
    return res;
  }
  sopts.memory_budget_bytes = 1;  // always below any estimate
  Result<ShardedSearchResult> budgeted =
      BuildShardedOrganization(fl.bench.lake, fl.index, sopts);
  if (!budgeted.ok()) {
    fail("sharded build (budgeted): " + budgeted.status().ToString());
    return res;
  }
  if (OrgBytes(budgeted.value().org) != bytes) {
    fail("memory-budgeted sharded build differs byte-wise from unbudgeted");
    return res;
  }

  // Property 3: the stitched organization is a valid, fully covering
  // organization whose evaluation matches the oracle.
  res.shards_built = sharded.shards.size();
  res.states_stitched = sharded.org.NumAliveStates();
  const Organization& stitched = sharded.org;
  if (sharded.shards.size() > 1 && !sharded.stitched) {
    fail("multi-shard build skipped the stitcher");
    return res;
  }
  Status valid = stitched.Validate();
  if (!valid.ok()) {
    fail("stitched Validate: " + valid.ToString());
    return res;
  }
  Status topics = CheckTopicInvariants(stitched);
  if (!topics.ok()) {
    fail("stitched topic invariants: " + topics.ToString());
    return res;
  }
  const OrgContext& fctx = stitched.ctx();
  for (uint32_t a = 0; a < fctx.num_attrs(); ++a) {
    if (stitched.LeafOf(a) == kInvalidId) {
      fail("attribute " + std::to_string(a) +
           " has no leaf in the stitched organization");
      return res;
    }
  }
  if (sharded.stitched &&
      stitched.children(stitched.root()).size() != sharded.shards.size()) {
    fail("stitched root has " +
         std::to_string(stitched.children(stitched.root()).size()) +
         " children for " + std::to_string(sharded.shards.size()) +
         " shards");
    return res;
  }

  TransitionConfig config;
  OrgEvaluator eval(config);
  ReferenceEvaluator ref(config);
  double got = eval.Effectiveness(stitched);
  double want = ref.Effectiveness(stitched);
  res.effectiveness_diff = std::abs(got - want);
  if (res.effectiveness_diff > options.tolerance) {
    fail("stitched effectiveness: optimized " + std::to_string(got) +
         " vs reference " + std::to_string(want));
    return res;
  }
  res.sharded_vs_unsharded_gap =
      std::abs(got - eval.Effectiveness(unsharded.value().org));
  return res;
}

}  // namespace lakeorg
