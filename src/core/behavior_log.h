// Behavior-log driven transition updates (section 2.4): "since our model
// uses a standard Markov model, we can apply existing incremental model
// estimation techniques to maintain and update the transition
// probabilities as behavior logs and workload patterns become available
// through the use of an organization by users."
//
// BehaviorLog accumulates observed user transitions; AdaptiveTransitionModel
// blends the content-based prior of Equation 1 with Dirichlet-smoothed
// empirical transition frequencies:
//
//   P(c | s) = (alpha * P_eq1(c | s, X) + n(s, c)) / (alpha + n(s))
//
// where alpha is the prior strength (pseudo-count mass given to the
// content model) and n(s, c) counts observed s -> c transitions. With no
// observations this reduces exactly to Equation 1; with many, it converges
// to the maximum-likelihood estimate of the logged behavior.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/organization.h"
#include "core/transition.h"

namespace lakeorg {

/// Accumulated click-through counts over an organization's edges.
/// State ids are stable across ordinary organization mutations, so a log
/// survives incremental reorganization; counts on removed states simply
/// stop mattering. RecycleDeadStates is the exception: it reuses dead
/// slots, after which an old count can name a brand-new state. Consumers
/// that blend logs across recycling (the adaptive loop) must validate
/// entries against the current organization first (ClickEventValid) or
/// Clear() the log when the organization's lineage changes.
class BehaviorLog {
 public:
  /// Records one observed user transition from `from` to `to`.
  void Record(StateId from, StateId to);

  /// Records a whole discovery sequence (consecutive pairs).
  void RecordPath(const std::vector<StateId>& path);

  /// Observed count for edge (from, to).
  uint64_t EdgeCount(StateId from, StateId to) const;

  /// Total observed transitions out of `from`.
  uint64_t OutCount(StateId from) const;

  /// Total transitions recorded.
  uint64_t total() const { return total_; }

  /// Merges another log into this one (e.g. per-user logs into a global).
  void Merge(const BehaviorLog& other);

  /// Drops all counts.
  void Clear();

 private:
  static uint64_t Key(StateId from, StateId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }
  std::unordered_map<uint64_t, uint64_t> edge_counts_;
  std::unordered_map<StateId, uint64_t> out_counts_;
  uint64_t total_ = 0;
};

/// Equation 1 blended with logged behavior.
class AdaptiveTransitionModel {
 public:
  /// `prior_strength` (alpha) is the pseudo-count mass of the content
  /// prior; must be positive.
  AdaptiveTransitionModel(TransitionConfig config, double prior_strength)
      : config_(config), prior_strength_(prior_strength) {}

  /// Posterior transition probabilities from `s` for query topic `query`,
  /// aligned with org.state(s).children. Requires s to have children.
  std::vector<double> Probabilities(const Organization& org,
                                    const BehaviorLog& log, StateId s,
                                    const Vec& query) const;

  /// The content prior alone (Equation 1 over s's children) — exactly
  /// what Probabilities blends the observations into. The adaptive
  /// loop's drift score compares this against the posterior.
  std::vector<double> PriorProbabilities(const Organization& org, StateId s,
                                         const Vec& query) const;

  const TransitionConfig& config() const { return config_; }
  double prior_strength() const { return prior_strength_; }

 private:
  TransitionConfig config_;
  double prior_strength_;
};

}  // namespace lakeorg
