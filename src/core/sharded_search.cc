#include "core/sharded_search.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <future>
#include <mutex>

#include "cluster/shard_partition.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace lakeorg {
namespace {

/// Gate that admits shard optimizations under a total byte budget. A
/// waiter is always admitted when nothing is in flight, so a single shard
/// larger than the whole budget still runs (serially).
class MemoryGate {
 public:
  explicit MemoryGate(size_t budget) : budget_(budget) {}

  void Admit(size_t bytes) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, bytes] {
      if (inflight_ == 0) return true;
      return budget_ == 0 || inflight_bytes_ + bytes <= budget_;
    });
    ++inflight_;
    inflight_bytes_ += bytes;
    peak_ = std::max(peak_, inflight_bytes_);
  }

  void Release(size_t bytes) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      assert(inflight_ > 0 && inflight_bytes_ >= bytes);
      --inflight_;
      inflight_bytes_ -= bytes;
    }
    cv_.notify_all();
  }

  size_t peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  const size_t budget_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  size_t inflight_bytes_ = 0;
  size_t peak_ = 0;
};

}  // namespace

double ShardedSearchResult::MeanShardEffectiveness() const {
  double weighted = 0.0;
  double weight = 0.0;
  for (const ShardSearchInfo& s : shards) {
    double w = static_cast<double>(std::max<size_t>(1, s.num_queries));
    weighted += w * s.effectiveness;
    weight += w;
  }
  return weight > 0.0 ? weighted / weight : 0.0;
}

size_t EstimateShardSearchBytes(const OrgContext& ctx,
                                const LocalSearchOptions& search) {
  size_t queries = ctx.num_attrs();
  if (search.use_representatives) {
    queries = std::max<size_t>(
        1, static_cast<size_t>(search.representatives.fraction *
                               static_cast<double>(ctx.num_attrs())));
    if (search.representatives.max_queries > 0) {
      queries = std::min(queries, search.representatives.max_queries);
    }
  }
  // States: leaves + tag states + clustering interiors, with headroom for
  // the parents ADD_PARENT introduces.
  size_t states = 2 * (ctx.num_attrs() + 2 * ctx.num_tags() + 2);
  size_t stride = (ctx.dim() + 7) & ~size_t{7};
  // Incremental evaluator: reach + kappa caches are doubles per
  // (query, state); x2 for the proposal-side shadow entries.
  size_t eval = queries * states * sizeof(double) * 2 * 2;
  // Organization: two float matrices (topic, topic_sum), twice — the
  // search keeps a best-so-far snapshot next to the working copy.
  size_t org = 2 * (2 * states * stride * sizeof(float));
  // Context attribute structures (vectors, sums, extents).
  size_t attrs = ctx.num_attrs() * (2 * ctx.dim() * sizeof(float) + 64);
  return eval + org + attrs;
}

Result<ShardedSearchResult> BuildShardedOrganization(
    const DataLake& lake, const TagIndex& index,
    const ShardedSearchOptions& options) {
  if (options.optimize) {
    LAKEORG_RETURN_NOT_OK(ValidateLocalSearchOptions(options.search));
    if (!options.search.restrict_targets.empty()) {
      return Status::InvalidArgument(
          "restrict_targets is per-organization and cannot apply across "
          "shards");
    }
  }
  if (index.NonEmptyTags().empty()) {
    return Status::InvalidArgument("lake has no non-empty tags to shard");
  }

  ShardPartitionOptions popts;
  popts.shards = options.shards;
  popts.target_tags_per_shard = options.target_tags_per_shard;
  popts.seed = options.partition_seed;
  std::vector<std::vector<TagId>> partition =
      PartitionTagsByTopic(index, popts);
  LAKEORG_LOG(kDebug) << "sharded search: " << partition.size()
                      << " topic shards over "
                      << index.NonEmptyTags().size() << " tags";

  struct ShardOutput {
    Organization org;
    ShardSearchInfo info;
  };

  size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads;
  // Parallel shards with an unset per-shard thread count would
  // oversubscribe (shards x queries pools); keep each shard's search
  // serial unless the caller pinned it. Mirrors BuildMultiDimFromPartition
  // — and with one shard the caller's options apply verbatim, which the
  // unsharded bit-identity guarantee depends on.
  bool parallel_shards = threads > 1 && partition.size() > 1;

  MemoryGate gate(options.memory_budget_bytes);
  auto build_shard = [&lake, &index, &options, &gate, parallel_shards](
                         const std::vector<TagId>& tags,
                         size_t shard_index) -> ShardOutput {
    std::shared_ptr<const OrgContext> ctx =
        OrgContext::Build(lake, index, tags);
    ShardSearchInfo info;
    info.num_tags = ctx->num_tags();
    info.num_attrs = ctx->num_attrs();
    info.num_tables = ctx->num_tables();
    info.estimated_bytes =
        EstimateShardSearchBytes(*ctx, options.search);
    gate.Admit(info.estimated_bytes);
    Organization initial =
        options.initial == ShardedSearchOptions::Initial::kClustering
            ? BuildClusteringOrganization(ctx)
            : BuildFlatOrganization(ctx);
    if (!options.optimize) {
      info.org_heap_bytes = initial.HeapBytes();
      gate.Release(info.estimated_bytes);
      return ShardOutput{std::move(initial), info};
    }
    LocalSearchOptions search = options.search;
    search.seed = options.search.seed + shard_index;
    if (search.num_threads == 0 && parallel_shards) search.num_threads = 1;
    LocalSearchResult result =
        OptimizeOrganization(std::move(initial), search).value();
    info.effectiveness = result.effectiveness;
    info.initial_effectiveness = result.initial_effectiveness;
    info.seconds = result.seconds;
    info.proposals = result.proposals;
    info.num_queries = result.num_queries;
    info.org_heap_bytes = result.org.HeapBytes();
    gate.Release(info.estimated_bytes);
    return ShardOutput{std::move(result.org), info};
  };

  WallTimer optimize_timer;
  std::vector<ShardOutput> outputs;
  outputs.reserve(partition.size());
  if (threads <= 1 || partition.size() <= 1) {
    for (size_t i = 0; i < partition.size(); ++i) {
      outputs.push_back(build_shard(partition[i], i));
    }
  } else {
    ThreadPool pool(std::min(threads, partition.size()));
    std::vector<std::future<ShardOutput>> futures;
    futures.reserve(partition.size());
    for (size_t i = 0; i < partition.size(); ++i) {
      futures.push_back(pool.Submit([&build_shard, &partition, i]() {
        return build_shard(partition[i], i);
      }));
    }
    for (auto& f : futures) outputs.push_back(f.get());
  }
  double optimize_seconds = optimize_timer.ElapsedSeconds();

  std::vector<ShardSearchInfo> infos;
  infos.reserve(outputs.size());
  for (const ShardOutput& out : outputs) infos.push_back(out.info);

  obs::GetGauge("shard.num_shards")
      .Set(static_cast<double>(partition.size()));
  obs::GetGauge("shard.optimize_seconds").Set(optimize_seconds);
  obs::GetGauge("shard.peak_inflight_bytes")
      .Set(static_cast<double>(gate.peak()));

  // Single shard: the organization already spans the full context
  // (OrgContext::Build over all non-empty tags == BuildFull), and adding
  // a synthetic root would change the DAG. Return it verbatim — this is
  // the byte-identity path difftest --sharded locks down.
  if (outputs.size() == 1) {
    ShardedSearchResult result{std::move(outputs[0].org), std::move(infos),
                               /*stitched=*/false, optimize_seconds,
                               /*stitch_seconds=*/0.0, gate.peak()};
    return result;
  }

  WallTimer stitch_timer;
  std::shared_ptr<const OrgContext> full_ctx =
      OrgContext::BuildFull(lake, index);
  std::vector<Organization> shard_orgs;
  shard_orgs.reserve(outputs.size());
  for (ShardOutput& out : outputs) {
    shard_orgs.push_back(std::move(out.org));
  }
  Result<Organization> stitched =
      StitchShardOrganizations(full_ctx, shard_orgs);
  LAKEORG_RETURN_NOT_OK(stitched.status());
  double stitch_seconds = stitch_timer.ElapsedSeconds();
  obs::GetGauge("shard.stitch_seconds").Set(stitch_seconds);

  ShardedSearchResult result{std::move(stitched).value(), std::move(infos),
                             /*stitched=*/true, optimize_seconds,
                             stitch_seconds, gate.peak()};
  return result;
}

}  // namespace lakeorg
