// ReferenceEvaluator: a deliberately naive, single-threaded, paper-faithful
// implementation of the full navigation model, used as a differential-testing
// oracle for the optimized evaluators.
//
// Everything is computed straight from the equations on every call:
//   - Eq. 1   transition probabilities (plain softmax, no max-shift trick)
//   - Eq. 2-4 reachability as a memoized recursion over parents (pull-based,
//             unlike the evaluators' push-based topological sweep)
//   - Eq. 5   table discovery from per-attribute discovery
//   - Eq. 6-7 organization effectiveness
//   - Eq. 8   multi-dimensional combination across organizations
//   - §4.2    per-table success probability with naively recomputed
//             attribute neighborhoods
//
// It deliberately shares no code with OrgEvaluator / IncrementalEvaluator
// beyond the Organization / OrgContext accessors: cosines, norms and
// softmaxes are local loops, there is no caching across calls, no pruning,
// no scratch reuse, no thread pool, and no reliance on the cached
// `topic_norm` (norms are recomputed from the topic vectors). Allocation
// per call is intentional — clarity over speed.
//
// Numerics: the reference reads the same `OrgState::topic` vectors the
// optimized evaluators read (the organization IS the model state; the
// incremental float maintenance of topic sums is checked separately by
// CheckTopicInvariants), and accumulates in double in ascending index
// order, so agreement with the optimized paths is far inside the 1e-9
// difftest tolerance.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/multidim.h"
#include "core/organization.h"
#include "core/transition.h"

namespace lakeorg {

/// Per-table success probabilities (§4.2) computed by the oracle.
struct ReferenceSuccess {
  /// Success probability per local table id.
  std::vector<double> per_table;
  /// Mean over tables.
  double mean = 0.0;
};

/// Per-table discovery of a multi-dimensional organization (Eq. 5 + Eq. 8),
/// keyed by lake table id.
struct ReferenceMultiDim {
  /// probability[lake table id] = combined probability over dimensions.
  std::map<TableId, double> per_table;
  /// Mean over covered tables.
  double mean = 0.0;
};

class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(TransitionConfig config = {})
      : config_(config) {}

  /// Eq. 1: P(child_i | s, X) over the children of `parent`, in child-list
  /// order. Empty when `parent` has no children.
  std::vector<double> TransitionProbabilities(const Organization& org,
                                              StateId parent,
                                              const Vec& query) const;

  /// Eq. 2-4: P(s | X, O) for every state (indexed by StateId; dead or
  /// unreachable states get 0).
  std::vector<double> ReachProbabilities(const Organization& org,
                                         const Vec& query) const;

  /// Definition 1: discovery probability of one attribute (reach of its
  /// leaf under the attribute's own topic vector).
  double AttributeDiscovery(const Organization& org, uint32_t attr) const;

  /// Discovery probabilities of all context attributes.
  std::vector<double> AllAttributeDiscovery(const Organization& org) const;

  /// Eq. 5: table discovery probability.
  double TableDiscovery(const Organization& org, uint32_t table) const;

  /// Eq. 6-7: organization effectiveness.
  double Effectiveness(const Organization& org) const;

  /// §4.2: per-table success with neighborhoods cos(A_i, A) >= theta
  /// (including A itself), recomputed naively per call.
  ReferenceSuccess Success(const Organization& org, double theta) const;

  /// Eq. 5 + Eq. 8: combined per-table discovery across dimensions.
  ReferenceMultiDim MultiDimDiscovery(const MultiDimOrganization& org) const;

  /// §4.2 + Eq. 8: combined per-table success across dimensions.
  ReferenceMultiDim MultiDimSuccess(const MultiDimOrganization& org,
                                    double theta) const;

  const TransitionConfig& config() const { return config_; }

 private:
  TransitionConfig config_;
};

/// Checks the incremental model-state maintenance the evaluators depend on:
/// for every alive state, `topic_norm` must equal Norm(topic) bit-for-bit,
/// `topic` must equal topic_sum / value_count, and `topic_sum` /
/// `value_count` must match a from-scratch recomputation over the state's
/// attribute set (float accumulation-order tolerance). Returns the first
/// violation found.
Status CheckTopicInvariants(const Organization& org);

}  // namespace lakeorg
