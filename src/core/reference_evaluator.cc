#include "core/reference_evaluator.h"

#include <cmath>

namespace lakeorg {
namespace {

// Local numeric helpers: the oracle owns its arithmetic end to end. Double
// accumulation in ascending index order over the float vectors, exactly as
// a first-principles implementation would write it.

double RefDot(const Vec& a, const Vec& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double RefNorm(const Vec& a) { return std::sqrt(RefDot(a, a)); }

/// kappa(a, b): cosine similarity, 0 when either vector is all-zero.
double RefCosine(const Vec& a, const Vec& b) {
  double na = RefNorm(a);
  double nb = RefNorm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return RefDot(a, b) / (na * nb);
}

}  // namespace

std::vector<double> ReferenceEvaluator::TransitionProbabilities(
    const Organization& org, StateId parent, const Vec& query) const {
  const OrgState& p = org.state(parent);
  std::vector<double> probs(p.children.size(), 0.0);
  if (p.children.empty()) return probs;
  // Eq. 1, written literally: exp(gamma / |ch(s)| * kappa(c, X)) over the
  // sum of the same expression for every child. gamma * kappa is at most
  // ~20 in magnitude, so the unshifted exponentials cannot overflow.
  double scale = config_.branching_penalty
                     ? config_.gamma / static_cast<double>(p.children.size())
                     : config_.gamma;
  double total = 0.0;
  for (size_t i = 0; i < p.children.size(); ++i) {
    const OrgState& child = org.state(p.children[i]);
    probs[i] = std::exp(scale * RefCosine(child.topic, query));
    total += probs[i];
  }
  for (double& pr : probs) pr /= total;
  return probs;
}

std::vector<double> ReferenceEvaluator::ReachProbabilities(
    const Organization& org, const Vec& query) const {
  std::vector<double> reach(org.num_states(), 0.0);
  if (org.root() == kInvalidId) return reach;

  // Eq. 2-4 as a pull-based memoized recursion:
  //   P(root | X) = 1
  //   P(s | X)    = sum over parents p of P(s | p, X) * P(p | X).
  // The optimized evaluators push along a topological order instead; the
  // two only agree when both implement the same DP.
  std::map<StateId, double> memo;
  auto reach_of = [&](auto&& self, StateId s) -> double {
    if (s == org.root()) return 1.0;
    auto it = memo.find(s);
    if (it != memo.end()) return it->second;
    const OrgState& st = org.state(s);
    double value = 0.0;
    if (st.alive) {
      for (StateId p : st.parents) {
        double parent_reach = self(self, p);
        if (parent_reach == 0.0) continue;
        std::vector<double> probs = TransitionProbabilities(org, p, query);
        const OrgState& ps = org.state(p);
        for (size_t i = 0; i < ps.children.size(); ++i) {
          if (ps.children[i] == s) value += probs[i] * parent_reach;
        }
      }
    }
    memo.emplace(s, value);
    return value;
  };

  reach[org.root()] = 1.0;
  for (StateId s = 0; s < org.num_states(); ++s) {
    if (s == org.root()) continue;
    if (!org.state(s).alive) continue;
    reach[s] = reach_of(reach_of, s);
  }
  return reach;
}

double ReferenceEvaluator::AttributeDiscovery(const Organization& org,
                                              uint32_t attr) const {
  std::vector<double> reach =
      ReachProbabilities(org, org.ctx().attr_vector(attr));
  return reach[org.LeafOf(attr)];
}

std::vector<double> ReferenceEvaluator::AllAttributeDiscovery(
    const Organization& org) const {
  std::vector<double> discovery(org.ctx().num_attrs(), 0.0);
  for (uint32_t a = 0; a < org.ctx().num_attrs(); ++a) {
    discovery[a] = AttributeDiscovery(org, a);
  }
  return discovery;
}

double ReferenceEvaluator::TableDiscovery(const Organization& org,
                                          uint32_t table) const {
  // Eq. 5: 1 - prod over the table's attributes of (1 - P(A | O)).
  double miss = 1.0;
  for (uint32_t a : org.ctx().table_attrs(table)) {
    miss *= 1.0 - AttributeDiscovery(org, a);
  }
  return 1.0 - miss;
}

double ReferenceEvaluator::Effectiveness(const Organization& org) const {
  const OrgContext& ctx = org.ctx();
  if (ctx.num_tables() == 0) return 0.0;
  // Eq. 6-7: mean table discovery. Per-attribute discovery is evaluated
  // once per attribute (not once per table membership) so that the
  // product accumulates the same doubles as the optimized path.
  std::vector<double> discovery = AllAttributeDiscovery(org);
  double total = 0.0;
  for (uint32_t t = 0; t < ctx.num_tables(); ++t) {
    double miss = 1.0;
    for (uint32_t a : ctx.table_attrs(t)) miss *= 1.0 - discovery[a];
    total += 1.0 - miss;
  }
  return total / static_cast<double>(ctx.num_tables());
}

ReferenceSuccess ReferenceEvaluator::Success(const Organization& org,
                                             double theta) const {
  const OrgContext& ctx = org.ctx();
  size_t n = ctx.num_attrs();

  // §4.2: Success(A | O) = 1 - prod over {A_i : cos(A_i, A) >= theta} of
  // (1 - P(A_i | A, O)), the candidate set including A itself. One DP per
  // attribute query; the neighborhood scan is the naive O(n) cosine loop.
  std::vector<double> attr_success(n, 0.0);
  for (uint32_t a = 0; a < n; ++a) {
    std::vector<double> reach = ReachProbabilities(org, ctx.attr_vector(a));
    double miss = 1.0;
    for (uint32_t b = 0; b < n; ++b) {
      bool neighbor =
          b == a ||
          RefCosine(ctx.attr_vector(a), ctx.attr_vector(b)) >= theta;
      if (neighbor) miss *= 1.0 - reach[org.LeafOf(b)];
    }
    attr_success[a] = 1.0 - miss;
  }

  ReferenceSuccess out;
  out.per_table.resize(ctx.num_tables(), 0.0);
  double total = 0.0;
  for (uint32_t t = 0; t < ctx.num_tables(); ++t) {
    double miss = 1.0;
    for (uint32_t a : ctx.table_attrs(t)) miss *= 1.0 - attr_success[a];
    out.per_table[t] = 1.0 - miss;
    total += out.per_table[t];
  }
  out.mean = ctx.num_tables() == 0
                 ? 0.0
                 : total / static_cast<double>(ctx.num_tables());
  return out;
}

namespace {

/// Eq. 8: a table is discovered in the multi-dimensional organization if it
/// is discovered in any dimension, so the miss probabilities multiply.
ReferenceMultiDim CombineDims(
    const MultiDimOrganization& org,
    const std::vector<std::vector<double>>& per_dim_table_probs) {
  ReferenceMultiDim out;
  std::map<TableId, double> miss;
  for (size_t d = 0; d < org.num_dimensions(); ++d) {
    const OrgContext& ctx = org.dimension(d).ctx();
    for (uint32_t t = 0; t < ctx.num_tables(); ++t) {
      auto [it, inserted] = miss.emplace(ctx.lake_table(t), 1.0);
      it->second *= 1.0 - per_dim_table_probs[d][t];
    }
  }
  double total = 0.0;
  for (const auto& [table, m] : miss) {
    out.per_table.emplace(table, 1.0 - m);
    total += 1.0 - m;
  }
  out.mean = miss.empty() ? 0.0 : total / static_cast<double>(miss.size());
  return out;
}

}  // namespace

ReferenceMultiDim ReferenceEvaluator::MultiDimDiscovery(
    const MultiDimOrganization& org) const {
  std::vector<std::vector<double>> per_dim(org.num_dimensions());
  for (size_t d = 0; d < org.num_dimensions(); ++d) {
    const Organization& dim = org.dimension(d);
    std::vector<double> discovery = AllAttributeDiscovery(dim);
    per_dim[d].resize(dim.ctx().num_tables(), 0.0);
    for (uint32_t t = 0; t < dim.ctx().num_tables(); ++t) {
      double miss = 1.0;
      for (uint32_t a : dim.ctx().table_attrs(t)) miss *= 1.0 - discovery[a];
      per_dim[d][t] = 1.0 - miss;
    }
  }
  return CombineDims(org, per_dim);
}

ReferenceMultiDim ReferenceEvaluator::MultiDimSuccess(
    const MultiDimOrganization& org, double theta) const {
  std::vector<std::vector<double>> per_dim(org.num_dimensions());
  for (size_t d = 0; d < org.num_dimensions(); ++d) {
    per_dim[d] = Success(org.dimension(d), theta).per_table;
  }
  return CombineDims(org, per_dim);
}

Status CheckTopicInvariants(const Organization& org) {
  const OrgContext& ctx = org.ctx();
  for (StateId s = 0; s < org.num_states(); ++s) {
    const OrgState& st = org.state(s);
    if (!st.alive) continue;
    // The cached norm must be exactly Norm(topic): every mutation path
    // ends in RefreshTopic (or restores a journaled snapshot), so even
    // bit-level drift means a maintenance path was skipped.
    if (st.topic_norm != Norm(st.topic)) {
      return Status::Internal("state " + std::to_string(s) +
                              ": topic_norm != Norm(topic) (cached " +
                              std::to_string(st.topic_norm) + ", actual " +
                              std::to_string(Norm(st.topic)) + ")");
    }
    if (st.kind == StateKind::kLeaf) {
      if (st.topic != ctx.attr_vector(st.attr) ||
          st.topic_sum != ctx.attr_sum(st.attr) ||
          st.value_count != ctx.attr_value_count(st.attr)) {
        return Status::Internal("leaf " + std::to_string(s) +
                                ": topic differs from context attribute");
      }
      continue;
    }
    // topic must be topic_sum scaled by float(1 / value_count) — the exact
    // arithmetic RefreshTopic performs.
    if (st.value_count > 0) {
      float inv = static_cast<float>(
          1.0 / static_cast<double>(st.value_count));
      for (size_t i = 0; i < st.topic.size(); ++i) {
        if (st.topic[i] != st.topic_sum[i] * inv) {
          return Status::Internal("state " + std::to_string(s) +
                                  ": topic != topic_sum / value_count");
        }
      }
    } else if (st.topic != st.topic_sum) {
      return Status::Internal("state " + std::to_string(s) +
                              ": zero-count topic != topic_sum");
    }
    // topic_sum / value_count must match a from-scratch recomputation over
    // the attribute set. Incremental float accumulation is order-dependent,
    // so the sum check carries the same relative tolerance Validate() uses.
    Vec sum(ctx.dim(), 0.0f);
    size_t count = 0;
    st.attrs.ForEach([&ctx, &sum, &count](size_t a) {
      AddInPlace(&sum, ctx.attr_sum(a));
      count += ctx.attr_value_count(a);
    });
    if (count != st.value_count) {
      return Status::Internal("state " + std::to_string(s) +
                              ": value_count inconsistent with attrs");
    }
    for (size_t i = 0; i < sum.size(); ++i) {
      float delta = sum[i] - st.topic_sum[i];
      float scale = std::max(1.0f, std::abs(sum[i]));
      if (std::abs(delta) > 1e-3f * scale) {
        return Status::Internal("state " + std::to_string(s) +
                                ": topic_sum drifted from attribute set");
      }
    }
  }
  return Status::OK();
}

}  // namespace lakeorg
