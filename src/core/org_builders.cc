#include "core/org_builders.h"

#include <cassert>
#include <numeric>
#include <string>
#include <unordered_map>

#include "cluster/agglomerative.h"

namespace lakeorg {
namespace {

/// Adds one leaf per context attribute and hangs it under each of its tag
/// states. `tag_state[t]` maps local tag -> StateId.
void AttachLeaves(Organization* org, const std::vector<StateId>& tag_state) {
  const OrgContext& ctx = org->ctx();
  for (uint32_t a = 0; a < ctx.num_attrs(); ++a) {
    StateId leaf = org->AddLeaf(a);
    for (uint32_t t : ctx.attr_tags(a)) {
      Status st = org->AddEdge(tag_state[t], leaf);
      assert(st.ok());
      (void)st;
    }
  }
}

std::vector<uint32_t> AllTags(const OrgContext& ctx) {
  std::vector<uint32_t> tags(ctx.num_tags());
  std::iota(tags.begin(), tags.end(), 0u);
  return tags;
}

/// Total number of tag-state -> leaf edges AttachLeaves will add.
size_t LeafEdgeCount(const OrgContext& ctx) {
  size_t edges = 0;
  for (uint32_t a = 0; a < ctx.num_attrs(); ++a) {
    edges += ctx.attr_tags(a).size();
  }
  return edges;
}

}  // namespace

Organization BuildFlatOrganization(std::shared_ptr<const OrgContext> ctx) {
  Organization org(ctx);
  const OrgContext& c = org.ctx();
  // Exact state and edge counts are known up front; presize the arenas so
  // construction never reallocates per state.
  org.Reserve(1 + c.num_tags() + c.num_attrs(),
              c.num_tags() + LeafEdgeCount(c));
  StateId root = org.AddRoot(AllTags(c));
  std::vector<StateId> tag_state(c.num_tags());
  for (uint32_t t = 0; t < c.num_tags(); ++t) {
    tag_state[t] = org.AddTagState(t);
    Status st = org.AddEdge(root, tag_state[t]);
    assert(st.ok());
    (void)st;
  }
  AttachLeaves(&org, tag_state);
  org.RecomputeLevels();
  return org;
}

Organization BuildClusteringOrganization(
    std::shared_ptr<const OrgContext> ctx) {
  Organization org(ctx);
  const OrgContext& c = org.ctx();
  size_t num_tags = c.num_tags();
  assert(num_tags >= 1);

  // Cluster tag topic vectors.
  std::vector<Vec> items(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) items[t] = c.tag_vector(t);
  Dendrogram dendrogram = AgglomerativeCluster(items);

  // Tag states + one interior per merge (last is the root) + leaves; the
  // dendrogram contributes two edges per merge.
  org.Reserve(num_tags + dendrogram.merges.size() + c.num_attrs() + 1,
              2 * dendrogram.merges.size() + 1 + LeafEdgeCount(c));

  // Dendrogram leaves -> tag states; merge nodes -> interior states; the
  // final merge is the root. Tag sets accumulate bottom-up.
  std::vector<StateId> node_state(dendrogram.NumNodes(), kInvalidId);
  std::vector<std::vector<uint32_t>> node_tags(dendrogram.NumNodes());
  std::vector<StateId> tag_state(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) {
    tag_state[t] = org.AddTagState(t);
    node_state[t] = tag_state[t];
    node_tags[t] = {t};
  }
  for (size_t m = 0; m < dendrogram.merges.size(); ++m) {
    const DendrogramMerge& merge = dendrogram.merges[m];
    size_t node = num_tags + m;
    node_tags[node] = node_tags[merge.left];
    node_tags[node].insert(node_tags[node].end(),
                           node_tags[merge.right].begin(),
                           node_tags[merge.right].end());
    bool is_root = (m + 1 == dendrogram.merges.size());
    StateId s = is_root ? org.AddRoot(node_tags[node])
                        : org.AddInteriorState(node_tags[node]);
    node_state[node] = s;
    Status st = org.AddEdge(s, node_state[merge.left]);
    assert(st.ok());
    st = org.AddEdge(s, node_state[merge.right]);
    assert(st.ok());
    (void)st;
  }
  if (dendrogram.merges.empty()) {
    // Single tag: root over the lone tag state.
    StateId root = org.AddRoot(node_tags[0]);
    Status st = org.AddEdge(root, node_state[0]);
    assert(st.ok());
    (void)st;
  }

  AttachLeaves(&org, tag_state);
  org.RecomputeLevels();
  return org;
}

Result<Organization> StitchShardOrganizations(
    std::shared_ptr<const OrgContext> full_ctx,
    std::span<const Organization> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("no shard organizations to stitch");
  }
  const OrgContext& full = *full_ctx;
  // Lake ids are the bridge between id spaces: every shard context and the
  // full context index the same lake, only their dense local ids differ.
  std::unordered_map<TagId, uint32_t> full_tag;
  full_tag.reserve(full.num_tags());
  for (uint32_t t = 0; t < full.num_tags(); ++t) {
    full_tag.emplace(full.lake_tag(t), t);
  }
  std::unordered_map<AttributeId, uint32_t> full_attr;
  full_attr.reserve(full.num_attrs());
  for (uint32_t a = 0; a < full.num_attrs(); ++a) {
    full_attr.emplace(full.lake_attr(a), a);
  }

  size_t total_states = 1;
  size_t total_edges = shards.size();
  for (const Organization& shard : shards) {
    total_states += shard.NumAliveStates();
    total_edges += shard.NumEdges();
  }

  Organization org(full_ctx);
  org.Reserve(total_states, total_edges);
  StateId root = org.AddRoot(AllTags(full));

  // Pass 1: states. Tags may belong to exactly one shard; attributes can
  // span shards (an attribute carries every tag of its table), so a leaf
  // added by an earlier shard is reused and later shards only contribute
  // edges into it.
  std::vector<int> tag_owner(full.num_tags(), -1);
  std::vector<std::vector<StateId>> stitched(shards.size());
  std::vector<uint32_t> tags_scratch;
  for (size_t i = 0; i < shards.size(); ++i) {
    const Organization& shard = shards[i];
    const OrgContext& sctx = shard.ctx();
    if (shard.root() == kInvalidId) {
      return Status::InvalidArgument("shard " + std::to_string(i) +
                                     " has no root");
    }
    // Remap the shard's local tag/attr ids into the full context once.
    std::vector<uint32_t> tag_map(sctx.num_tags());
    for (uint32_t t = 0; t < sctx.num_tags(); ++t) {
      auto it = full_tag.find(sctx.lake_tag(t));
      if (it == full_tag.end()) {
        return Status::InvalidArgument(
            "shard " + std::to_string(i) + " tag '" + sctx.tag_name(t) +
            "' is not part of the full context");
      }
      tag_map[t] = it->second;
    }
    std::vector<uint32_t> attr_map(sctx.num_attrs());
    for (uint32_t a = 0; a < sctx.num_attrs(); ++a) {
      auto it = full_attr.find(sctx.lake_attr(a));
      if (it == full_attr.end()) {
        return Status::InvalidArgument(
            "shard " + std::to_string(i) + " attribute '" +
            sctx.attr_label(a) + "' is not part of the full context");
      }
      attr_map[a] = it->second;
    }

    stitched[i].assign(shard.num_states(), kInvalidId);
    for (StateId s = 0; s < shard.num_states(); ++s) {
      if (!shard.alive(s)) continue;
      StateKind kind = shard.kind(s);
      if (kind == StateKind::kLeaf) {
        uint32_t attr = attr_map[shard.attr_of(s)];
        StateId existing = org.LeafOf(attr);
        stitched[i][s] = existing != kInvalidId ? existing
                                                : org.AddLeaf(attr);
        continue;
      }
      tags_scratch.clear();
      for (uint32_t t : shard.tags(s)) tags_scratch.push_back(tag_map[t]);
      StateId sid;
      if (kind == StateKind::kTag) {
        uint32_t tag = tags_scratch[0];
        if (tag_owner[tag] >= 0 &&
            tag_owner[tag] != static_cast<int>(i)) {
          return Status::InvalidArgument(
              "tag '" + full.tag_name(tag) + "' appears in shards " +
              std::to_string(tag_owner[tag]) + " and " + std::to_string(i) +
              " (shard tag sets must be disjoint)");
        }
        tag_owner[tag] = static_cast<int>(i);
        sid = org.AddTagState(tag);
      } else {
        // Shard roots become interior states under the synthetic root.
        sid = org.AddInteriorState(tags_scratch);
      }
      std::vector<uint32_t> extras = shard.ExtraAttrs(s);
      if (!extras.empty()) {
        for (uint32_t& a : extras) a = attr_map[a];
        org.AddExtraAttrs(sid, extras);
      }
      stitched[i][s] = sid;
    }
  }

  // Pass 2: edges. Root -> shard roots first (shard input order defines
  // the stitched root's transition row), then each shard's edges in state
  // order with child order preserved.
  for (size_t i = 0; i < shards.size(); ++i) {
    LAKEORG_RETURN_NOT_OK(
        org.AddEdge(root, stitched[i][shards[i].root()]));
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    const Organization& shard = shards[i];
    for (StateId s = 0; s < shard.num_states(); ++s) {
      if (!shard.alive(s)) continue;
      for (StateId c : shard.children(s)) {
        LAKEORG_RETURN_NOT_OK(
            org.AddEdge(stitched[i][s], stitched[i][c]));
      }
    }
  }

  org.RecomputeLevels();
  // Canonical accumulation order: the stitched organization's float state
  // is a pure function of its structure, independent of each shard's
  // operation history (the bit-determinism the difftest relies on).
  org.RecomputeAllTopics();
  return org;
}

}  // namespace lakeorg
