#include "core/org_builders.h"

#include <cassert>
#include <numeric>

#include "cluster/agglomerative.h"

namespace lakeorg {
namespace {

/// Adds one leaf per context attribute and hangs it under each of its tag
/// states. `tag_state[t]` maps local tag -> StateId.
void AttachLeaves(Organization* org, const std::vector<StateId>& tag_state) {
  const OrgContext& ctx = org->ctx();
  for (uint32_t a = 0; a < ctx.num_attrs(); ++a) {
    StateId leaf = org->AddLeaf(a);
    for (uint32_t t : ctx.attr_tags(a)) {
      Status st = org->AddEdge(tag_state[t], leaf);
      assert(st.ok());
      (void)st;
    }
  }
}

std::vector<uint32_t> AllTags(const OrgContext& ctx) {
  std::vector<uint32_t> tags(ctx.num_tags());
  std::iota(tags.begin(), tags.end(), 0u);
  return tags;
}

/// Total number of tag-state -> leaf edges AttachLeaves will add.
size_t LeafEdgeCount(const OrgContext& ctx) {
  size_t edges = 0;
  for (uint32_t a = 0; a < ctx.num_attrs(); ++a) {
    edges += ctx.attr_tags(a).size();
  }
  return edges;
}

}  // namespace

Organization BuildFlatOrganization(std::shared_ptr<const OrgContext> ctx) {
  Organization org(ctx);
  const OrgContext& c = org.ctx();
  // Exact state and edge counts are known up front; presize the arenas so
  // construction never reallocates per state.
  org.Reserve(1 + c.num_tags() + c.num_attrs(),
              c.num_tags() + LeafEdgeCount(c));
  StateId root = org.AddRoot(AllTags(c));
  std::vector<StateId> tag_state(c.num_tags());
  for (uint32_t t = 0; t < c.num_tags(); ++t) {
    tag_state[t] = org.AddTagState(t);
    Status st = org.AddEdge(root, tag_state[t]);
    assert(st.ok());
    (void)st;
  }
  AttachLeaves(&org, tag_state);
  org.RecomputeLevels();
  return org;
}

Organization BuildClusteringOrganization(
    std::shared_ptr<const OrgContext> ctx) {
  Organization org(ctx);
  const OrgContext& c = org.ctx();
  size_t num_tags = c.num_tags();
  assert(num_tags >= 1);

  // Cluster tag topic vectors.
  std::vector<Vec> items(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) items[t] = c.tag_vector(t);
  Dendrogram dendrogram = AgglomerativeCluster(items);

  // Tag states + one interior per merge (last is the root) + leaves; the
  // dendrogram contributes two edges per merge.
  org.Reserve(num_tags + dendrogram.merges.size() + c.num_attrs() + 1,
              2 * dendrogram.merges.size() + 1 + LeafEdgeCount(c));

  // Dendrogram leaves -> tag states; merge nodes -> interior states; the
  // final merge is the root. Tag sets accumulate bottom-up.
  std::vector<StateId> node_state(dendrogram.NumNodes(), kInvalidId);
  std::vector<std::vector<uint32_t>> node_tags(dendrogram.NumNodes());
  std::vector<StateId> tag_state(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) {
    tag_state[t] = org.AddTagState(t);
    node_state[t] = tag_state[t];
    node_tags[t] = {t};
  }
  for (size_t m = 0; m < dendrogram.merges.size(); ++m) {
    const DendrogramMerge& merge = dendrogram.merges[m];
    size_t node = num_tags + m;
    node_tags[node] = node_tags[merge.left];
    node_tags[node].insert(node_tags[node].end(),
                           node_tags[merge.right].begin(),
                           node_tags[merge.right].end());
    bool is_root = (m + 1 == dendrogram.merges.size());
    StateId s = is_root ? org.AddRoot(node_tags[node])
                        : org.AddInteriorState(node_tags[node]);
    node_state[node] = s;
    Status st = org.AddEdge(s, node_state[merge.left]);
    assert(st.ok());
    st = org.AddEdge(s, node_state[merge.right]);
    assert(st.ok());
    (void)st;
  }
  if (dendrogram.merges.empty()) {
    // Single tag: root over the lone tag state.
    StateId root = org.AddRoot(node_tags[0]);
    Status st = org.AddEdge(root, node_state[0]);
    assert(st.ok());
    (void)st;
  }

  AttachLeaves(&org, tag_state);
  org.RecomputeLevels();
  return org;
}

}  // namespace lakeorg
