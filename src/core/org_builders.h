// Organization builders.
//
// BuildFlatOrganization: the tag baseline of section 3.2 — a single root
// over all tag states, each tag state over its attributes' leaves. This is
// the navigation structure open data portals expose (retrieval by tag).
//
// BuildClusteringOrganization: the initial organization of sections 3.3 and
// 4.3.1 — an average-linkage agglomerative hierarchy over tag topic
// vectors with branching factor 2, tag states at the dendrogram leaves and
// attribute leaves below them.
//
// StitchShardOrganizations: the re-assembly half of the sharded optimizer
// (ROADMAP "shard the lake, not just the dims") — shard DAGs built over
// disjoint tag sub-contexts become one organization over the full context,
// hung under a synthetic lake root.
#pragma once

#include <memory>
#include <span>

#include "common/status.h"
#include "core/organization.h"

namespace lakeorg {

/// Builds the flat (tag baseline) organization: root -> tag states ->
/// leaves. Attributes with several tags get several tag-state parents.
Organization BuildFlatOrganization(std::shared_ptr<const OrgContext> ctx);

/// Builds the binary agglomerative-clustering organization over tag topic
/// vectors; the hierarchy's internal nodes become interior states carrying
/// merged tag sets, dendrogram leaves are tag states, and attribute leaves
/// hang below their tag states.
Organization BuildClusteringOrganization(
    std::shared_ptr<const OrgContext> ctx);

/// Stitches independently optimized shard organizations — each built over
/// a sub-context covering a disjoint subset of `full_ctx`'s tags — into
/// one organization over `full_ctx`: a root over all tags whose children
/// are the shard roots (re-added as interior states), with every shard
/// state remapped into the full id space. Transition renormalization needs
/// no special handling: the stitched root's transition row is the standard
/// softmax over its children (Equation 1), so navigation and evaluation
/// treat the result as one ordinary organization.
///
/// Shard child order is preserved (transition rows are order-dependent)
/// and shards contribute root children in input order. Attributes whose
/// tags span several shards keep one leaf (the first shard's) with edges
/// from every shard's parents. Topics are rebuilt canonically with
/// RecomputeAllTopics, so the result is bit-deterministic in the inputs.
///
/// Fails when a shard references a tag or attribute absent from
/// `full_ctx`, when two shards claim the same tag, or when an edge
/// violates the inclusion property after remapping.
Result<Organization> StitchShardOrganizations(
    std::shared_ptr<const OrgContext> full_ctx,
    std::span<const Organization> shards);

}  // namespace lakeorg
