// Organization builders.
//
// BuildFlatOrganization: the tag baseline of section 3.2 — a single root
// over all tag states, each tag state over its attributes' leaves. This is
// the navigation structure open data portals expose (retrieval by tag).
//
// BuildClusteringOrganization: the initial organization of sections 3.3 and
// 4.3.1 — an average-linkage agglomerative hierarchy over tag topic
// vectors with branching factor 2, tag states at the dendrogram leaves and
// attribute leaves below them.
#pragma once

#include <memory>

#include "core/organization.h"

namespace lakeorg {

/// Builds the flat (tag baseline) organization: root -> tag states ->
/// leaves. Attributes with several tags get several tag-state parents.
Organization BuildFlatOrganization(std::shared_ptr<const OrgContext> ctx);

/// Builds the binary agglomerative-clustering organization over tag topic
/// vectors; the hierarchy's internal nodes become interior states carrying
/// merged tag sets, dendrogram leaves are tag states, and attribute leaves
/// hang below their tag states.
Organization BuildClusteringOrganization(
    std::shared_ptr<const OrgContext> ctx);

}  // namespace lakeorg
