// Attribute-representative selection (section 3.4): partition the
// dimension's attributes and evaluate organizations on one medoid per
// partition instead of on every attribute. The paper uses a representative
// set sized at 10% of the attributes.
#pragma once

#include <memory>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/org_context.h"

namespace lakeorg {

/// Options for representative selection.
struct RepresentativeOptions {
  /// |representatives| = max(1, fraction * num_attrs).
  double fraction = 0.1;
  /// Voronoi-improvement iterations over the initial random medoids.
  size_t refine_iterations = 3;
  /// Hard cap on the representative count; 0 = uncapped. A fixed fraction
  /// keeps per-proposal cost growing with the lake — capping bounds it,
  /// which is what makes heavily skewed shards tractable at 100x Socrata
  /// scale (each medoid simply stands for more attributes). No effect
  /// when fraction * num_attrs is already below the cap.
  size_t max_queries = 0;
};

/// Partitions the context's attributes around medoid representatives by
/// cosine distance of topic vectors. Deterministic given `rng`'s state.
RepresentativeSet SelectRepresentatives(const OrgContext& ctx,
                                        const RepresentativeOptions& options,
                                        Rng* rng);

}  // namespace lakeorg
