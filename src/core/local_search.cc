#include "core/local_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace lakeorg {
namespace {

/// Telemetry handles for the optimizer loop (docs/OBSERVABILITY.md lists
/// the names). Resolved once; every update is a relaxed atomic op gated
/// on the global enable flag.
struct SearchMetrics {
  obs::Counter& proposals = obs::GetCounter("search.proposals_total");
  obs::Counter& accepted = obs::GetCounter("search.accepted_total");
  obs::Counter& rejected = obs::GetCounter("search.rejected_total");
  obs::Counter& add_proposed =
      obs::GetCounter("search.add_parent_proposed_total");
  obs::Counter& add_accepted =
      obs::GetCounter("search.add_parent_accepted_total");
  obs::Counter& delete_proposed =
      obs::GetCounter("search.delete_parent_proposed_total");
  obs::Counter& delete_accepted =
      obs::GetCounter("search.delete_parent_accepted_total");
  obs::Counter& sweeps = obs::GetCounter("search.sweeps_total");
  obs::Counter& restarts = obs::GetCounter("search.restarts_total");
  obs::Counter& uphill_accepted =
      obs::GetCounter("search.metropolis_uphill_accepted_total");
  obs::Gauge& effectiveness = obs::GetGauge("search.effectiveness");
  obs::Gauge& best_effectiveness = obs::GetGauge("search.best_effectiveness");
  obs::Gauge& sharpness = obs::GetGauge("search.acceptance_sharpness");
  obs::Histogram& affected_state_frac = obs::GetHistogram(
      "search.affected_state_frac", obs::FractionBuckets());
  obs::Histogram& affected_query_frac = obs::GetHistogram(
      "search.affected_query_frac", obs::FractionBuckets());
  obs::Histogram& undo_depth = obs::GetHistogram(
      "search.undo_depth", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  obs::Histogram& iteration_us = obs::GetHistogram("search.iteration_us");

  static SearchMetrics& Get() {
    static SearchMetrics metrics;
    return metrics;
  }
};

/// Level-ordered target queue: all alive non-root states, levels ascending
/// (downward traversal), states within a level ordered by ascending
/// reachability (the least reachable are attended to first). A non-null
/// `allowed` mask (indexed by StateId) restricts the queue to a subset —
/// the localized re-optimization path.
std::vector<StateId> BuildTargetQueue(const Organization& org,
                                      const IncrementalEvaluator& eval,
                                      const std::vector<char>* allowed) {
  std::vector<StateId> queue;
  int max_level = org.MaxLevel();
  // One StateReachability call per state (it averages over the whole
  // query set — far too expensive to recompute inside the comparator).
  std::vector<std::pair<double, StateId>> keyed;
  for (int level = 1; level <= max_level; ++level) {
    std::vector<StateId> states = org.StatesAtLevel(level);
    keyed.clear();
    keyed.reserve(states.size());
    for (StateId s : states) {
      if (allowed != nullptr && (s >= allowed->size() || !(*allowed)[s])) {
        continue;
      }
      keyed.emplace_back(eval.StateReachability(s), s);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const std::pair<double, StateId>& a,
                        const std::pair<double, StateId>& b) {
                       return a.first < b.first;
                     });
    for (const auto& [reach, s] : keyed) queue.push_back(s);
  }
  return queue;
}

}  // namespace

Status ValidateLocalSearchOptions(const LocalSearchOptions& options) {
  if (!(options.acceptance_sharpness > 0.0) ||
      !std::isfinite(options.acceptance_sharpness)) {
    return Status::InvalidArgument(
        "acceptance_sharpness must be positive and finite (k <= 0 makes "
        "pow(ratio, k) accept every worsening move — a pure random walk)");
  }
  if (options.max_proposals == 0) {
    return Status::InvalidArgument("max_proposals must be >= 1");
  }
  if (options.patience == 0) {
    return Status::InvalidArgument("patience must be >= 1");
  }
  if (!(options.min_relative_improvement >= 0.0) ||
      !std::isfinite(options.min_relative_improvement)) {
    return Status::InvalidArgument(
        "min_relative_improvement must be finite and >= 0");
  }
  if (!(options.restart_margin >= 0.0) ||
      !std::isfinite(options.restart_margin)) {
    return Status::InvalidArgument("restart_margin must be finite and >= 0");
  }
  if (!(options.add_parent_prob >= 0.0 && options.add_parent_prob <= 1.0)) {
    return Status::InvalidArgument("add_parent_prob must be in [0, 1]");
  }
  if (!options.enable_add_parent && !options.enable_delete_parent) {
    return Status::InvalidArgument(
        "at least one of enable_add_parent / enable_delete_parent must be "
        "set");
  }
  return Status::OK();
}

Result<LocalSearchResult> OptimizeOrganization(
    Organization initial, const LocalSearchOptions& options) {
  LAKEORG_RETURN_NOT_OK(ValidateLocalSearchOptions(options));
  // The restriction mask, when present, must name alive states of the
  // initial organization.
  std::vector<char> allowed_mask;
  const std::vector<char>* allowed = nullptr;
  if (!options.restrict_targets.empty()) {
    allowed_mask.assign(initial.num_states(), 0);
    for (StateId s : options.restrict_targets) {
      if (s >= initial.num_states() || !initial.state(s).alive) {
        return Status::InvalidArgument(
            "restrict_targets names dead or out-of-range state " +
            std::to_string(s));
      }
      allowed_mask[s] = 1;
    }
    allowed = &allowed_mask;
  }

  WallTimer timer;
  Rng rng(options.seed);

  std::shared_ptr<const OrgContext> ctx = initial.ctx_ptr();
  RepresentativeSet reps;
  if (options.use_representatives) {
    reps = SelectRepresentatives(*ctx, options.representatives, &rng);
  } else {
    reps = IdentityRepresentatives(*ctx);
  }
  IncrementalEvaluator evaluator(options.transition, ctx, std::move(reps),
                                 options.num_threads);
  LAKEORG_RETURN_NOT_OK(evaluator.SetTableWeights(options.table_weights));

  Organization current = std::move(initial);
  current.RecomputeLevels();
  evaluator.Initialize(current);

  LocalSearchResult result{current.Clone(), 0.0, 0.0, 0, 0, 0.0, 0, {}};
  result.effectiveness = evaluator.effectiveness();
  result.initial_effectiveness = evaluator.effectiveness();
  result.num_queries = evaluator.num_queries();

  SearchMetrics& sm = SearchMetrics::Get();
  sm.sharpness.Set(options.acceptance_sharpness);
  sm.effectiveness.Set(evaluator.effectiveness());
  sm.best_effectiveness.Set(evaluator.effectiveness());

  double best_eff = evaluator.effectiveness();
  size_t plateau = 0;
  std::vector<StateId> queue;
  size_t queue_pos = 0;
  // Guards against organizations where no operation is ever applicable
  // (e.g. a single-tag dimension): a full sweep without one evaluated
  // proposal terminates the search.
  size_t proposals_this_sweep = 0;

  ReachabilityFn reach_fn = [&evaluator](StateId s) {
    return evaluator.StateReachability(s);
  };

  // Proposals mutate `current` in place and roll back on reject; the
  // undo log replaces the per-proposal full Clone of the seed design.
  // The op result and evaluation buffers live outside the loop so the
  // steady-state iteration reuses their capacity and allocates nothing.
  OpUndo undo;
  OpResult op;
  ProposalEvaluation eval;

  while (result.proposals < options.max_proposals &&
         plateau < options.patience) {
    if (queue_pos >= queue.size()) {
      if (!queue.empty() && proposals_this_sweep == 0) break;
      proposals_this_sweep = 0;
      // Restart the walk from the best organization when the Metropolis
      // walk has drifted too far below it.
      if (options.restart_margin > 0.0 &&
          evaluator.effectiveness() <
              best_eff * (1.0 - options.restart_margin)) {
        current.CopyFrom(result.org);
        current.RecomputeLevels();
        evaluator.Initialize(current);
        sm.restarts.Add();
      }
      sm.sweeps.Add();
      queue = BuildTargetQueue(current, evaluator, allowed);
      queue_pos = 0;
      if (queue.empty()) break;
    }
    StateId target = queue[queue_pos++];
    if (!current.alive(target) || current.level(target) < 0) {
      continue;  // Removed or detached since the queue was built.
    }

    // Choose the operation. Leaves only support ADD_PARENT.
    bool is_leaf = current.kind(target) == StateKind::kLeaf;
    bool can_add = options.enable_add_parent;
    bool can_delete = options.enable_delete_parent && !is_leaf;
    // No operation applies to this target (e.g. a leaf in delete-only
    // mode): skip it; the empty-sweep guard terminates if nothing ever
    // applies.
    if (!can_add && !can_delete) continue;
    bool do_add;
    if (can_add && can_delete) {
      do_add = rng.Bernoulli(options.add_parent_prob);
    } else {
      do_add = can_add;
    }

    obs::ScopedTimer iteration_span(&sm.iteration_us);
    if (do_add) {
      ApplyAddParent(&current, target, reach_fn, &undo, &op);
    } else {
      ApplyDeleteParent(&current, target, reach_fn, &undo, &op);
    }
    if (!op.applied) continue;

    evaluator.EvaluateProposal(current, op.topic_changed,
                               op.children_changed, op.removed, &eval);
    ++result.proposals;
    ++proposals_this_sweep;

    double old_eff = evaluator.effectiveness();
    double new_eff = eval.effectiveness;
    bool accept;
    bool uphill = false;
    if (new_eff >= old_eff) {
      accept = true;
    } else {
      // Equation 9 with tempering: accept a worsening move with
      // probability (P(T|O') / P(T|O))^k (k = acceptance_sharpness;
      // k = 1 is the paper's literal ratio).
      double ratio = old_eff > 0.0 ? new_eff / old_eff : 1.0;
      accept = rng.Bernoulli(
          std::pow(ratio, options.acceptance_sharpness));
      uphill = accept;
    }

    if (obs::MetricsEnabled()) {
      sm.proposals.Add();
      (do_add ? sm.add_proposed : sm.delete_proposed).Add();
      if (accept) {
        sm.accepted.Add();
        (do_add ? sm.add_accepted : sm.delete_accepted).Add();
        if (uphill) sm.uphill_accepted.Add();
      } else {
        sm.rejected.Add();
      }
      // Alive count of the pre-operation organization (the op already
      // removed op.removed states from `current`).
      size_t alive_states = current.NumAliveStates() + op.removed.size();
      if (alive_states > 0) {
        sm.affected_state_frac.Observe(
            static_cast<double>(eval.dirty.size()) /
            static_cast<double>(alive_states));
      }
      if (evaluator.num_queries() > 0) {
        sm.affected_query_frac.Observe(
            static_cast<double>(eval.affected_queries.size()) /
            static_cast<double>(evaluator.num_queries()));
      }
      sm.undo_depth.Observe(static_cast<double>(undo.states.size()));
      sm.effectiveness.Set(accept ? new_eff : old_eff);
    }

    if (options.record_history) {
      IterationRecord rec;
      rec.proposal_index = result.proposals;
      rec.op = do_add ? 'A' : 'D';
      rec.accepted = accept;
      // Alive count of the pre-operation organization (the op already
      // removed op.removed states from `current`).
      size_t alive = current.NumAliveStates() + op.removed.size();
      rec.frac_states_evaluated =
          alive == 0 ? 0.0
                     : static_cast<double>(eval.dirty.size()) /
                           static_cast<double>(alive);
      rec.frac_attrs_evaluated =
          ctx->num_attrs() == 0
              ? 0.0
              : static_cast<double>(eval.affected_attrs) /
                    static_cast<double>(ctx->num_attrs());
      rec.frac_queries_evaluated =
          evaluator.num_queries() == 0
              ? 0.0
              : static_cast<double>(eval.affected_queries.size()) /
                    static_cast<double>(evaluator.num_queries());
      rec.effectiveness = accept ? new_eff : old_eff;
      result.history.push_back(rec);
    }

    if (accept) {
      evaluator.Commit(current, eval);
      ++result.accepted;
      if (new_eff >
          best_eff * (1.0 + options.min_relative_improvement)) {
        best_eff = new_eff;
        result.org.CopyFrom(current);
        result.effectiveness = new_eff;
        sm.best_effectiveness.Set(new_eff);
        plateau = 0;
      } else {
        ++plateau;
      }
    } else {
      current.Undo(undo);
      ++plateau;
    }
  }

  result.seconds = timer.ElapsedSeconds();
  LAKEORG_LOG(kDebug) << "local search: " << result.proposals
                      << " proposals, " << result.accepted << " accepted, "
                      << "effectiveness " << result.initial_effectiveness
                      << " -> " << result.effectiveness << " in "
                      << result.seconds << " s";
  return result;
}

}  // namespace lakeorg
