#include "core/local_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"

namespace lakeorg {
namespace {

/// Level-ordered target queue: all alive non-root states, levels ascending
/// (downward traversal), states within a level ordered by ascending
/// reachability (the least reachable are attended to first).
std::vector<StateId> BuildTargetQueue(const Organization& org,
                                      const IncrementalEvaluator& eval) {
  std::vector<StateId> queue;
  int max_level = org.MaxLevel();
  // One StateReachability call per state (it averages over the whole
  // query set — far too expensive to recompute inside the comparator).
  std::vector<std::pair<double, StateId>> keyed;
  for (int level = 1; level <= max_level; ++level) {
    std::vector<StateId> states = org.StatesAtLevel(level);
    keyed.clear();
    keyed.reserve(states.size());
    for (StateId s : states) {
      keyed.emplace_back(eval.StateReachability(s), s);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const std::pair<double, StateId>& a,
                        const std::pair<double, StateId>& b) {
                       return a.first < b.first;
                     });
    for (const auto& [reach, s] : keyed) queue.push_back(s);
  }
  return queue;
}

}  // namespace

LocalSearchResult OptimizeOrganization(Organization initial,
                                       const LocalSearchOptions& options) {
  WallTimer timer;
  Rng rng(options.seed);

  std::shared_ptr<const OrgContext> ctx = initial.ctx_ptr();
  RepresentativeSet reps;
  if (options.use_representatives) {
    reps = SelectRepresentatives(*ctx, options.representatives, &rng);
  } else {
    reps = IdentityRepresentatives(*ctx);
  }
  IncrementalEvaluator evaluator(options.transition, ctx, std::move(reps),
                                 options.num_threads);

  Organization current = std::move(initial);
  current.RecomputeLevels();
  evaluator.Initialize(current);

  LocalSearchResult result{current.Clone(), 0.0, 0.0, 0, 0, 0.0, 0, {}};
  result.effectiveness = evaluator.effectiveness();
  result.initial_effectiveness = evaluator.effectiveness();
  result.num_queries = evaluator.num_queries();

  double best_eff = evaluator.effectiveness();
  size_t plateau = 0;
  std::vector<StateId> queue;
  size_t queue_pos = 0;
  // Guards against organizations where no operation is ever applicable
  // (e.g. a single-tag dimension): a full sweep without one evaluated
  // proposal terminates the search.
  size_t proposals_this_sweep = 0;

  ReachabilityFn reach_fn = [&evaluator](StateId s) {
    return evaluator.StateReachability(s);
  };

  // Proposals mutate `current` in place and roll back on reject; the
  // undo log replaces the per-proposal full Clone of the seed design.
  OpUndo undo;

  while (result.proposals < options.max_proposals &&
         plateau < options.patience) {
    if (queue_pos >= queue.size()) {
      if (!queue.empty() && proposals_this_sweep == 0) break;
      proposals_this_sweep = 0;
      // Restart the walk from the best organization when the Metropolis
      // walk has drifted too far below it.
      if (options.restart_margin > 0.0 &&
          evaluator.effectiveness() <
              best_eff * (1.0 - options.restart_margin)) {
        current = result.org.Clone();
        current.RecomputeLevels();
        evaluator.Initialize(current);
      }
      queue = BuildTargetQueue(current, evaluator);
      queue_pos = 0;
      if (queue.empty()) break;
    }
    StateId target = queue[queue_pos++];
    if (!current.state(target).alive || current.state(target).level < 0) {
      continue;  // Removed or detached since the queue was built.
    }

    // Choose the operation. Leaves only support ADD_PARENT.
    bool is_leaf = current.state(target).kind == StateKind::kLeaf;
    bool can_add = options.enable_add_parent;
    bool can_delete = options.enable_delete_parent && !is_leaf;
    // No operation applies to this target (e.g. a leaf in delete-only
    // mode): skip it; the empty-sweep guard terminates if nothing ever
    // applies.
    if (!can_add && !can_delete) continue;
    bool do_add;
    if (can_add && can_delete) {
      do_add = rng.Bernoulli(options.add_parent_prob);
    } else {
      do_add = can_add;
    }

    OpResult op = do_add
                      ? ApplyAddParent(&current, target, reach_fn, &undo)
                      : ApplyDeleteParent(&current, target, reach_fn, &undo);
    if (!op.applied) continue;

    ProposalEvaluation eval;
    evaluator.EvaluateProposal(current, op.topic_changed,
                               op.children_changed, op.removed, &eval);
    ++result.proposals;
    ++proposals_this_sweep;

    double old_eff = evaluator.effectiveness();
    double new_eff = eval.effectiveness;
    bool accept;
    if (new_eff >= old_eff) {
      accept = true;
    } else {
      // Equation 9 with tempering: accept a worsening move with
      // probability (P(T|O') / P(T|O))^k (k = acceptance_sharpness;
      // k = 1 is the paper's literal ratio).
      double ratio = old_eff > 0.0 ? new_eff / old_eff : 1.0;
      accept = rng.Bernoulli(
          std::pow(ratio, options.acceptance_sharpness));
    }

    if (options.record_history) {
      IterationRecord rec;
      rec.proposal_index = result.proposals;
      rec.op = do_add ? 'A' : 'D';
      rec.accepted = accept;
      // Alive count of the pre-operation organization (the op already
      // removed op.removed states from `current`).
      size_t alive = current.NumAliveStates() + op.removed.size();
      rec.frac_states_evaluated =
          alive == 0 ? 0.0
                     : static_cast<double>(eval.dirty.size()) /
                           static_cast<double>(alive);
      rec.frac_attrs_evaluated =
          ctx->num_attrs() == 0
              ? 0.0
              : static_cast<double>(eval.affected_attrs) /
                    static_cast<double>(ctx->num_attrs());
      rec.frac_queries_evaluated =
          evaluator.num_queries() == 0
              ? 0.0
              : static_cast<double>(eval.affected_queries.size()) /
                    static_cast<double>(evaluator.num_queries());
      rec.effectiveness = accept ? new_eff : old_eff;
      result.history.push_back(rec);
    }

    if (accept) {
      evaluator.Commit(current, std::move(eval));
      ++result.accepted;
      if (new_eff >
          best_eff * (1.0 + options.min_relative_improvement)) {
        best_eff = new_eff;
        result.org = current.Clone();
        result.effectiveness = new_eff;
        plateau = 0;
      } else {
        ++plateau;
      }
    } else {
      current.Undo(undo);
      ++plateau;
    }
  }

  result.seconds = timer.ElapsedSeconds();
  LAKEORG_LOG(kDebug) << "local search: " << result.proposals
                      << " proposals, " << result.accepted << " accepted, "
                      << "effectiveness " << result.initial_effectiveness
                      << " -> " << result.effectiveness << " in "
                      << result.seconds << " s";
  return result;
}

}  // namespace lakeorg
