#include "core/organization.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace lakeorg {
namespace {

bool Contains(IdSpan xs, StateId x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

/// Dispatches to the allocation-free bit iterator of either set type.
template <typename Fn>
void ForEachIn(const AttrSet& s, Fn&& fn) {
  s.ForEach(fn);
}
template <typename Fn>
void ForEachIn(const DynamicBitset& s, Fn&& fn) {
  s.ForEachBit(fn);
}

/// Compaction trigger: at least this much garbage, and more garbage than
/// live arena content (amortizes the O(arena) rewrite).
constexpr size_t kCompactMinGarbage = 1024;

}  // namespace

Organization::Organization(std::shared_ptr<const OrgContext> ctx)
    : ctx_(std::move(ctx)) {
  assert(ctx_ != nullptr);
  leaf_of_attr_.assign(ctx_->num_attrs(), kInvalidId);
  dim_ = ctx_->dim();
  stride_ = (dim_ + 7) & ~size_t{7};
}

Organization Organization::Clone() const {
  assert(undo_ == nullptr && "cannot clone with an active undo log");
  Organization copy = *this;
  copy.undo_ = nullptr;
  return copy;
}

void Organization::CopyFrom(const Organization& other) {
  assert(undo_ == nullptr && other.undo_ == nullptr &&
         "cannot copy with an active undo log");
  if (this == &other) return;
  *this = other;
  undo_ = nullptr;
}

void Organization::Reserve(size_t states, size_t edges) {
  kind_.reserve(states);
  alive_.reserve(states);
  level_.reserve(states);
  attr_.reserve(states);
  value_count_.reserve(states);
  topic_norm_.reserve(states);
  attrs_.reserve(states);
  parents_r_.reserve(states);
  children_r_.reserve(states);
  tags_r_.reserve(states);
  slot_version_.reserve(states);
  in_free_list_.reserve(states);
  topic_.reserve(states * stride_);
  topic_sum_.reserve(states * stride_);
  // Every edge occupies one slot in its parent's child range and one in
  // its child's parent range; leave headroom for per-range slack.
  edge_slots_.reserve(edges * 3);
  tag_slots_.reserve(states * 2);
}

void Organization::BeginUndoLog(OpUndo* undo) {
  assert(undo != nullptr);
  assert(undo_ == nullptr && "an undo log is already active");
  MaybeCompact();
  undo->Clear();
  undo_ = undo;
}

void Organization::EndUndoLog() { undo_ = nullptr; }

size_t Organization::JournalTouch(StateId s) {
  if (undo_ == nullptr) return kNoJournal;
  // First-touch only: the touched set is small, so a linear scan beats a
  // per-proposal O(num_states) seen-marker allocation.
  for (size_t i = 0; i < undo_->states.size(); ++i) {
    if (undo_->states[i].id == s) return i;
  }
  OpUndo::Entry e;
  e.id = s;
  e.kind = kind_[s];
  e.alive = alive_[s] != 0;
  e.level = level_[s];
  e.value_count = value_count_[s];
  e.topic_norm = topic_norm_[s];
  const Range& pr = parents_r_[s];
  e.parents_begin = static_cast<uint32_t>(undo_->ids.size());
  e.parents_size = pr.size;
  undo_->ids.insert(undo_->ids.end(), edge_slots_.begin() + pr.begin,
                    edge_slots_.begin() + pr.begin + pr.size);
  const Range& cr = children_r_[s];
  e.children_begin = static_cast<uint32_t>(undo_->ids.size());
  e.children_size = cr.size;
  undo_->ids.insert(undo_->ids.end(), edge_slots_.begin() + cr.begin,
                    edge_slots_.begin() + cr.begin + cr.size);
  const Range& tr = tags_r_[s];
  e.tags_begin = static_cast<uint32_t>(undo_->tags.size());
  e.tags_size = tr.size;
  undo_->tags.insert(undo_->tags.end(), tag_slots_.begin() + tr.begin,
                     tag_slots_.begin() + tr.begin + tr.size);
  e.floats_begin = static_cast<uint32_t>(undo_->floats.size());
  const float* sum = topic_sum_.data() + static_cast<size_t>(s) * stride_;
  const float* top = topic_.data() + static_cast<size_t>(s) * stride_;
  undo_->floats.insert(undo_->floats.end(), sum, sum + dim_);
  undo_->floats.insert(undo_->floats.end(), top, top + dim_);
  e.attrs_inline = attrs_[s].inline_rep();
  if (e.attrs_inline) e.attrs_snapshot = attrs_[s].SnapshotInline();
  undo_->states.push_back(e);
  return undo_->states.size() - 1;
}

void Organization::RestoreRange(Range* r, std::vector<uint32_t>* slots,
                                size_t* garbage, const uint32_t* data,
                                uint32_t n) {
  if (n > r->cap) {
    // The range was compacted below its pre-operation capacity between the
    // journal and this rollback: give it a fresh tail block.
    uint32_t new_cap = std::max<uint32_t>(4, n);
    *garbage += r->cap;
    r->begin = static_cast<uint32_t>(slots->size());
    r->cap = new_cap;
    slots->resize(slots->size() + new_cap, 0);
  }
  std::copy_n(data, n, slots->data() + r->begin);
  r->size = n;
}

void Organization::Undo(const OpUndo& undo) {
  assert(undo_ == nullptr && "end the undo log before rolling back");
  // Originally-spilled attribute sets restore by clearing the bits the
  // operation added (operations only ever add bits; a spilled set never
  // un-spills, so this is an exact restore with no representation flip).
  for (const auto& [s, bit] : undo.attr_bits_added) {
    attrs_[s].Clear(bit);
  }
  for (auto it = undo.states.rbegin(); it != undo.states.rend(); ++it) {
    const OpUndo::Entry& e = *it;
    StateId s = e.id;
    kind_[s] = e.kind;
    alive_[s] = e.alive ? 1 : 0;
    level_[s] = e.level;
    value_count_[s] = e.value_count;
    topic_norm_[s] = e.topic_norm;
    RestoreRange(&parents_r_[s], &edge_slots_, &edge_garbage_,
                 undo.ids.data() + e.parents_begin, e.parents_size);
    RestoreRange(&children_r_[s], &edge_slots_, &edge_garbage_,
                 undo.ids.data() + e.children_begin, e.children_size);
    RestoreRange(&tags_r_[s], &tag_slots_, &tag_garbage_,
                 undo.tags.data() + e.tags_begin, e.tags_size);
    const float* f = undo.floats.data() + e.floats_begin;
    std::copy_n(f, dim_, topic_sum_.data() + static_cast<size_t>(s) * stride_);
    std::copy_n(f + dim_, dim_,
                topic_.data() + static_cast<size_t>(s) * stride_);
    if (e.attrs_inline) attrs_[s].RestoreInline(e.attrs_snapshot);
  }
  if (undo.levels_changed) RecomputeLevels();
}

StateId Organization::NewState(StateKind kind) {
  assert(undo_ == nullptr && "cannot create states under an undo log");
  StateId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    in_free_list_[id] = 0;
    ++slot_version_[id];
    // The recycled slot keeps its arena blocks (begin/cap) so the new
    // state reuses the slack in place; only the live sizes reset.
    parents_r_[id].size = 0;
    children_r_[id].size = 0;
    tags_r_[id].size = 0;
    std::fill_n(topic_.begin() + static_cast<size_t>(id) * stride_, stride_,
                0.0f);
    std::fill_n(topic_sum_.begin() + static_cast<size_t>(id) * stride_,
                stride_, 0.0f);
  } else {
    id = static_cast<StateId>(kind_.size());
    kind_.push_back(StateKind::kInterior);
    alive_.push_back(1);
    level_.push_back(-1);
    attr_.push_back(kInvalidId);
    value_count_.push_back(0);
    topic_norm_.push_back(0.0);
    attrs_.emplace_back(ctx_->num_attrs());
    parents_r_.emplace_back();
    children_r_.emplace_back();
    tags_r_.emplace_back();
    slot_version_.push_back(0);
    in_free_list_.push_back(0);
    topic_.resize(topic_.size() + stride_, 0.0f);
    topic_sum_.resize(topic_sum_.size() + stride_, 0.0f);
  }
  kind_[id] = kind;
  alive_[id] = 1;
  level_[id] = -1;
  attr_[id] = kInvalidId;
  value_count_[id] = 0;
  topic_norm_[id] = 0.0;
  attrs_[id].Reset(ctx_->num_attrs());
  return id;
}

void Organization::AppendSlot(Range* r, std::vector<uint32_t>* slots,
                              size_t* garbage, uint32_t v) {
  if (r->size == r->cap) {
    uint32_t new_cap = r->cap == 0 ? 4 : r->cap * 2;
    uint32_t new_begin = static_cast<uint32_t>(slots->size());
    slots->resize(slots->size() + new_cap, 0);
    std::copy_n(slots->data() + r->begin, r->size, slots->data() + new_begin);
    *garbage += r->cap;
    r->begin = new_begin;
    r->cap = new_cap;
  }
  (*slots)[r->begin + r->size] = v;
  ++r->size;
}

void Organization::InsertTagSorted(StateId s, uint32_t t) {
  Range& r = tags_r_[s];
  const uint32_t* begin = tag_slots_.data() + r.begin;
  const uint32_t* end = begin + r.size;
  const uint32_t* it = std::lower_bound(begin, end, t);
  if (it != end && *it == t) return;
  size_t pos = static_cast<size_t>(it - begin);
  AppendSlot(&r, &tag_slots_, &tag_garbage_, t);  // may relocate the range
  uint32_t* b = tag_slots_.data() + r.begin;
  std::rotate(b + pos, b + r.size - 1, b + r.size);
}

void Organization::RefreshTopic(StateId s) {
  const float* sum = topic_sum_.data() + static_cast<size_t>(s) * stride_;
  float* top = topic_.data() + static_cast<size_t>(s) * stride_;
  std::copy_n(sum, dim_, top);
  if (value_count_[s] > 0) {
    ScaleInPlace(
        std::span<float>(top, dim_),
        static_cast<float>(1.0 / static_cast<double>(value_count_[s])));
  }
  topic_norm_[s] = Norm(std::span<const float>(top, dim_));
}

StateId Organization::AddLeaf(uint32_t attr) {
  assert(attr < ctx_->num_attrs());
  assert(leaf_of_attr_[attr] == kInvalidId && "duplicate leaf");
  StateId id = NewState(StateKind::kLeaf);
  attr_[id] = attr;
  const Vec& sum = ctx_->attr_sum(attr);
  const Vec& vec = ctx_->attr_vector(attr);
  std::copy(sum.begin(), sum.end(),
            topic_sum_.begin() + static_cast<size_t>(id) * stride_);
  std::copy(vec.begin(), vec.end(),
            topic_.begin() + static_cast<size_t>(id) * stride_);
  value_count_[id] = ctx_->attr_value_count(attr);
  topic_norm_[id] = Norm(topic(id));
  leaf_of_attr_[attr] = id;
  return id;
}

StateId Organization::AddTagState(uint32_t tag) {
  assert(tag < ctx_->num_tags());
  StateId id = NewState(StateKind::kTag);
  AppendSlot(&tags_r_[id], &tag_slots_, &tag_garbage_, tag);
  RecomputeStateFromTags(id);
  return id;
}

StateId Organization::AddInteriorState(std::vector<uint32_t> tags) {
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  assert(!tags.empty());
  StateId id = NewState(StateKind::kInterior);
  for (uint32_t t : tags) AppendSlot(&tags_r_[id], &tag_slots_, &tag_garbage_, t);
  RecomputeStateFromTags(id);
  return id;
}

StateId Organization::AddRoot(std::vector<uint32_t> tags) {
  assert(root_ == kInvalidId && "root already set");
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  StateId id = NewState(StateKind::kRoot);
  for (uint32_t t : tags) AppendSlot(&tags_r_[id], &tag_slots_, &tag_garbage_, t);
  root_ = id;
  RecomputeStateFromTags(id);
  level_[id] = 0;
  return id;
}

void Organization::RecomputeStateFromTags(StateId s) {
  assert(kind_[s] != StateKind::kLeaf);
  AttrSet& attrs = attrs_[s];
  attrs.Reset(ctx_->num_attrs());
  for (uint32_t t : tags(s)) attrs.UnionWith(ctx_->tag_extent(t));
  float* sum = topic_sum_.data() + static_cast<size_t>(s) * stride_;
  std::fill_n(sum, stride_, 0.0f);
  value_count_[s] = 0;
  attrs.ForEach([this, s, sum](size_t a) {
    AddInPlace(std::span<float>(sum, dim_), ctx_->attr_sum(a));
    value_count_[s] += ctx_->attr_value_count(a);
  });
  RefreshTopic(s);
}

Status Organization::AddEdge(StateId parent, StateId child) {
  if (parent >= num_states() || child >= num_states()) {
    return Status::NotFound("unknown state id");
  }
  if (!alive_[parent] || !alive_[child]) {
    return Status::FailedPrecondition("edge endpoint is dead");
  }
  if (parent == child) return Status::InvalidArgument("self loop");
  if (kind_[parent] == StateKind::kLeaf) {
    return Status::InvalidArgument("leaf cannot have children");
  }
  if (child == root_) return Status::InvalidArgument("edge into root");
  if (Contains(children(parent), child)) {
    return Status::AlreadyExists("duplicate edge");
  }
  // Inclusion property: D_child must be a subset of D_parent.
  if (kind_[child] == StateKind::kLeaf) {
    if (!attrs_[parent].Test(attr_[child])) {
      return Status::FailedPrecondition(
          "inclusion violated: leaf attribute not in parent");
    }
  } else if (!attrs_[child].IsSubsetOf(attrs_[parent])) {
    return Status::FailedPrecondition(
        "inclusion violated: child attrs not subset of parent");
  }
  JournalTouch(parent);
  JournalTouch(child);
  AppendSlot(&children_r_[parent], &edge_slots_, &edge_garbage_, child);
  AppendSlot(&parents_r_[child], &edge_slots_, &edge_garbage_, parent);
  return Status::OK();
}

// Order-preserving removal of the first occurrence of `v` (child order
// feeds the softmax accumulation order, which bit-identity depends on).
void Organization::EraseFromRange(Range* r, uint32_t v) {
  uint32_t* begin = edge_slots_.data() + r->begin;
  uint32_t* end = begin + r->size;
  uint32_t* it = std::find(begin, end, v);
  if (it == end) return;
  std::move(it + 1, end, it);
  --r->size;
}

Status Organization::RemoveEdge(StateId parent, StateId child) {
  if (parent >= num_states() || child >= num_states()) {
    return Status::NotFound("unknown state id");
  }
  if (!Contains(children(parent), child)) {
    return Status::NotFound("no such edge");
  }
  JournalTouch(parent);
  JournalTouch(child);
  EraseFromRange(&children_r_[parent], child);
  EraseFromRange(&parents_r_[child], parent);
  return Status::OK();
}

Status Organization::RemoveState(StateId s) {
  if (s >= num_states()) return Status::NotFound("unknown state id");
  if (!alive_[s]) return Status::FailedPrecondition("state already dead");
  if (s == root_) return Status::InvalidArgument("cannot remove root");
  if (kind_[s] == StateKind::kLeaf) {
    return Status::InvalidArgument("cannot remove a leaf state");
  }
  JournalTouch(s);
  for (StateId p : parents(s)) JournalTouch(p);
  for (StateId c : children(s)) JournalTouch(c);
  // EraseFromRange never relocates, so the spans stay valid throughout.
  for (StateId p : parents(s)) EraseFromRange(&children_r_[p], s);
  for (StateId c : children(s)) EraseFromRange(&parents_r_[c], s);
  parents_r_[s].size = 0;
  children_r_[s].size = 0;
  alive_[s] = 0;
  return Status::OK();
}

bool Organization::WouldCreateCycle(StateId parent, StateId child) const {
  if (parent == child) return true;
  // DFS from child along child edges looking for parent.
  scratch_visited_.assign(num_states(), 0);
  scratch_stack_.clear();
  scratch_stack_.push_back(child);
  scratch_visited_[child] = 1;
  while (!scratch_stack_.empty()) {
    StateId cur = scratch_stack_.back();
    scratch_stack_.pop_back();
    for (StateId nxt : children(cur)) {
      if (nxt == parent) return true;
      if (!scratch_visited_[nxt]) {
        scratch_visited_[nxt] = 1;
        scratch_stack_.push_back(nxt);
      }
    }
  }
  return false;
}

void Organization::AddExtraAttrs(StateId s,
                                 const std::vector<uint32_t>& attrs) {
  assert(kind_[s] != StateKind::kLeaf);
  size_t entry = JournalTouch(s);
  const bool journal_bits =
      entry != kNoJournal && !undo_->states[entry].attrs_inline;
  AttrSet& set = attrs_[s];
  float* sum = topic_sum_.data() + static_cast<size_t>(s) * stride_;
  bool grew = false;
  for (uint32_t a : attrs) {
    if (a < set.size() && !set.Test(a)) {
      if (journal_bits) undo_->attr_bits_added.emplace_back(s, a);
      set.Set(a);
      AddInPlace(std::span<float>(sum, dim_), ctx_->attr_sum(a));
      value_count_[s] += ctx_->attr_value_count(a);
      grew = true;
    }
  }
  if (grew) RefreshTopic(s);
}

template <typename SetT>
void Organization::AddAttrsToState(StateId s, const SetT& new_attrs,
                                   std::span<const uint32_t> new_tags,
                                   bool* grew) {
  assert(kind_[s] != StateKind::kLeaf);
  // Journal unconditionally: even when no attribute grows, the tag merge
  // below may mutate `tags` (and the kTag -> kInterior promotion).
  size_t entry = JournalTouch(s);
  const bool journal_bits =
      entry != kNoJournal && !undo_->states[entry].attrs_inline;
  *grew = false;
  AttrSet& set = attrs_[s];
  float* sum = topic_sum_.data() + static_cast<size_t>(s) * stride_;
  // Incremental topic update: fold in only attributes not already present.
  ForEachIn(new_attrs, [this, s, &set, sum, grew, journal_bits](size_t a) {
    if (!set.Test(a)) {
      if (journal_bits) {
        undo_->attr_bits_added.emplace_back(s, static_cast<uint32_t>(a));
      }
      set.Set(a);
      AddInPlace(std::span<float>(sum, dim_), ctx_->attr_sum(a));
      value_count_[s] += ctx_->attr_value_count(a);
      *grew = true;
    }
  });
  for (uint32_t t : new_tags) InsertTagSorted(s, t);
  // A penultimate tag state that accumulates further tags is no longer
  // the fixed single-tag level of section 3.2: promote it to interior
  // (it loses DELETE_PARENT protection along with the promotion).
  if (kind_[s] == StateKind::kTag && tags_r_[s].size > 1) {
    kind_[s] = StateKind::kInterior;
  }
  if (*grew) RefreshTopic(s);
}

template <typename SetT>
void Organization::PropagateImpl(StateId s, const SetT& attrs,
                                 std::span<const uint32_t> tags,
                                 std::vector<StateId>* touched) {
  // The tag arena can relocate while ancestors absorb tags, so copy the
  // incoming tag list into stable scratch before any mutation. (`attrs`
  // may alias attrs_[s], which is stable: the attrs_ array never grows
  // during an operation, and s's own set never grows from itself.)
  scratch_tags_.assign(tags.begin(), tags.end());
  // BFS upward from s; stop expanding where nothing grew (ancestors of a
  // state that already contains the attrs contain them too -- except via
  // other paths, so we still visit every parent of a grown state).
  scratch_visited_.assign(num_states(), 0);
  scratch_queue_.clear();
  size_t head = 0;
  scratch_queue_.push_back(s);
  scratch_visited_[s] = 1;
  while (head < scratch_queue_.size()) {
    StateId cur = scratch_queue_[head++];
    bool grew = false;
    AddAttrsToState(cur, attrs,
                    std::span<const uint32_t>(scratch_tags_), &grew);
    if (grew && touched != nullptr) touched->push_back(cur);
    if (grew) {
      for (StateId p : parents(cur)) {
        if (!scratch_visited_[p]) {
          scratch_visited_[p] = 1;
          scratch_queue_.push_back(p);
        }
      }
    }
  }
}

void Organization::PropagateAttrsUpward(StateId s, const AttrSet& attrs,
                                        std::span<const uint32_t> tags,
                                        std::vector<StateId>* touched) {
  PropagateImpl(s, attrs, tags, touched);
}

void Organization::PropagateAttrsUpward(StateId s, const DynamicBitset& attrs,
                                        std::span<const uint32_t> tags,
                                        std::vector<StateId>* touched) {
  PropagateImpl(s, attrs, tags, touched);
}

void Organization::RecomputeLevels() {
  if (undo_ != nullptr) undo_->levels_changed = true;
  std::fill(level_.begin(), level_.end(), -1);
  if (root_ == kInvalidId) return;
  level_[root_] = 0;
  scratch_queue_.clear();
  size_t head = 0;
  scratch_queue_.push_back(root_);
  while (head < scratch_queue_.size()) {
    StateId cur = scratch_queue_[head++];
    int next_level = level_[cur] + 1;
    for (StateId c : children(cur)) {
      if (level_[c] == -1) {
        level_[c] = next_level;
        scratch_queue_.push_back(c);
      }
    }
  }
}

void Organization::MaybeCompact() {
  size_t garbage = edge_garbage_ + tag_garbage_;
  if (garbage > kCompactMinGarbage &&
      garbage > (edge_slots_.size() + tag_slots_.size()) / 2) {
    CompactStorage();
  }
}

void Organization::CompactStorage() {
  assert(undo_ == nullptr && "cannot compact under an active undo log");
  auto compact = [this](std::vector<uint32_t>* slots,
                        std::initializer_list<std::vector<Range>*> range_sets,
                        size_t* garbage) {
    compact_scratch_.clear();
    for (std::vector<Range>* ranges : range_sets) {
      for (Range& r : *ranges) {
        uint32_t new_begin = static_cast<uint32_t>(compact_scratch_.size());
        compact_scratch_.insert(compact_scratch_.end(),
                                slots->begin() + r.begin,
                                slots->begin() + r.begin + r.size);
        r.begin = new_begin;
        r.cap = r.size;
      }
    }
    slots->swap(compact_scratch_);
    *garbage = 0;
  };
  compact(&edge_slots_, {&parents_r_, &children_r_}, &edge_garbage_);
  compact(&tag_slots_, {&tags_r_}, &tag_garbage_);
}

size_t Organization::RecycleDeadStates() {
  assert(undo_ == nullptr &&
         "cannot recycle while an operation may still be undone");
  size_t recycled = 0;
  for (StateId s = 0; s < num_states(); ++s) {
    if (alive_[s] || in_free_list_[s]) continue;
    assert(parents_r_[s].size == 0 && children_r_[s].size == 0 &&
           "dead state still has edges");
    free_list_.push_back(s);
    in_free_list_[s] = 1;
    ++recycled;
  }
  return recycled;
}

size_t Organization::NumAliveStates() const {
  size_t n = 0;
  for (uint8_t a : alive_) {
    if (a) ++n;
  }
  return n;
}

std::vector<StateId> Organization::TopologicalOrder() const {
  // Kahn's algorithm restricted to states reachable from the root. This
  // variant allocates locally so concurrent readers (the batch evaluator's
  // worker threads) can call it safely.
  std::vector<StateId> order;
  if (root_ == kInvalidId) return order;
  std::vector<char> reachable(num_states(), 0);
  std::vector<StateId> stack = {root_};
  reachable[root_] = 1;
  while (!stack.empty()) {
    StateId cur = stack.back();
    stack.pop_back();
    for (StateId c : children(cur)) {
      if (!reachable[c]) {
        reachable[c] = 1;
        stack.push_back(c);
      }
    }
  }
  std::vector<uint32_t> pending(num_states(), 0);
  for (StateId s = 0; s < num_states(); ++s) {
    if (!reachable[s]) continue;
    uint32_t in_degree = 0;
    for (StateId p : parents(s)) {
      if (reachable[p]) ++in_degree;
    }
    pending[s] = in_degree;
  }
  std::vector<StateId> queue = {root_};
  size_t head = 0;
  while (head < queue.size()) {
    StateId cur = queue[head++];
    order.push_back(cur);
    for (StateId c : children(cur)) {
      if (--pending[c] == 0) queue.push_back(c);
    }
  }
  return order;
}

void Organization::TopologicalOrderInto(std::vector<StateId>* out) const {
  out->clear();
  if (root_ == kInvalidId) return;
  scratch_visited_.assign(num_states(), 0);
  scratch_stack_.clear();
  scratch_stack_.push_back(root_);
  scratch_visited_[root_] = 1;
  while (!scratch_stack_.empty()) {
    StateId cur = scratch_stack_.back();
    scratch_stack_.pop_back();
    for (StateId c : children(cur)) {
      if (!scratch_visited_[c]) {
        scratch_visited_[c] = 1;
        scratch_stack_.push_back(c);
      }
    }
  }
  scratch_pending_.assign(num_states(), 0);
  for (StateId s = 0; s < num_states(); ++s) {
    if (!scratch_visited_[s]) continue;
    uint32_t in_degree = 0;
    for (StateId p : parents(s)) {
      if (scratch_visited_[p]) ++in_degree;
    }
    scratch_pending_[s] = in_degree;
  }
  scratch_queue_.clear();
  size_t head = 0;
  scratch_queue_.push_back(root_);
  while (head < scratch_queue_.size()) {
    StateId cur = scratch_queue_[head++];
    out->push_back(cur);
    for (StateId c : children(cur)) {
      if (--scratch_pending_[c] == 0) scratch_queue_.push_back(c);
    }
  }
}

std::vector<StateId> Organization::StatesAtLevel(int level) const {
  std::vector<StateId> out;
  StatesAtLevelInto(level, &out);
  return out;
}

void Organization::StatesAtLevelInto(int level,
                                     std::vector<StateId>* out) const {
  out->clear();
  for (StateId s = 0; s < num_states(); ++s) {
    if (alive_[s] && level_[s] == level) out->push_back(s);
  }
}

int Organization::MaxLevel() const {
  int max_level = -1;
  for (StateId s = 0; s < num_states(); ++s) {
    if (alive_[s]) max_level = std::max(max_level, level_[s]);
  }
  return max_level;
}

DynamicBitset Organization::StateAttrSet(StateId s) const {
  assert(s < num_states());
  if (kind_[s] == StateKind::kLeaf) {
    DynamicBitset b = ctx_->MakeAttrSet();
    b.Set(attr_[s]);
    return b;
  }
  return attrs_[s].ToBitset();
}

std::vector<uint32_t> Organization::ExtraAttrs(StateId s) const {
  assert(s < num_states() && kind_[s] != StateKind::kLeaf);
  DynamicBitset from_tags = ctx_->MakeAttrSet();
  for (uint32_t t : tags(s)) from_tags.UnionWith(ctx_->tag_extent(t));
  std::vector<uint32_t> extras;
  attrs_[s].ForEach([&from_tags, &extras](size_t a) {
    if (!from_tags.Test(a)) extras.push_back(static_cast<uint32_t>(a));
  });
  return extras;
}

size_t Organization::NumEdges() const {
  size_t n = 0;
  for (StateId s = 0; s < num_states(); ++s) {
    if (alive_[s]) n += children_r_[s].size;
  }
  return n;
}

size_t Organization::HeapBytes() const {
  size_t bytes = 0;
  bytes += kind_.capacity() * sizeof(StateKind);
  bytes += alive_.capacity() * sizeof(uint8_t);
  bytes += level_.capacity() * sizeof(int);
  bytes += attr_.capacity() * sizeof(uint32_t);
  bytes += value_count_.capacity() * sizeof(size_t);
  bytes += topic_norm_.capacity() * sizeof(double);
  bytes += attrs_.capacity() * sizeof(AttrSet);
  bytes += (parents_r_.capacity() + children_r_.capacity() +
            tags_r_.capacity()) *
           sizeof(Range);
  bytes += slot_version_.capacity() * sizeof(uint32_t);
  bytes += in_free_list_.capacity() * sizeof(uint8_t);
  bytes += edge_slots_.capacity() * sizeof(StateId);
  bytes += tag_slots_.capacity() * sizeof(uint32_t);
  bytes += (topic_.capacity() + topic_sum_.capacity()) * sizeof(float);
  bytes += (free_list_.capacity() + leaf_of_attr_.capacity()) *
           sizeof(StateId);
  // Spilled sets hold one bitset word per 64 attributes of the universe;
  // copy-on-write shares are charged to every holder (upper bound).
  size_t spilled_bytes = ((ctx_->num_attrs() + 63) / 64) * sizeof(uint64_t);
  for (const AttrSet& set : attrs_) {
    if (!set.inline_rep()) bytes += spilled_bytes;
  }
  return bytes;
}

Status Organization::Validate() const {
  if (root_ == kInvalidId) {
    return Status::FailedPrecondition("no root");
  }
  // Parent/child symmetry and liveness.
  for (StateId s = 0; s < num_states(); ++s) {
    if (!alive_[s]) {
      if (parents_r_[s].size != 0 || children_r_[s].size != 0) {
        return Status::Internal("dead state with edges: " +
                                std::to_string(s));
      }
      continue;
    }
    for (StateId c : children(s)) {
      if (!alive_[c]) {
        return Status::Internal("edge to dead state");
      }
      if (!Contains(parents(c), s)) {
        return Status::Internal("asymmetric edge (child missing parent)");
      }
    }
    for (StateId p : parents(s)) {
      if (!alive_[p]) {
        return Status::Internal("edge from dead state");
      }
      if (!Contains(children(p), s)) {
        return Status::Internal("asymmetric edge (parent missing child)");
      }
    }
  }
  // Acyclicity: topological order must cover all reachable states.
  std::vector<StateId> topo = TopologicalOrder();
  {
    std::vector<char> reachable(num_states(), 0);
    std::vector<StateId> stack = {root_};
    reachable[root_] = 1;
    size_t count = 1;
    while (!stack.empty()) {
      StateId cur = stack.back();
      stack.pop_back();
      for (StateId c : children(cur)) {
        if (!reachable[c]) {
          reachable[c] = 1;
          ++count;
          stack.push_back(c);
        }
      }
    }
    if (topo.size() != count) {
      return Status::Internal("cycle detected (topological order short)");
    }
  }
  // Inclusion property + topic consistency.
  for (StateId s = 0; s < num_states(); ++s) {
    if (!alive_[s]) continue;
    if (kind_[s] == StateKind::kLeaf) {
      if (attr_[s] == kInvalidId || leaf_of_attr_[attr_[s]] != s) {
        return Status::Internal("leaf/attribute mapping broken");
      }
      continue;
    }
    // The tag-derived attribute set must be a subset of the state's attrs
    // (attrs may additionally contain propagated attributes whose tags
    // were merged in, so equality holds in this implementation).
    DynamicBitset expected = ctx_->MakeAttrSet();
    for (uint32_t t : tags(s)) expected.UnionWith(ctx_->tag_extent(t));
    if (!attrs_[s].ContainsAll(expected)) {
      return Status::Internal("state attrs missing tag extents");
    }
    for (StateId c : children(s)) {
      if (kind_[c] == StateKind::kLeaf) {
        if (!attrs_[s].Test(attr_[c])) {
          return Status::Internal("inclusion violated at leaf edge");
        }
      } else if (!attrs_[c].IsSubsetOf(attrs_[s])) {
        return Status::Internal("inclusion violated at interior edge");
      }
    }
    // Topic-sum consistency against attrs.
    Vec sum(ctx_->dim(), 0.0f);
    size_t count = 0;
    attrs_[s].ForEach([this, &sum, &count](size_t a) {
      AddInPlace(&sum, ctx_->attr_sum(a));
      count += ctx_->attr_value_count(a);
    });
    if (count != value_count_[s]) {
      return Status::Internal("value_count inconsistent");
    }
    FloatSpan stored = topic_sum(s);
    for (size_t i = 0; i < sum.size(); ++i) {
      float delta = sum[i] - stored[i];
      float scale = std::max(1.0f, std::abs(sum[i]));
      if (std::abs(delta) > 1e-3f * scale) {
        return Status::Internal("topic_sum inconsistent");
      }
    }
  }
  // Cached norm freshness. Every mutation path ends in RefreshTopic or a
  // journaled restore, so the cached norm must be exactly Norm(topic) —
  // any drift means a maintenance path skipped the refresh.
  for (StateId s = 0; s < num_states(); ++s) {
    if (!alive_[s]) continue;
    if (topic_norm_[s] != Norm(topic(s))) {
      return Status::Internal("stale topic_norm on state " +
                              std::to_string(s));
    }
  }
  return Status::OK();
}

void Organization::RecomputeAllTopics() {
  for (StateId s = 0; s < num_states(); ++s) {
    if (!alive_[s] || kind_[s] == StateKind::kLeaf) continue;
    // Extras = attrs beyond the tag extents (what ADD_PARENT propagated
    // in), ascending — exactly what SaveOrganization writes.
    DynamicBitset from_tags = ctx_->MakeAttrSet();
    for (uint32_t t : tags(s)) from_tags.UnionWith(ctx_->tag_extent(t));
    std::vector<uint32_t> extras;
    attrs_[s].ForEach([&from_tags, &extras](size_t a) {
      if (!from_tags.Test(a)) extras.push_back(static_cast<uint32_t>(a));
    });
    // Re-accumulate in the load path's order (tag extents ascending, then
    // extras ascending), so the result is bit-identical to what a
    // save/load round trip produces.
    RecomputeStateFromTags(s);
    if (!extras.empty()) AddExtraAttrs(s, extras);
  }
}

std::string Organization::DebugString() const {
  std::ostringstream out;
  std::vector<StateId> topo = TopologicalOrder();
  for (StateId s : topo) {
    out << "#" << s << " L" << level_[s] << " ";
    switch (kind_[s]) {
      case StateKind::kRoot:
        out << "root";
        break;
      case StateKind::kInterior: {
        out << "interior{";
        TagSpan ts = tags(s);
        for (size_t i = 0; i < ts.size(); ++i) {
          if (i > 0) out << ",";
          out << ctx_->tag_name(ts[i]);
        }
        out << "}";
        break;
      }
      case StateKind::kTag:
        out << "tag(" << ctx_->tag_name(tags(s)[0]) << ")";
        break;
      case StateKind::kLeaf:
        out << "leaf(" << ctx_->attr_label(attr_[s]) << ")";
        break;
    }
    out << " ->";
    for (StateId c : children(s)) out << " #" << c;
    out << "\n";
  }
  return out.str();
}

}  // namespace lakeorg
