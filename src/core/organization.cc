#include "core/organization.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

namespace lakeorg {
namespace {

bool Contains(const std::vector<StateId>& xs, StateId x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

void Erase(std::vector<StateId>* xs, StateId x) {
  xs->erase(std::remove(xs->begin(), xs->end(), x), xs->end());
}

}  // namespace

Organization::Organization(std::shared_ptr<const OrgContext> ctx)
    : ctx_(std::move(ctx)) {
  assert(ctx_ != nullptr);
  leaf_of_attr_.assign(ctx_->num_attrs(), kInvalidId);
}

Organization Organization::Clone() const {
  assert(undo_ == nullptr && "cannot clone with an active undo log");
  Organization copy = *this;
  copy.undo_ = nullptr;
  return copy;
}

void Organization::BeginUndoLog(OpUndo* undo) {
  assert(undo != nullptr);
  assert(undo_ == nullptr && "an undo log is already active");
  undo->Clear();
  undo_ = undo;
}

void Organization::EndUndoLog() { undo_ = nullptr; }

void Organization::JournalTouch(StateId s) {
  if (undo_ == nullptr) return;
  // First-touch only: the touched set is small, so a linear scan beats a
  // per-proposal O(num_states) seen-marker allocation.
  for (const StateSnapshot& snap : undo_->states) {
    if (snap.id == s) return;
  }
  const OrgState& st = states_[s];
  StateSnapshot snap;
  snap.id = s;
  snap.kind = st.kind;
  snap.alive = st.alive;
  snap.parents = st.parents;
  snap.children = st.children;
  snap.tags = st.tags;
  snap.attrs = st.attrs;
  snap.topic_sum = st.topic_sum;
  snap.value_count = st.value_count;
  snap.topic = st.topic;
  snap.topic_norm = st.topic_norm;
  snap.level = st.level;
  undo_->states.push_back(std::move(snap));
}

void Organization::Undo(const OpUndo& undo) {
  assert(undo_ == nullptr && "end the undo log before rolling back");
  for (auto it = undo.states.rbegin(); it != undo.states.rend(); ++it) {
    OrgState& st = states_[it->id];
    st.kind = it->kind;
    st.alive = it->alive;
    st.parents = it->parents;
    st.children = it->children;
    st.tags = it->tags;
    st.attrs = it->attrs;
    st.topic_sum = it->topic_sum;
    st.value_count = it->value_count;
    st.topic = it->topic;
    st.topic_norm = it->topic_norm;
    st.level = it->level;
  }
  if (undo.levels_changed) RecomputeLevels();
}

StateId Organization::NewState(OrgState&& state) {
  StateId id = static_cast<StateId>(states_.size());
  states_.push_back(std::move(state));
  return id;
}

void Organization::RefreshTopic(StateId s) {
  OrgState& st = states_[s];
  st.topic = st.topic_sum;
  if (st.value_count > 0) {
    ScaleInPlace(&st.topic,
                 static_cast<float>(1.0 / static_cast<double>(st.value_count)));
  }
  st.topic_norm = Norm(st.topic);
}

StateId Organization::AddLeaf(uint32_t attr) {
  assert(attr < ctx_->num_attrs());
  assert(leaf_of_attr_[attr] == kInvalidId && "duplicate leaf");
  OrgState st;
  st.kind = StateKind::kLeaf;
  st.attr = attr;
  st.topic_sum = ctx_->attr_sum(attr);
  st.value_count = ctx_->attr_value_count(attr);
  st.topic = ctx_->attr_vector(attr);
  st.topic_norm = Norm(st.topic);
  StateId id = NewState(std::move(st));
  leaf_of_attr_[attr] = id;
  return id;
}

StateId Organization::AddTagState(uint32_t tag) {
  assert(tag < ctx_->num_tags());
  OrgState st;
  st.kind = StateKind::kTag;
  st.tags = {tag};
  StateId id = NewState(std::move(st));
  RecomputeStateFromTags(id);
  return id;
}

StateId Organization::AddInteriorState(std::vector<uint32_t> tags) {
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  assert(!tags.empty());
  OrgState st;
  st.kind = StateKind::kInterior;
  st.tags = std::move(tags);
  StateId id = NewState(std::move(st));
  RecomputeStateFromTags(id);
  return id;
}

StateId Organization::AddRoot(std::vector<uint32_t> tags) {
  assert(root_ == kInvalidId && "root already set");
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  OrgState st;
  st.kind = StateKind::kRoot;
  st.tags = std::move(tags);
  StateId id = NewState(std::move(st));
  root_ = id;
  RecomputeStateFromTags(id);
  states_[id].level = 0;
  return id;
}

void Organization::RecomputeStateFromTags(StateId s) {
  OrgState& st = states_[s];
  assert(st.kind != StateKind::kLeaf);
  st.attrs = ctx_->MakeAttrSet();
  for (uint32_t t : st.tags) st.attrs.UnionWith(ctx_->tag_extent(t));
  st.topic_sum.assign(ctx_->dim(), 0.0f);
  st.value_count = 0;
  st.attrs.ForEach([this, &st](size_t a) {
    AddInPlace(&st.topic_sum, ctx_->attr_sum(a));
    st.value_count += ctx_->attr_value_count(a);
  });
  RefreshTopic(s);
}

Status Organization::AddEdge(StateId parent, StateId child) {
  if (parent >= states_.size() || child >= states_.size()) {
    return Status::NotFound("unknown state id");
  }
  OrgState& p = states_[parent];
  OrgState& c = states_[child];
  if (!p.alive || !c.alive) {
    return Status::FailedPrecondition("edge endpoint is dead");
  }
  if (parent == child) return Status::InvalidArgument("self loop");
  if (p.kind == StateKind::kLeaf) {
    return Status::InvalidArgument("leaf cannot have children");
  }
  if (child == root_) return Status::InvalidArgument("edge into root");
  if (Contains(p.children, child)) {
    return Status::AlreadyExists("duplicate edge");
  }
  // Inclusion property: D_child must be a subset of D_parent.
  if (c.kind == StateKind::kLeaf) {
    if (!p.attrs.Test(c.attr)) {
      return Status::FailedPrecondition(
          "inclusion violated: leaf attribute not in parent");
    }
  } else if (!c.attrs.IsSubsetOf(p.attrs)) {
    return Status::FailedPrecondition(
        "inclusion violated: child attrs not subset of parent");
  }
  JournalTouch(parent);
  JournalTouch(child);
  p.children.push_back(child);
  c.parents.push_back(parent);
  return Status::OK();
}

Status Organization::RemoveEdge(StateId parent, StateId child) {
  if (parent >= states_.size() || child >= states_.size()) {
    return Status::NotFound("unknown state id");
  }
  OrgState& p = states_[parent];
  OrgState& c = states_[child];
  if (!Contains(p.children, child)) return Status::NotFound("no such edge");
  JournalTouch(parent);
  JournalTouch(child);
  Erase(&p.children, child);
  Erase(&c.parents, parent);
  return Status::OK();
}

Status Organization::RemoveState(StateId s) {
  if (s >= states_.size()) return Status::NotFound("unknown state id");
  OrgState& st = states_[s];
  if (!st.alive) return Status::FailedPrecondition("state already dead");
  if (s == root_) return Status::InvalidArgument("cannot remove root");
  if (st.kind == StateKind::kLeaf) {
    return Status::InvalidArgument("cannot remove a leaf state");
  }
  JournalTouch(s);
  for (StateId p : st.parents) JournalTouch(p);
  for (StateId c : st.children) JournalTouch(c);
  for (StateId p : st.parents) Erase(&states_[p].children, s);
  for (StateId c : st.children) Erase(&states_[c].parents, s);
  st.parents.clear();
  st.children.clear();
  st.alive = false;
  return Status::OK();
}

bool Organization::WouldCreateCycle(StateId parent, StateId child) const {
  if (parent == child) return true;
  // DFS from child along child edges looking for parent.
  std::vector<StateId> stack = {child};
  std::vector<char> visited(states_.size(), 0);
  visited[child] = 1;
  while (!stack.empty()) {
    StateId cur = stack.back();
    stack.pop_back();
    for (StateId nxt : states_[cur].children) {
      if (nxt == parent) return true;
      if (!visited[nxt]) {
        visited[nxt] = 1;
        stack.push_back(nxt);
      }
    }
  }
  return false;
}

void Organization::AddExtraAttrs(StateId s,
                                 const std::vector<uint32_t>& attrs) {
  OrgState& st = states_[s];
  assert(st.kind != StateKind::kLeaf);
  JournalTouch(s);
  bool grew = false;
  for (uint32_t a : attrs) {
    if (a < st.attrs.size() && !st.attrs.Test(a)) {
      st.attrs.Set(a);
      AddInPlace(&st.topic_sum, ctx_->attr_sum(a));
      st.value_count += ctx_->attr_value_count(a);
      grew = true;
    }
  }
  if (grew) RefreshTopic(s);
}

void Organization::AddAttrsToState(StateId s,
                                   const DynamicBitset& new_attrs,
                                   const std::vector<uint32_t>& new_tags,
                                   bool* grew) {
  OrgState& st = states_[s];
  assert(st.kind != StateKind::kLeaf);
  // Journal unconditionally: even when no attribute grows, the tag merge
  // below may mutate `tags` (and the kTag -> kInterior promotion).
  JournalTouch(s);
  *grew = false;
  // Incremental topic update: fold in only attributes not already present.
  new_attrs.ForEach([this, &st, grew](size_t a) {
    if (!st.attrs.Test(a)) {
      st.attrs.Set(a);
      AddInPlace(&st.topic_sum, ctx_->attr_sum(a));
      st.value_count += ctx_->attr_value_count(a);
      *grew = true;
    }
  });
  for (uint32_t t : new_tags) {
    auto it = std::lower_bound(st.tags.begin(), st.tags.end(), t);
    if (it == st.tags.end() || *it != t) st.tags.insert(it, t);
  }
  // A penultimate tag state that accumulates further tags is no longer
  // the fixed single-tag level of section 3.2: promote it to interior
  // (it loses DELETE_PARENT protection along with the promotion).
  if (st.kind == StateKind::kTag && st.tags.size() > 1) {
    st.kind = StateKind::kInterior;
  }
  if (*grew) RefreshTopic(s);
}

void Organization::PropagateAttrsUpward(StateId s,
                                        const DynamicBitset& attrs,
                                        const std::vector<uint32_t>& tags,
                                        std::vector<StateId>* touched) {
  // BFS upward from s; stop expanding where nothing grew (ancestors of a
  // state that already contains the attrs contain them too -- except via
  // other paths, so we still visit every parent of a grown state).
  std::deque<StateId> queue = {s};
  std::vector<char> visited(states_.size(), 0);
  visited[s] = 1;
  while (!queue.empty()) {
    StateId cur = queue.front();
    queue.pop_front();
    bool grew = false;
    AddAttrsToState(cur, attrs, tags, &grew);
    if (grew && touched != nullptr) touched->push_back(cur);
    if (grew) {
      for (StateId p : states_[cur].parents) {
        if (!visited[p]) {
          visited[p] = 1;
          queue.push_back(p);
        }
      }
    }
  }
}

void Organization::RecomputeLevels() {
  if (undo_ != nullptr) undo_->levels_changed = true;
  for (OrgState& st : states_) st.level = -1;
  if (root_ == kInvalidId) return;
  states_[root_].level = 0;
  std::deque<StateId> queue = {root_};
  while (!queue.empty()) {
    StateId cur = queue.front();
    queue.pop_front();
    int next_level = states_[cur].level + 1;
    for (StateId c : states_[cur].children) {
      if (states_[c].level == -1) {
        states_[c].level = next_level;
        queue.push_back(c);
      }
    }
  }
}

size_t Organization::NumAliveStates() const {
  size_t n = 0;
  for (const OrgState& st : states_) {
    if (st.alive) ++n;
  }
  return n;
}

std::vector<StateId> Organization::TopologicalOrder() const {
  // Kahn's algorithm restricted to states reachable from the root.
  std::vector<StateId> order;
  if (root_ == kInvalidId) return order;
  std::vector<char> reachable(states_.size(), 0);
  std::vector<StateId> stack = {root_};
  reachable[root_] = 1;
  while (!stack.empty()) {
    StateId cur = stack.back();
    stack.pop_back();
    for (StateId c : states_[cur].children) {
      if (!reachable[c]) {
        reachable[c] = 1;
        stack.push_back(c);
      }
    }
  }
  std::vector<uint32_t> pending(states_.size(), 0);
  for (StateId s = 0; s < states_.size(); ++s) {
    if (!reachable[s]) continue;
    uint32_t in_degree = 0;
    for (StateId p : states_[s].parents) {
      if (reachable[p]) ++in_degree;
    }
    pending[s] = in_degree;
  }
  std::deque<StateId> queue = {root_};
  while (!queue.empty()) {
    StateId cur = queue.front();
    queue.pop_front();
    order.push_back(cur);
    for (StateId c : states_[cur].children) {
      if (--pending[c] == 0) queue.push_back(c);
    }
  }
  return order;
}

std::vector<StateId> Organization::StatesAtLevel(int level) const {
  std::vector<StateId> out;
  for (StateId s = 0; s < states_.size(); ++s) {
    if (states_[s].alive && states_[s].level == level) out.push_back(s);
  }
  return out;
}

int Organization::MaxLevel() const {
  int max_level = -1;
  for (const OrgState& st : states_) {
    if (st.alive) max_level = std::max(max_level, st.level);
  }
  return max_level;
}

DynamicBitset Organization::StateAttrSet(StateId s) const {
  const OrgState& st = states_.at(s);
  if (st.kind == StateKind::kLeaf) {
    DynamicBitset b = ctx_->MakeAttrSet();
    b.Set(st.attr);
    return b;
  }
  return st.attrs;
}

size_t Organization::NumEdges() const {
  size_t n = 0;
  for (const OrgState& st : states_) {
    if (st.alive) n += st.children.size();
  }
  return n;
}

Status Organization::Validate() const {
  if (root_ == kInvalidId) {
    return Status::FailedPrecondition("no root");
  }
  // Parent/child symmetry and liveness.
  for (StateId s = 0; s < states_.size(); ++s) {
    const OrgState& st = states_[s];
    if (!st.alive) {
      if (!st.parents.empty() || !st.children.empty()) {
        return Status::Internal("dead state with edges: " +
                                std::to_string(s));
      }
      continue;
    }
    for (StateId c : st.children) {
      if (!states_[c].alive) {
        return Status::Internal("edge to dead state");
      }
      if (!Contains(states_[c].parents, s)) {
        return Status::Internal("asymmetric edge (child missing parent)");
      }
    }
    for (StateId p : st.parents) {
      if (!states_[p].alive) {
        return Status::Internal("edge from dead state");
      }
      if (!Contains(states_[p].children, s)) {
        return Status::Internal("asymmetric edge (parent missing child)");
      }
    }
  }
  // Acyclicity: topological order must cover all reachable states.
  std::vector<StateId> topo = TopologicalOrder();
  {
    std::vector<char> reachable(states_.size(), 0);
    std::vector<StateId> stack = {root_};
    reachable[root_] = 1;
    size_t count = 1;
    while (!stack.empty()) {
      StateId cur = stack.back();
      stack.pop_back();
      for (StateId c : states_[cur].children) {
        if (!reachable[c]) {
          reachable[c] = 1;
          ++count;
          stack.push_back(c);
        }
      }
    }
    if (topo.size() != count) {
      return Status::Internal("cycle detected (topological order short)");
    }
  }
  // Inclusion property + topic consistency.
  for (StateId s = 0; s < states_.size(); ++s) {
    const OrgState& st = states_[s];
    if (!st.alive) continue;
    if (st.kind == StateKind::kLeaf) {
      if (st.attr == kInvalidId || leaf_of_attr_[st.attr] != s) {
        return Status::Internal("leaf/attribute mapping broken");
      }
      continue;
    }
    // The tag-derived attribute set must be a subset of st.attrs (attrs may
    // additionally contain propagated attributes whose tags were merged in,
    // so equality holds in this implementation; check equality).
    DynamicBitset expected = ctx_->MakeAttrSet();
    for (uint32_t t : st.tags) expected.UnionWith(ctx_->tag_extent(t));
    if (!expected.IsSubsetOf(st.attrs)) {
      return Status::Internal("state attrs missing tag extents");
    }
    for (StateId c : st.children) {
      const OrgState& cs = states_[c];
      if (cs.kind == StateKind::kLeaf) {
        if (!st.attrs.Test(cs.attr)) {
          return Status::Internal("inclusion violated at leaf edge");
        }
      } else if (!cs.attrs.IsSubsetOf(st.attrs)) {
        return Status::Internal("inclusion violated at interior edge");
      }
    }
    // Topic-sum consistency against attrs.
    Vec sum(ctx_->dim(), 0.0f);
    size_t count = 0;
    st.attrs.ForEach([this, &sum, &count](size_t a) {
      AddInPlace(&sum, ctx_->attr_sum(a));
      count += ctx_->attr_value_count(a);
    });
    if (count != st.value_count) {
      return Status::Internal("value_count inconsistent");
    }
    for (size_t i = 0; i < sum.size(); ++i) {
      float delta = sum[i] - st.topic_sum[i];
      float scale = std::max(1.0f, std::abs(sum[i]));
      if (std::abs(delta) > 1e-3f * scale) {
        return Status::Internal("topic_sum inconsistent");
      }
    }
  }
  // Cached norm freshness. Every mutation path ends in RefreshTopic or a
  // journaled-snapshot restore, so the cached norm must be exactly
  // Norm(topic) — any drift means a maintenance path skipped the refresh.
  for (StateId s = 0; s < states_.size(); ++s) {
    const OrgState& st = states_[s];
    if (!st.alive) continue;
    if (st.topic_norm != Norm(st.topic)) {
      return Status::Internal("stale topic_norm on state " +
                              std::to_string(s));
    }
  }
  return Status::OK();
}

void Organization::RecomputeAllTopics() {
  for (StateId s = 0; s < states_.size(); ++s) {
    OrgState& st = states_[s];
    if (!st.alive || st.kind == StateKind::kLeaf) continue;
    // Extras = attrs beyond the tag extents (what ADD_PARENT propagated
    // in), ascending — exactly what SaveOrganization writes.
    DynamicBitset from_tags = ctx_->MakeAttrSet();
    for (uint32_t t : st.tags) from_tags.UnionWith(ctx_->tag_extent(t));
    std::vector<uint32_t> extras;
    st.attrs.ForEach([&from_tags, &extras](size_t a) {
      if (!from_tags.Test(a)) extras.push_back(static_cast<uint32_t>(a));
    });
    // Re-accumulate in the load path's order (tag extents ascending, then
    // extras ascending), so the result is bit-identical to what a
    // save/load round trip produces.
    RecomputeStateFromTags(s);
    if (!extras.empty()) AddExtraAttrs(s, extras);
  }
}

std::string Organization::DebugString() const {
  std::ostringstream out;
  std::vector<StateId> topo = TopologicalOrder();
  for (StateId s : topo) {
    const OrgState& st = states_[s];
    out << "#" << s << " L" << st.level << " ";
    switch (st.kind) {
      case StateKind::kRoot:
        out << "root";
        break;
      case StateKind::kInterior:
        out << "interior{";
        for (size_t i = 0; i < st.tags.size(); ++i) {
          if (i > 0) out << ",";
          out << ctx_->tag_name(st.tags[i]);
        }
        out << "}";
        break;
      case StateKind::kTag:
        out << "tag(" << ctx_->tag_name(st.tags[0]) << ")";
        break;
      case StateKind::kLeaf:
        out << "leaf(" << ctx_->attr_label(st.attr) << ")";
        break;
    }
    out << " ->";
    for (StateId c : st.children) out << " #" << c;
    out << "\n";
  }
  return out.str();
}

}  // namespace lakeorg
