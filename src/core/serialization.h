// Organization serialization: save a learned organization to a compact
// line-oriented text format and load it back against the same OrgContext.
// A production deployment learns the organization offline (section 4.3's
// 12-hour Socrata build) and serves navigation from a loaded copy.
//
// Format (version 1):
//   lakeorg-organization v1
//   counts <num_states> <root_id>
//   state <id> <kind> <alive> <attr|-1> tags <t...>
//   edge <parent> <child>            (one line per edge)
// Topic vectors, attribute sets and levels are derived from the context
// on load, so files stay small and the context remains the single source
// of truth for the lake's content.
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "core/multidim.h"
#include "core/organization.h"

namespace lakeorg {

/// Writes `org` to `out`. Dead states are preserved (ids are stable).
Status SaveOrganization(const Organization& org, std::ostream* out);

/// Convenience: save to a file path.
Status SaveOrganizationToFile(const Organization& org,
                              const std::string& path);

/// Reads an organization from `in` over `ctx`. Fails with a descriptive
/// status on malformed input, id mismatches, or inclusion violations
/// (edges are re-checked through Organization's own invariants).
Result<Organization> LoadOrganization(
    std::shared_ptr<const OrgContext> ctx, std::istream* in);

/// Convenience: load from a file path.
Result<Organization> LoadOrganizationFromFile(
    std::shared_ptr<const OrgContext> ctx, const std::string& path);

// Multi-dimensional organizations ------------------------------------------
//
// Format (version 1): a `lakeorg-multidim v1` header, then per dimension a
// `dimension <i> tags <n> <lake tag ids...>` line followed by that
// dimension's single-organization section. Loading rebuilds each
// dimension's OrgContext from the recorded tag partition, so the lake
// must be reconstructed identically (same tables/tags in the same order)
// — which deterministic ingestion (CSV, generators with fixed seeds)
// guarantees.

/// Writes all dimensions of `org` to `out`.
Status SaveMultiDimOrganization(const MultiDimOrganization& org,
                                std::ostream* out);

/// Convenience: save to a file path.
Status SaveMultiDimOrganizationToFile(const MultiDimOrganization& org,
                                      const std::string& path);

/// Reads a multi-dimensional organization over `lake`/`index` (the same
/// lake it was built from). Per-dimension statistics are recomputed
/// structurally; optimization metadata (timings, proposals) is not
/// persisted.
Result<MultiDimOrganization> LoadMultiDimOrganization(
    const DataLake& lake, const TagIndex& index, std::istream* in);

/// Convenience: load from a file path.
Result<MultiDimOrganization> LoadMultiDimOrganizationFromFile(
    const DataLake& lake, const TagIndex& index, const std::string& path);

}  // namespace lakeorg
