#include "core/org_context.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace lakeorg {

std::shared_ptr<const OrgContext> OrgContext::Build(const DataLake& lake,
                                                    const TagIndex& index,
                                                    std::vector<TagId> tags) {
  assert(lake.topic_vectors_computed());
  auto ctx = std::shared_ptr<OrgContext>(new OrgContext());

  // Keep only non-empty tags, deduplicated, in the given order.
  std::vector<char> seen_tag(lake.num_tags(), 0);
  for (TagId t : tags) {
    if (t >= lake.num_tags() || seen_tag[t]) continue;
    seen_tag[t] = 1;
    if (index.AttributesOfTag(t).empty()) continue;
    ctx->lake_tags_.push_back(t);
  }

  // Collect the attribute universe: union of extents, ascending.
  std::unordered_map<AttributeId, uint32_t> attr_local;
  {
    std::vector<AttributeId> all;
    for (TagId t : ctx->lake_tags_) {
      const auto& ext = index.AttributesOfTag(t);
      all.insert(all.end(), ext.begin(), ext.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    ctx->lake_attrs_ = std::move(all);
    for (uint32_t i = 0; i < ctx->lake_attrs_.size(); ++i) {
      attr_local.emplace(ctx->lake_attrs_[i], i);
    }
  }

  // Embedding dimension from any attribute.
  for (AttributeId aid : ctx->lake_attrs_) {
    const Attribute& a = lake.attribute(aid);
    if (!a.topic.empty()) {
      ctx->dim_ = a.topic.size();
      break;
    }
  }

  size_t num_attrs = ctx->lake_attrs_.size();
  size_t num_tags = ctx->lake_tags_.size();

  // Attribute-level arrays.
  ctx->attr_vectors_.reserve(num_attrs);
  ctx->attr_sums_.reserve(num_attrs);
  ctx->attr_value_counts_.reserve(num_attrs);
  ctx->attr_labels_.reserve(num_attrs);
  ctx->attr_tags_.assign(num_attrs, {});
  ctx->attr_tables_.assign(num_attrs, 0);
  std::unordered_map<TableId, uint32_t> table_local;
  for (uint32_t a = 0; a < num_attrs; ++a) {
    const Attribute& attr = lake.attribute(ctx->lake_attrs_[a]);
    ctx->attr_vectors_.push_back(attr.topic);
    ctx->attr_sums_.push_back(attr.topic_sum);
    ctx->attr_value_counts_.push_back(attr.embedded_count);
    const Table& table = lake.table(attr.table);
    ctx->attr_labels_.push_back(table.name + "." + attr.name);
    auto [it, inserted] =
        table_local.emplace(attr.table, static_cast<uint32_t>(
                                            ctx->lake_tables_.size()));
    if (inserted) {
      ctx->lake_tables_.push_back(attr.table);
      ctx->table_attrs_.emplace_back();
      ctx->table_names_.push_back(table.name);
    }
    ctx->attr_tables_[a] = it->second;
    ctx->table_attrs_[it->second].push_back(a);
  }

  // Tag-level arrays and tag<->attribute cross-references.
  std::unordered_map<TagId, uint32_t> tag_local;
  for (uint32_t t = 0; t < num_tags; ++t) {
    tag_local.emplace(ctx->lake_tags_[t], t);
  }
  ctx->tag_names_.reserve(num_tags);
  ctx->tag_vectors_.reserve(num_tags);
  ctx->tag_extents_.reserve(num_tags);
  ctx->tag_extent_lists_.reserve(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) {
    TagId lake_t = ctx->lake_tags_[t];
    ctx->tag_names_.push_back(lake.tag_name(lake_t));
    ctx->tag_vectors_.push_back(index.TagTopicVector(lake_t));
    DynamicBitset extent(num_attrs);
    std::vector<uint32_t> list;
    for (AttributeId aid : index.AttributesOfTag(lake_t)) {
      uint32_t local = attr_local.at(aid);
      extent.Set(local);
      list.push_back(local);
    }
    std::sort(list.begin(), list.end());
    ctx->tag_extents_.push_back(std::move(extent));
    ctx->tag_extent_lists_.push_back(std::move(list));
  }
  for (uint32_t a = 0; a < num_attrs; ++a) {
    const Attribute& attr = lake.attribute(ctx->lake_attrs_[a]);
    for (TagId lt : attr.tags) {
      auto it = tag_local.find(lt);
      if (it != tag_local.end()) ctx->attr_tags_[a].push_back(it->second);
    }
    std::sort(ctx->attr_tags_[a].begin(), ctx->attr_tags_[a].end());
  }

  return ctx;
}

std::shared_ptr<const OrgContext> OrgContext::BuildFull(
    const DataLake& lake, const TagIndex& index) {
  std::vector<TagId> tags(index.NonEmptyTags().begin(),
                          index.NonEmptyTags().end());
  return Build(lake, index, std::move(tags));
}

}  // namespace lakeorg
