// Allocation audit hooks (docs/PERFORMANCE.md).
//
// The library itself never replaces the global allocator; binaries that do
// (the counting-allocator test binaries and opt-in benchmark builds)
// register their counters here, and PublishCoreAllocMetrics() forwards the
// deltas into the `core.alloc_calls_total` / `core.alloc_bytes_total`
// telemetry counters. With no source registered every query returns 0 and
// publishing is a no-op, so production binaries pay nothing.
#pragma once

#include <atomic>
#include <cstdint>

namespace lakeorg {

/// Registers the binary's allocation counters (typically bumped by a
/// replaced ::operator new). Pass nullptrs to deregister. `bytes` may be
/// null while `calls` is set when only call counts are tracked.
void SetAllocStatsSource(const std::atomic<uint64_t>* calls,
                         const std::atomic<uint64_t>* bytes);

/// True when a source is registered.
bool AllocStatsAvailable();

/// Current totals from the registered source (0 when none).
uint64_t AllocCallsNow();
uint64_t AllocBytesNow();

/// Adds the delta since the previous publish to the core.alloc_* obs
/// counters. No-op without a registered source or with metrics disabled
/// (the delta still advances, so enabling metrics later never flushes
/// stale history).
void PublishCoreAllocMetrics();

}  // namespace lakeorg
