// Navigation front-end (section 4.4): node labeling and an interactive
// session that walks an organization one choice at a time, with
// backtracking — the interface the paper's user-study prototype exposed,
// and what the examples and the simulated study agents drive.
//
// Labeling rules from the paper: leaves show their table name, penultimate
// (single-tag) states show the tag, and every other node shows the two
// most-occurring tags among its children's labels; when the top two come
// from the same child, the third most occurring is used, and so on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/org_snapshot.h"
#include "core/organization.h"

namespace lakeorg {

/// Display label for a state per the section 4.4 rules.
std::string StateLabel(const Organization& org, StateId s);

/// One navigable child option.
struct NavChoice {
  StateId state = kInvalidId;
  std::string label;
};

/// A stateful walk through one organization.
class NavigationSession {
 public:
  /// Starts at the root of `org` (borrowed; must outlive the session).
  explicit NavigationSession(const Organization* org);

  /// Starts at the root of `snapshot->org`, pinning the whole snapshot
  /// for the session's lifetime (the RCU read side: a repair publishing
  /// a newer version never invalidates a session in flight). Requires
  /// snapshot->org != nullptr.
  explicit NavigationSession(std::shared_ptr<const OrgSnapshot> snapshot);

  /// The state the user is currently at.
  StateId current() const { return path_.back(); }

  /// True when the current state is a leaf (discovery endpoint).
  bool AtLeaf() const;

  /// Local attribute of the current leaf; kInvalidId when not at a leaf.
  uint32_t CurrentAttr() const;

  /// The labeled children of the current state.
  std::vector<NavChoice> Choices() const;

  /// Descends into the index-th choice.
  Status Choose(size_t index);

  /// Descends into a specific child state.
  Status ChooseState(StateId child);

  /// Backtracks to the previously visited state; fails at the root.
  Status Back();

  /// Root-to-current visited path.
  const std::vector<StateId>& path() const { return path_; }

  /// Total navigation actions taken (descents + backtracks), the "effort"
  /// currency of the simulated user study.
  size_t actions() const { return actions_; }

 private:
  const Organization* org_;
  /// Keeps the snapshot (and everything it references) alive for
  /// snapshot-pinned sessions; null for borrowed-pointer sessions.
  std::shared_ptr<const OrgSnapshot> snapshot_;
  std::vector<StateId> path_;
  size_t actions_ = 0;
};

}  // namespace lakeorg
