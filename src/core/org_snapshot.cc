#include "core/org_snapshot.h"

#include "obs/metrics.h"

namespace lakeorg {

uint64_t OrgSnapshotStore::Publish(OrgSnapshot snapshot) {
  uint64_t version =
      next_version_.fetch_add(1, std::memory_order_relaxed);
  snapshot.version = version;
  auto published =
      std::make_shared<const OrgSnapshot>(std::move(snapshot));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = std::move(published);
  }
  // published_version_ trails the swap: a reader that observes version v
  // here is guaranteed to load a snapshot >= v from Current().
  uint64_t prev = published_version_.load(std::memory_order_relaxed);
  while (prev < version && !published_version_.compare_exchange_weak(
                               prev, version, std::memory_order_release,
                               std::memory_order_relaxed)) {
  }
  obs::GetCounter("snapshot.publishes_total").Add();
  obs::GetGauge("snapshot.version").Set(static_cast<double>(version));
  return version;
}

}  // namespace lakeorg
