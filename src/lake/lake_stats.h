// Descriptive lake statistics: used to validate that the Socrata-like
// generator matches the published characteristics (section 4.1) and to
// print dataset summaries in the benches.
#pragma once

#include <string>

#include "lake/data_lake.h"

namespace lakeorg {

/// Summary statistics of a lake's metadata distribution.
struct LakeStats {
  size_t num_tables = 0;
  size_t num_attributes = 0;
  size_t num_text_attributes = 0;
  size_t num_tags = 0;
  size_t num_attribute_tag_associations = 0;
  /// Fraction of attributes that are text (paper: 26% for Socrata).
  double text_attribute_fraction = 0.0;
  /// Fraction of tables with at least one text attribute (paper: 92%).
  double tables_with_text_fraction = 0.0;
  double mean_tags_per_table = 0.0;
  double median_tags_per_table = 0.0;
  double max_tags_per_table = 0.0;
  double mean_attrs_per_table = 0.0;
  double median_attrs_per_table = 0.0;
  double max_attrs_per_table = 0.0;
};

/// Computes summary statistics of `lake`.
LakeStats ComputeLakeStats(const DataLake& lake);

/// Renders `stats` as a multi-line human-readable block.
std::string FormatLakeStats(const LakeStats& stats);

}  // namespace lakeorg
