// CSV ingestion: load delimited files into a DataLake as tables. Handles
// quoted fields (RFC 4180 style: embedded delimiters, quotes doubled,
// embedded newlines), a header row for attribute names, text/numeric type
// inference (organizations are built over text attributes, section 3.1),
// and distinct-value capping for very large columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "lake/data_lake.h"

namespace lakeorg {

/// Options for CSV loading.
struct CsvOptions {
  char delimiter = ',';
  /// First row holds attribute names; otherwise names are col_0, col_1...
  bool has_header = true;
  /// Cap on distinct values kept per attribute (domains are sets).
  size_t max_distinct_values = 10000;
  /// A column is numeric when at least this fraction of its non-empty
  /// values parse as numbers.
  double numeric_threshold = 0.8;
  /// Skip completely empty values when building domains.
  bool skip_empty_values = true;
};

/// Parses delimited rows from `in`. Quoted fields may contain the
/// delimiter, doubled quotes, and newlines. Returns one vector per row.
std::vector<std::vector<std::string>> ParseCsv(std::istream* in,
                                               char delimiter = ',');

/// True when `value` parses fully as a number (int or float, optional
/// sign/exponent, thousands separators not supported).
bool LooksNumeric(const std::string& value);

/// Loads one CSV stream as table `table_name` with the given tags.
/// Fails on empty input or rows with no columns.
Result<TableId> LoadCsvTable(DataLake* lake, const std::string& table_name,
                             std::istream* in,
                             const std::vector<std::string>& tags,
                             const CsvOptions& options = {});

/// Loads a file; the table name is the filename stem.
Result<TableId> LoadCsvFile(DataLake* lake, const std::string& path,
                            const std::vector<std::string>& tags,
                            const CsvOptions& options = {});

/// Writes rows as CSV with RFC 4180 quoting (fields containing the
/// delimiter, quotes, or newlines are quoted; quotes are doubled).
Status WriteCsv(const std::vector<std::vector<std::string>>& rows,
                std::ostream* out, char delimiter = ',');

/// Exports a table's attribute domains as CSV: one column per attribute
/// (header = attribute names), rows padded with empty fields where
/// domains have different sizes. The inverse-ish of LoadCsvTable for
/// inspection and interchange.
Status ExportTableCsv(const DataLake& lake, TableId table,
                      std::ostream* out, char delimiter = ',');

}  // namespace lakeorg
