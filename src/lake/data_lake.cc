#include "lake/data_lake.h"

#include <algorithm>

namespace lakeorg {

TableId DataLake::AddTable(std::string name, std::string title,
                           std::string description) {
  TableId id = static_cast<TableId>(tables_.size());
  Table t;
  t.id = id;
  t.name = std::move(name);
  t.title = std::move(title);
  t.description = std::move(description);
  table_ids_.emplace(t.name, id);
  tables_.push_back(std::move(t));
  if (recording_delta_) delta_.added_tables.push_back(id);
  return id;
}

AttributeId DataLake::AddAttribute(TableId table, std::string name,
                                   std::vector<std::string> values,
                                   bool is_text) {
  AttributeId id = static_cast<AttributeId>(attributes_.size());
  Attribute a;
  a.id = id;
  a.table = table;
  a.name = std::move(name);
  a.values = std::move(values);
  a.is_text = is_text;
  a.tags = tables_.at(table).tags;  // Inherit current table tags.
  tables_.at(table).attributes.push_back(id);
  attributes_.push_back(std::move(a));
  if (recording_delta_) delta_.added_attrs.push_back(id);
  return id;
}

TagId DataLake::GetOrCreateTag(const std::string& name) {
  auto it = tag_ids_.find(name);
  if (it != tag_ids_.end()) return it->second;
  TagId id = static_cast<TagId>(tag_names_.size());
  tag_ids_.emplace(name, id);
  tag_names_.push_back(name);
  if (recording_delta_) delta_.added_tags.push_back(id);
  return id;
}

Status DataLake::AttachTag(TableId table, TagId tag) {
  if (table >= tables_.size()) {
    return Status::NotFound("no such table id " + std::to_string(table));
  }
  if (tag >= tag_names_.size()) {
    return Status::NotFound("no such tag id " + std::to_string(tag));
  }
  Table& t = tables_[table];
  if (std::find(t.tags.begin(), t.tags.end(), tag) != t.tags.end()) {
    return Status::OK();  // Idempotent.
  }
  t.tags.push_back(tag);
  for (AttributeId aid : t.attributes) {
    Attribute& a = attributes_[aid];
    if (std::find(a.tags.begin(), a.tags.end(), tag) == a.tags.end()) {
      a.tags.push_back(tag);
      if (recording_delta_) delta_.retagged_attrs.push_back(aid);
    }
  }
  return Status::OK();
}

Status DataLake::AttachTagMetadataOnly(TableId table, TagId tag) {
  if (table >= tables_.size()) {
    return Status::NotFound("no such table id " + std::to_string(table));
  }
  if (tag >= tag_names_.size()) {
    return Status::NotFound("no such tag id " + std::to_string(tag));
  }
  Table& t = tables_[table];
  if (std::find(t.tags.begin(), t.tags.end(), tag) == t.tags.end()) {
    t.tags.push_back(tag);
  }
  return Status::OK();
}

Status DataLake::AttachTagToAttribute(AttributeId attr, TagId tag) {
  if (attr >= attributes_.size()) {
    return Status::NotFound("no such attribute id " + std::to_string(attr));
  }
  if (tag >= tag_names_.size()) {
    return Status::NotFound("no such tag id " + std::to_string(tag));
  }
  Attribute& a = attributes_[attr];
  if (std::find(a.tags.begin(), a.tags.end(), tag) == a.tags.end()) {
    a.tags.push_back(tag);
    if (recording_delta_) delta_.retagged_attrs.push_back(attr);
  }
  return Status::OK();
}

TagId DataLake::Tag(TableId table, const std::string& tag_name) {
  TagId id = GetOrCreateTag(tag_name);
  Status st = AttachTag(table, id);
  (void)st;  // AttachTag only fails for invalid ids, which we just created.
  return id;
}

Status DataLake::ComputeTopicVectors(const EmbeddingStore& store) {
  for (Attribute& a : attributes_) {
    TopicAccumulator acc(store.dim());
    if (a.is_text) {
      store.AccumulateDomain(a.values, &acc);
    }
    a.topic_sum = acc.sum();
    a.embedded_count = acc.count();
    a.topic = acc.Mean();
  }
  topic_vectors_computed_ = true;
  topics_computed_upto_ = attributes_.size();
  return Status::OK();
}

Status DataLake::RemoveTable(TableId table) {
  if (table >= tables_.size()) {
    return Status::NotFound("no such table id " + std::to_string(table));
  }
  Table& t = tables_[table];
  if (t.removed) {
    return Status::InvalidArgument("table " + std::to_string(table) +
                                   " already removed");
  }
  t.removed = true;
  table_ids_.erase(t.name);  // Release the name for reuse.
  for (AttributeId aid : t.attributes) {
    attributes_[aid].removed = true;
    if (recording_delta_) delta_.removed_attrs.push_back(aid);
  }
  if (recording_delta_) delta_.removed_tables.push_back(table);
  return Status::OK();
}

Status DataLake::RetagAttribute(AttributeId attr, std::vector<TagId> tags) {
  if (attr >= attributes_.size()) {
    return Status::NotFound("no such attribute id " + std::to_string(attr));
  }
  Attribute& a = attributes_[attr];
  if (a.removed) {
    return Status::InvalidArgument("attribute " + std::to_string(attr) +
                                   " is removed");
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  for (TagId t : tags) {
    if (t >= tag_names_.size()) {
      return Status::NotFound("no such tag id " + std::to_string(t));
    }
  }
  if (tags == a.tags) return Status::OK();  // No net change.
  a.tags = std::move(tags);
  if (recording_delta_) delta_.retagged_attrs.push_back(attr);
  return Status::OK();
}

Status DataLake::ComputeMissingTopicVectors(const EmbeddingStore& store) {
  if (!topic_vectors_computed_) {
    return Status::FailedPrecondition(
        "ComputeMissingTopicVectors requires an initial "
        "ComputeTopicVectors pass");
  }
  for (size_t i = topics_computed_upto_; i < attributes_.size(); ++i) {
    Attribute& a = attributes_[i];
    TopicAccumulator acc(store.dim());
    if (a.is_text) {
      store.AccumulateDomain(a.values, &acc);
    }
    a.topic_sum = acc.sum();
    a.embedded_count = acc.count();
    a.topic = acc.Mean();
  }
  topics_computed_upto_ = attributes_.size();
  return Status::OK();
}

Status DataLake::BeginDelta() {
  if (recording_delta_) {
    return Status::FailedPrecondition("delta recording already active");
  }
  delta_ = LakeDelta();
  recording_delta_ = true;
  return Status::OK();
}

Result<LakeDelta> DataLake::TakeDelta() {
  if (!recording_delta_) {
    return Status::FailedPrecondition("no delta recording active");
  }
  recording_delta_ = false;
  LakeDelta out = std::move(delta_);
  delta_ = LakeDelta();
  out.Normalize();
  return out;
}

TagId DataLake::FindTag(const std::string& name) const {
  auto it = tag_ids_.find(name);
  return it == tag_ids_.end() ? kInvalidId : it->second;
}

TableId DataLake::FindTable(const std::string& name) const {
  auto it = table_ids_.find(name);
  return it == table_ids_.end() ? kInvalidId : it->second;
}

size_t DataLake::NumAttributeTagAssociations() const {
  size_t n = 0;
  for (const Attribute& a : attributes_) n += a.tags.size();
  return n;
}

size_t DataLake::NumAliveTables() const {
  size_t n = 0;
  for (const Table& t : tables_) {
    if (!t.removed) ++n;
  }
  return n;
}

std::vector<AttributeId> DataLake::OrganizableAttributes() const {
  std::vector<AttributeId> out;
  for (const Attribute& a : attributes_) {
    if (a.removed) continue;
    if (a.is_text && a.HasTopic() && !a.tags.empty()) out.push_back(a.id);
  }
  return out;
}

}  // namespace lakeorg
