#include "lake/data_lake.h"

#include <algorithm>

namespace lakeorg {

TableId DataLake::AddTable(std::string name, std::string title,
                           std::string description) {
  TableId id = static_cast<TableId>(tables_.size());
  Table t;
  t.id = id;
  t.name = std::move(name);
  t.title = std::move(title);
  t.description = std::move(description);
  table_ids_.emplace(t.name, id);
  tables_.push_back(std::move(t));
  return id;
}

AttributeId DataLake::AddAttribute(TableId table, std::string name,
                                   std::vector<std::string> values,
                                   bool is_text) {
  AttributeId id = static_cast<AttributeId>(attributes_.size());
  Attribute a;
  a.id = id;
  a.table = table;
  a.name = std::move(name);
  a.values = std::move(values);
  a.is_text = is_text;
  a.tags = tables_.at(table).tags;  // Inherit current table tags.
  tables_.at(table).attributes.push_back(id);
  attributes_.push_back(std::move(a));
  return id;
}

TagId DataLake::GetOrCreateTag(const std::string& name) {
  auto it = tag_ids_.find(name);
  if (it != tag_ids_.end()) return it->second;
  TagId id = static_cast<TagId>(tag_names_.size());
  tag_ids_.emplace(name, id);
  tag_names_.push_back(name);
  return id;
}

Status DataLake::AttachTag(TableId table, TagId tag) {
  if (table >= tables_.size()) {
    return Status::NotFound("no such table id " + std::to_string(table));
  }
  if (tag >= tag_names_.size()) {
    return Status::NotFound("no such tag id " + std::to_string(tag));
  }
  Table& t = tables_[table];
  if (std::find(t.tags.begin(), t.tags.end(), tag) != t.tags.end()) {
    return Status::OK();  // Idempotent.
  }
  t.tags.push_back(tag);
  for (AttributeId aid : t.attributes) {
    Attribute& a = attributes_[aid];
    if (std::find(a.tags.begin(), a.tags.end(), tag) == a.tags.end()) {
      a.tags.push_back(tag);
    }
  }
  return Status::OK();
}

Status DataLake::AttachTagMetadataOnly(TableId table, TagId tag) {
  if (table >= tables_.size()) {
    return Status::NotFound("no such table id " + std::to_string(table));
  }
  if (tag >= tag_names_.size()) {
    return Status::NotFound("no such tag id " + std::to_string(tag));
  }
  Table& t = tables_[table];
  if (std::find(t.tags.begin(), t.tags.end(), tag) == t.tags.end()) {
    t.tags.push_back(tag);
  }
  return Status::OK();
}

Status DataLake::AttachTagToAttribute(AttributeId attr, TagId tag) {
  if (attr >= attributes_.size()) {
    return Status::NotFound("no such attribute id " + std::to_string(attr));
  }
  if (tag >= tag_names_.size()) {
    return Status::NotFound("no such tag id " + std::to_string(tag));
  }
  Attribute& a = attributes_[attr];
  if (std::find(a.tags.begin(), a.tags.end(), tag) == a.tags.end()) {
    a.tags.push_back(tag);
  }
  return Status::OK();
}

TagId DataLake::Tag(TableId table, const std::string& tag_name) {
  TagId id = GetOrCreateTag(tag_name);
  Status st = AttachTag(table, id);
  (void)st;  // AttachTag only fails for invalid ids, which we just created.
  return id;
}

Status DataLake::ComputeTopicVectors(const EmbeddingStore& store) {
  for (Attribute& a : attributes_) {
    TopicAccumulator acc(store.dim());
    if (a.is_text) {
      store.AccumulateDomain(a.values, &acc);
    }
    a.topic_sum = acc.sum();
    a.embedded_count = acc.count();
    a.topic = acc.Mean();
  }
  topic_vectors_computed_ = true;
  return Status::OK();
}

TagId DataLake::FindTag(const std::string& name) const {
  auto it = tag_ids_.find(name);
  return it == tag_ids_.end() ? kInvalidId : it->second;
}

TableId DataLake::FindTable(const std::string& name) const {
  auto it = table_ids_.find(name);
  return it == table_ids_.end() ? kInvalidId : it->second;
}

size_t DataLake::NumAttributeTagAssociations() const {
  size_t n = 0;
  for (const Attribute& a : attributes_) n += a.tags.size();
  return n;
}

std::vector<AttributeId> DataLake::OrganizableAttributes() const {
  std::vector<AttributeId> out;
  for (const Attribute& a : attributes_) {
    if (a.is_text && a.HasTopic() && !a.tags.empty()) out.push_back(a.id);
  }
  return out;
}

}  // namespace lakeorg
