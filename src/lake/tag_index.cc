#include "lake/tag_index.h"

#include <cassert>

namespace lakeorg {

TagIndex TagIndex::Build(const DataLake& lake) {
  assert(lake.topic_vectors_computed());
  TagIndex index;
  size_t num_tags = lake.num_tags();
  index.extents_.resize(num_tags);
  index.value_count_.assign(num_tags, 0);

  size_t dim = 0;
  for (const Attribute& a : lake.attributes()) {
    if (!a.topic_sum.empty()) {
      dim = a.topic_sum.size();
      break;
    }
  }
  index.topic_sum_.assign(num_tags, Vec(dim, 0.0f));
  index.topic_.assign(num_tags, Vec(dim, 0.0f));

  for (AttributeId aid : lake.OrganizableAttributes()) {
    const Attribute& a = lake.attribute(aid);
    for (TagId t : a.tags) {
      index.extents_[t].push_back(aid);
      AddInPlace(&index.topic_sum_[t], a.topic_sum);
      index.value_count_[t] += a.embedded_count;
    }
  }
  for (TagId t = 0; t < num_tags; ++t) {
    if (!index.extents_[t].empty()) {
      index.non_empty_.push_back(t);
      index.topic_[t] = index.topic_sum_[t];
      if (index.value_count_[t] > 0) {
        ScaleInPlace(&index.topic_[t],
                     static_cast<float>(
                         1.0 / static_cast<double>(index.value_count_[t])));
      }
    }
  }
  return index;
}

}  // namespace lakeorg
