// Structural serialization of the DataLake catalog to canonical JSON
// (common/json: sorted keys, one number format — byte-identical dumps for
// identical lakes). The codec captures everything the catalog owns —
// tables with tombstones and metadata-only tags, attributes with value
// domains and per-attribute tag sets, the tag name table — but NOT the
// derived topic vectors: those are recomputed from an EmbeddingStore
// after load (deterministic, and per-attribute independent, so a reload
// is bit-identical to the original computation). Used by the durability
// subsystem's compacted snapshots (lake/wal) and by orgtool.
#pragma once

#include "common/json.h"
#include "common/status.h"
#include "lake/data_lake.h"
#include "lake/lake_delta.h"

namespace lakeorg {

/// Lake -> canonical JSON object. Ids are positional (tables/attributes/
/// tags serialize in id order), so the dump is deterministic.
Json LakeToJson(const DataLake& lake);

/// JSON -> lake. The result has no topic vectors; callers that need them
/// run ComputeTopicVectors with the same store the original lake used.
/// Fails with InvalidArgument on shape violations or out-of-range ids.
Result<DataLake> LakeFromJson(const Json& json);

/// LakeDelta <-> canonical JSON (WAL records and wal-dump).
Json DeltaToJson(const LakeDelta& delta);
Result<LakeDelta> DeltaFromJson(const Json& json);

}  // namespace lakeorg
