#include "lake/csv_loader.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <set>

#include "common/string_util.h"

namespace lakeorg {

std::vector<std::vector<std::string>> ParseCsv(std::istream* in,
                                               char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool row_started = false;

  auto end_field = [&]() {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(row);
    row.clear();
    row_started = false;
  };

  char c;
  while (in->get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in->peek() == '"') {
          field.push_back('"');
          in->get(c);
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_started) {
      in_quotes = true;
      field_started = true;
      row_started = true;
    } else if (c == delimiter) {
      end_field();
      row_started = true;
    } else if (c == '\n') {
      if (row_started || field_started || !field.empty() ||
          !row.empty()) {
        end_row();
      }
    } else if (c == '\r') {
      // Swallow; \r\n handled by the following \n, bare \r ignored.
    } else {
      field.push_back(c);
      field_started = true;
      row_started = true;
    }
  }
  if (row_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

bool LooksNumeric(const std::string& value) {
  std::string v = Trim(value);
  if (v.empty()) return false;
  char* end = nullptr;
  std::strtod(v.c_str(), &end);
  return end == v.c_str() + v.size();
}

Result<TableId> LoadCsvTable(DataLake* lake, const std::string& table_name,
                             std::istream* in,
                             const std::vector<std::string>& tags,
                             const CsvOptions& options) {
  std::vector<std::vector<std::string>> rows =
      ParseCsv(in, options.delimiter);
  // get() stops on both EOF and a stream error; only EOF means "we read
  // the whole input". A badbit here is a short read — refuse rather than
  // silently loading a truncated table.
  if (in->bad()) {
    return Status::Internal("read error while parsing CSV for table " +
                            table_name);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV input for table " +
                                   table_name);
  }
  size_t num_cols = 0;
  for (const auto& row : rows) num_cols = std::max(num_cols, row.size());
  if (num_cols == 0) {
    return Status::InvalidArgument("CSV has no columns: " + table_name);
  }

  std::vector<std::string> names(num_cols);
  size_t data_start = 0;
  if (options.has_header) {
    for (size_t c = 0; c < num_cols; ++c) {
      names[c] = c < rows[0].size() ? Trim(rows[0][c]) : "";
      if (names[c].empty()) names[c] = "col_" + std::to_string(c);
    }
    data_start = 1;
  } else {
    for (size_t c = 0; c < num_cols; ++c) {
      names[c] = "col_" + std::to_string(c);
    }
  }

  TableId table = lake->AddTable(table_name);
  for (const std::string& tag : tags) lake->Tag(table, tag);

  for (size_t c = 0; c < num_cols; ++c) {
    std::set<std::string> distinct;
    size_t non_empty = 0;
    size_t numeric = 0;
    for (size_t r = data_start; r < rows.size(); ++r) {
      if (c >= rows[r].size()) continue;
      std::string value = Trim(rows[r][c]);
      if (value.empty() && options.skip_empty_values) continue;
      ++non_empty;
      if (LooksNumeric(value)) ++numeric;
      if (distinct.size() < options.max_distinct_values) {
        distinct.insert(std::move(value));
      }
    }
    bool is_text = true;
    if (non_empty > 0) {
      double numeric_fraction =
          static_cast<double>(numeric) / static_cast<double>(non_empty);
      is_text = numeric_fraction < options.numeric_threshold;
    }
    lake->AddAttribute(table, names[c],
                       std::vector<std::string>(distinct.begin(),
                                                distinct.end()),
                       is_text);
  }
  return table;
}

namespace {

/// Quotes one field when needed.
std::string CsvField(const std::string& value, char delimiter) {
  bool needs_quotes =
      value.find(delimiter) != std::string::npos ||
      value.find('"') != std::string::npos ||
      value.find('\n') != std::string::npos ||
      value.find('\r') != std::string::npos;
  if (!needs_quotes) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += "\"";
  return quoted;
}

}  // namespace

Status WriteCsv(const std::vector<std::vector<std::string>>& rows,
                std::ostream* out, char delimiter) {
  for (const std::vector<std::string>& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out->put(delimiter);
      *out << CsvField(row[i], delimiter);
    }
    out->put('\n');
  }
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status ExportTableCsv(const DataLake& lake, TableId table,
                      std::ostream* out, char delimiter) {
  if (table >= lake.num_tables()) {
    return Status::NotFound("no such table id " + std::to_string(table));
  }
  const Table& t = lake.table(table);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  size_t max_rows = 0;
  for (AttributeId aid : t.attributes) {
    const Attribute& a = lake.attribute(aid);
    header.push_back(a.name);
    max_rows = std::max(max_rows, a.values.size());
  }
  rows.push_back(std::move(header));
  for (size_t r = 0; r < max_rows; ++r) {
    std::vector<std::string> row;
    for (AttributeId aid : t.attributes) {
      const Attribute& a = lake.attribute(aid);
      row.push_back(r < a.values.size() ? a.values[r] : "");
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows, out, delimiter);
}

Result<TableId> LoadCsvFile(DataLake* lake, const std::string& path,
                            const std::vector<std::string>& tags,
                            const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  // Table name: filename stem.
  size_t slash = path.find_last_of("/\\");
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return LoadCsvTable(lake, name, &in, tags, options);
}

}  // namespace lakeorg
