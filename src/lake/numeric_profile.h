// Numerical-attribute profiling — the paper's first future-work item
// ("extending the organization to include numerical ... columns").
// Section 3.1 observes that raw set overlap on numeric domains is
// misleading; instead of value identity we compare *distributions*: each
// numeric attribute gets a quantile sketch, and similarity is measured by
// distribution overlap (a bounded transform of the quantile-wise
// distance), which is stable under resampling and scale-aware.
//
// This module is self-contained and opt-in: the core organization pipeline
// still runs over text attributes only, exactly as in the paper; numeric
// profiles enable future mixed organizations and are exercised by their
// own tests and example code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "lake/data_lake.h"

namespace lakeorg {

/// A quantile sketch of a numeric domain.
struct NumericProfile {
  /// Number of values that parsed as numbers.
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Evenly spaced quantiles q_0 .. q_{k-1} (q_0 = min, q_{k-1} = max).
  std::vector<double> quantiles;

  /// True when enough values parsed to make the profile meaningful.
  bool Valid() const { return count >= 2 && quantiles.size() >= 2; }
};

/// Builds a profile from raw string values (non-numeric values are
/// skipped). `num_quantiles` >= 2.
NumericProfile ProfileNumericValues(const std::vector<std::string>& values,
                                    size_t num_quantiles = 9);

/// Builds the profile of a lake attribute's domain.
NumericProfile ProfileAttribute(const DataLake& lake, AttributeId attr,
                                size_t num_quantiles = 9);

/// Distribution similarity in [0, 1]: 1 for identical quantile sketches,
/// decaying with the mean normalized quantile displacement. Profiles with
/// disjoint ranges score near 0. Both profiles must be Valid() and have
/// the same quantile count.
double NumericSimilarity(const NumericProfile& a, const NumericProfile& b);

/// Jaccard similarity of the raw value sets — the baseline the paper calls
/// "very misleading" for numeric attributes; exposed so callers (and the
/// tests) can compare the two measures.
double NumericValueJaccard(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);

}  // namespace lakeorg
