// Identifier types for data lake entities.
#pragma once

#include <cstdint>

namespace lakeorg {

/// Index of an attribute within a DataLake.
using AttributeId = uint32_t;
/// Index of a table within a DataLake.
using TableId = uint32_t;
/// Index of a tag within a DataLake.
using TagId = uint32_t;

/// Sentinel for "no id".
inline constexpr uint32_t kInvalidId = UINT32_MAX;

}  // namespace lakeorg
