#include "lake/lake_stats.h"

#include <sstream>

#include "common/stats.h"
#include "common/string_util.h"

namespace lakeorg {

LakeStats ComputeLakeStats(const DataLake& lake) {
  LakeStats s;
  s.num_tables = lake.num_tables();
  s.num_attributes = lake.num_attributes();
  s.num_tags = lake.num_tags();
  s.num_attribute_tag_associations = lake.NumAttributeTagAssociations();

  std::vector<double> tags_per_table;
  std::vector<double> attrs_per_table;
  size_t tables_with_text = 0;
  for (const Table& t : lake.tables()) {
    tags_per_table.push_back(static_cast<double>(t.tags.size()));
    attrs_per_table.push_back(static_cast<double>(t.attributes.size()));
    for (AttributeId aid : t.attributes) {
      if (lake.attribute(aid).is_text) {
        ++tables_with_text;
        break;
      }
    }
  }
  for (const Attribute& a : lake.attributes()) {
    if (a.is_text) ++s.num_text_attributes;
  }
  s.text_attribute_fraction =
      s.num_attributes == 0
          ? 0.0
          : static_cast<double>(s.num_text_attributes) /
                static_cast<double>(s.num_attributes);
  s.tables_with_text_fraction =
      s.num_tables == 0 ? 0.0
                        : static_cast<double>(tables_with_text) /
                              static_cast<double>(s.num_tables);
  s.mean_tags_per_table = Mean(tags_per_table);
  s.median_tags_per_table = Median(tags_per_table);
  s.max_tags_per_table = Max(tags_per_table);
  s.mean_attrs_per_table = Mean(attrs_per_table);
  s.median_attrs_per_table = Median(attrs_per_table);
  s.max_attrs_per_table = Max(attrs_per_table);
  return s;
}

std::string FormatLakeStats(const LakeStats& s) {
  std::ostringstream out;
  out << "tables: " << s.num_tables << "\n"
      << "attributes: " << s.num_attributes << " (text: "
      << s.num_text_attributes << ", "
      << FormatDouble(100.0 * s.text_attribute_fraction, 1) << "%)\n"
      << "tables with >=1 text attribute: "
      << FormatDouble(100.0 * s.tables_with_text_fraction, 1) << "%\n"
      << "tags: " << s.num_tags << "\n"
      << "attribute-tag associations: " << s.num_attribute_tag_associations
      << "\n"
      << "tags/table mean=" << FormatDouble(s.mean_tags_per_table, 2)
      << " median=" << FormatDouble(s.median_tags_per_table, 1)
      << " max=" << FormatDouble(s.max_tags_per_table, 0) << "\n"
      << "attrs/table mean=" << FormatDouble(s.mean_attrs_per_table, 2)
      << " median=" << FormatDouble(s.median_attrs_per_table, 1)
      << " max=" << FormatDouble(s.max_attrs_per_table, 0) << "\n";
  return out.str();
}

}  // namespace lakeorg
