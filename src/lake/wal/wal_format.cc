#include "lake/wal/wal_format.h"

#include <array>

namespace lakeorg {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string_view WalFileHeader() {
  // 14 visible bytes + 2 NULs = 16.
  static constexpr std::string_view kHeader{"lakeorgwal v1\n\0\0", 16};
  return kHeader;
}

void AppendWalFrame(std::string_view payload, std::string* out) {
  PutU32Le(static_cast<uint32_t>(payload.size()), out);
  PutU32Le(Crc32(payload.data(), payload.size()), out);
  out->append(payload);
}

Result<WalScan> ScanWalBuffer(std::string_view data) {
  WalScan scan;
  const size_t header = WalFileHeader().size();
  if (data.size() < header) {
    // Crash before the header hit disk: an empty log.
    scan.dropped_tail = !data.empty();
    scan.dropped_bytes = data.size();
    return scan;
  }
  if (data.substr(0, header) != WalFileHeader()) {
    return Status::InvalidArgument("WAL header mismatch (corrupt log)");
  }
  size_t off = header;
  scan.valid_bytes = header;
  while (off < data.size()) {
    size_t remaining = data.size() - off;
    if (remaining < kWalRecordHeaderSize) {
      scan.dropped_tail = true;  // Torn record header.
      scan.dropped_bytes = remaining;
      break;
    }
    uint32_t len = GetU32Le(data.data() + off);
    uint32_t crc = GetU32Le(data.data() + off + 4);
    if (remaining - kWalRecordHeaderSize < len) {
      scan.dropped_tail = true;  // Torn payload.
      scan.dropped_bytes = remaining;
      break;
    }
    std::string_view payload =
        data.substr(off + kWalRecordHeaderSize, len);
    if (Crc32(payload.data(), payload.size()) != crc) {
      if (off + kWalRecordHeaderSize + len == data.size()) {
        // A torn write can garble the final record in place; dropping it
        // loses only the not-yet-acknowledged tail.
        scan.dropped_tail = true;
        scan.dropped_bytes = remaining;
        break;
      }
      return Status::InvalidArgument(
          "WAL record at offset " + std::to_string(off) +
          " fails its CRC with records following (mid-log corruption)");
    }
    scan.payloads.emplace_back(payload);
    off += kWalRecordHeaderSize + len;
    scan.valid_bytes = off;
  }
  return scan;
}

}  // namespace lakeorg
