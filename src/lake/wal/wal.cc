#include "lake/wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.h"

namespace lakeorg {
namespace {

namespace fs = std::filesystem;

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path +
                          "' failed: " + std::strerror(errno));
}

/// Reads a whole file; NotFound when it does not exist.
Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  // Explicit read loop: streaming through rdbuf() would swallow read
  // errors (e.g. the path being a directory) as an empty result.
  std::string out;
  char buf[65536];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    out.append(buf, static_cast<size_t>(in.gcount()));
  }
  if (in.bad()) {
    return Status::Internal("read of '" + path + "' failed");
  }
  return out;
}

/// Writes `fd` fully, retrying short writes and EINTR.
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write to", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) return Errno("fsync of", path);
  obs::GetCounter("wal.fsyncs_total").Add();
  return Status::OK();
}

/// fsyncs a directory so a rename/creat inside it is durable.
Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open of directory", dir);
  Status st = FsyncFd(fd, dir);
  ::close(fd);
  return st;
}

/// Writes `contents` to `path` atomically: tmp file, fsync, rename,
/// directory fsync. The tmp file is removed on failure.
Status WriteFileDurably(const std::string& dir, const std::string& path,
                        const std::string& contents) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("create of", tmp);
  Status st = WriteAll(fd, contents.data(), contents.size(), tmp);
  if (st.ok()) st = FsyncFd(fd, tmp);
  if (::close(fd) != 0 && st.ok()) st = Errno("close of", tmp);
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Errno("rename of", tmp);
  }
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  return FsyncDir(dir);
}

/// Parses the <seq> out of a "snapshot-<seq>.json" filename; returns
/// false for every other name (including the .tmp leftovers).
bool ParseSnapshotName(const std::string& name, uint64_t* seq) {
  constexpr std::string_view kPrefix = "snapshot-";
  constexpr std::string_view kSuffix = ".json";
  if (name.size() <= kPrefix.size() + kSuffix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0 ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return false;
  }
  std::string digits = name.substr(
      kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

/// Snapshot sequence numbers present in `dir`, unordered.
std::vector<uint64_t> ListSnapshotSeqs(const std::string& dir) {
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    if (ParseSnapshotName(e.path().filename().string(), &seq)) {
      seqs.push_back(seq);
    }
  }
  return seqs;
}

}  // namespace

std::string WalLogPath(const std::string& dir) { return dir + "/wal.log"; }

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  return dir + "/snapshot-" + std::to_string(seq) + ".json";
}

Result<WalDirState> ReadWalDir(const std::string& dir) {
  WalDirState state;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return state;

  std::vector<uint64_t> seqs = ListSnapshotSeqs(dir);
  if (!seqs.empty()) {
    uint64_t latest = *std::max_element(seqs.begin(), seqs.end());
    Result<std::string> contents = ReadFile(SnapshotPath(dir, latest));
    if (!contents.ok()) {
      // Snapshots are written atomically, so an unreadable newest
      // snapshot is real corruption — refuse rather than silently fall
      // back to an older one (the log may have been compacted past it).
      return Status::InvalidArgument(
          "newest snapshot " + SnapshotPath(dir, latest) +
          " is unreadable: " + contents.status().message());
    }
    state.has_snapshot = true;
    state.snapshot_seq = latest;
    state.snapshot_contents = std::move(contents).value();
  }

  Result<std::string> log = ReadFile(WalLogPath(dir));
  if (!log.ok()) {
    if (log.status().code() == StatusCode::kNotFound) return state;
    return log.status();
  }
  Result<WalScan> scan = ScanWalBuffer(log.value());
  if (!scan.ok()) return scan.status();
  WalScan s = std::move(scan).value();
  state.wal_payloads = std::move(s.payloads);
  state.dropped_tail = s.dropped_tail;
  state.dropped_bytes = s.dropped_bytes;
  return state;
}

Result<DurableLog> DurableLog::Open(WalOptions options) {
  if (options.group_commit_window < 1) {
    return Status::InvalidArgument(
        "WalOptions.group_commit_window must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create WAL directory '" + options.dir +
                            "': " + ec.message());
  }

  std::string path = WalLogPath(options.dir);
  uint64_t valid_bytes = WalFileHeader().size();
  bool fresh = true;
  Result<std::string> existing = ReadFile(path);
  if (existing.ok()) {
    Result<WalScan> scan = ScanWalBuffer(existing.value());
    if (!scan.ok()) return scan.status();
    // A pre-header crash leaves a short prefix; rewrite from scratch.
    fresh = existing.value().size() < WalFileHeader().size();
    if (!fresh) valid_bytes = scan.value().valid_bytes;
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }

  DurableLog log(std::move(options));
  log.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (log.fd_ < 0) return Errno("open of", path);

  if (fresh) {
    if (::ftruncate(log.fd_, 0) != 0) return Errno("truncate of", path);
    std::string_view header = WalFileHeader();
    LAKEORG_RETURN_NOT_OK(
        WriteAll(log.fd_, header.data(), header.size(), path));
    LAKEORG_RETURN_NOT_OK(FsyncFd(log.fd_, path));
    LAKEORG_RETURN_NOT_OK(FsyncDir(log.options_.dir));
    log.log_bytes_ = header.size();
  } else {
    // Drop any torn tail so appends resume after the last valid record.
    if (::ftruncate(log.fd_, static_cast<off_t>(valid_bytes)) != 0) {
      return Errno("truncate of", path);
    }
    if (::lseek(log.fd_, 0, SEEK_END) < 0) return Errno("seek in", path);
    log.log_bytes_ = valid_bytes;
  }
  return log;
}

DurableLog::DurableLog(DurableLog&& other) noexcept
    : options_(std::move(other.options_)),
      fd_(std::exchange(other.fd_, -1)),
      pending_(std::move(other.pending_)),
      pending_records_(std::exchange(other.pending_records_, 0)),
      dirty_(std::exchange(other.dirty_, false)),
      appended_records_(other.appended_records_),
      log_bytes_(other.log_bytes_) {}

DurableLog& DurableLog::operator=(DurableLog&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) {
    (void)FlushAndSync();
    ::close(fd_);
  }
  options_ = std::move(other.options_);
  fd_ = std::exchange(other.fd_, -1);
  pending_ = std::move(other.pending_);
  pending_records_ = std::exchange(other.pending_records_, 0);
  dirty_ = std::exchange(other.dirty_, false);
  appended_records_ = other.appended_records_;
  log_bytes_ = other.log_bytes_;
  return *this;
}

DurableLog::~DurableLog() {
  if (fd_ < 0) return;
  (void)FlushAndSync();
  ::close(fd_);
}

Status DurableLog::Append(std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  AppendWalFrame(payload, &pending_);
  ++pending_records_;
  ++appended_records_;
  obs::GetCounter("wal.appends_total").Add();
  obs::GetCounter("wal.appended_bytes_total")
      .Add(kWalRecordHeaderSize + payload.size());
  if (pending_records_ >= options_.group_commit_window) {
    return FlushAndSync();
  }
  return Status::OK();
}

Status DurableLog::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  return FlushAndSync();
}

Status DurableLog::WritePending() {
  if (pending_.empty()) return Status::OK();
  LAKEORG_RETURN_NOT_OK(WriteAll(fd_, pending_.data(), pending_.size(),
                                 WalLogPath(options_.dir)));
  log_bytes_ += pending_.size();
  pending_.clear();
  pending_records_ = 0;
  dirty_ = true;
  return Status::OK();
}

Status DurableLog::FlushAndSync() {
  LAKEORG_RETURN_NOT_OK(WritePending());
  if (!dirty_) return Status::OK();
  LAKEORG_RETURN_NOT_OK(FsyncFd(fd_, WalLogPath(options_.dir)));
  dirty_ = false;
  return Status::OK();
}

Status DurableLog::WriteSnapshot(uint64_t seq, const std::string& contents) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  // The log must be durable before the snapshot claims to cover it.
  LAKEORG_RETURN_NOT_OK(FlushAndSync());
  LAKEORG_RETURN_NOT_OK(WriteFileDurably(
      options_.dir, SnapshotPath(options_.dir, seq), contents));
  obs::GetCounter("wal.snapshots_total").Add();
  obs::GetGauge("wal.snapshot_bytes").Set(static_cast<double>(contents.size()));

  for (uint64_t old : ListSnapshotSeqs(options_.dir)) {
    if (old < seq) ::unlink(SnapshotPath(options_.dir, old).c_str());
  }

  if (options_.truncate_on_snapshot) {
    // Records <= seq are covered by the snapshot; replay skips them by
    // sequence number anyway, so a crash between the rename above and
    // this truncate only leaves redundant records behind.
    std::string path = WalLogPath(options_.dir);
    size_t header = WalFileHeader().size();
    if (::ftruncate(fd_, static_cast<off_t>(header)) != 0) {
      return Errno("truncate of", path);
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) return Errno("seek in", path);
    LAKEORG_RETURN_NOT_OK(FsyncFd(fd_, path));
    log_bytes_ = header;
  }
  return Status::OK();
}

}  // namespace lakeorg
