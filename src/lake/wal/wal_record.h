// Logical WAL payloads: the record envelope every Apply appends, and the
// compacted-snapshot document (docs/DURABILITY.md). Both serialize
// through canonical JSON, so identical logical content is byte-identical
// on disk — which is what lets the crash-recovery fuzz tier demand
// bit-identical recovered state.
//
// The organization inside a snapshot is carried as opaque text in
// core/serialization's line format; this layer does not depend on core.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "lake/lake_delta.h"
#include "lake/wal/lake_mutation.h"

namespace lakeorg {

/// One appended Apply: its sequence number (1-based, monotonic,
/// contiguous), the replayable mutation batch, and the normalized delta
/// the original execution produced — replay cross-checks its own delta
/// against it to catch divergence before publishing anything.
struct WalRecord {
  uint64_t seq = 0;
  LakeMutationBatch batch;
  LakeDelta delta;
};

/// Record <-> canonical JSON text (the framed WAL payload).
std::string WalRecordToText(const WalRecord& record);
Result<WalRecord> WalRecordFromText(const std::string& text);

/// A compacted snapshot: the full catalog plus the published
/// organization at WAL sequence `wal_seq`. Recovery loads the newest
/// snapshot and replays only records with seq > wal_seq.
struct DurableSnapshot {
  uint64_t wal_seq = 0;
  double effectiveness = 0.0;
  /// Catalog as lake/lake_serialization JSON.
  Json lake;
  /// Organization in core/serialization's text format.
  std::string organization;
};

/// Snapshot <-> canonical JSON text (the snapshot-<seq>.json contents).
std::string DurableSnapshotToText(const DurableSnapshot& snapshot);
Result<DurableSnapshot> DurableSnapshotFromText(const std::string& text);

}  // namespace lakeorg
