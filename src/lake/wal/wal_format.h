// On-disk framing of the write-ahead log (docs/DURABILITY.md).
//
// A WAL file is a 16-byte header followed by length-prefixed records:
//
//   header:  "lakeorgwal v1\n" padded with NULs to 16 bytes
//   record:  u32 payload length (LE) | u32 CRC32 of payload (LE) | payload
//
// The payload is one canonical-JSON document (common/json), so records
// are byte-identical across runs for identical logical content. Torn-tail
// policy: a final record whose header or payload is cut short — or whose
// CRC fails with nothing after it — is a torn write and is dropped; a
// CRC failure with more bytes following is mid-log corruption and the
// scan refuses the whole file rather than silently resuming.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lakeorg {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum of
/// zip/zlib. Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size);

/// The 16-byte WAL file header.
std::string_view WalFileHeader();

/// Bytes of the per-record frame before the payload (length + CRC).
inline constexpr size_t kWalRecordHeaderSize = 8;

/// Frames `payload` and appends it to `out`.
void AppendWalFrame(std::string_view payload, std::string* out);

/// Result of scanning a WAL buffer up to the first torn record.
struct WalScan {
  /// CRC-valid payloads, in file order.
  std::vector<std::string> payloads;
  /// Bytes covered by the header plus every valid record — the length a
  /// recovered log is truncated to before appending resumes.
  uint64_t valid_bytes = 0;
  /// True when a torn (incomplete or CRC-failed) final record was
  /// dropped; the dropped byte count follows.
  bool dropped_tail = false;
  uint64_t dropped_bytes = 0;
};

/// Scans a whole WAL file image. An empty buffer, or one shorter than the
/// header (a crash before the header reached disk), scans as a valid
/// empty log with the short prefix dropped. A present-but-wrong header,
/// or a CRC mismatch on any record that is not the file's final record,
/// is corruption: the scan returns InvalidArgument instead of a prefix.
Result<WalScan> ScanWalBuffer(std::string_view data);

}  // namespace lakeorg
