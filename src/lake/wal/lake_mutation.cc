#include "lake/wal/lake_mutation.h"

#include <utility>

namespace lakeorg {
namespace {

const char* KindName(LakeOp::Kind kind) {
  switch (kind) {
    case LakeOp::Kind::kAddTable:
      return "add_table";
    case LakeOp::Kind::kAddAttribute:
      return "add_attribute";
    case LakeOp::Kind::kCreateTag:
      return "create_tag";
    case LakeOp::Kind::kAttachTag:
      return "attach_tag";
    case LakeOp::Kind::kAttachTagToAttribute:
      return "attach_tag_to_attribute";
    case LakeOp::Kind::kAttachTagMetadataOnly:
      return "attach_tag_metadata_only";
    case LakeOp::Kind::kRemoveTable:
      return "remove_table";
    case LakeOp::Kind::kRetagAttribute:
      return "retag_attribute";
  }
  return "?";
}

Result<LakeOp::Kind> KindFromName(const std::string& name) {
  static constexpr LakeOp::Kind kAll[] = {
      LakeOp::Kind::kAddTable,
      LakeOp::Kind::kAddAttribute,
      LakeOp::Kind::kCreateTag,
      LakeOp::Kind::kAttachTag,
      LakeOp::Kind::kAttachTagToAttribute,
      LakeOp::Kind::kAttachTagMetadataOnly,
      LakeOp::Kind::kRemoveTable,
      LakeOp::Kind::kRetagAttribute,
  };
  for (LakeOp::Kind k : kAll) {
    if (name == KindName(k)) return k;
  }
  return Status::InvalidArgument("unknown lake op kind '" + name + "'");
}

Result<uint32_t> U32Field(const Json& obj, const char* key) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->is_number() || v->number() < 0 ||
      v->number() > static_cast<double>(kInvalidId)) {
    return Status::InvalidArgument(std::string("lake op: bad id field '") +
                                   key + "'");
  }
  return static_cast<uint32_t>(v->number());
}

}  // namespace

bool operator==(const LakeOp& a, const LakeOp& b) {
  return a.kind == b.kind && a.name == b.name && a.title == b.title &&
         a.description == b.description && a.values == b.values &&
         a.is_text == b.is_text && a.subject == b.subject &&
         a.tags == b.tags && a.result_id == b.result_id;
}

TableId LakeMutationRecorder::AddTable(std::string name, std::string title,
                                       std::string description) {
  LakeOp op;
  op.kind = LakeOp::Kind::kAddTable;
  op.name = name;
  op.title = title;
  op.description = description;
  TableId id = lake_->AddTable(std::move(name), std::move(title),
                               std::move(description));
  op.result_id = id;
  ops_.push_back(std::move(op));
  return id;
}

AttributeId LakeMutationRecorder::AddAttribute(
    TableId table, std::string name, std::vector<std::string> values,
    bool is_text) {
  LakeOp op;
  op.kind = LakeOp::Kind::kAddAttribute;
  op.subject = table;
  op.name = name;
  op.values = values;
  op.is_text = is_text;
  AttributeId id =
      lake_->AddAttribute(table, std::move(name), std::move(values), is_text);
  op.result_id = id;
  ops_.push_back(std::move(op));
  return id;
}

TagId LakeMutationRecorder::GetOrCreateTag(const std::string& name) {
  LakeOp op;
  op.kind = LakeOp::Kind::kCreateTag;
  op.name = name;
  op.result_id = lake_->GetOrCreateTag(name);
  TagId id = op.result_id;
  ops_.push_back(std::move(op));
  return id;
}

Status LakeMutationRecorder::AttachTag(TableId table, TagId tag) {
  LAKEORG_RETURN_NOT_OK(lake_->AttachTag(table, tag));
  LakeOp op;
  op.kind = LakeOp::Kind::kAttachTag;
  op.subject = table;
  op.tags = {tag};
  ops_.push_back(std::move(op));
  return Status::OK();
}

TagId LakeMutationRecorder::Tag(TableId table, const std::string& tag_name) {
  TagId id = GetOrCreateTag(tag_name);
  Status st = AttachTag(table, id);
  (void)st;  // As DataLake::Tag: the ids were just validated/created.
  return id;
}

Status LakeMutationRecorder::AttachTagToAttribute(AttributeId attr,
                                                  TagId tag) {
  LAKEORG_RETURN_NOT_OK(lake_->AttachTagToAttribute(attr, tag));
  LakeOp op;
  op.kind = LakeOp::Kind::kAttachTagToAttribute;
  op.subject = attr;
  op.tags = {tag};
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status LakeMutationRecorder::AttachTagMetadataOnly(TableId table, TagId tag) {
  LAKEORG_RETURN_NOT_OK(lake_->AttachTagMetadataOnly(table, tag));
  LakeOp op;
  op.kind = LakeOp::Kind::kAttachTagMetadataOnly;
  op.subject = table;
  op.tags = {tag};
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status LakeMutationRecorder::RemoveTable(TableId table) {
  LAKEORG_RETURN_NOT_OK(lake_->RemoveTable(table));
  LakeOp op;
  op.kind = LakeOp::Kind::kRemoveTable;
  op.subject = table;
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status LakeMutationRecorder::RetagAttribute(AttributeId attr,
                                            std::vector<TagId> tags) {
  LakeOp op;
  op.kind = LakeOp::Kind::kRetagAttribute;
  op.subject = attr;
  op.tags = tags;
  LAKEORG_RETURN_NOT_OK(lake_->RetagAttribute(attr, std::move(tags)));
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status ReplayMutationBatch(const LakeMutationBatch& batch, DataLake* lake) {
  for (size_t i = 0; i < batch.size(); ++i) {
    const LakeOp& op = batch[i];
    auto id_mismatch = [&](uint32_t got) {
      return Status::Internal(
          "WAL replay divergence at op " + std::to_string(i) + " (" +
          KindName(op.kind) + "): produced id " + std::to_string(got) +
          ", log recorded " + std::to_string(op.result_id) +
          " — the log does not describe this lake's history");
    };
    switch (op.kind) {
      case LakeOp::Kind::kAddTable: {
        TableId id = lake->AddTable(op.name, op.title, op.description);
        if (id != op.result_id) return id_mismatch(id);
        break;
      }
      case LakeOp::Kind::kAddAttribute: {
        AttributeId id =
            lake->AddAttribute(op.subject, op.name, op.values, op.is_text);
        if (id != op.result_id) return id_mismatch(id);
        break;
      }
      case LakeOp::Kind::kCreateTag: {
        TagId id = lake->GetOrCreateTag(op.name);
        if (id != op.result_id) return id_mismatch(id);
        break;
      }
      case LakeOp::Kind::kAttachTag:
        if (op.tags.size() != 1) {
          return Status::InvalidArgument("attach_tag op without one tag");
        }
        LAKEORG_RETURN_NOT_OK(lake->AttachTag(op.subject, op.tags[0]));
        break;
      case LakeOp::Kind::kAttachTagToAttribute:
        if (op.tags.size() != 1) {
          return Status::InvalidArgument(
              "attach_tag_to_attribute op without one tag");
        }
        LAKEORG_RETURN_NOT_OK(
            lake->AttachTagToAttribute(op.subject, op.tags[0]));
        break;
      case LakeOp::Kind::kAttachTagMetadataOnly:
        if (op.tags.size() != 1) {
          return Status::InvalidArgument(
              "attach_tag_metadata_only op without one tag");
        }
        LAKEORG_RETURN_NOT_OK(
            lake->AttachTagMetadataOnly(op.subject, op.tags[0]));
        break;
      case LakeOp::Kind::kRemoveTable:
        LAKEORG_RETURN_NOT_OK(lake->RemoveTable(op.subject));
        break;
      case LakeOp::Kind::kRetagAttribute:
        LAKEORG_RETURN_NOT_OK(lake->RetagAttribute(op.subject, op.tags));
        break;
    }
  }
  return Status::OK();
}

Json MutationBatchToJson(const LakeMutationBatch& batch) {
  Json arr = Json::MakeArray();
  for (const LakeOp& op : batch) {
    Json j = Json::MakeObject();
    j["op"] = KindName(op.kind);
    switch (op.kind) {
      case LakeOp::Kind::kAddTable:
        j["name"] = op.name;
        j["title"] = op.title;
        j["description"] = op.description;
        j["id"] = static_cast<uint64_t>(op.result_id);
        break;
      case LakeOp::Kind::kAddAttribute: {
        j["table"] = static_cast<uint64_t>(op.subject);
        j["name"] = op.name;
        Json values = Json::MakeArray();
        for (const std::string& v : op.values) values.push_back(v);
        j["values"] = std::move(values);
        j["is_text"] = op.is_text;
        j["id"] = static_cast<uint64_t>(op.result_id);
        break;
      }
      case LakeOp::Kind::kCreateTag:
        j["name"] = op.name;
        j["id"] = static_cast<uint64_t>(op.result_id);
        break;
      case LakeOp::Kind::kAttachTag:
      case LakeOp::Kind::kAttachTagMetadataOnly:
        j["table"] = static_cast<uint64_t>(op.subject);
        j["tag"] = static_cast<uint64_t>(op.tags.empty() ? kInvalidId
                                                         : op.tags[0]);
        break;
      case LakeOp::Kind::kAttachTagToAttribute:
        j["attr"] = static_cast<uint64_t>(op.subject);
        j["tag"] = static_cast<uint64_t>(op.tags.empty() ? kInvalidId
                                                         : op.tags[0]);
        break;
      case LakeOp::Kind::kRemoveTable:
        j["table"] = static_cast<uint64_t>(op.subject);
        break;
      case LakeOp::Kind::kRetagAttribute: {
        j["attr"] = static_cast<uint64_t>(op.subject);
        Json tags = Json::MakeArray();
        for (TagId t : op.tags) tags.push_back(static_cast<uint64_t>(t));
        j["tags"] = std::move(tags);
        break;
      }
    }
    arr.push_back(std::move(j));
  }
  return arr;
}

Result<LakeMutationBatch> MutationBatchFromJson(const Json& json) {
  if (!json.is_array()) {
    return Status::InvalidArgument("mutation batch json: not an array");
  }
  LakeMutationBatch batch;
  batch.reserve(json.array().size());
  for (const Json& j : json.array()) {
    if (!j.is_object()) {
      return Status::InvalidArgument("mutation batch json: op not an object");
    }
    const Json* op_name = j.Find("op");
    if (op_name == nullptr || !op_name->is_string()) {
      return Status::InvalidArgument("mutation batch json: missing op kind");
    }
    Result<LakeOp::Kind> kind = KindFromName(op_name->string());
    if (!kind.ok()) return kind.status();
    LakeOp op;
    op.kind = kind.value();
    auto string_field = [&j](const char* key) -> Result<std::string> {
      const Json* v = j.Find(key);
      if (v == nullptr || !v->is_string()) {
        return Status::InvalidArgument(
            std::string("lake op: missing string field '") + key + "'");
      }
      return v->string();
    };
    switch (op.kind) {
      case LakeOp::Kind::kAddTable: {
        Result<std::string> name = string_field("name");
        if (!name.ok()) return name.status();
        op.name = std::move(name).value();
        Result<std::string> title = string_field("title");
        if (!title.ok()) return title.status();
        op.title = std::move(title).value();
        Result<std::string> desc = string_field("description");
        if (!desc.ok()) return desc.status();
        op.description = std::move(desc).value();
        Result<uint32_t> id = U32Field(j, "id");
        if (!id.ok()) return id.status();
        op.result_id = id.value();
        break;
      }
      case LakeOp::Kind::kAddAttribute: {
        Result<uint32_t> table = U32Field(j, "table");
        if (!table.ok()) return table.status();
        op.subject = table.value();
        Result<std::string> name = string_field("name");
        if (!name.ok()) return name.status();
        op.name = std::move(name).value();
        const Json* values = j.Find("values");
        if (values == nullptr || !values->is_array()) {
          return Status::InvalidArgument("lake op: missing values array");
        }
        for (const Json& v : values->array()) {
          if (!v.is_string()) {
            return Status::InvalidArgument("lake op: value not a string");
          }
          op.values.push_back(v.string());
        }
        const Json* is_text = j.Find("is_text");
        if (is_text == nullptr || !is_text->is_bool()) {
          return Status::InvalidArgument("lake op: missing is_text");
        }
        op.is_text = is_text->bool_value();
        Result<uint32_t> id = U32Field(j, "id");
        if (!id.ok()) return id.status();
        op.result_id = id.value();
        break;
      }
      case LakeOp::Kind::kCreateTag: {
        Result<std::string> name = string_field("name");
        if (!name.ok()) return name.status();
        op.name = std::move(name).value();
        Result<uint32_t> id = U32Field(j, "id");
        if (!id.ok()) return id.status();
        op.result_id = id.value();
        break;
      }
      case LakeOp::Kind::kAttachTag:
      case LakeOp::Kind::kAttachTagMetadataOnly: {
        Result<uint32_t> table = U32Field(j, "table");
        if (!table.ok()) return table.status();
        op.subject = table.value();
        Result<uint32_t> tag = U32Field(j, "tag");
        if (!tag.ok()) return tag.status();
        op.tags = {tag.value()};
        break;
      }
      case LakeOp::Kind::kAttachTagToAttribute: {
        Result<uint32_t> attr = U32Field(j, "attr");
        if (!attr.ok()) return attr.status();
        op.subject = attr.value();
        Result<uint32_t> tag = U32Field(j, "tag");
        if (!tag.ok()) return tag.status();
        op.tags = {tag.value()};
        break;
      }
      case LakeOp::Kind::kRemoveTable: {
        Result<uint32_t> table = U32Field(j, "table");
        if (!table.ok()) return table.status();
        op.subject = table.value();
        break;
      }
      case LakeOp::Kind::kRetagAttribute: {
        Result<uint32_t> attr = U32Field(j, "attr");
        if (!attr.ok()) return attr.status();
        op.subject = attr.value();
        const Json* tags = j.Find("tags");
        if (tags == nullptr || !tags->is_array()) {
          return Status::InvalidArgument("lake op: missing tags array");
        }
        for (const Json& t : tags->array()) {
          if (!t.is_number() || t.number() < 0) {
            return Status::InvalidArgument("lake op: bad tag id");
          }
          op.tags.push_back(static_cast<TagId>(t.number()));
        }
        break;
      }
    }
    batch.push_back(std::move(op));
  }
  return batch;
}

}  // namespace lakeorg
