// Replayable catalog mutations. A LakeOp is one DataLake mutation with
// everything needed to re-execute it (names, value domains, tag sets) plus
// the id the original execution produced, so a replay can verify it
// reconstructs the catalog verbatim. LiveLakeService::ApplyRecorded
// captures a batch through LakeMutationRecorder, appends it to the WAL,
// and crash recovery replays it through ReplayMutationBatch — same code
// path, bit-identical catalog (docs/DURABILITY.md).
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "lake/data_lake.h"
#include "lake/types.h"

namespace lakeorg {

/// One recorded catalog mutation.
struct LakeOp {
  enum class Kind {
    kAddTable,               ///< name/title/description -> result_id
    kAddAttribute,           ///< subject=table, name/values/is_text -> result_id
    kCreateTag,              ///< name -> result_id (GetOrCreateTag)
    kAttachTag,              ///< subject=table, tags[0]
    kAttachTagToAttribute,   ///< subject=attr, tags[0]
    kAttachTagMetadataOnly,  ///< subject=table, tags[0]
    kRemoveTable,            ///< subject=table
    kRetagAttribute,         ///< subject=attr, tags = full new tag set
  };

  Kind kind = Kind::kAddTable;
  std::string name;
  std::string title;
  std::string description;
  std::vector<std::string> values;
  bool is_text = true;
  /// The table/attribute id the op targets (unused for adds of tables/tags).
  uint32_t subject = kInvalidId;
  std::vector<TagId> tags;
  /// The id the original execution returned, for adds; replay verifies it.
  uint32_t result_id = kInvalidId;
};

bool operator==(const LakeOp& a, const LakeOp& b);
inline bool operator!=(const LakeOp& a, const LakeOp& b) { return !(a == b); }

/// One Apply batch's mutations, in execution order.
using LakeMutationBatch = std::vector<LakeOp>;

/// Mirrors the DataLake mutation API, forwarding every call to the
/// wrapped lake while recording it as a LakeOp. The durable Apply path
/// hands one of these to the caller's mutate function instead of the raw
/// lake.
class LakeMutationRecorder {
 public:
  explicit LakeMutationRecorder(DataLake* lake) : lake_(lake) {}

  TableId AddTable(std::string name, std::string title = "",
                   std::string description = "");
  AttributeId AddAttribute(TableId table, std::string name,
                           std::vector<std::string> values,
                           bool is_text = true);
  TagId GetOrCreateTag(const std::string& name);
  Status AttachTag(TableId table, TagId tag);
  /// Convenience: GetOrCreateTag + AttachTag (two recorded ops).
  TagId Tag(TableId table, const std::string& tag_name);
  Status AttachTagToAttribute(AttributeId attr, TagId tag);
  Status AttachTagMetadataOnly(TableId table, TagId tag);
  Status RemoveTable(TableId table);
  Status RetagAttribute(AttributeId attr, std::vector<TagId> tags);

  /// Read access to the lake mid-batch (for picking donors/victims).
  const DataLake& lake() const { return *lake_; }

  /// The ops recorded so far; the recorder is left empty.
  LakeMutationBatch TakeOps() { return std::move(ops_); }

 private:
  DataLake* lake_;
  LakeMutationBatch ops_;
};

/// Re-executes a recorded batch against `lake`. Fails (leaving the lake
/// partially mutated — replay targets are throwaway copies) when an op
/// errors or an add returns a different id than recorded, which means the
/// log does not describe this lake's history.
Status ReplayMutationBatch(const LakeMutationBatch& batch, DataLake* lake);

/// Batch <-> canonical JSON array (WAL record payloads, wal-dump).
Json MutationBatchToJson(const LakeMutationBatch& batch);
Result<LakeMutationBatch> MutationBatchFromJson(const Json& json);

}  // namespace lakeorg
