#include "lake/wal/wal_record.h"

#include <utility>

#include "lake/lake_serialization.h"

namespace lakeorg {
namespace {

constexpr const char* kRecordFormat = "lakeorg-wal-record";
constexpr const char* kSnapshotFormat = "lakeorg-snapshot";
constexpr int kVersion = 1;

Result<Json> ParseEnvelope(const std::string& text, const char* format,
                           const char* what) {
  Result<Json> parsed = Json::Parse(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(std::string(what) + ": " +
                                   parsed.status().message());
  }
  Json json = std::move(parsed).value();
  if (!json.is_object()) {
    return Status::InvalidArgument(std::string(what) + ": not an object");
  }
  const Json* fmt = json.Find("format");
  const Json* ver = json.Find("version");
  if (fmt == nullptr || !fmt->is_string() || fmt->string() != format ||
      ver == nullptr || !ver->is_number() ||
      ver->number() != static_cast<double>(kVersion)) {
    return Status::InvalidArgument(std::string(what) +
                                   ": bad format/version");
  }
  return json;
}

Result<uint64_t> SeqField(const Json& obj, const char* key,
                          const char* what) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->is_number() || v->number() < 0 ||
      v->number() != static_cast<double>(static_cast<uint64_t>(v->number()))) {
    return Status::InvalidArgument(std::string(what) + ": bad '" + key +
                                   "'");
  }
  return static_cast<uint64_t>(v->number());
}

}  // namespace

std::string WalRecordToText(const WalRecord& record) {
  Json root = Json::MakeObject();
  root["format"] = kRecordFormat;
  root["version"] = kVersion;
  root["seq"] = record.seq;
  root["batch"] = MutationBatchToJson(record.batch);
  root["delta"] = DeltaToJson(record.delta);
  return root.Dump();
}

Result<WalRecord> WalRecordFromText(const std::string& text) {
  Result<Json> parsed = ParseEnvelope(text, kRecordFormat, "WAL record");
  if (!parsed.ok()) return parsed.status();
  const Json& json = parsed.value();
  WalRecord record;
  Result<uint64_t> seq = SeqField(json, "seq", "WAL record");
  if (!seq.ok()) return seq.status();
  record.seq = seq.value();
  const Json* batch = json.Find("batch");
  if (batch == nullptr) {
    return Status::InvalidArgument("WAL record: missing batch");
  }
  Result<LakeMutationBatch> ops = MutationBatchFromJson(*batch);
  if (!ops.ok()) return ops.status();
  record.batch = std::move(ops).value();
  const Json* delta = json.Find("delta");
  if (delta == nullptr) {
    return Status::InvalidArgument("WAL record: missing delta");
  }
  Result<LakeDelta> d = DeltaFromJson(*delta);
  if (!d.ok()) return d.status();
  record.delta = std::move(d).value();
  return record;
}

std::string DurableSnapshotToText(const DurableSnapshot& snapshot) {
  Json root = Json::MakeObject();
  root["format"] = kSnapshotFormat;
  root["version"] = kVersion;
  root["wal_seq"] = snapshot.wal_seq;
  root["effectiveness"] = snapshot.effectiveness;
  root["lake"] = snapshot.lake;
  root["organization"] = snapshot.organization;
  return root.Dump();
}

Result<DurableSnapshot> DurableSnapshotFromText(const std::string& text) {
  Result<Json> parsed = ParseEnvelope(text, kSnapshotFormat, "snapshot");
  if (!parsed.ok()) return parsed.status();
  Json json = std::move(parsed).value();
  DurableSnapshot snapshot;
  Result<uint64_t> seq = SeqField(json, "wal_seq", "snapshot");
  if (!seq.ok()) return seq.status();
  snapshot.wal_seq = seq.value();
  const Json* eff = json.Find("effectiveness");
  if (eff == nullptr || !eff->is_number()) {
    return Status::InvalidArgument("snapshot: missing effectiveness");
  }
  snapshot.effectiveness = eff->number();
  auto lake_it = json.object().find("lake");
  if (lake_it == json.object().end() || !lake_it->second.is_object()) {
    return Status::InvalidArgument("snapshot: missing lake");
  }
  snapshot.lake = std::move(lake_it->second);
  const Json* org = json.Find("organization");
  if (org == nullptr || !org->is_string()) {
    return Status::InvalidArgument("snapshot: missing organization");
  }
  snapshot.organization = org->string();
  return snapshot;
}

}  // namespace lakeorg
