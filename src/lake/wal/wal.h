// The durable metadata log: an append-only WAL plus compacted snapshots
// in one directory (docs/DURABILITY.md).
//
// Layout of a WAL directory:
//
//   wal.log               append-only log (lake/wal/wal_format framing)
//   snapshot-<seq>.json   compacted snapshot covering WAL records <= seq
//
// DurableLog owns the open log fd and the group-commit buffer: Append
// frames a payload into a user-space buffer and every
// `group_commit_window` records writes the buffer and fsyncs, so one
// fsync covers the whole batch. Snapshots are written atomically
// (tmp + fsync + rename + directory fsync); after a successful snapshot
// the log is reset to an empty header (compaction) unless
// `truncate_on_snapshot` is off — recovery tolerates either, because
// replay skips records at or below the snapshot's sequence number.
//
// ReadWalDir is the read-only other half: it loads the newest snapshot
// and scans the log tail, applying the torn-tail policy from
// wal_format.h. Recovery proper (rebuilding the lake and organization)
// lives in discovery/live_lake.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lake/wal/wal_format.h"

namespace lakeorg {

/// Durability tuning for one WAL directory.
struct WalOptions {
  /// Directory holding wal.log and snapshots; created if absent.
  std::string dir;
  /// Records per fsync batch. 1 = fsync every Append (safest, slowest);
  /// N > 1 groups N appends under one fsync and can lose up to N - 1
  /// acknowledged-in-memory records on crash (they are torn tail).
  int group_commit_window = 1;
  /// Reset wal.log to an empty header after each successful snapshot.
  bool truncate_on_snapshot = true;
};

/// Everything on disk in a WAL directory, decoded read-only.
struct WalDirState {
  /// True when a snapshot file exists (seq 0 is a valid snapshot: the
  /// initial publish before any WAL record).
  bool has_snapshot = false;
  /// Sequence number the newest snapshot covers.
  uint64_t snapshot_seq = 0;
  /// The newest snapshot's raw JSON text; empty when no snapshot.
  std::string snapshot_contents;
  /// CRC-valid WAL record payloads in file order (canonical JSON text).
  std::vector<std::string> wal_payloads;
  /// Torn-tail accounting from the log scan (wal_format.h).
  bool dropped_tail = false;
  uint64_t dropped_bytes = 0;
};

/// Decodes a WAL directory. A missing directory or missing wal.log reads
/// as an empty state. Mid-log corruption and an unreadable newest
/// snapshot are refused with InvalidArgument — never silently skipped.
Result<WalDirState> ReadWalDir(const std::string& dir);

/// The open, appendable log. Movable, not copyable; the destructor
/// flushes and closes without reporting errors — call Sync() at points
/// whose durability matters.
class DurableLog {
 public:
  /// Opens (creating the directory and log as needed) for appending.
  /// An existing log is scanned first: a torn tail is truncated away so
  /// appends resume after the last valid record; mid-log corruption is
  /// refused (recover or delete the log explicitly instead).
  static Result<DurableLog> Open(WalOptions options);

  DurableLog(DurableLog&& other) noexcept;
  DurableLog& operator=(DurableLog&& other) noexcept;
  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;
  ~DurableLog();

  /// Frames and buffers one record payload. When the group-commit window
  /// fills, the buffer is written and fsynced before returning, making
  /// every record of the batch durable.
  Status Append(std::string_view payload);

  /// Writes any buffered frames and fsyncs. A no-op when nothing has
  /// been appended since the last sync.
  Status Sync();

  /// Atomically writes snapshot-<seq>.json with `contents`, removes
  /// older snapshots, and compacts the log (truncate to header) when
  /// `truncate_on_snapshot` is set. Buffered records are synced first.
  Status WriteSnapshot(uint64_t seq, const std::string& contents);

  /// Records appended through this handle (buffered + durable).
  uint64_t appended_records() const { return appended_records_; }
  /// Log file size in bytes counting buffered-but-unwritten frames.
  uint64_t log_bytes() const { return log_bytes_ + pending_.size(); }
  const WalOptions& options() const { return options_; }

 private:
  explicit DurableLog(WalOptions options) : options_(std::move(options)) {}

  /// Writes pending_ to the fd (no fsync).
  Status WritePending();
  /// WritePending + fsync when anything is unsynced.
  Status FlushAndSync();

  WalOptions options_;
  int fd_ = -1;
  std::string pending_;       ///< Framed records not yet written.
  int pending_records_ = 0;   ///< Records in pending_.
  bool dirty_ = false;        ///< Written bytes not yet fsynced.
  uint64_t appended_records_ = 0;
  uint64_t log_bytes_ = 0;    ///< Bytes written to the fd.
};

/// "<dir>/wal.log" — shared by DurableLog, ReadWalDir, and tests that
/// corrupt the log in place.
std::string WalLogPath(const std::string& dir);
/// "<dir>/snapshot-<seq>.json".
std::string SnapshotPath(const std::string& dir, uint64_t seq);

}  // namespace lakeorg
