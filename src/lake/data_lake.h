// The data lake catalog (section 2.1): a set of tables, each a set of
// attributes with value domains; tables carry curator-provided tags and
// attributes inherit the tags of their table (section 3.2).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "embedding/embedding_store.h"
#include "lake/lake_delta.h"
#include "lake/types.h"

namespace lakeorg {

/// One attribute (column) of a table, with its domain of values and its
/// derived topic representation.
struct Attribute {
  AttributeId id = kInvalidId;
  TableId table = kInvalidId;
  /// Column name.
  std::string name;
  /// Domain: the distinct values of the column.
  std::vector<std::string> values;
  /// True for text attributes; organizations are built over text attributes
  /// only (section 3.1).
  bool is_text = true;
  /// Tags inherited from the owning table.
  std::vector<TagId> tags;
  /// Sum of the embedding vectors of embeddable values (for merging into
  /// state-level topic vectors).
  Vec topic_sum;
  /// Number of values that had embeddings.
  size_t embedded_count = 0;
  /// Topic vector: sample mean of embeddable value vectors (Definition 4).
  Vec topic;
  /// Tombstone: true once the owning table was removed. Ids stay stable;
  /// removed attributes are skipped by OrganizableAttributes().
  bool removed = false;

  /// True once ComputeTopicVectors found at least one embeddable value.
  bool HasTopic() const { return embedded_count > 0; }
};

/// One table of the lake with its attributes, tags and display metadata.
struct Table {
  TableId id = kInvalidId;
  /// Unique table name.
  std::string name;
  /// Human-readable title (metadata; may be empty).
  std::string title;
  /// Free-text description (metadata; may be empty).
  std::string description;
  /// Attribute ids, in insertion order.
  std::vector<AttributeId> attributes;
  /// Tag ids attached to this table.
  std::vector<TagId> tags;
  /// Tombstone: true once RemoveTable dropped this table.
  bool removed = false;
};

/// An in-memory data lake catalog. Construction is append-only: add tables,
/// add attributes to tables, attach tags, then call ComputeTopicVectors
/// once to derive attribute topic representations.
///
/// Live evolution: after the initial build the lake can keep mutating —
/// RemoveTable tombstones a table (ids stay stable), RetagAttribute
/// rewrites an attribute's tag set, and new tables/attributes/tags append
/// as usual. Wrap a batch of mutations in BeginDelta()/TakeDelta() to
/// capture a LakeDelta for RepairOrganization, then call
/// ComputeMissingTopicVectors to derive topics for the appended
/// attributes only.
class DataLake {
 public:
  /// Adds a table and returns its id.
  TableId AddTable(std::string name, std::string title = "",
                   std::string description = "");

  /// Adds an attribute to `table` and returns its id. The attribute
  /// inherits all tags currently attached to the table, and tags attached
  /// later propagate too.
  AttributeId AddAttribute(TableId table, std::string name,
                           std::vector<std::string> values,
                           bool is_text = true);

  /// Returns the id of tag `name`, creating it on first use.
  TagId GetOrCreateTag(const std::string& name);

  /// Attaches tag to table (idempotent) and propagates it to the table's
  /// attributes, present and future.
  Status AttachTag(TableId table, TagId tag);

  /// Convenience: GetOrCreateTag + AttachTag.
  TagId Tag(TableId table, const std::string& tag_name);

  /// Attaches a tag to a single attribute without touching its table (the
  /// metadata-enrichment path of section 4.3.1's "enriched" benchmark).
  Status AttachTagToAttribute(AttributeId attr, TagId tag);

  /// Records a tag on a table WITHOUT propagating it to the table's
  /// attributes. Used by generators that manage attribute-level tags
  /// themselves (TagCloud assigns exactly one tag per attribute).
  Status AttachTagMetadataOnly(TableId table, TagId tag);

  /// Computes topic vectors for all attributes using `store`. Attributes
  /// whose domains contain no embeddable value get a zero topic vector and
  /// HasTopic() == false.
  Status ComputeTopicVectors(const EmbeddingStore& store);

  /// True once ComputeTopicVectors has run.
  bool topic_vectors_computed() const { return topic_vectors_computed_; }

  // Live evolution ----------------------------------------------------------

  /// Tombstones `table` and all of its attributes. Ids remain stable (no
  /// reindexing); the table's name is released for reuse. Idempotent
  /// failure: removing an already-removed table is an error.
  Status RemoveTable(TableId table);

  /// Replaces the tag set of `attr` (all tag ids must already exist).
  /// The owning table's tag metadata is left untouched.
  Status RetagAttribute(AttributeId attr, std::vector<TagId> tags);

  /// Computes topic vectors only for attributes appended since the last
  /// ComputeTopicVectors / ComputeMissingTopicVectors call. Requires an
  /// initial full ComputeTopicVectors.
  Status ComputeMissingTopicVectors(const EmbeddingStore& store);

  /// Starts recording mutations into an internal LakeDelta. Nested
  /// recording is an error.
  Status BeginDelta();

  /// Stops recording and returns the normalized delta of the batch.
  Result<LakeDelta> TakeDelta();

  /// True while a BeginDelta batch is open.
  bool recording_delta() const { return recording_delta_; }

  // Accessors ---------------------------------------------------------------

  size_t num_tables() const { return tables_.size(); }
  size_t num_attributes() const { return attributes_.size(); }
  size_t num_tags() const { return tag_names_.size(); }

  /// Tables that are not tombstoned.
  size_t NumAliveTables() const;

  const Table& table(TableId id) const { return tables_.at(id); }
  const Attribute& attribute(AttributeId id) const {
    return attributes_.at(id);
  }
  const std::string& tag_name(TagId id) const { return tag_names_.at(id); }

  const std::vector<Table>& tables() const { return tables_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const std::vector<std::string>& tag_names() const { return tag_names_; }

  /// Tag id for `name`, or kInvalidId when absent.
  TagId FindTag(const std::string& name) const;

  /// Table id for `name`, or kInvalidId when absent.
  TableId FindTable(const std::string& name) const;

  /// Total number of (attribute, tag) associations in the lake.
  size_t NumAttributeTagAssociations() const;

  /// Ids of text attributes that have a topic vector — the population the
  /// organization is built over.
  std::vector<AttributeId> OrganizableAttributes() const;

 private:
  /// Canonical-JSON structural codec (lake/lake_serialization.h); needs
  /// to rebuild the private maps and topic bookkeeping verbatim.
  friend class LakeJsonCodec;

  std::vector<Table> tables_;
  std::vector<Attribute> attributes_;
  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, TagId> tag_ids_;
  std::unordered_map<std::string, TableId> table_ids_;
  bool topic_vectors_computed_ = false;
  /// Attributes with id < this already have topic vectors.
  size_t topics_computed_upto_ = 0;
  /// Mutation recording for RepairOrganization.
  bool recording_delta_ = false;
  LakeDelta delta_;
};

}  // namespace lakeorg
