// A LakeDelta records the net effect of a batch of catalog mutations
// (table/attribute/tag additions and removals, attribute retagging) so
// that RepairOrganization can splice the change into an existing
// navigation DAG instead of rebuilding it from scratch (the live-lake
// evolution path; see docs/EVOLUTION.md).
#pragma once

#include <algorithm>
#include <vector>

#include "lake/types.h"

namespace lakeorg {

/// Net catalog change between two lake versions. Ids refer to the *new*
/// lake (ids are stable: removals tombstone, additions append).
struct LakeDelta {
  /// Tables added since recording started.
  std::vector<TableId> added_tables;
  /// Tables tombstoned (their attributes land in removed_attrs too).
  std::vector<TableId> removed_tables;
  /// Attributes appended (includes attributes of added tables).
  std::vector<AttributeId> added_attrs;
  /// Attributes tombstoned.
  std::vector<AttributeId> removed_attrs;
  /// Attributes whose tag set changed in place.
  std::vector<AttributeId> retagged_attrs;
  /// Tags created since recording started.
  std::vector<TagId> added_tags;

  bool Empty() const {
    return added_tables.empty() && removed_tables.empty() &&
           added_attrs.empty() && removed_attrs.empty() &&
           retagged_attrs.empty() && added_tags.empty();
  }

  /// Canonicalizes the delta: sorts and dedups every id list, drops
  /// attributes that were both added and removed inside the batch (net
  /// no-op for organizations built before the batch), and drops retag
  /// records for attributes that were also added or removed (the
  /// add/remove subsumes the retag).
  void Normalize() {
    auto sort_unique = [](std::vector<uint32_t>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    sort_unique(&added_tables);
    sort_unique(&removed_tables);
    sort_unique(&added_attrs);
    sort_unique(&removed_attrs);
    sort_unique(&retagged_attrs);
    sort_unique(&added_tags);

    auto in = [](const std::vector<uint32_t>& v, uint32_t x) {
      return std::binary_search(v.begin(), v.end(), x);
    };
    // Retags of added/removed attributes are subsumed. Must run before
    // the add/remove cancellation below, or a retag of an
    // added-then-removed attribute would escape both filters.
    retagged_attrs.erase(
        std::remove_if(retagged_attrs.begin(), retagged_attrs.end(),
                       [&](AttributeId a) {
                         return in(added_attrs, a) || in(removed_attrs, a);
                       }),
        retagged_attrs.end());
    // Added-then-removed attributes never existed for the old org.
    std::vector<AttributeId> both;
    for (AttributeId a : added_attrs) {
      if (in(removed_attrs, a)) both.push_back(a);
    }
    auto drop = [&in](std::vector<uint32_t>* v,
                      const std::vector<uint32_t>& gone) {
      v->erase(std::remove_if(v->begin(), v->end(),
                              [&](uint32_t x) { return in(gone, x); }),
               v->end());
    };
    if (!both.empty()) {
      drop(&added_attrs, both);
      drop(&removed_attrs, both);
    }
    std::vector<TableId> both_tables;
    for (TableId t : added_tables) {
      if (in(removed_tables, t)) both_tables.push_back(t);
    }
    if (!both_tables.empty()) {
      drop(&added_tables, both_tables);
      drop(&removed_tables, both_tables);
    }
  }
};

/// Exact field-wise equality. Compare normalized deltas: Normalize() is
/// the canonical form, so normalized equality means "the same net catalog
/// change". Used by the WAL replay integrity check, the snapshot
/// round-trip tests, and lake_delta_test.
inline bool operator==(const LakeDelta& a, const LakeDelta& b) {
  return a.added_tables == b.added_tables &&
         a.removed_tables == b.removed_tables &&
         a.added_attrs == b.added_attrs &&
         a.removed_attrs == b.removed_attrs &&
         a.retagged_attrs == b.retagged_attrs &&
         a.added_tags == b.added_tags;
}

inline bool operator!=(const LakeDelta& a, const LakeDelta& b) {
  return !(a == b);
}

}  // namespace lakeorg
