#include "lake/numeric_profile.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "lake/csv_loader.h"

namespace lakeorg {

NumericProfile ProfileNumericValues(const std::vector<std::string>& values,
                                    size_t num_quantiles) {
  NumericProfile profile;
  if (num_quantiles < 2) num_quantiles = 2;
  std::vector<double> numbers;
  numbers.reserve(values.size());
  for (const std::string& v : values) {
    if (LooksNumeric(v)) {
      numbers.push_back(std::strtod(v.c_str(), nullptr));
    }
  }
  profile.count = numbers.size();
  if (numbers.empty()) return profile;
  std::sort(numbers.begin(), numbers.end());
  profile.min = numbers.front();
  profile.max = numbers.back();
  double sum = 0.0;
  for (double x : numbers) sum += x;
  profile.mean = sum / static_cast<double>(numbers.size());
  double var = 0.0;
  for (double x : numbers) var += (x - profile.mean) * (x - profile.mean);
  profile.stddev = numbers.size() > 1
                       ? std::sqrt(var / static_cast<double>(
                                             numbers.size() - 1))
                       : 0.0;
  profile.quantiles.resize(num_quantiles);
  for (size_t i = 0; i < num_quantiles; ++i) {
    double pos = static_cast<double>(i) /
                 static_cast<double>(num_quantiles - 1) *
                 static_cast<double>(numbers.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, numbers.size() - 1);
    double frac = pos - static_cast<double>(lo);
    profile.quantiles[i] = numbers[lo] + frac * (numbers[hi] - numbers[lo]);
  }
  return profile;
}

NumericProfile ProfileAttribute(const DataLake& lake, AttributeId attr,
                                size_t num_quantiles) {
  return ProfileNumericValues(lake.attribute(attr).values, num_quantiles);
}

double NumericSimilarity(const NumericProfile& a, const NumericProfile& b) {
  if (!a.Valid() || !b.Valid() ||
      a.quantiles.size() != b.quantiles.size()) {
    return 0.0;
  }
  // Normalize quantile displacement by the joint spread; identical
  // sketches give 0 displacement -> similarity 1.
  double lo = std::min(a.min, b.min);
  double hi = std::max(a.max, b.max);
  double spread = hi - lo;
  if (spread <= 0.0) return 1.0;  // Both are constant and equal.
  double displacement = 0.0;
  for (size_t i = 0; i < a.quantiles.size(); ++i) {
    displacement += std::abs(a.quantiles[i] - b.quantiles[i]) / spread;
  }
  displacement /= static_cast<double>(a.quantiles.size());
  return 1.0 - std::min(1.0, displacement);
}

double NumericValueJaccard(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& v : sa) inter += sb.count(v);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace lakeorg
