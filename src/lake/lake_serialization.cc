#include "lake/lake_serialization.h"

namespace lakeorg {
namespace {

constexpr const char* kFormat = "lakeorg-lake";
constexpr int kVersion = 1;

Json IdsToJson(const std::vector<uint32_t>& ids) {
  Json arr = Json::MakeArray();
  for (uint32_t id : ids) arr.push_back(Json(static_cast<uint64_t>(id)));
  return arr;
}

Result<std::vector<uint32_t>> IdsFromJson(const Json* j,
                                          size_t limit,
                                          const char* what) {
  if (j == nullptr || !j->is_array()) {
    return Status::InvalidArgument(std::string("lake json: missing ") +
                                   what + " id array");
  }
  std::vector<uint32_t> out;
  out.reserve(j->array().size());
  for (const Json& v : j->array()) {
    if (!v.is_number() || v.number() < 0 || v.number() >= limit ||
        v.number() != static_cast<double>(static_cast<uint64_t>(v.number()))) {
      return Status::InvalidArgument(std::string("lake json: bad ") + what +
                                     " id");
    }
    out.push_back(static_cast<uint32_t>(v.number()));
  }
  return out;
}

Result<std::string> StringField(const Json& obj, const char* key) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument(std::string("lake json: missing string '") +
                                   key + "'");
  }
  return v->string();
}

Result<bool> BoolField(const Json& obj, const char* key) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->is_bool()) {
    return Status::InvalidArgument(std::string("lake json: missing bool '") +
                                   key + "'");
  }
  return v->bool_value();
}

Result<uint32_t> IdField(const Json& obj, const char* key, size_t limit) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->is_number() || v->number() < 0 ||
      v->number() >= limit) {
    return Status::InvalidArgument(std::string("lake json: bad id '") + key +
                                   "'");
  }
  return static_cast<uint32_t>(v->number());
}

}  // namespace

/// Friend of DataLake: rebuilds the private vectors, lookup maps, and
/// topic bookkeeping directly, which the public append-only API cannot
/// (tombstoned tables may share names with later live ones).
class LakeJsonCodec {
 public:
  static Json ToJson(const DataLake& lake) {
    Json root = Json::MakeObject();
    root["format"] = kFormat;
    root["version"] = kVersion;

    Json tags = Json::MakeArray();
    for (const std::string& name : lake.tag_names_) tags.push_back(name);
    root["tags"] = std::move(tags);

    Json tables = Json::MakeArray();
    for (const Table& t : lake.tables_) {
      Json jt = Json::MakeObject();
      jt["name"] = t.name;
      jt["title"] = t.title;
      jt["description"] = t.description;
      jt["tags"] = IdsToJson(t.tags);
      jt["removed"] = t.removed;
      tables.push_back(std::move(jt));
    }
    root["tables"] = std::move(tables);

    Json attrs = Json::MakeArray();
    for (const Attribute& a : lake.attributes_) {
      Json ja = Json::MakeObject();
      ja["table"] = static_cast<uint64_t>(a.table);
      ja["name"] = a.name;
      Json values = Json::MakeArray();
      for (const std::string& v : a.values) values.push_back(v);
      ja["values"] = std::move(values);
      ja["is_text"] = a.is_text;
      ja["tags"] = IdsToJson(a.tags);
      ja["removed"] = a.removed;
      attrs.push_back(std::move(ja));
    }
    root["attributes"] = std::move(attrs);
    root["topics_computed"] = lake.topic_vectors_computed_;
    return root;
  }

  static Result<DataLake> FromJson(const Json& json) {
    if (!json.is_object()) {
      return Status::InvalidArgument("lake json: not an object");
    }
    const Json* fmt = json.Find("format");
    const Json* ver = json.Find("version");
    if (fmt == nullptr || !fmt->is_string() || fmt->string() != kFormat ||
        ver == nullptr || !ver->is_number() ||
        ver->number() != static_cast<double>(kVersion)) {
      return Status::InvalidArgument("lake json: bad format/version");
    }
    const Json* tags = json.Find("tags");
    const Json* tables = json.Find("tables");
    const Json* attrs = json.Find("attributes");
    if (tags == nullptr || !tags->is_array() || tables == nullptr ||
        !tables->is_array() || attrs == nullptr || !attrs->is_array()) {
      return Status::InvalidArgument(
          "lake json: missing tags/tables/attributes arrays");
    }

    DataLake lake;
    lake.tag_names_.reserve(tags->array().size());
    for (const Json& t : tags->array()) {
      if (!t.is_string()) {
        return Status::InvalidArgument("lake json: tag name is not a string");
      }
      lake.tag_ids_.emplace(t.string(),
                            static_cast<TagId>(lake.tag_names_.size()));
      lake.tag_names_.push_back(t.string());
    }
    if (lake.tag_ids_.size() != lake.tag_names_.size()) {
      return Status::InvalidArgument("lake json: duplicate tag name");
    }

    size_t num_tags = lake.tag_names_.size();
    lake.tables_.reserve(tables->array().size());
    for (const Json& jt : tables->array()) {
      if (!jt.is_object()) {
        return Status::InvalidArgument("lake json: table is not an object");
      }
      Table t;
      t.id = static_cast<TableId>(lake.tables_.size());
      Result<std::string> name = StringField(jt, "name");
      if (!name.ok()) return name.status();
      t.name = name.value();
      Result<std::string> title = StringField(jt, "title");
      if (!title.ok()) return title.status();
      t.title = title.value();
      Result<std::string> desc = StringField(jt, "description");
      if (!desc.ok()) return desc.status();
      t.description = desc.value();
      Result<std::vector<uint32_t>> tag_ids =
          IdsFromJson(jt.Find("tags"), num_tags, "table tag");
      if (!tag_ids.ok()) return tag_ids.status();
      t.tags = std::move(tag_ids).value();
      Result<bool> removed = BoolField(jt, "removed");
      if (!removed.ok()) return removed.status();
      t.removed = removed.value();
      // The live map only tracks tables whose names are still claimed
      // (RemoveTable releases the name for reuse).
      if (!t.removed) lake.table_ids_.emplace(t.name, t.id);
      lake.tables_.push_back(std::move(t));
    }

    lake.attributes_.reserve(attrs->array().size());
    for (const Json& ja : attrs->array()) {
      if (!ja.is_object()) {
        return Status::InvalidArgument(
            "lake json: attribute is not an object");
      }
      Attribute a;
      a.id = static_cast<AttributeId>(lake.attributes_.size());
      Result<uint32_t> table = IdField(ja, "table", lake.tables_.size());
      if (!table.ok()) return table.status();
      a.table = table.value();
      Result<std::string> name = StringField(ja, "name");
      if (!name.ok()) return name.status();
      a.name = name.value();
      const Json* values = ja.Find("values");
      if (values == nullptr || !values->is_array()) {
        return Status::InvalidArgument("lake json: missing attribute values");
      }
      a.values.reserve(values->array().size());
      for (const Json& v : values->array()) {
        if (!v.is_string()) {
          return Status::InvalidArgument(
              "lake json: attribute value is not a string");
        }
        a.values.push_back(v.string());
      }
      Result<bool> is_text = BoolField(ja, "is_text");
      if (!is_text.ok()) return is_text.status();
      a.is_text = is_text.value();
      Result<std::vector<uint32_t>> tag_ids =
          IdsFromJson(ja.Find("tags"), num_tags, "attribute tag");
      if (!tag_ids.ok()) return tag_ids.status();
      a.tags = std::move(tag_ids).value();
      Result<bool> removed = BoolField(ja, "removed");
      if (!removed.ok()) return removed.status();
      a.removed = removed.value();
      lake.tables_[a.table].attributes.push_back(a.id);
      lake.attributes_.push_back(std::move(a));
    }

    // Topics are recomputed by the caller; the flag only gates the
    // incremental ComputeMissingTopicVectors precondition.
    lake.topic_vectors_computed_ = false;
    lake.topics_computed_upto_ = 0;
    return lake;
  }
};

Json LakeToJson(const DataLake& lake) { return LakeJsonCodec::ToJson(lake); }

Result<DataLake> LakeFromJson(const Json& json) {
  return LakeJsonCodec::FromJson(json);
}

Json DeltaToJson(const LakeDelta& delta) {
  Json root = Json::MakeObject();
  root["added_tables"] = IdsToJson(delta.added_tables);
  root["removed_tables"] = IdsToJson(delta.removed_tables);
  root["added_attrs"] = IdsToJson(delta.added_attrs);
  root["removed_attrs"] = IdsToJson(delta.removed_attrs);
  root["retagged_attrs"] = IdsToJson(delta.retagged_attrs);
  root["added_tags"] = IdsToJson(delta.added_tags);
  return root;
}

Result<LakeDelta> DeltaFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("delta json: not an object");
  }
  LakeDelta delta;
  constexpr size_t kNoLimit = static_cast<size_t>(kInvalidId);
  struct Field {
    const char* key;
    std::vector<uint32_t>* dst;
  };
  const Field fields[] = {
      {"added_tables", &delta.added_tables},
      {"removed_tables", &delta.removed_tables},
      {"added_attrs", &delta.added_attrs},
      {"removed_attrs", &delta.removed_attrs},
      {"retagged_attrs", &delta.retagged_attrs},
      {"added_tags", &delta.added_tags},
  };
  for (const Field& f : fields) {
    Result<std::vector<uint32_t>> ids =
        IdsFromJson(json.Find(f.key), kNoLimit, f.key);
    if (!ids.ok()) return ids.status();
    *f.dst = std::move(ids).value();
  }
  return delta;
}

}  // namespace lakeorg
