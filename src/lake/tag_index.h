// TagIndex: the data(t) relation of Definition 5 — for each tag, the set of
// organizable attributes carrying it — plus per-tag topic accumulators used
// to assemble tag-state topic vectors.
#pragma once

#include <vector>

#include "embedding/vector_ops.h"
#include "lake/data_lake.h"

namespace lakeorg {

/// Immutable per-lake tag extents and tag topic vectors.
class TagIndex {
 public:
  /// Builds the index over the lake's organizable attributes (text
  /// attributes with a topic vector and at least one tag). Requires
  /// lake.topic_vectors_computed().
  static TagIndex Build(const DataLake& lake);

  /// Attribute ids carrying tag `t` (the data(t) relation), ascending.
  const std::vector<AttributeId>& AttributesOfTag(TagId t) const {
    return extents_.at(t);
  }

  /// Topic vector of the tag state for `t`: sample mean over the values of
  /// all attributes in data(t) (Definition 5).
  const Vec& TagTopicVector(TagId t) const { return topic_.at(t); }

  /// Component-wise value-vector sum over data(t), for incremental merging.
  const Vec& TagTopicSum(TagId t) const { return topic_sum_.at(t); }

  /// Number of embeddable values under data(t).
  size_t TagValueCount(TagId t) const { return value_count_.at(t); }

  /// Number of tags in the lake (including possibly empty extents).
  size_t num_tags() const { return extents_.size(); }

  /// Tags with a non-empty extent, ascending by id.
  const std::vector<TagId>& NonEmptyTags() const { return non_empty_; }

 private:
  std::vector<std::vector<AttributeId>> extents_;
  std::vector<Vec> topic_;
  std::vector<Vec> topic_sum_;
  std::vector<size_t> value_count_;
  std::vector<TagId> non_empty_;
};

}  // namespace lakeorg
