#include "discovery/adaptive_loop.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/timer.h"
#include "discovery/live_lake.h"
#include "obs/metrics.h"

namespace lakeorg {

namespace {

struct AdaptiveMetrics {
  obs::Counter& ticks = obs::GetCounter("adaptive.ticks_total");
  obs::Counter& tick_errors = obs::GetCounter("adaptive.tick_errors_total");
  obs::Counter& drained = obs::GetCounter("adaptive.clicks_drained_total");
  obs::Counter& blended = obs::GetCounter("adaptive.clicks_blended_total");
  obs::Counter& dropped_stale =
      obs::GetCounter("adaptive.clicks_dropped_stale_total");
  obs::Counter& dropped_invalid =
      obs::GetCounter("adaptive.clicks_dropped_invalid_total");
  obs::Counter& sink_dropped = obs::GetCounter("adaptive.sink_dropped_total");
  obs::Counter& repairs = obs::GetCounter("adaptive.repairs_total");
  obs::Gauge& drift = obs::GetGauge("adaptive.drift");
  obs::Gauge& effectiveness = obs::GetGauge("adaptive.effectiveness");
  obs::Gauge& clicks_pending = obs::GetGauge("adaptive.clicks_since_repair");
  obs::Histogram& publish_us = obs::GetHistogram("adaptive.publish_us");
};

AdaptiveMetrics& Metrics() {
  static AdaptiveMetrics m;
  return m;
}

}  // namespace

ClickLogSink::ClickLogSink(size_t capacity) : capacity_(capacity) {
  assert(capacity_ > 0);
}

bool ClickLogSink::Push(const ClickEvent& event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= capacity_) {
      ++dropped_;
    } else {
      events_.push_back(event);
      ++pushed_;
      return true;
    }
  }
  Metrics().sink_dropped.Add();
  return false;
}

size_t ClickLogSink::Drain(std::vector<ClickEvent>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = events_.size();
  out->insert(out->end(), events_.begin(), events_.end());
  events_.clear();
  return n;
}

size_t ClickLogSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t ClickLogSink::pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

uint64_t ClickLogSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool ClickEventValid(const Organization& org, const OrgContext& ctx,
                     const ClickEvent& event) {
  if (event.from >= org.num_states() || event.to >= org.num_states()) {
    return false;
  }
  if (!org.alive(event.from) || !org.alive(event.to)) return false;
  if (event.query_attr >= ctx.num_attrs()) return false;
  IdSpan children = org.children(event.from);
  return std::find(children.begin(), children.end(), event.to) !=
         children.end();
}

AdaptiveRepairPlan BuildRepairPlan(const Organization& org,
                                   const OrgContext& ctx,
                                   const BehaviorLog& log,
                                   const std::vector<uint64_t>& demand_by_attr,
                                   const AdaptivePolicyOptions& options) {
  assert(demand_by_attr.size() == ctx.num_attrs());
  AdaptiveRepairPlan plan;

  // Demand-weighted objective: every table keeps the floor stake.
  plan.table_weights.assign(ctx.num_tables(), options.demand_floor);
  uint64_t total_demand = 0;
  for (uint32_t a = 0; a < demand_by_attr.size(); ++a) {
    plan.table_weights[ctx.attr_table(a)] +=
        static_cast<double>(demand_by_attr[a]);
    total_demand += demand_by_attr[a];
    if (demand_by_attr[a] > 0 &&
        (plan.top_attr == kInvalidId ||
         demand_by_attr[a] > demand_by_attr[plan.top_attr])) {
      plan.top_attr = a;
    }
  }
  if (total_demand == 0 || log.total() == 0) return plan;

  // Drift: count-weighted total-variation distance between the Equation 1
  // prior and the Dirichlet posterior at every observed state, under the
  // top-demanded query. Ascending StateId scan + integer counts make the
  // score bit-identical however the events were interleaved.
  AdaptiveTransitionModel model(options.reopt.transition,
                                options.prior_strength);
  const Vec& query = ctx.attr_vector(plan.top_attr);
  double weighted = 0.0;
  double weight_total = 0.0;
  for (StateId s = 0; s < org.num_states(); ++s) {
    if (!org.alive(s)) continue;
    IdSpan children = org.children(s);
    if (children.empty()) continue;
    // Only surviving edges count: an out-count on edges since removed
    // contributes no drift mass (the blend cannot see them either).
    uint64_t n = 0;
    for (StateId c : children) n += log.EdgeCount(s, c);
    if (n == 0) continue;
    std::vector<double> prior = model.PriorProbabilities(org, s, query);
    std::vector<double> posterior = model.Probabilities(org, log, s, query);
    double tv = 0.0;
    for (size_t i = 0; i < prior.size(); ++i) {
      tv += std::abs(posterior[i] - prior[i]);
    }
    tv *= 0.5;
    weighted += static_cast<double>(n) * tv;
    weight_total += static_cast<double>(n);

    // The observed subgraph: the from-state and every clicked child.
    if (s != org.root()) plan.targets.push_back(s);
    for (StateId c : children) {
      if (log.EdgeCount(s, c) > 0 && c != org.root()) {
        plan.targets.push_back(c);
      }
    }
  }
  if (weight_total > 0.0) plan.drift = weighted / weight_total;
  std::sort(plan.targets.begin(), plan.targets.end());
  plan.targets.erase(std::unique(plan.targets.begin(), plan.targets.end()),
                     plan.targets.end());
  return plan;
}

AdaptivePolicy::AdaptivePolicy(LiveLakeService* live,
                               std::shared_ptr<ClickLogSink> sink,
                               AdaptivePolicyOptions options)
    : live_(live), sink_(std::move(sink)), options_(std::move(options)) {
  assert(live_ != nullptr);
  assert(sink_ != nullptr);
}

AdaptivePolicy::~AdaptivePolicy() { Stop(); }

uint64_t AdaptivePolicy::repairs() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return repairs_;
}

uint64_t AdaptivePolicy::clicks_blended() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return clicks_blended_;
}

Result<AdaptiveTickReport> AdaptivePolicy::Tick() {
  std::lock_guard<std::mutex> tick_lock(tick_mu_);
  AdaptiveMetrics& am = Metrics();
  am.ticks.Add();

  std::shared_ptr<const OrgSnapshot> snap = live_->Current();
  if (snap == nullptr || snap->org == nullptr || snap->ctx == nullptr) {
    return Status::FailedPrecondition(
        "AdaptivePolicy::Tick before the service published a snapshot");
  }
  const Organization& org = *snap->org;
  const OrgContext& ctx = *snap->ctx;

  AdaptiveTickReport report;
  report.version = snap->version;

  // A version we did not publish ourselves means the catalog moved under
  // us: the accumulated counts name the superseded org's states, so the
  // observation window restarts.
  if (snap->version != observed_version_) {
    log_.Clear();
    demand_by_attr_.assign(ctx.num_attrs(), 0);
    clicks_since_repair_ = 0;
    observed_version_ = snap->version;
  }

  drain_buf_.clear();
  report.drained = sink_->Drain(&drain_buf_);
  for (const ClickEvent& event : drain_buf_) {
    if (event.version != snap->version) {
      ++report.dropped_stale;
      continue;
    }
    if (!ClickEventValid(org, ctx, event)) {
      ++report.dropped_invalid;
      continue;
    }
    log_.Record(event.from, event.to);
    ++demand_by_attr_[event.query_attr];
    ++clicks_since_repair_;
    ++clicks_blended_;
  }

  AdaptiveRepairPlan plan =
      BuildRepairPlan(org, ctx, log_, demand_by_attr_, options_);
  report.drift = plan.drift;

  am.drained.Add(report.drained);
  am.dropped_stale.Add(report.dropped_stale);
  am.dropped_invalid.Add(report.dropped_invalid);
  am.blended.Add(report.drained - report.dropped_stale -
                 report.dropped_invalid);
  am.drift.Set(plan.drift);
  am.clicks_pending.Set(static_cast<double>(clicks_since_repair_));

  if (plan.drift >= options_.drift_threshold &&
      clicks_since_repair_ >= options_.min_clicks && !plan.targets.empty()) {
    LocalSearchOptions search = options_.reopt;
    search.restrict_targets = std::move(plan.targets);
    search.table_weights = std::move(plan.table_weights);
    search.seed = options_.reopt.seed + repairs_;
    WallTimer timer;
    Result<LiveReoptReport> reopt = live_->Reoptimize(search);
    if (!reopt.ok()) return reopt.status();
    double seconds = timer.ElapsedSeconds();
    ++repairs_;
    report.repaired = true;
    report.version = reopt.value().version;
    report.effectiveness = reopt.value().effectiveness;
    report.reopt_seconds = reopt.value().seconds;
    report.reopt_proposals = reopt.value().proposals;
    am.repairs.Add();
    am.publish_us.Observe(seconds * 1e6);
    am.effectiveness.Set(reopt.value().effectiveness);
    // The published org supersedes the one the counts were blended
    // against; restart the observation window on the new version.
    log_.Clear();
    demand_by_attr_.assign(ctx.num_attrs(), 0);
    clicks_since_repair_ = 0;
    observed_version_ = report.version;
    am.clicks_pending.Set(0.0);
  }
  return report;
}

void AdaptivePolicy::Start(double interval_seconds) {
  std::lock_guard<std::mutex> lock(bg_mu_);
  if (bg_thread_.joinable()) return;
  bg_stop_ = false;
  bg_thread_ = std::thread([this, interval_seconds] {
    std::unique_lock<std::mutex> lock(bg_mu_);
    while (!bg_stop_) {
      bg_cv_.wait_for(lock,
                      std::chrono::duration<double>(interval_seconds),
                      [this] { return bg_stop_; });
      if (bg_stop_) break;
      lock.unlock();
      Result<AdaptiveTickReport> tick = Tick();
      if (!tick.ok()) Metrics().tick_errors.Add();
      lock.lock();
    }
  });
}

void AdaptivePolicy::Stop() {
  std::thread finished;
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
    bg_cv_.notify_all();
    finished = std::move(bg_thread_);
  }
  if (finished.joinable()) finished.join();
}

}  // namespace lakeorg
