// NavService: the concurrent navigation-session serving layer. Where
// core/navigation.h gives one caller a stateful walk over one
// organization, NavService manages the live-traffic regime the ROADMAP
// targets: many concurrent user sessions, each pinned to the OrgSnapshot
// that was current when it opened (the RCU read side — a
// LiveLakeService::Apply publishing a newer version never invalidates an
// in-flight step), with
//
//  - admission control: at most max_sessions live sessions; opens beyond
//    that first sweep idle sessions (idle_ttl_seconds) and are rejected
//    when the table is still full, so session memory is bounded;
//  - a per-snapshot sharded LRU transition-row cache: the Eq. 1 softmax
//    row, the probability-ranked child ordering, and the section 4.4
//    display labels of a state are computed once per (snapshot, state,
//    query attribute) and shared by every session walking that snapshot,
//    instead of being recomputed on every step of every user;
//  - a batched step API (ExecuteBatch): concurrent step/peek requests
//    are grouped by (snapshot, state, query) and their cache fills run
//    on the service thread pool, amortizing row computation across the
//    batch before the per-request bookkeeping applies serially;
//  - publish integration: constructed over a LiveLakeService, the
//    service observes every publish (SetPublishListener), flags sessions
//    on superseded snapshots as stale, and retires the row caches of
//    versions no live session pins any more.
//
// Thread safety: every public method is safe to call concurrently.
// Operations on one session serialize on that session's mutex; the
// session table and version bookkeeping serialize on a service mutex
// that is never held across row computation. See docs/SERVING.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/org_snapshot.h"
#include "core/transition.h"

namespace lakeorg {

class ClickLogSink;
class LiveLakeService;

/// Opaque session handle; never reused within one service.
using NavSessionId = uint64_t;

/// Serving-engine tuning knobs (defaults documented in docs/SERVING.md).
struct NavServiceOptions {
  /// Admission-control bound on live sessions.
  size_t max_sessions = 4096;
  /// Sessions idle longer than this are expired by the sweep; <= 0
  /// disables expiry.
  double idle_ttl_seconds = 900.0;
  /// Total transition-row cache entries per snapshot version; 0 disables
  /// caching (every step recomputes its row — the benchmark's baseline).
  size_t cache_capacity = 1 << 16;
  /// Independently locked cache shards per snapshot version.
  size_t cache_shards = 8;
  /// Worker threads for batched cache warming; <= 1 warms serially on
  /// the calling thread.
  size_t batch_threads = 1;
  /// Transition-model hyperparameters of the served Eq. 1 rows.
  TransitionConfig transition;
  /// Clock override returning seconds (tests inject a fake clock to
  /// drive expiry deterministically); null uses steady_clock.
  std::function<double()> clock;
  /// When set, every successful descend appends a ClickEvent — the
  /// adaptive loop's observation channel (discovery/adaptive_loop.h).
  /// The push happens under the session mutex after the alive check, so
  /// a step racing a Close/expiry that fails with NotFound never emits
  /// a click. Null disables click logging.
  std::shared_ptr<ClickLogSink> click_sink;
};

/// One state's served row: the transition probabilities and ranking
/// (core TransitionRow) plus the display label of every child. This is
/// the row-cache value type; immutable and shared across sessions.
struct NavRow {
  TransitionRow row;
  /// labels[i] labels row.children[i] (section 4.4 rules).
  std::vector<std::string> labels;
};

/// What one navigation operation returns: the session's position plus
/// the ranked, labeled choices of the current state. Choices are exposed
/// through rank accessors over the shared row (no per-step copies).
struct NavView {
  NavSessionId session = 0;
  /// Version of the snapshot the session is pinned to.
  uint64_t snapshot_version = 0;
  /// True when a newer snapshot has been published since (the client may
  /// Refresh() to rebind; the pinned walk stays fully consistent).
  bool snapshot_stale = false;
  StateId state = kInvalidId;
  bool at_leaf = false;
  /// Local attribute id when at a leaf; kInvalidId otherwise.
  uint32_t attr = kInvalidId;
  /// Root-to-current path length minus one.
  size_t depth = 0;
  /// Total navigation actions this session has taken.
  size_t actions = 0;
  /// The current state's row (never null for a view returned OK).
  std::shared_ptr<const NavRow> row;

  /// Number of navigable choices at the current state (0 at leaves).
  size_t NumChoices() const { return row == nullptr ? 0 : row->row.ranking.size(); }
  /// The rank-th best choice (rank 0 = highest transition probability).
  StateId ChoiceState(size_t rank) const {
    return row->row.children[row->row.ranking[rank]];
  }
  const std::string& ChoiceLabel(size_t rank) const {
    return row->labels[row->row.ranking[rank]];
  }
  double ChoiceProb(size_t rank) const {
    return row->row.probs[row->row.ranking[rank]];
  }
};

/// One request of a batched step (ExecuteBatch).
struct NavStepRequest {
  enum class Kind {
    kPeek,     ///< Return the current view without moving.
    kDescend,  ///< Descend into the rank-th ranked choice.
    kBack,     ///< Backtrack one state.
  };
  NavSessionId session = 0;
  Kind kind = Kind::kPeek;
  /// Rank for kDescend (index into the ranked choices).
  size_t rank = 0;
};

/// Point-in-time serving statistics (see also the nav.* metrics).
struct NavServiceStats {
  size_t sessions_live = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t sessions_expired = 0;
  uint64_t sessions_rejected = 0;
  uint64_t steps = 0;
  /// Row-cache tallies aggregated over live and retired snapshot caches.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  /// Snapshot versions with a live row cache.
  size_t cached_versions = 0;
};

/// The serving engine. See the file comment for the design.
class NavService {
 public:
  /// Where new (and refreshed) sessions get their snapshot; returning
  /// null makes Open fail until a snapshot is available.
  using SnapshotSource = std::function<std::shared_ptr<const OrgSnapshot>()>;

  explicit NavService(SnapshotSource source, NavServiceOptions options = {});

  /// Serves `live->Current()` and registers for publish notifications
  /// (stale flags + per-version cache retirement). `live` must outlive
  /// this service; the destructor unregisters the listener.
  explicit NavService(LiveLakeService* live, NavServiceOptions options = {});

  ~NavService();

  NavService(const NavService&) = delete;
  NavService& operator=(const NavService&) = delete;

  /// Opens a session navigating toward local attribute `query_attr` of
  /// the current snapshot's context (the query topic vector X of Eq. 1).
  /// Fails when no snapshot is published, the attribute is out of range,
  /// or admission control rejects the session.
  Result<NavSessionId> Open(uint32_t query_attr);

  /// The session's current view; refreshes its idle timer.
  Result<NavView> Peek(NavSessionId session);

  /// Descends into the rank-th ranked choice (rank 0 = most probable).
  /// Fails with FailedPrecondition at a leaf/dead end and OutOfRange for
  /// a bad rank.
  Result<NavView> Descend(NavSessionId session, size_t rank);

  /// Backtracks one state; fails at the root.
  Result<NavView> Back(NavSessionId session);

  /// Rebinds the session to the latest snapshot and restarts it at the
  /// root (the explicit upgrade path for stale sessions). Fails — and
  /// leaves the session untouched — when the query attribute no longer
  /// exists in the new snapshot's context.
  Result<NavView> Refresh(NavSessionId session);

  /// Closes a session; NotFound when unknown (or already expired).
  Status Close(NavSessionId session);

  /// Executes a batch of requests: cache fills for the distinct
  /// (snapshot, state, query) groups in the batch run first (in parallel
  /// on the service pool when batch_threads > 1), then every request is
  /// applied in order. results[i] corresponds to requests[i]; per-request
  /// failures do not affect the rest of the batch.
  std::vector<Result<NavView>> ExecuteBatch(
      const std::vector<NavStepRequest>& requests);

  /// Expires idle sessions now; returns how many were expired. Open also
  /// sweeps when the session table is full.
  size_t SweepExpired();

  /// Publish notification: flags older sessions stale and retires row
  /// caches of versions without live sessions. Wired automatically when
  /// constructed over a LiveLakeService.
  void OnPublish(uint64_t version);

  /// Live session count.
  size_t live_sessions() const;

  /// Aggregate serving statistics.
  NavServiceStats Stats() const;

 private:
  using RowCache = ShardedLruCache<uint64_t, NavRow>;

  struct Session {
    NavSessionId id = 0;
    std::shared_ptr<const OrgSnapshot> snapshot;
    std::shared_ptr<RowCache> cache;
    uint32_t query_attr = 0;
    double query_norm = 0.0;
    std::vector<StateId> path;
    size_t actions = 0;
    /// Pinned snapshot version; atomic so the sweep and version
    /// bookkeeping can read it without taking the session mutex (Refresh
    /// writes it while holding both the session and service mutexes).
    std::atomic<uint64_t> version{0};
    /// Last-activity time in NowSeconds() units; atomic so the sweep can
    /// read it without taking the session mutex.
    std::atomic<double> last_active{0.0};
    /// False once the session has been closed or expired. In-flight
    /// operations that already resolved the session's shared_ptr check it
    /// under the session mutex, so a step racing a Close/expiry fails
    /// with NotFound instead of silently mutating a dead session (and
    /// over the network, a pipelined close-then-step answers
    /// deterministically).
    std::atomic<bool> alive{true};
    /// Serializes operations on this session.
    std::mutex mu;
  };

  double NowSeconds() const;
  /// Looks up a live session, expiring it instead when idle past the
  /// TTL. Never holds the service mutex on return.
  Result<std::shared_ptr<Session>> FindSession(NavSessionId id);
  /// The (shared) row cache of a snapshot version, created on demand.
  std::shared_ptr<RowCache> CacheForVersion(uint64_t version);
  /// The served row of `state` for the session's query: cache hit or
  /// compute-and-fill. Never null.
  std::shared_ptr<const NavRow> RowFor(Session& session, StateId state);
  NavView BuildView(Session& session);
  /// Applies one step kind to a locked session (shared by the scalar API
  /// and ExecuteBatch).
  Result<NavView> ApplyLocked(Session& session, NavStepRequest::Kind kind,
                              size_t rank);
  /// Requires mu_. Expires idle sessions; returns the count.
  size_t SweepExpiredLocked(double now);
  /// Requires mu_. Decrements a version's session count and retires its
  /// cache when it reaches zero on a superseded version.
  void ReleaseVersionLocked(uint64_t version);
  /// Retires the cache of `version`, folding its stats into the retired
  /// tally.
  void RetireCache(uint64_t version);

  NavServiceOptions options_;
  SnapshotSource source_;
  /// Non-null only for the LiveLakeService constructor (listener cleanup).
  LiveLakeService* live_ = nullptr;
  /// Batch cache-warming pool (null when batch_threads <= 1).
  std::unique_ptr<ThreadPool> pool_;

  /// Guards sessions_, version_sessions_, next_id_. Never held while
  /// computing rows or calling out.
  mutable std::mutex mu_;
  std::unordered_map<NavSessionId, std::shared_ptr<Session>> sessions_;
  std::unordered_map<uint64_t, size_t> version_sessions_;
  NavSessionId next_id_ = 1;
  std::atomic<uint64_t> latest_version_{0};

  /// Guards caches_ and retired_cache_stats_. Acquired after mu_ when
  /// both are needed; never before it.
  mutable std::mutex cache_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<RowCache>> caches_;
  LruCacheStats retired_cache_stats_;

  std::atomic<uint64_t> opened_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> refreshes_{0};
};

}  // namespace lakeorg
