#include "discovery/durability_fuzz.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "core/serialization.h"
#include "discovery/live_lake.h"
#include "lake/lake_serialization.h"
#include "lake/wal/wal.h"
#include "lake/wal/wal_record.h"

namespace lakeorg {
namespace {

namespace fs = std::filesystem;

/// One planned catalog mutation with every random choice already made,
/// so the identical batch executes against the durable service and the
/// reference service (their lakes are in identical states, so ids
/// match).
struct PlanOp {
  enum class Kind { kAddTable, kRemoveTable, kRetag } kind = Kind::kAddTable;
  std::string table_name;                          ///< add
  TagId existing_tag = kInvalidId;                 ///< add (when no new tag)
  std::string new_tag_name;                        ///< add (when non-empty)
  std::vector<std::vector<std::string>> attr_values;  ///< add
  TableId victim = kInvalidId;                     ///< remove
  AttributeId attr = kInvalidId;                   ///< retag
  std::vector<TagId> tags;                         ///< retag
};

/// Draws one batch against the current catalog (same mutation mix as
/// org_fuzz's RunRepairTrial).
std::vector<PlanOp> PlanBatch(const DataLake& lake, uint64_t seed,
                              size_t apply_index, size_t num_mutations,
                              Rng* rng) {
  std::vector<PlanOp> plan;
  // Track planned removals so one batch does not remove the same table
  // twice or shrink the lake below two alive tables.
  std::vector<TableId> removed;
  auto planned_removed = [&removed](TableId t) {
    for (TableId r : removed) {
      if (r == t) return true;
    }
    return false;
  };
  for (size_t m = 0; m < num_mutations; ++m) {
    switch (rng->UniformInt(0, 2)) {
      case 0: {  // Add a table with 1-3 attributes; domains are borrowed
                 // from existing attributes (guaranteed embeddable).
        std::vector<AttributeId> donors = lake.OrganizableAttributes();
        if (donors.empty()) break;
        PlanOp op;
        op.kind = PlanOp::Kind::kAddTable;
        op.table_name = "dfuzz_added_" + std::to_string(seed) + "_" +
                        std::to_string(apply_index) + "_" + std::to_string(m);
        if (rng->Bernoulli(0.7)) {
          op.existing_tag = static_cast<TagId>(rng->UniformInt(
              0, static_cast<int64_t>(lake.num_tags()) - 1));
        } else {
          op.new_tag_name = "dfuzz_tag_" + std::to_string(seed) + "_" +
                            std::to_string(apply_index) + "_" +
                            std::to_string(m);
        }
        size_t n = static_cast<size_t>(rng->UniformInt(1, 3));
        for (size_t i = 0; i < n; ++i) {
          AttributeId donor = donors[static_cast<size_t>(rng->UniformInt(
              0, static_cast<int64_t>(donors.size()) - 1))];
          op.attr_values.push_back(lake.attribute(donor).values);
        }
        plan.push_back(std::move(op));
        break;
      }
      case 1: {  // Remove a random alive table, keeping >= 2 alive.
        std::vector<TableId> alive;
        for (const Table& t : lake.tables()) {
          if (!t.removed && !planned_removed(t.id)) alive.push_back(t.id);
        }
        if (alive.size() <= 2) break;
        PlanOp op;
        op.kind = PlanOp::Kind::kRemoveTable;
        op.victim = alive[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(alive.size()) - 1))];
        removed.push_back(op.victim);
        plan.push_back(std::move(op));
        break;
      }
      default: {  // Retag a random alive attribute to 1-2 random tags —
                  // skipping attributes of tables this batch removes.
        std::vector<AttributeId> attrs;
        for (AttributeId a : lake.OrganizableAttributes()) {
          if (!planned_removed(lake.attribute(a).table)) attrs.push_back(a);
        }
        if (attrs.empty()) break;
        PlanOp op;
        op.kind = PlanOp::Kind::kRetag;
        op.attr = attrs[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(attrs.size()) - 1))];
        size_t n = static_cast<size_t>(rng->UniformInt(1, 2));
        for (size_t i = 0; i < n; ++i) {
          op.tags.push_back(static_cast<TagId>(rng->UniformInt(
              0, static_cast<int64_t>(lake.num_tags()) - 1)));
        }
        plan.push_back(std::move(op));
        break;
      }
    }
  }
  return plan;
}

Status ExecutePlan(const std::vector<PlanOp>& plan,
                   LakeMutationRecorder* rec) {
  for (const PlanOp& op : plan) {
    switch (op.kind) {
      case PlanOp::Kind::kAddTable: {
        TableId t = rec->AddTable(op.table_name);
        TagId tag = op.new_tag_name.empty()
                        ? op.existing_tag
                        : rec->GetOrCreateTag(op.new_tag_name);
        LAKEORG_RETURN_NOT_OK(rec->AttachTag(t, tag));
        for (size_t i = 0; i < op.attr_values.size(); ++i) {
          rec->AddAttribute(t, "col" + std::to_string(i), op.attr_values[i]);
        }
        break;
      }
      case PlanOp::Kind::kRemoveTable:
        LAKEORG_RETURN_NOT_OK(rec->RemoveTable(op.victim));
        break;
      case PlanOp::Kind::kRetag:
        LAKEORG_RETURN_NOT_OK(rec->RetagAttribute(op.attr, op.tags));
        break;
    }
  }
  return Status::OK();
}

/// Serializes a service's published state exactly the way a compacted
/// snapshot does — the byte string recovery is held to.
Result<std::string> EncodeState(const LiveLakeService& service,
                                uint64_t seq) {
  std::shared_ptr<const OrgSnapshot> cur = service.Current();
  if (cur == nullptr) {
    return Status::FailedPrecondition("service has no published snapshot");
  }
  DurableSnapshot snapshot;
  snapshot.wal_seq = seq;
  snapshot.effectiveness = cur->effectiveness;
  snapshot.lake = LakeToJson(*cur->lake);
  std::ostringstream org_text;
  LAKEORG_RETURN_NOT_OK(SaveOrganization(*cur->org, &org_text));
  snapshot.organization = std::move(org_text).str();
  return DurableSnapshotToText(snapshot);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) {
    return Status::Internal("file_size of '" + path + "': " + ec.message());
  }
  return size;
}

Status CopyDir(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::remove_all(to, ec);
  fs::create_directories(to, ec);
  if (ec) return Status::Internal("create '" + to + "': " + ec.message());
  fs::copy(from, to, fs::copy_options::recursive, ec);
  if (ec) {
    return Status::Internal("copy '" + from + "' -> '" + to +
                            "': " + ec.message());
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) return Status::Internal("truncate '" + path + "': " + ec.message());
  return Status::OK();
}

Status FlipBit(const std::string& path, uint64_t byte, int bit) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return Status::Internal("cannot open '" + path + "'");
  f.seekg(static_cast<std::streamoff>(byte));
  char c = 0;
  f.get(c);
  c = static_cast<char>(c ^ (1 << bit));
  f.seekp(static_cast<std::streamoff>(byte));
  f.put(c);
  f.flush();
  if (!f) return Status::Internal("bit flip in '" + path + "' failed");
  return Status::OK();
}

}  // namespace

DurabilityTrialResult RunDurabilityTrial(
    const DurabilityTrialOptions& options) {
  DurabilityTrialResult res;
  auto fail = [&res, &options](const std::string& msg) {
    if (res.ok) {
      res.ok = false;
      res.error = "durability trial --seed " + std::to_string(options.seed) +
                  ": " + msg;
    }
  };

  std::string scratch = options.scratch_dir;
  if (scratch.empty()) {
    scratch = (fs::temp_directory_path() /
               ("lakeorg_dfuzz_" + std::to_string(::getpid()) + "_" +
                std::to_string(options.seed)))
                  .string();
  }
  std::error_code ec;
  fs::remove_all(scratch, ec);
  struct ScratchGuard {
    std::string dir;
    ~ScratchGuard() {
      std::error_code ec2;
      fs::remove_all(dir, ec2);
    }
  } guard{scratch};

  Rng rng(options.seed);
  FuzzLake fl = MakeFuzzLake(&rng, options.lake);

  LiveLakeService::Options base;
  base.optimize_initial = false;  // Clustering org is enough; repair is
                                  // the path under durability test.
  base.repair.num_threads = options.threads;
  base.repair.seed = options.seed * 7919 + 13;
  base.canonical_publish = true;

  LiveLakeService::Options durable = base;
  durable.durability.dir = scratch + "/wal";
  durable.durability.group_commit_window = options.group_commit_window;
  durable.durability.snapshot_every = options.snapshot_every;

  LiveLakeService reference(fl.bench.lake, fl.bench.store, base);
  LiveLakeService durable_svc(fl.bench.lake, fl.bench.store, durable);
  Status init = reference.Initialize();
  if (!init.ok()) {
    fail("reference Initialize: " + init.ToString());
    return res;
  }
  init = durable_svc.Initialize();
  if (!init.ok()) {
    fail("durable Initialize: " + init.ToString());
    return res;
  }

  // checkpoints[i] = reference state after i applies.
  std::vector<std::string> checkpoints;
  Result<std::string> encoded = EncodeState(reference, 0);
  if (!encoded.ok()) {
    fail("encode checkpoint 0: " + encoded.status().ToString());
    return res;
  }
  checkpoints.push_back(std::move(encoded).value());
  {
    Result<std::string> durable0 = EncodeState(durable_svc, 0);
    if (!durable0.ok() || durable0.value() != checkpoints[0]) {
      fail("durable and reference services diverge at initialization");
      return res;
    }
  }

  for (size_t i = 1; i <= options.num_applies; ++i) {
    std::vector<PlanOp> plan =
        PlanBatch(*reference.Current()->lake, options.seed, i,
                  options.mutations_per_apply, &rng);
    auto mutate = [&plan](LakeMutationRecorder* rec) {
      return ExecutePlan(plan, rec);
    };
    Result<LiveApplyReport> ref_report = reference.ApplyRecorded(mutate);
    if (!ref_report.ok()) {
      fail("reference apply " + std::to_string(i) + ": " +
           ref_report.status().ToString());
      return res;
    }
    Result<LiveApplyReport> dur_report = durable_svc.ApplyRecorded(mutate);
    if (!dur_report.ok()) {
      fail("durable apply " + std::to_string(i) + ": " +
           dur_report.status().ToString());
      return res;
    }
    if (dur_report.value().delta != ref_report.value().delta) {
      fail("apply " + std::to_string(i) +
           ": durable and reference deltas diverge");
      return res;
    }
    encoded = EncodeState(reference, i);
    if (!encoded.ok()) {
      fail("encode checkpoint " + std::to_string(i) + ": " +
           encoded.status().ToString());
      return res;
    }
    checkpoints.push_back(std::move(encoded).value());
    ++res.applies;
  }
  Status sync = durable_svc.SyncWal();
  if (!sync.ok()) {
    fail("SyncWal: " + sync.ToString());
    return res;
  }
  {
    Result<std::string> durable_final =
        EncodeState(durable_svc, options.num_applies);
    if (!durable_final.ok() ||
        durable_final.value() != checkpoints.back()) {
      fail("durable and reference services diverge before any crash");
      return res;
    }
  }

  std::string wal_log = WalLogPath(durable.durability.dir);
  Result<uint64_t> wal_size = FileSize(wal_log);
  if (!wal_size.ok()) {
    fail(wal_size.status().ToString());
    return res;
  }
  res.wal_bytes = wal_size.value();

  std::string crash_dir = scratch + "/crash";
  LiveLakeService::Options recover_options = durable;
  recover_options.durability.dir = crash_dir;
  for (size_t c = 0; c < options.num_crash_points; ++c) {
    Status copied = CopyDir(durable.durability.dir, crash_dir);
    if (!copied.ok()) {
      fail(copied.ToString());
      return res;
    }
    bool flip = res.wal_bytes > 0 && rng.Bernoulli(options.bitflip_prob);
    uint64_t offset = 0;
    int bit = 0;
    if (flip) {
      offset = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(res.wal_bytes) - 1));
      bit = static_cast<int>(rng.UniformInt(0, 7));
      Status st = FlipBit(WalLogPath(crash_dir), offset, bit);
      if (!st.ok()) {
        fail(st.ToString());
        return res;
      }
    } else {
      offset = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(res.wal_bytes)));
      Status st = TruncateFile(WalLogPath(crash_dir), offset);
      if (!st.ok()) {
        fail(st.ToString());
        return res;
      }
    }
    auto describe = [&]() {
      return std::string(flip ? "bit-flip at byte " : "truncation to ") +
             std::to_string(offset) + (flip ? "." + std::to_string(bit) : "") +
             " of " + std::to_string(res.wal_bytes) + " bytes (crash point " +
             std::to_string(c) + ")";
    };

    Result<std::unique_ptr<LiveLakeService>> recovered =
        LiveLakeService::RecoverFromDisk(fl.bench.store, recover_options);
    if (!recovered.ok()) {
      if (!flip) {
        fail("recovery after " + describe() +
             " must succeed, got: " + recovered.status().ToString());
        return res;
      }
      // A detected bit-flip is a correct refusal.
      ++res.refused;
      ++res.crash_points;
      continue;
    }
    const LiveLakeService& svc = *recovered.value();
    uint64_t seq = svc.wal_seq();
    if (seq >= checkpoints.size()) {
      fail("recovery after " + describe() + " reports wal seq " +
           std::to_string(seq) + " but only " +
           std::to_string(checkpoints.size() - 1) + " applies ran");
      return res;
    }
    Result<std::string> got = EncodeState(svc, seq);
    if (!got.ok()) {
      fail("encode recovered state: " + got.status().ToString());
      return res;
    }
    if (got.value() != checkpoints[seq]) {
      fail("recovery after " + describe() + " landed on seq " +
           std::to_string(seq) +
           " but its state differs from the reference checkpoint");
      return res;
    }
    ++res.recovered_exact;
    if (flip) ++res.bitflips_survived;
    ++res.crash_points;
  }
  return res;
}

}  // namespace lakeorg
