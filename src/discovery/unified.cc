#include "discovery/unified.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>

#include "search/tokenizer.h"

namespace lakeorg {

DiscoveryHub::DiscoveryHub(const DataLake* lake,
                           const MultiDimOrganization* org,
                           const TableSearchEngine* engine,
                           std::shared_ptr<const EmbeddingStore> store,
                           DiscoveryHubOptions options)
    : lake_(lake),
      org_(org),
      engine_(engine),
      store_(std::move(store)),
      options_(options) {}

Vec DiscoveryHub::QueryTopic(const std::string& query) const {
  TopicAccumulator acc(store_->dim());
  for (const std::string& token : Tokenize(query)) {
    std::optional<Vec> v = store_->Embed(token);
    if (v.has_value()) acc.Add(*v);
  }
  return acc.Mean();
}

UnifiedResult DiscoveryHub::Query(const std::string& query) const {
  UnifiedResult result;
  result.tables = engine_->Search(query, options_.max_tables,
                                  options_.expand_queries);

  Vec topic = QueryTopic(query);
  if (Norm(topic) == 0.0) return result;  // Nothing embeddable to match.

  // Scan all states of all dimensions for topical entry points. Leaves
  // are excluded (the tables list already covers direct hits); shallow
  // states are excluded per options.
  for (size_t d = 0; d < org_->num_dimensions(); ++d) {
    const Organization& dim = org_->dimension(d);
    for (StateId s = 0; s < dim.num_states(); ++s) {
      const OrgState& st = dim.state(s);
      if (!st.alive || st.kind == StateKind::kLeaf ||
          st.level < options_.min_entry_level) {
        continue;
      }
      double sim = Cosine(st.topic, topic);
      if (sim < options_.min_entry_similarity) continue;
      result.entry_points.push_back(
          EntryPoint{d, s, sim, StateLabel(dim, s)});
    }
  }
  std::sort(result.entry_points.begin(), result.entry_points.end(),
            [](const EntryPoint& a, const EntryPoint& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.state < b.state;
            });
  if (result.entry_points.size() > options_.max_entry_points) {
    result.entry_points.resize(options_.max_entry_points);
  }
  return result;
}

Result<NavigationSession> DiscoveryHub::EnterAt(
    const EntryPoint& entry) const {
  if (entry.dimension >= org_->num_dimensions()) {
    return Status::OutOfRange("no such dimension");
  }
  const Organization& dim = org_->dimension(entry.dimension);
  if (entry.state >= dim.num_states() ||
      !dim.state(entry.state).alive || dim.state(entry.state).level < 0) {
    return Status::NotFound("entry state not navigable");
  }
  // Root-to-entry path along level-minimal parents (a shortest discovery
  // sequence), walked through the session API so the path is consistent.
  std::vector<StateId> chain = {entry.state};
  StateId cur = entry.state;
  while (cur != dim.root()) {
    const OrgState& st = dim.state(cur);
    StateId best_parent = kInvalidId;
    int best_level = std::numeric_limits<int>::max();
    for (StateId p : st.parents) {
      int level = dim.state(p).level;
      if (level >= 0 && level < best_level) {
        best_level = level;
        best_parent = p;
      }
    }
    if (best_parent == kInvalidId) {
      return Status::Internal("entry state unreachable from root");
    }
    chain.push_back(best_parent);
    cur = best_parent;
  }
  std::reverse(chain.begin(), chain.end());
  NavigationSession session(&dim);
  for (size_t i = 1; i < chain.size(); ++i) {
    LAKEORG_RETURN_NOT_OK(session.ChooseState(chain[i]));
  }
  return session;
}

std::vector<std::string> DiscoveryHub::SuggestKeywords(
    size_t dimension, StateId state) const {
  std::vector<std::string> keywords;
  if (dimension >= org_->num_dimensions()) return keywords;
  const Organization& dim = org_->dimension(dimension);
  if (state >= dim.num_states() || !dim.state(state).alive) {
    return keywords;
  }
  const OrgState& st = dim.state(state);
  const OrgContext& ctx = dim.ctx();

  // Tag names on the state (split multi-word tag names into tokens).
  for (uint32_t t : st.tags) {
    for (const std::string& token : Tokenize(ctx.tag_name(t))) {
      if (std::find(keywords.begin(), keywords.end(), token) ==
          keywords.end()) {
        keywords.push_back(token);
      }
      if (keywords.size() >= options_.max_keywords) return keywords;
    }
  }
  // Most frequent embeddable values among the attributes below the state.
  std::map<std::string, size_t> value_counts;
  DynamicBitset attrs = dim.StateAttrSet(state);
  attrs.ForEach([this, &ctx, &value_counts](size_t a) {
    const Attribute& attr = lake_->attribute(ctx.lake_attr(a));
    size_t limit = std::min<size_t>(attr.values.size(), 20);
    for (size_t i = 0; i < limit; ++i) {
      if (store_->Embed(attr.values[i]).has_value()) {
        ++value_counts[attr.values[i]];
      }
    }
  });
  std::vector<std::pair<size_t, std::string>> ranked;
  for (const auto& [value, count] : value_counts) {
    ranked.emplace_back(count, value);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [count, value] : ranked) {
    if (keywords.size() >= options_.max_keywords) break;
    if (std::find(keywords.begin(), keywords.end(), value) ==
        keywords.end()) {
      keywords.push_back(value);
    }
  }
  return keywords;
}

}  // namespace lakeorg
