// Randomized differential testing for the serving layer (the --serving
// mode of tools/difftest.cc): one trial builds a random lake and a random
// valid organization (core/org_fuzz), publishes it as a snapshot, and
// drives the same scripted random walks through two NavServices — one
// with the transition-row cache enabled, one with it disabled — plus an
// independent ComputeTransitionRow oracle. Every step's view must match
// across all three BIT-IDENTICALLY (states, probabilities, rankings,
// labels): the cache must be unobservable except in speed. Walks also
// exercise the error paths (descend at a leaf, bad ranks, back at the
// root) and a batched round that must equal the scalar API.
// Deterministic for a fixed seed at any thread count.
#pragma once

#include <cstdint>
#include <string>

#include "core/org_fuzz.h"

namespace lakeorg {

/// One serving trial's configuration.
struct ServingTrialOptions {
  /// Trial seed; drives the lake, the organization, every session's query
  /// attribute and walk script. Printed with every failure.
  uint64_t seed = 1;
  /// Client threads driving session walks concurrently (each session's
  /// script is seeded independently, so results are thread-invariant).
  size_t threads = 1;
  /// Concurrent sessions per trial.
  size_t num_sessions = 8;
  /// Navigation steps per session.
  size_t steps_per_session = 30;
  FuzzLakeOptions lake;
  RandomOrgOptions org;
};

/// Outcome of one serving trial.
struct ServingTrialResult {
  bool ok = true;
  /// First failure, with the trial seed embedded; empty when ok.
  std::string error;
  size_t steps = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// Runs one serving differential trial.
ServingTrialResult RunServingTrial(const ServingTrialOptions& options);

}  // namespace lakeorg
