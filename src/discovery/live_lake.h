// LiveLakeService: the writer side of live lake evolution. Owns the
// master catalog, applies batches of mutations on a private copy
// (copy-on-write against the published snapshot), repairs the
// organization incrementally with RepairOrganization, rebuilds the
// keyword-search index over the new catalog, and publishes the result
// as the next immutable OrgSnapshot. Readers never wait on a repair:
// they pin whatever snapshot was current when they started (see
// core/org_snapshot.h and docs/EVOLUTION.md).
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "core/local_search.h"
#include "core/org_snapshot.h"
#include "core/repair.h"
#include "embedding/embedding_store.h"
#include "lake/data_lake.h"
#include "search/engine.h"

namespace lakeorg {

/// What one Apply published.
struct LiveApplyReport {
  /// Version of the published snapshot.
  uint64_t version = 0;
  /// The normalized catalog delta the batch produced.
  LakeDelta delta;
  /// Repair statistics (see RepairResult).
  double effectiveness = 0.0;
  double splice_effectiveness = 0.0;
  size_t states_touched = 0;
  size_t leaves_added = 0;
  size_t leaves_removed = 0;
  size_t states_dropped = 0;
  size_t reopt_proposals = 0;
  double repair_seconds = 0.0;
};

/// Single-writer service around an evolving lake. All mutating entry
/// points serialize on an internal mutex; Current() only takes the
/// snapshot store's pointer-copy lock, never the service mutex, so
/// readers are never stuck behind a repair.
class LiveLakeService {
 public:
  struct Options {
    /// Repair tunables for Apply.
    RepairOptions repair;
    /// Full-build optimizer tunables for Initialize.
    LocalSearchOptions initial_search;
    /// Whether Initialize optimizes the initial clustering organization
    /// (false = serve the agglomerative clustering as-is).
    bool optimize_initial = true;
    /// Keyword-search engine options (applied at every publish).
    SearchEngineOptions engine;
  };

  /// Takes ownership of the initial catalog. `store` embeds attribute
  /// values and search expansions; must not be null.
  LiveLakeService(DataLake lake, std::shared_ptr<const EmbeddingStore> store,
                  Options options);
  LiveLakeService(DataLake lake, std::shared_ptr<const EmbeddingStore> store);

  /// Builds version 1 from scratch: topic vectors (if not yet computed),
  /// tag index, full context, clustering organization (+ optimization),
  /// search engine — then publishes. Must be called exactly once, before
  /// Apply.
  Status Initialize();

  /// Applies one batch of catalog mutations and publishes the repaired
  /// snapshot. `mutate` runs against a private copy of the current lake
  /// with delta recording active; returning a non-OK status abandons the
  /// batch (nothing is published). Requires Initialize() to have run.
  Result<LiveApplyReport> Apply(
      const std::function<Status(DataLake*)>& mutate);

  /// The latest published snapshot (null before Initialize).
  std::shared_ptr<const OrgSnapshot> Current() const {
    return snapshots_.Current();
  }

  /// Latest published version (0 before Initialize).
  uint64_t version() const { return snapshots_.version(); }

  /// Registers a callback invoked with the new version after every
  /// successful publish (Initialize and Apply), while the writer lock is
  /// still held — so a listener observes publishes in order and never
  /// races a concurrent Apply. The listener must be fast and must not
  /// call back into mutating service entry points (Current() is fine).
  /// Pass nullptr to unregister; NavService uses this for session
  /// invalidation and per-version cache retirement.
  void SetPublishListener(std::function<void(uint64_t)> listener);

 private:
  std::mutex writer_mu_;
  std::function<void(uint64_t)> publish_listener_;
  /// The pre-Initialize catalog; moved into snapshot v1.
  DataLake initial_lake_;
  bool initialized_ = false;
  std::shared_ptr<const EmbeddingStore> store_;
  Options options_;
  OrgSnapshotStore snapshots_;
};

}  // namespace lakeorg
