// LiveLakeService: the writer side of live lake evolution. Owns the
// master catalog, applies batches of mutations on a private copy
// (copy-on-write against the published snapshot), repairs the
// organization incrementally with RepairOrganization, rebuilds the
// keyword-search index over the new catalog, and publishes the result
// as the next immutable OrgSnapshot. Readers never wait on a repair:
// they pin whatever snapshot was current when they started (see
// core/org_snapshot.h and docs/EVOLUTION.md).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "core/local_search.h"
#include "core/org_snapshot.h"
#include "core/repair.h"
#include "embedding/embedding_store.h"
#include "lake/data_lake.h"
#include "lake/wal/lake_mutation.h"
#include "lake/wal/wal.h"
#include "lake/wal/wal_record.h"
#include "search/engine.h"

namespace lakeorg {

/// Durability tuning for LiveLakeService (docs/DURABILITY.md). With a
/// non-empty `dir`, Initialize writes an initial compacted snapshot and
/// every accepted ApplyRecorded appends its mutation batch to the WAL
/// before the new snapshot is published; RecoverFromDisk rebuilds the
/// exact published state after a crash.
struct LiveDurabilityOptions {
  /// WAL directory; empty = durability off.
  std::string dir;
  /// Records per fsync batch (WalOptions.group_commit_window). A window
  /// of N can lose up to the last N - 1 applies on crash — never a
  /// prefix-inconsistent state.
  int group_commit_window = 1;
  /// Write a compacted snapshot (and truncate the WAL) after this many
  /// applies; 0 = only the initial snapshot, the WAL grows unbounded.
  uint64_t snapshot_every = 16;
  /// Reset the WAL after each snapshot (WalOptions.truncate_on_snapshot).
  bool truncate_on_snapshot = true;

  bool enabled() const { return !dir.empty(); }
};

/// What one Apply published.
struct LiveApplyReport {
  /// Version of the published snapshot.
  uint64_t version = 0;
  /// The normalized catalog delta the batch produced.
  LakeDelta delta;
  /// Repair statistics (see RepairResult).
  double effectiveness = 0.0;
  double splice_effectiveness = 0.0;
  size_t states_touched = 0;
  size_t leaves_added = 0;
  size_t leaves_removed = 0;
  size_t states_dropped = 0;
  size_t reopt_proposals = 0;
  double repair_seconds = 0.0;
};

/// What one Reoptimize published.
struct LiveReoptReport {
  /// Version of the published snapshot.
  uint64_t version = 0;
  /// Optimizer objective of the published org (the weighted effectiveness
  /// when LocalSearchOptions::table_weights was set).
  double effectiveness = 0.0;
  /// Same objective for the pre-reoptimization org.
  double initial_effectiveness = 0.0;
  size_t proposals = 0;
  size_t accepted = 0;
  double seconds = 0.0;
};

/// Single-writer service around an evolving lake. All mutating entry
/// points serialize on an internal mutex; Current() only takes the
/// snapshot store's pointer-copy lock, never the service mutex, so
/// readers are never stuck behind a repair.
class LiveLakeService {
 public:
  struct Options {
    /// Repair tunables for Apply.
    RepairOptions repair;
    /// Full-build optimizer tunables for Initialize.
    LocalSearchOptions initial_search;
    /// Whether Initialize optimizes the initial clustering organization
    /// (false = serve the agglomerative clustering as-is).
    bool optimize_initial = true;
    /// Keyword-search engine options (applied at every publish).
    SearchEngineOptions engine;
    /// Durability (WAL + snapshots); off by default.
    LiveDurabilityOptions durability;
    /// Canonicalize every published organization's topic sums
    /// (Organization::RecomputeAllTopics), so a save/load round trip of
    /// the published org is bit-identical. Costs one pass over the DAG
    /// per publish; implied (forced on) by durability, since recovery
    /// reloads organizations from disk and must land on identical
    /// floats.
    bool canonical_publish = false;
  };

  /// Takes ownership of the initial catalog. `store` embeds attribute
  /// values and search expansions; must not be null.
  LiveLakeService(DataLake lake, std::shared_ptr<const EmbeddingStore> store,
                  Options options);
  LiveLakeService(DataLake lake, std::shared_ptr<const EmbeddingStore> store);

  /// Builds version 1 from scratch: topic vectors (if not yet computed),
  /// tag index, full context, clustering organization (+ optimization),
  /// search engine — then publishes. Must be called exactly once, before
  /// Apply.
  Status Initialize();

  /// Applies one batch of catalog mutations and publishes the repaired
  /// snapshot. `mutate` runs against a private copy of the current lake
  /// with delta recording active; returning a non-OK status abandons the
  /// batch (nothing is published). Requires Initialize() to have run.
  Result<LiveApplyReport> Apply(
      const std::function<Status(DataLake*)>& mutate);

  /// Apply with mutation recording: `mutate` runs against a
  /// LakeMutationRecorder wrapping the private lake copy, so the batch
  /// is replayable. When durability is on this is the only permitted
  /// apply entry point (plain Apply cannot log what it cannot replay):
  /// the accepted batch is appended to the WAL before the repaired
  /// snapshot is published, and every `snapshot_every` applies the new
  /// state is compacted into a snapshot. Works (without logging) when
  /// durability is off, so callers can share one code path.
  Result<LiveApplyReport> ApplyRecorded(
      const std::function<Status(LakeMutationRecorder*)>& mutate);

  /// Re-optimizes the published organization in place — no catalog
  /// mutation — and publishes the result as the next snapshot, sharing
  /// the current lake/index/context/search engine. The adaptive loop's
  /// repair step: `search` typically carries restrict_targets (the
  /// demand-affected subgraph) and table_weights (observed demand).
  /// Serializes on the writer mutex like Apply; readers keep serving
  /// whatever snapshot they pinned. When durability is on, the improved
  /// organization is persisted by compacting a snapshot right after the
  /// publish (a re-optimization is not a mutation batch, so the WAL
  /// cannot replay it).
  Result<LiveReoptReport> Reoptimize(const LocalSearchOptions& search);

  /// Rebuilds a service from `options.durability.dir`: loads the newest
  /// snapshot, replays the WAL tail through the same repair path the
  /// original applies took (verifying each record's delta), and opens
  /// the log for further appends. The returned service is initialized
  /// and serving the exact state the crashed process had published for
  /// the last durable record. NotFound when the directory holds no
  /// snapshot; InvalidArgument on mid-log corruption or replay
  /// divergence.
  static Result<std::unique_ptr<LiveLakeService>> RecoverFromDisk(
      std::shared_ptr<const EmbeddingStore> store, Options options);

  /// The latest published snapshot (null before Initialize).
  std::shared_ptr<const OrgSnapshot> Current() const {
    return snapshots_.Current();
  }

  /// Latest published version (0 before Initialize).
  uint64_t version() const { return snapshots_.version(); }

  /// Sequence number of the last WAL record this service wrote or
  /// replayed (0 when durability is off or before any apply).
  uint64_t wal_seq() const;

  /// Forces buffered WAL records to disk (no-op when durability is
  /// off). Callers needing an acknowledged apply durable *now* — e.g.
  /// before reporting success externally — call this instead of waiting
  /// for the group-commit window to fill.
  Status SyncWal();

  /// Registers a callback invoked with the new version after every
  /// successful publish (Initialize and Apply), while the writer lock is
  /// still held — so a listener observes publishes in order and never
  /// races a concurrent Apply. The listener must be fast and must not
  /// call back into mutating service entry points (Current() is fine).
  /// Pass nullptr to unregister; NavService uses this for session
  /// invalidation and per-version cache retirement.
  void SetPublishListener(std::function<void(uint64_t)> listener);

 private:
  /// Shared body of Apply/ApplyRecorded/replay. `record_batch` non-null
  /// = append a WAL record for it (durable apply); `expect_delta`
  /// non-null = recovery replay: verify the produced delta matches the
  /// logged one and do not re-append.
  Result<LiveApplyReport> ApplyLocked(
      const std::function<Status(DataLake*)>& mutate,
      const LakeMutationBatch* record_batch, const LakeDelta* expect_delta);

  /// Publishes a snapshot loaded from disk (the recovery counterpart of
  /// Initialize); writer_mu_ must be held.
  Status InitializeFromSnapshot(const DurableSnapshot& snapshot);

  /// Serializes the current published state into a DurableSnapshot
  /// document; writer_mu_ must be held and a snapshot published.
  Result<std::string> EncodeCurrentSnapshot() const;

  /// True when published organizations must be topic-canonical.
  bool canonical_publish() const {
    return options_.canonical_publish || options_.durability.enabled();
  }

  std::mutex writer_mu_;
  std::function<void(uint64_t)> publish_listener_;
  /// The pre-Initialize catalog; moved into snapshot v1.
  DataLake initial_lake_;
  bool initialized_ = false;
  std::shared_ptr<const EmbeddingStore> store_;
  Options options_;
  OrgSnapshotStore snapshots_;
  /// Open WAL when durability is on (after Initialize / recovery).
  std::optional<DurableLog> wal_;
  /// Last WAL sequence number written or replayed.
  uint64_t wal_seq_ = 0;
  /// Applies since the last compacted snapshot.
  uint64_t applies_since_snapshot_ = 0;
};

}  // namespace lakeorg
