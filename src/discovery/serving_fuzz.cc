#include "discovery/serving_fuzz.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/navigation.h"
#include "core/org_snapshot.h"
#include "core/transition.h"
#include "discovery/nav_service.h"
#include "embedding/vector_ops.h"

namespace lakeorg {
namespace {

/// Bit-exact comparison of two views of the same session position.
/// Returns an empty string on match.
std::string CompareViews(const NavView& a, const NavView& b,
                         const char* what) {
  if (a.state != b.state) {
    return std::string(what) + ": state mismatch";
  }
  if (a.at_leaf != b.at_leaf || a.depth != b.depth) {
    return std::string(what) + ": position mismatch";
  }
  if (a.NumChoices() != b.NumChoices()) {
    return std::string(what) + ": choice count mismatch";
  }
  for (size_t r = 0; r < a.NumChoices(); ++r) {
    if (a.ChoiceState(r) != b.ChoiceState(r)) {
      return std::string(what) + ": ranked child mismatch";
    }
    if (a.ChoiceProb(r) != b.ChoiceProb(r)) {
      return std::string(what) + ": probability not bit-identical";
    }
    if (a.ChoiceLabel(r) != b.ChoiceLabel(r)) {
      return std::string(what) + ": label mismatch";
    }
  }
  return "";
}

/// Checks a view against a freshly computed TransitionRow + StateLabel
/// oracle. Returns an empty string on match.
std::string CheckOracle(const NavView& view, const Organization& org,
                        const Vec& query, double query_norm,
                        const TransitionConfig& config) {
  TransitionRow oracle;
  ComputeTransitionRow(org, view.state, query, query_norm, config, &oracle);
  if (view.NumChoices() != oracle.ranking.size()) {
    return "oracle: choice count mismatch";
  }
  for (size_t r = 0; r < oracle.ranking.size(); ++r) {
    uint32_t idx = oracle.ranking[r];
    if (view.ChoiceState(r) != oracle.children[idx]) {
      return "oracle: ranked child mismatch";
    }
    if (view.ChoiceProb(r) != oracle.probs[idx]) {
      return "oracle: probability not bit-identical";
    }
    if (view.ChoiceLabel(r) != StateLabel(org, oracle.children[idx])) {
      return "oracle: label mismatch";
    }
  }
  return "";
}

/// One session's scripted walk through both services. Returns an empty
/// string on success.
std::string RunWalk(NavService* cached, NavService* uncached,
                    NavSessionId ca, NavSessionId ub, const Organization& org,
                    const Vec& query, double query_norm,
                    const TransitionConfig& config, uint64_t walk_seed,
                    size_t num_steps, size_t* steps_taken) {
  Rng rng(walk_seed);
  for (size_t step = 0; step < num_steps; ++step) {
    Result<NavView> va = cached->Peek(ca);
    Result<NavView> vb = uncached->Peek(ub);
    if (!va.ok()) return "cached peek failed: " + va.status().ToString();
    if (!vb.ok()) return "uncached peek failed: " + vb.status().ToString();
    std::string diff = CompareViews(va.value(), vb.value(), "cached/uncached");
    if (!diff.empty()) return diff;
    diff = CheckOracle(va.value(), org, query, query_norm, config);
    if (!diff.empty()) return diff;

    const NavView& view = va.value();
    size_t choices = view.NumChoices();
    if (choices == 0) {
      // Dead end: descending must fail identically on both services and
      // move neither session.
      Result<NavView> da = cached->Descend(ca, 0);
      Result<NavView> db = uncached->Descend(ub, 0);
      if (da.ok() || db.ok()) return "descend at dead end did not fail";
      if (da.status().code() != StatusCode::kFailedPrecondition ||
          db.status().code() != StatusCode::kFailedPrecondition) {
        return "descend at dead end: wrong status code";
      }
      if (view.depth == 0) break;  // Childless root: nowhere to go.
      Result<NavView> ba = cached->Back(ca);
      Result<NavView> bb = uncached->Back(ub);
      if (!ba.ok() || !bb.ok()) return "back from dead end failed";
      ++*steps_taken;
      continue;
    }
    // Bad ranks must be rejected without moving the session.
    if (rng.Bernoulli(0.1)) {
      Result<NavView> da = cached->Descend(ca, choices);
      Result<NavView> db = uncached->Descend(ub, choices);
      if (da.ok() || db.ok() ||
          da.status().code() != StatusCode::kOutOfRange ||
          db.status().code() != StatusCode::kOutOfRange) {
        return "out-of-range rank not rejected";
      }
    }
    if (view.depth > 0 && rng.Bernoulli(0.25)) {
      Result<NavView> ba = cached->Back(ca);
      Result<NavView> bb = uncached->Back(ub);
      if (!ba.ok() || !bb.ok()) return "back failed";
      diff = CompareViews(ba.value(), bb.value(), "back");
      if (!diff.empty()) return diff;
    } else {
      size_t rank = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(choices) - 1));
      Result<NavView> da = cached->Descend(ca, rank);
      Result<NavView> db = uncached->Descend(ub, rank);
      if (!da.ok() || !db.ok()) return "descend failed";
      diff = CompareViews(da.value(), db.value(), "descend");
      if (!diff.empty()) return diff;
      diff = CheckOracle(da.value(), org, query, query_norm, config);
      if (!diff.empty()) return diff;
    }
    ++*steps_taken;
  }
  // Back at the root must fail with FailedPrecondition on both.
  for (;;) {
    Result<NavView> view = cached->Peek(ca);
    if (!view.ok() || view.value().depth == 0) break;
    if (!cached->Back(ca).ok()) return "unwinding back failed";
  }
  Result<NavView> root_back = cached->Back(ca);
  if (root_back.ok() ||
      root_back.status().code() != StatusCode::kFailedPrecondition) {
    return "back at root not rejected";
  }
  return "";
}

}  // namespace

ServingTrialResult RunServingTrial(const ServingTrialOptions& options) {
  ServingTrialResult result;
  auto fail = [&result, &options](const std::string& msg) {
    result.ok = false;
    result.error =
        "serving trial seed " + std::to_string(options.seed) + ": " + msg;
    return result;
  };

  Rng rng(options.seed);
  FuzzLake fuzz = MakeFuzzLake(&rng, options.lake);
  Organization random_org = RandomOrganization(fuzz.ctx, &rng, options.org);

  OrgSnapshotStore store;
  {
    OrgSnapshot snap;
    snap.ctx = fuzz.ctx;
    snap.org = std::make_shared<const Organization>(std::move(random_org));
    store.Publish(std::move(snap));
  }
  NavService::SnapshotSource source = [&store] { return store.Current(); };
  const Organization& org = *store.Current()->org;
  const OrgContext& ctx = *fuzz.ctx;

  NavServiceOptions cached_opts;
  cached_opts.idle_ttl_seconds = 0.0;  // No expiry mid-trial.
  // Exercise parallel batch warming at the trial's thread count.
  cached_opts.batch_threads = options.threads;
  NavServiceOptions uncached_opts = cached_opts;
  uncached_opts.cache_capacity = 0;
  NavService cached(source, cached_opts);
  NavService uncached(source, uncached_opts);

  struct Walker {
    NavSessionId cached_id = 0;
    NavSessionId uncached_id = 0;
    uint32_t attr = 0;
    double query_norm = 0.0;
    uint64_t walk_seed = 0;
  };
  std::vector<Walker> walkers(options.num_sessions);
  for (Walker& w : walkers) {
    w.attr = static_cast<uint32_t>(
        rng.UniformInt(0, static_cast<int64_t>(ctx.num_attrs()) - 1));
    w.query_norm = Norm(ctx.attr_vector(w.attr));
    w.walk_seed = static_cast<uint64_t>(rng.UniformInt(1, 1 << 30));
    Result<NavSessionId> a = cached.Open(w.attr);
    Result<NavSessionId> b = uncached.Open(w.attr);
    if (!a.ok() || !b.ok()) return fail("open failed");
    w.cached_id = a.value();
    w.uncached_id = b.value();
  }

  // Each walker's script is seeded independently, so the comparisons are
  // identical at any thread count; only cache contention varies.
  std::vector<std::string> errors(walkers.size());
  std::vector<size_t> steps(walkers.size(), 0);
  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) pool = std::make_unique<ThreadPool>(options.threads);
  ParallelChunks(pool.get(), walkers.size(), options.threads,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     const Walker& w = walkers[i];
                     errors[i] = RunWalk(
                         &cached, &uncached, w.cached_id, w.uncached_id, org,
                         ctx.attr_vector(w.attr), w.query_norm,
                         cached_opts.transition, w.walk_seed,
                         options.steps_per_session, &steps[i]);
                   }
                 });
  for (const std::string& err : errors) {
    if (!err.empty()) return fail(err);
  }
  for (size_t s : steps) result.steps += s;

  // A batched peek round must equal the scalar API request-for-request.
  std::vector<NavStepRequest> batch;
  for (const Walker& w : walkers) {
    NavStepRequest req;
    req.session = w.cached_id;
    req.kind = NavStepRequest::Kind::kPeek;
    batch.push_back(req);
  }
  std::vector<Result<NavView>> batched = cached.ExecuteBatch(batch);
  if (batched.size() != walkers.size()) return fail("batch size mismatch");
  for (size_t i = 0; i < walkers.size(); ++i) {
    if (!batched[i].ok()) return fail("batched peek failed");
    Result<NavView> scalar = cached.Peek(walkers[i].cached_id);
    if (!scalar.ok()) return fail("scalar peek failed");
    std::string diff =
        CompareViews(batched[i].value(), scalar.value(), "batch/scalar");
    if (!diff.empty()) return fail(diff);
  }

  NavServiceStats stats = cached.Stats();
  result.cache_hits = stats.cache_hits;
  result.cache_misses = stats.cache_misses;
  return result;
}

}  // namespace lakeorg
