// The closed adaptive loop (ROADMAP "serve -> observe -> repair", the
// paper's section 6 "learning from users" future work made real):
//
//   NavService sessions --ClickEvent--> ClickLogSink (bounded, lock-based)
//        ^                                   |
//        |                            AdaptivePolicy::Tick
//        |                                   |  drain, filter, blend into
//        |                                   |  BehaviorLog + demand counts
//        |                                   v
//   OrgSnapshotStore <--publish-- LiveLakeService::Reoptimize
//                                   (restrict_targets = observed subgraph,
//                                    table_weights   = observed demand)
//
// Every descend a session takes is one observed transition. The policy
// drains the sink, drops events that do not name a live edge of the
// *current* snapshot (stale versions; states recycled by
// RecycleDeadStates), blends the survivors into Dirichlet-smoothed
// transition posteriors (core/behavior_log), and scores drift: the
// count-weighted total-variation distance between the Equation 1 prior
// and the posterior at each observed state. When drift crosses the
// threshold, it re-optimizes only the observed subgraph under the
// demand-weighted objective and publishes the improved organization while
// serving continues on pinned snapshots.
//
// Determinism contract (what `difftest --adaptive` enforces): given the
// same event multiset — regardless of arrival interleaving — a Tick
// blends the same integer counts, computes bit-identical drift (states
// are scanned in ascending StateId order, never hash order), derives the
// same repair plan (BuildRepairPlan is a pure function), and publishes a
// byte-identical organization. Under a fake clock and fixed seeds the
// whole loop is replayable by a serial oracle.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/behavior_log.h"
#include "core/local_search.h"
#include "core/organization.h"

namespace lakeorg {

class LiveLakeService;

/// One observed click: a session descended `from` -> `to` while
/// navigating toward `query_attr` on snapshot `version`.
struct ClickEvent {
  uint64_t version = 0;
  StateId from = kInvalidId;
  StateId to = kInvalidId;
  uint32_t query_attr = 0;
};

/// Bounded, thread-safe buffer between serving threads (producers) and
/// the single-writer policy (consumer). Push never blocks: a full sink
/// drops the event and counts it (`adaptive.clicks_dropped_total`) —
/// losing telemetry under overload is fine, stalling a serving step is
/// not.
class ClickLogSink {
 public:
  explicit ClickLogSink(size_t capacity = 1 << 16);

  /// Appends one event; false (and a drop tally) when full.
  bool Push(const ClickEvent& event);

  /// Moves every buffered event to the end of *out; returns how many.
  size_t Drain(std::vector<ClickEvent>* out);

  size_t size() const;
  /// Totals over the sink's lifetime.
  uint64_t pushed() const;
  uint64_t dropped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<ClickEvent> events_;
  uint64_t pushed_ = 0;
  uint64_t dropped_ = 0;
};

/// True when `event` names a live edge of `org`: both endpoints in range
/// and alive, `to` a child of `from`, and the query attribute in range.
/// Events recorded against a state later recycled by RecycleDeadStates
/// fail this check (the slot now names a different state) and must be
/// dropped, never blended.
bool ClickEventValid(const Organization& org, const OrgContext& ctx,
                     const ClickEvent& event);

/// Policy tunables.
struct AdaptivePolicyOptions {
  /// Dirichlet prior strength alpha (core/behavior_log). A power of two
  /// keeps the zero-observation blend bit-identical to the Equation 1
  /// prior ((alpha * p) / alpha == p exactly).
  double prior_strength = 32.0;
  /// Repair triggers when the demand-weighted drift score reaches this.
  double drift_threshold = 0.15;
  /// ... and at least this many clicks were blended since the last
  /// repair (keeps a handful of early clicks from thrashing the org).
  uint64_t min_clicks = 200;
  /// Pseudo-demand added to every table's weight so unobserved tables
  /// keep a positive stake in the weighted objective (their discovery
  /// probability must not be traded away entirely).
  double demand_floor = 1.0;
  /// Re-optimization tunables. restrict_targets, table_weights, and the
  /// seed are overwritten per repair (seed = reopt.seed + repairs so
  /// far, which keeps every repair deterministic but distinct).
  LocalSearchOptions reopt;
};

/// The deterministic repair plan one Tick derives; BuildRepairPlan is
/// shared by the policy and the difftest oracle.
struct AdaptiveRepairPlan {
  /// Demand-weighted total-variation drift in [0, 1].
  double drift = 0.0;
  /// Observed-subgraph states (ascending, unique, never the root) —
  /// LocalSearchOptions::restrict_targets for the repair.
  std::vector<StateId> targets;
  /// Demand-weighted objective: demand_floor + observed clicks per
  /// table, through attr -> table.
  std::vector<double> table_weights;
  /// The query attribute drift was evaluated under (the globally
  /// top-demanded attribute; smallest id wins ties). kInvalidId when no
  /// demand was observed.
  uint32_t top_attr = kInvalidId;
};

/// Derives drift + the restricted re-optimization plan from the blended
/// log and demand counts. Pure and deterministic: states are scanned in
/// ascending StateId order and all inputs are integer counts, so the
/// result is bit-identical no matter how many threads produced the
/// events. `demand_by_attr` must have one entry per context attribute.
AdaptiveRepairPlan BuildRepairPlan(const Organization& org,
                                   const OrgContext& ctx,
                                   const BehaviorLog& log,
                                   const std::vector<uint64_t>& demand_by_attr,
                                   const AdaptivePolicyOptions& options);

/// What one Tick did (also exported as adaptive.* metrics).
struct AdaptiveTickReport {
  /// Events taken out of the sink.
  size_t drained = 0;
  /// ... of which dropped for naming a superseded snapshot version.
  size_t dropped_stale = 0;
  /// ... or for not naming a live edge (recycled/dead/foreign states).
  size_t dropped_invalid = 0;
  /// Drift score after blending.
  double drift = 0.0;
  bool repaired = false;
  /// Published version after the tick (unchanged when !repaired).
  uint64_t version = 0;
  /// Optimizer objective (demand-weighted effectiveness) of the
  /// published org when repaired; 0 otherwise.
  double effectiveness = 0.0;
  double reopt_seconds = 0.0;
  size_t reopt_proposals = 0;
};

/// Single-writer policy: drains the sink, maintains the cumulative
/// BehaviorLog + per-attribute demand, and triggers restricted
/// re-optimizations through LiveLakeService::Reoptimize. Tick() is the
/// deterministic entry point (tests, difftest, benches drive it
/// directly); Start()/Stop() run Tick on a background thread for
/// production serving. Ticks serialize on an internal mutex, so a
/// background ticker and manual Ticks never interleave.
class AdaptivePolicy {
 public:
  AdaptivePolicy(LiveLakeService* live, std::shared_ptr<ClickLogSink> sink,
                 AdaptivePolicyOptions options = {});
  ~AdaptivePolicy();

  AdaptivePolicy(const AdaptivePolicy&) = delete;
  AdaptivePolicy& operator=(const AdaptivePolicy&) = delete;

  /// One serve-observe-repair cycle; see the file comment.
  Result<AdaptiveTickReport> Tick();

  /// Runs Tick every `interval_seconds` on a background thread until
  /// Stop (or destruction). Tick errors are counted
  /// (adaptive.tick_errors_total), not fatal.
  void Start(double interval_seconds);
  void Stop();

  /// The cumulative blended log (cleared after every repair). Callers
  /// must not hold this reference across a concurrent Tick.
  const BehaviorLog& log() const { return log_; }
  uint64_t repairs() const;
  uint64_t clicks_blended() const;

 private:
  LiveLakeService* live_;
  std::shared_ptr<ClickLogSink> sink_;
  AdaptivePolicyOptions options_;

  /// Serializes Tick (manual callers vs the background thread).
  mutable std::mutex tick_mu_;
  std::vector<ClickEvent> drain_buf_;
  BehaviorLog log_;
  std::vector<uint64_t> demand_by_attr_;
  /// Snapshot version the cumulative state was blended against; a
  /// version change not caused by our own repair resets the state (the
  /// ids it refers to belong to the superseded org).
  uint64_t observed_version_ = 0;
  uint64_t clicks_since_repair_ = 0;
  uint64_t clicks_blended_ = 0;
  uint64_t repairs_ = 0;

  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  std::thread bg_thread_;
  bool bg_stop_ = false;
};

}  // namespace lakeorg
