// Randomized differential testing for the closed adaptive loop (the
// --adaptive mode of tools/difftest.cc): one trial builds a random lake,
// serves it through a LiveLakeService + NavService with a click sink
// attached, drives scripted concurrent session walks (each walker
// records the clicks it caused from the views it saw), injects
// deterministic stale/invalid events, and then checks one
// AdaptivePolicy::Tick against a serial oracle replay:
//
//  - drained/dropped tallies must match the recorded event multiset;
//  - the drift score must be BIT-IDENTICAL to BuildRepairPlan over the
//    oracle's independently blended BehaviorLog (thread-invariance of
//    the blend);
//  - when a repair triggers, re-running OptimizeOrganization with the
//    oracle-derived plan (restrict_targets + table_weights + seed) must
//    produce a BYTE-IDENTICAL published organization, and the reported
//    objective must match the weighted-effectiveness oracle to 1e-9;
//  - the optimizer contract effectiveness >= initial_effectiveness must
//    hold under the demand-weighted objective.
//
// Deterministic for a fixed seed at any thread count.
#pragma once

#include <cstdint>
#include <string>

#include "core/org_fuzz.h"

namespace lakeorg {

/// One adaptive-loop trial's configuration.
struct AdaptiveTrialOptions {
  /// Trial seed; drives the lake, every walk script, and the drift
  /// threshold. Printed with every failure.
  uint64_t seed = 1;
  /// Client threads driving session walks concurrently.
  size_t threads = 1;
  /// Sessions opened per round.
  size_t num_sessions = 6;
  /// Navigation steps per session per round.
  size_t steps_per_session = 25;
  /// serve -> observe -> Tick rounds per trial.
  size_t rounds = 3;
  /// Tolerance for the weighted-effectiveness oracle cross-check.
  double tolerance = 1e-9;
  FuzzLakeOptions lake;
};

/// Outcome of one adaptive-loop trial.
struct AdaptiveTrialResult {
  bool ok = true;
  /// First failure, with the trial seed embedded; empty when ok.
  std::string error;
  size_t steps = 0;
  size_t clicks = 0;
  size_t repairs = 0;
  double max_drift = 0.0;
};

/// Runs one adaptive-loop differential trial.
AdaptiveTrialResult RunAdaptiveTrial(const AdaptiveTrialOptions& options);

}  // namespace lakeorg
