#include "discovery/adaptive_fuzz.h"

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "core/serialization.h"
#include "discovery/adaptive_loop.h"
#include "discovery/live_lake.h"
#include "discovery/nav_service.h"

namespace lakeorg {
namespace {

/// One session's scripted walk: peek, then descend a random rank (or
/// back off). Every descend the service acknowledged is recorded from
/// the returned views — the oracle's independent copy of the click
/// stream. Returns an empty string on success.
std::string RunAdaptiveWalk(NavService* service, NavSessionId id,
                            uint32_t query_attr, uint64_t walk_seed,
                            size_t num_steps, std::vector<ClickEvent>* clicks,
                            size_t* steps_taken) {
  Rng rng(walk_seed);
  for (size_t step = 0; step < num_steps; ++step) {
    Result<NavView> peek = service->Peek(id);
    if (!peek.ok()) return "peek failed: " + peek.status().ToString();
    const NavView& view = peek.value();
    size_t choices = view.NumChoices();
    if (choices == 0) {
      if (view.depth == 0) break;  // Childless root: nowhere to go.
      Result<NavView> back = service->Back(id);
      if (!back.ok()) return "back from dead end failed";
      ++*steps_taken;
      continue;
    }
    if (view.depth > 0 && rng.Bernoulli(0.25)) {
      Result<NavView> back = service->Back(id);
      if (!back.ok()) return "back failed";
    } else {
      size_t rank = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(choices) - 1));
      StateId to = view.ChoiceState(rank);
      Result<NavView> down = service->Descend(id, rank);
      if (!down.ok()) return "descend failed: " + down.status().ToString();
      ClickEvent click;
      click.version = view.snapshot_version;
      click.from = view.state;
      click.to = to;
      click.query_attr = query_attr;
      clicks->push_back(click);
    }
    ++*steps_taken;
  }
  return "";
}

Result<std::string> OrgBytes(const Organization& org) {
  std::ostringstream out;
  LAKEORG_RETURN_NOT_OK(SaveOrganization(org, &out));
  return std::move(out).str();
}

}  // namespace

AdaptiveTrialResult RunAdaptiveTrial(const AdaptiveTrialOptions& options) {
  AdaptiveTrialResult result;
  auto fail = [&result, &options](const std::string& msg) {
    result.ok = false;
    result.error =
        "adaptive trial seed " + std::to_string(options.seed) + ": " + msg;
    return result;
  };

  Rng rng(options.seed);
  FuzzLake fuzz = MakeFuzzLake(&rng, options.lake);

  LiveLakeService::Options base;
  base.optimize_initial = false;  // Clustering org: headroom for repairs.
  base.canonical_publish = true;  // Published orgs are save/load-exact.
  LiveLakeService live(fuzz.bench.lake, fuzz.bench.store, base);
  Status init = live.Initialize();
  if (!init.ok()) return fail("initialize failed: " + init.ToString());

  auto sink = std::make_shared<ClickLogSink>(size_t{1} << 20);
  NavServiceOptions nopts;
  nopts.idle_ttl_seconds = 0.0;       // No expiry mid-trial.
  nopts.clock = [] { return 0.0; };   // Fake clock: fully deterministic.
  nopts.click_sink = sink;
  NavService service(&live, nopts);

  AdaptivePolicyOptions popts;
  popts.prior_strength = 32.0;
  popts.min_clicks = 1;
  // Exercise repairing and non-repairing ticks across the corpus.
  const double kThresholds[] = {0.0, 0.05, 0.75};
  popts.drift_threshold = kThresholds[rng.UniformInt(0, 2)];
  popts.reopt.max_proposals = 40;
  popts.reopt.patience = 10;
  popts.reopt.record_history = false;
  popts.reopt.num_threads = options.threads;
  popts.reopt.seed = 777;
  AdaptivePolicy policy(&live, sink, popts);

  // Serial-oracle replica of the policy's cumulative state.
  const OrgContext& ctx = *live.Current()->ctx;
  BehaviorLog oracle_log;
  std::vector<uint64_t> oracle_demand(ctx.num_attrs(), 0);
  uint64_t oracle_clicks_since = 0;
  uint64_t oracle_repairs = 0;

  for (size_t round = 0; round < options.rounds; ++round) {
    std::shared_ptr<const OrgSnapshot> pre = live.Current();

    // Serve one round of concurrent scripted walks; every walker records
    // its own click stream, so the oracle multiset is exact regardless
    // of interleaving.
    struct Walker {
      NavSessionId id = 0;
      uint32_t attr = 0;
      uint64_t walk_seed = 0;
      std::vector<ClickEvent> clicks;
      std::string error;
      size_t steps = 0;
    };
    std::vector<Walker> walkers(options.num_sessions);
    for (Walker& w : walkers) {
      w.attr = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(ctx.num_attrs()) - 1));
      w.walk_seed = static_cast<uint64_t>(rng.UniformInt(1, 1 << 30));
      Result<NavSessionId> opened = service.Open(w.attr);
      if (!opened.ok()) return fail("open failed");
      w.id = opened.value();
    }
    std::unique_ptr<ThreadPool> pool;
    if (options.threads > 1) {
      pool = std::make_unique<ThreadPool>(options.threads);
    }
    ParallelChunks(pool.get(), walkers.size(), options.threads,
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       Walker& w = walkers[i];
                       w.error = RunAdaptiveWalk(&service, w.id, w.attr,
                                                 w.walk_seed,
                                                 options.steps_per_session,
                                                 &w.clicks, &w.steps);
                     }
                   });
    size_t round_clicks = 0;
    for (Walker& w : walkers) {
      if (!w.error.empty()) return fail(w.error);
      result.steps += w.steps;
      round_clicks += w.clicks.size();
      Status closed = service.Close(w.id);
      if (!closed.ok()) return fail("close failed");
    }
    result.clicks += round_clicks;

    // Deterministic bad events: one from a superseded version (stale),
    // one naming an out-of-range state, one naming a non-edge (invalid).
    ClickEvent stale;
    stale.version = pre->version + 999;
    stale.from = pre->org->root();
    stale.to = pre->org->root();
    sink->Push(stale);
    ClickEvent out_of_range;
    out_of_range.version = pre->version;
    out_of_range.from = static_cast<StateId>(pre->org->num_states() + 7);
    out_of_range.to = pre->org->root();
    sink->Push(out_of_range);
    ClickEvent non_edge;
    non_edge.version = pre->version;
    non_edge.from = pre->org->root();
    non_edge.to = pre->org->root();  // Never a child of itself.
    sink->Push(non_edge);

    // Oracle blend (serial, walker order) + plan derivation.
    for (const Walker& w : walkers) {
      for (const ClickEvent& click : w.clicks) {
        if (click.version != pre->version) return fail("unexpected version");
        if (!ClickEventValid(*pre->org, ctx, click)) {
          return fail("walker recorded an invalid click");
        }
        oracle_log.Record(click.from, click.to);
        ++oracle_demand[click.query_attr];
        ++oracle_clicks_since;
      }
    }
    AdaptiveRepairPlan plan =
        BuildRepairPlan(*pre->org, ctx, oracle_log, oracle_demand, popts);
    bool expect_repair = plan.drift >= popts.drift_threshold &&
                         oracle_clicks_since >= popts.min_clicks &&
                         !plan.targets.empty();

    Result<AdaptiveTickReport> ticked = policy.Tick();
    if (!ticked.ok()) return fail("tick failed: " + ticked.status().ToString());
    const AdaptiveTickReport& tick = ticked.value();

    if (tick.drained != round_clicks + 3) return fail("drained mismatch");
    if (tick.dropped_stale != 1) return fail("dropped_stale mismatch");
    if (tick.dropped_invalid != 2) return fail("dropped_invalid mismatch");
    if (tick.drift != plan.drift) {
      return fail("drift not bit-identical to the oracle replay");
    }
    if (tick.drift > result.max_drift) result.max_drift = tick.drift;
    // A repairing tick restarts the policy's observation window, so its
    // log is empty afterwards; otherwise it must track the oracle's.
    uint64_t expect_total = expect_repair ? 0 : oracle_log.total();
    if (policy.log().total() != expect_total) {
      return fail("blended log total mismatch");
    }
    if (tick.repaired != expect_repair) return fail("repair decision mismatch");

    if (expect_repair) {
      ++result.repairs;
      if (tick.version != pre->version + 1 ||
          live.version() != tick.version) {
        return fail("repair did not publish the next version");
      }
      // Oracle replay of the restricted re-optimization: same plan, same
      // seed schedule, byte-identical publish.
      LocalSearchOptions search = popts.reopt;
      search.restrict_targets = plan.targets;
      search.table_weights = plan.table_weights;
      search.seed = popts.reopt.seed + oracle_repairs;
      Result<LocalSearchResult> opt =
          OptimizeOrganization(pre->org->Clone(), search);
      if (!opt.ok()) return fail("oracle reopt failed: " +
                                 opt.status().ToString());
      LocalSearchResult oracle_lsr = std::move(opt).value();
      if (oracle_lsr.effectiveness != tick.effectiveness) {
        return fail("repair objective not bit-identical to the oracle");
      }
      if (oracle_lsr.effectiveness < oracle_lsr.initial_effectiveness) {
        return fail("optimizer returned a worse weighted objective");
      }
      // The weighted objective must agree with the independent
      // OrgEvaluator oracle (identity representatives => exact).
      OrgEvaluator eval(popts.reopt.transition);
      double weff = OrgEvaluator::WeightedEffectiveness(
          ctx, eval.AllAttributeDiscovery(oracle_lsr.org),
          plan.table_weights);
      if (std::abs(weff - oracle_lsr.effectiveness) > options.tolerance) {
        return fail("weighted effectiveness oracle mismatch");
      }
      oracle_lsr.org.RecomputeAllTopics();  // canonical_publish.
      Result<std::string> oracle_bytes = OrgBytes(oracle_lsr.org);
      Result<std::string> published_bytes = OrgBytes(*live.Current()->org);
      if (!oracle_bytes.ok() || !published_bytes.ok()) {
        return fail("serialization failed");
      }
      if (oracle_bytes.value() != published_bytes.value()) {
        return fail("published org not byte-identical to the oracle replay");
      }
      ++oracle_repairs;
      oracle_log.Clear();
      oracle_demand.assign(ctx.num_attrs(), 0);
      oracle_clicks_since = 0;
    } else {
      if (tick.version != pre->version || live.version() != pre->version) {
        return fail("non-repairing tick changed the published version");
      }
    }
    if (policy.repairs() != oracle_repairs) return fail("repair count drift");
  }
  return result;
}

}  // namespace lakeorg
