#include "discovery/live_lake.h"

#include <cassert>
#include <utility>

#include "core/org_builders.h"
#include "lake/tag_index.h"

namespace lakeorg {

LiveLakeService::LiveLakeService(DataLake lake,
                                 std::shared_ptr<const EmbeddingStore> store,
                                 Options options)
    : initial_lake_(std::move(lake)),
      store_(std::move(store)),
      options_(std::move(options)) {
  assert(store_ != nullptr && "LiveLakeService requires an embedding store");
}

LiveLakeService::LiveLakeService(DataLake lake,
                                 std::shared_ptr<const EmbeddingStore> store)
    : LiveLakeService(std::move(lake), std::move(store), Options()) {}

Status LiveLakeService::Initialize() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (initialized_) {
    return Status::FailedPrecondition("LiveLakeService already initialized");
  }
  if (!initial_lake_.topic_vectors_computed()) {
    LAKEORG_RETURN_NOT_OK(initial_lake_.ComputeTopicVectors(*store_));
  }
  auto index = std::make_shared<const TagIndex>(TagIndex::Build(initial_lake_));
  if (index->NonEmptyTags().empty()) {
    return Status::FailedPrecondition(
        "lake has no non-empty tags to organize");
  }
  std::shared_ptr<const OrgContext> ctx =
      OrgContext::BuildFull(initial_lake_, *index);
  Organization initial = BuildClusteringOrganization(ctx);

  OrgSnapshot snap;
  if (options_.optimize_initial) {
    Result<LocalSearchResult> opt =
        OptimizeOrganization(std::move(initial), options_.initial_search);
    if (!opt.ok()) return opt.status();
    LocalSearchResult lsr = std::move(opt).value();
    snap.org = std::make_shared<const Organization>(std::move(lsr.org));
    snap.effectiveness = lsr.effectiveness;
  } else {
    initial.RecomputeLevels();
    snap.org = std::make_shared<const Organization>(std::move(initial));
  }

  auto lake_ptr = std::make_shared<const DataLake>(std::move(initial_lake_));
  snap.lake = lake_ptr;
  snap.index = index;
  snap.ctx = ctx;
  snap.engine = std::make_shared<const TableSearchEngine>(
      lake_ptr.get(), store_, options_.engine);
  uint64_t version = snapshots_.Publish(std::move(snap));
  initialized_ = true;
  if (publish_listener_) publish_listener_(version);
  return Status::OK();
}

void LiveLakeService::SetPublishListener(
    std::function<void(uint64_t)> listener) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  publish_listener_ = std::move(listener);
}

Result<LiveApplyReport> LiveLakeService::Apply(
    const std::function<Status(DataLake*)>& mutate) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const OrgSnapshot> cur = snapshots_.Current();
  if (cur == nullptr) {
    return Status::FailedPrecondition(
        "LiveLakeService::Apply before Initialize");
  }

  // Copy-on-write: mutate a private copy; readers keep seeing `cur`.
  DataLake lake = *cur->lake;
  LAKEORG_RETURN_NOT_OK(lake.BeginDelta());
  LAKEORG_RETURN_NOT_OK(mutate(&lake));
  Result<LakeDelta> delta_result = lake.TakeDelta();
  if (!delta_result.ok()) return delta_result.status();
  LakeDelta delta = std::move(delta_result).value();
  LAKEORG_RETURN_NOT_OK(lake.ComputeMissingTopicVectors(*store_));

  auto index = std::make_shared<const TagIndex>(TagIndex::Build(lake));
  Result<RepairResult> repaired = RepairOrganization(
      *cur->org, lake, *index, delta, options_.repair);
  if (!repaired.ok()) return repaired.status();
  RepairResult rep = std::move(repaired).value();

  LiveApplyReport report;
  report.delta = std::move(delta);
  report.effectiveness = rep.effectiveness;
  report.splice_effectiveness = rep.splice_effectiveness;
  report.states_touched = rep.states_touched;
  report.leaves_added = rep.leaves_added;
  report.leaves_removed = rep.leaves_removed;
  report.states_dropped = rep.states_dropped;
  report.reopt_proposals = rep.reopt_proposals;
  report.repair_seconds = rep.seconds;

  auto lake_ptr = std::make_shared<const DataLake>(std::move(lake));
  OrgSnapshot snap;
  snap.lake = lake_ptr;
  snap.index = index;
  snap.ctx = rep.ctx;
  snap.org = std::make_shared<const Organization>(std::move(rep.org));
  snap.effectiveness = rep.effectiveness;
  snap.engine = std::make_shared<const TableSearchEngine>(
      lake_ptr.get(), store_, options_.engine);
  report.version = snapshots_.Publish(std::move(snap));
  if (publish_listener_) publish_listener_(report.version);
  return report;
}

}  // namespace lakeorg
