#include "discovery/live_lake.h"

#include <cassert>
#include <chrono>
#include <sstream>
#include <utility>

#include "core/org_builders.h"
#include "core/serialization.h"
#include "lake/lake_serialization.h"
#include "lake/tag_index.h"
#include "obs/metrics.h"

namespace lakeorg {
namespace {

WalOptions ToWalOptions(const LiveDurabilityOptions& d) {
  WalOptions wal;
  wal.dir = d.dir;
  wal.group_commit_window = d.group_commit_window;
  wal.truncate_on_snapshot = d.truncate_on_snapshot;
  return wal;
}

}  // namespace

LiveLakeService::LiveLakeService(DataLake lake,
                                 std::shared_ptr<const EmbeddingStore> store,
                                 Options options)
    : initial_lake_(std::move(lake)),
      store_(std::move(store)),
      options_(std::move(options)) {
  assert(store_ != nullptr && "LiveLakeService requires an embedding store");
}

LiveLakeService::LiveLakeService(DataLake lake,
                                 std::shared_ptr<const EmbeddingStore> store)
    : LiveLakeService(std::move(lake), std::move(store), Options()) {}

Status LiveLakeService::Initialize() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (initialized_) {
    return Status::FailedPrecondition("LiveLakeService already initialized");
  }
  if (options_.durability.enabled()) {
    // A directory that already holds durable state belongs to a
    // previous incarnation: overwriting it would orphan that history.
    Result<WalDirState> existing = ReadWalDir(options_.durability.dir);
    if (!existing.ok()) return existing.status();
    if (existing.value().has_snapshot ||
        !existing.value().wal_payloads.empty()) {
      return Status::FailedPrecondition(
          "WAL directory '" + options_.durability.dir +
          "' already holds durable state; use RecoverFromDisk");
    }
  }
  if (!initial_lake_.topic_vectors_computed()) {
    LAKEORG_RETURN_NOT_OK(initial_lake_.ComputeTopicVectors(*store_));
  }
  auto index = std::make_shared<const TagIndex>(TagIndex::Build(initial_lake_));
  if (index->NonEmptyTags().empty()) {
    return Status::FailedPrecondition(
        "lake has no non-empty tags to organize");
  }
  std::shared_ptr<const OrgContext> ctx =
      OrgContext::BuildFull(initial_lake_, *index);
  Organization initial = BuildClusteringOrganization(ctx);

  OrgSnapshot snap;
  if (options_.optimize_initial) {
    Result<LocalSearchResult> opt =
        OptimizeOrganization(std::move(initial), options_.initial_search);
    if (!opt.ok()) return opt.status();
    LocalSearchResult lsr = std::move(opt).value();
    if (canonical_publish()) lsr.org.RecomputeAllTopics();
    snap.org = std::make_shared<const Organization>(std::move(lsr.org));
    snap.effectiveness = lsr.effectiveness;
  } else {
    initial.RecomputeLevels();
    if (canonical_publish()) initial.RecomputeAllTopics();
    snap.org = std::make_shared<const Organization>(std::move(initial));
  }

  auto lake_ptr = std::make_shared<const DataLake>(std::move(initial_lake_));
  snap.lake = lake_ptr;
  snap.index = index;
  snap.ctx = ctx;
  snap.engine = std::make_shared<const TableSearchEngine>(
      lake_ptr.get(), store_, options_.engine);
  uint64_t version = snapshots_.Publish(std::move(snap));
  initialized_ = true;

  if (options_.durability.enabled()) {
    Result<DurableLog> log = DurableLog::Open(ToWalOptions(options_.durability));
    if (!log.ok()) return log.status();
    wal_ = std::move(log).value();
    wal_seq_ = 0;
    Result<std::string> contents = EncodeCurrentSnapshot();
    if (!contents.ok()) return contents.status();
    LAKEORG_RETURN_NOT_OK(wal_->WriteSnapshot(0, contents.value()));
  }

  if (publish_listener_) publish_listener_(version);
  return Status::OK();
}

void LiveLakeService::SetPublishListener(
    std::function<void(uint64_t)> listener) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  publish_listener_ = std::move(listener);
}

uint64_t LiveLakeService::wal_seq() const {
  // wal_seq_ only changes under writer_mu_; readers of this accessor are
  // tests and tooling that already serialize against applies.
  return wal_seq_;
}

Status LiveLakeService::SyncWal() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!wal_.has_value()) return Status::OK();
  return wal_->Sync();
}

Result<LiveApplyReport> LiveLakeService::Apply(
    const std::function<Status(DataLake*)>& mutate) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (options_.durability.enabled()) {
    return Status::FailedPrecondition(
        "durable LiveLakeService requires ApplyRecorded (an unrecorded "
        "mutation cannot be logged for replay)");
  }
  return ApplyLocked(mutate, nullptr, nullptr);
}

Result<LiveApplyReport> LiveLakeService::ApplyRecorded(
    const std::function<Status(LakeMutationRecorder*)>& mutate) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  LakeMutationBatch batch;
  auto wrapped = [&mutate, &batch](DataLake* lake) -> Status {
    LakeMutationRecorder recorder(lake);
    LAKEORG_RETURN_NOT_OK(mutate(&recorder));
    batch = recorder.TakeOps();
    return Status::OK();
  };
  return ApplyLocked(wrapped, &batch, nullptr);
}

Result<LiveApplyReport> LiveLakeService::ApplyLocked(
    const std::function<Status(DataLake*)>& mutate,
    const LakeMutationBatch* record_batch, const LakeDelta* expect_delta) {
  std::shared_ptr<const OrgSnapshot> cur = snapshots_.Current();
  if (cur == nullptr) {
    return Status::FailedPrecondition(
        "LiveLakeService::Apply before Initialize");
  }

  // Copy-on-write: mutate a private copy; readers keep seeing `cur`.
  DataLake lake = *cur->lake;
  LAKEORG_RETURN_NOT_OK(lake.BeginDelta());
  LAKEORG_RETURN_NOT_OK(mutate(&lake));
  Result<LakeDelta> delta_result = lake.TakeDelta();
  if (!delta_result.ok()) return delta_result.status();
  LakeDelta delta = std::move(delta_result).value();
  LAKEORG_RETURN_NOT_OK(lake.ComputeMissingTopicVectors(*store_));

  auto index = std::make_shared<const TagIndex>(TagIndex::Build(lake));
  Result<RepairResult> repaired = RepairOrganization(
      *cur->org, lake, *index, delta, options_.repair);
  if (!repaired.ok()) return repaired.status();
  RepairResult rep = std::move(repaired).value();
  if (canonical_publish()) rep.org.RecomputeAllTopics();

  if (expect_delta != nullptr && delta != *expect_delta) {
    return Status::Internal(
        "WAL replay divergence: the replayed batch produced a different "
        "catalog delta than the log recorded");
  }

  LiveApplyReport report;
  report.delta = std::move(delta);
  report.effectiveness = rep.effectiveness;
  report.splice_effectiveness = rep.splice_effectiveness;
  report.states_touched = rep.states_touched;
  report.leaves_added = rep.leaves_added;
  report.leaves_removed = rep.leaves_removed;
  report.states_dropped = rep.states_dropped;
  report.reopt_proposals = rep.reopt_proposals;
  report.repair_seconds = rep.seconds;

  // Log before publish: once a reader can see the new version, a crash
  // must be able to reproduce it (up to the group-commit window).
  // Replay (expect_delta) never re-appends.
  if (wal_.has_value() && record_batch != nullptr && expect_delta == nullptr) {
    WalRecord record;
    record.seq = wal_seq_ + 1;
    record.batch = *record_batch;
    record.delta = report.delta;
    LAKEORG_RETURN_NOT_OK(wal_->Append(WalRecordToText(record)));
    wal_seq_ = record.seq;
  }

  auto lake_ptr = std::make_shared<const DataLake>(std::move(lake));
  OrgSnapshot snap;
  snap.lake = lake_ptr;
  snap.index = index;
  snap.ctx = rep.ctx;
  snap.org = std::make_shared<const Organization>(std::move(rep.org));
  snap.effectiveness = rep.effectiveness;
  snap.engine = std::make_shared<const TableSearchEngine>(
      lake_ptr.get(), store_, options_.engine);
  report.version = snapshots_.Publish(std::move(snap));
  if (publish_listener_) publish_listener_(report.version);

  // Compaction after publish: the snapshot must capture the state a
  // recovery should serve, which is exactly what was just published.
  if (wal_.has_value() && expect_delta == nullptr &&
      options_.durability.snapshot_every > 0 &&
      ++applies_since_snapshot_ >= options_.durability.snapshot_every) {
    Result<std::string> contents = EncodeCurrentSnapshot();
    if (!contents.ok()) return contents.status();
    LAKEORG_RETURN_NOT_OK(wal_->WriteSnapshot(wal_seq_, contents.value()));
    applies_since_snapshot_ = 0;
  }
  return report;
}

Result<LiveReoptReport> LiveLakeService::Reoptimize(
    const LocalSearchOptions& search) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const OrgSnapshot> cur = snapshots_.Current();
  if (cur == nullptr) {
    return Status::FailedPrecondition(
        "LiveLakeService::Reoptimize before Initialize");
  }

  Organization working = cur->org->Clone();
  Result<LocalSearchResult> opt =
      OptimizeOrganization(std::move(working), search);
  if (!opt.ok()) return opt.status();
  LocalSearchResult lsr = std::move(opt).value();
  if (canonical_publish()) lsr.org.RecomputeAllTopics();

  LiveReoptReport report;
  report.effectiveness = lsr.effectiveness;
  report.initial_effectiveness = lsr.initial_effectiveness;
  report.proposals = lsr.proposals;
  report.accepted = lsr.accepted;
  report.seconds = lsr.seconds;

  OrgSnapshot snap;
  snap.lake = cur->lake;
  snap.index = cur->index;
  snap.ctx = cur->ctx;
  snap.org = std::make_shared<const Organization>(std::move(lsr.org));
  snap.effectiveness = lsr.effectiveness;
  snap.engine = cur->engine;
  report.version = snapshots_.Publish(std::move(snap));
  if (publish_listener_) publish_listener_(report.version);

  if (wal_.has_value()) {
    Result<std::string> contents = EncodeCurrentSnapshot();
    if (!contents.ok()) return contents.status();
    LAKEORG_RETURN_NOT_OK(wal_->WriteSnapshot(wal_seq_, contents.value()));
    applies_since_snapshot_ = 0;
  }
  return report;
}

Result<std::string> LiveLakeService::EncodeCurrentSnapshot() const {
  std::shared_ptr<const OrgSnapshot> cur = snapshots_.Current();
  if (cur == nullptr) {
    return Status::FailedPrecondition("no published snapshot to encode");
  }
  DurableSnapshot snapshot;
  snapshot.wal_seq = wal_seq_;
  snapshot.effectiveness = cur->effectiveness;
  snapshot.lake = LakeToJson(*cur->lake);
  std::ostringstream org_text;
  LAKEORG_RETURN_NOT_OK(SaveOrganization(*cur->org, &org_text));
  snapshot.organization = std::move(org_text).str();
  return DurableSnapshotToText(snapshot);
}

Status LiveLakeService::InitializeFromSnapshot(const DurableSnapshot& snapshot) {
  if (initialized_) {
    return Status::FailedPrecondition("LiveLakeService already initialized");
  }
  Result<DataLake> lake_result = LakeFromJson(snapshot.lake);
  if (!lake_result.ok()) return lake_result.status();
  DataLake lake = std::move(lake_result).value();
  LAKEORG_RETURN_NOT_OK(lake.ComputeTopicVectors(*store_));

  auto index = std::make_shared<const TagIndex>(TagIndex::Build(lake));
  if (index->NonEmptyTags().empty()) {
    return Status::InvalidArgument(
        "snapshot lake has no non-empty tags to organize");
  }
  std::shared_ptr<const OrgContext> ctx = OrgContext::BuildFull(lake, *index);
  std::istringstream org_in(snapshot.organization);
  Result<Organization> org = LoadOrganization(ctx, &org_in);
  if (!org.ok()) return org.status();

  OrgSnapshot snap;
  auto lake_ptr = std::make_shared<const DataLake>(std::move(lake));
  snap.lake = lake_ptr;
  snap.index = index;
  snap.ctx = ctx;
  snap.org = std::make_shared<const Organization>(std::move(org).value());
  snap.effectiveness = snapshot.effectiveness;
  snap.engine = std::make_shared<const TableSearchEngine>(
      lake_ptr.get(), store_, options_.engine);
  uint64_t version = snapshots_.Publish(std::move(snap));
  initialized_ = true;
  wal_seq_ = snapshot.wal_seq;
  if (publish_listener_) publish_listener_(version);
  return Status::OK();
}

Result<std::unique_ptr<LiveLakeService>> LiveLakeService::RecoverFromDisk(
    std::shared_ptr<const EmbeddingStore> store, Options options) {
  if (!options.durability.enabled()) {
    return Status::InvalidArgument(
        "RecoverFromDisk requires Options.durability.dir");
  }
  auto start = std::chrono::steady_clock::now();
  Result<WalDirState> state_result = ReadWalDir(options.durability.dir);
  if (!state_result.ok()) return state_result.status();
  WalDirState state = std::move(state_result).value();
  if (!state.has_snapshot) {
    return Status::NotFound("WAL directory '" + options.durability.dir +
                            "' holds no snapshot to recover from");
  }
  Result<DurableSnapshot> snapshot =
      DurableSnapshotFromText(state.snapshot_contents);
  if (!snapshot.ok()) return snapshot.status();

  std::unique_ptr<LiveLakeService> service(
      new LiveLakeService(DataLake(), std::move(store), std::move(options)));
  {
    std::lock_guard<std::mutex> lock(service->writer_mu_);
    LAKEORG_RETURN_NOT_OK(service->InitializeFromSnapshot(snapshot.value()));

    uint64_t replayed = 0;
    for (const std::string& payload : state.wal_payloads) {
      Result<WalRecord> record = WalRecordFromText(payload);
      if (!record.ok()) return record.status();
      const WalRecord& rec = record.value();
      // Records at or below the snapshot's high-water mark are already
      // compacted in (duplicate replay is an idempotent skip).
      if (rec.seq <= service->wal_seq_) continue;
      if (rec.seq != service->wal_seq_ + 1) {
        return Status::InvalidArgument(
            "WAL sequence gap: expected record " +
            std::to_string(service->wal_seq_ + 1) + ", found " +
            std::to_string(rec.seq));
      }
      auto replay = [&rec](DataLake* lake) {
        return ReplayMutationBatch(rec.batch, lake);
      };
      Result<LiveApplyReport> applied =
          service->ApplyLocked(replay, nullptr, &rec.delta);
      if (!applied.ok()) return applied.status();
      service->wal_seq_ = rec.seq;
      ++replayed;
    }

    // Reopen for appending; Open truncates any torn tail away so new
    // records land right after the last one replayed.
    Result<DurableLog> log =
        DurableLog::Open(ToWalOptions(service->options_.durability));
    if (!log.ok()) return log.status();
    service->wal_ = std::move(log).value();

    obs::GetCounter("wal.replayed_records_total").Add(replayed);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    obs::GetGauge("wal.recovery_seconds").Set(elapsed.count());
    obs::GetGauge("wal.recovered_seq")
        .Set(static_cast<double>(service->wal_seq_));
  }
  return service;
}

}  // namespace lakeorg
