// Unified discovery (the paper's final future-work item: "integrate
// keyword search and navigation as two interchangeable modalities in a
// unified framework"). DiscoveryHub couples a TableSearchEngine and a
// MultiDimOrganization over the same lake so a user can switch modality
// mid-session:
//
//  * search -> navigate: a keyword query is answered with both ranked
//    tables AND "entry points" — organization states whose topics best
//    match the query — so the user can drop into the navigation structure
//    near the query instead of at the root;
//  * navigate -> search: any state suggests keywords (its label tags plus
//    frequent attribute values below it) that seed a search query.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/multidim.h"
#include "core/navigation.h"
#include "search/engine.h"

namespace lakeorg {

/// An organization state offered as a navigation entry point.
struct EntryPoint {
  /// Which dimension of the multi-dimensional organization.
  size_t dimension = 0;
  StateId state = kInvalidId;
  /// Cosine similarity between the query topic and the state topic.
  double similarity = 0.0;
  /// The state's display label.
  std::string label;
};

/// Combined answer to a keyword query.
struct UnifiedResult {
  /// BM25-ranked tables (the search modality).
  std::vector<TableHit> tables;
  /// Best-matching organization states (the navigation modality).
  std::vector<EntryPoint> entry_points;
};

/// Options for DiscoveryHub.
struct DiscoveryHubOptions {
  /// Entry points returned per query.
  size_t max_entry_points = 5;
  /// Tables returned per query.
  size_t max_tables = 10;
  /// Only states whose level is at least this deep qualify as entry
  /// points (the root and its immediate children are poor entries).
  int min_entry_level = 1;
  /// Entry points below this similarity are dropped.
  double min_entry_similarity = 0.1;
  /// Keywords suggested per state.
  size_t max_keywords = 6;
  /// Use embedding query expansion for the table ranking.
  bool expand_queries = true;
};

/// Search and navigation over one lake, interchangeable mid-session.
class DiscoveryHub {
 public:
  /// All borrowed pointers must outlive the hub. `store` embeds query
  /// terms for entry-point matching (may be the engine's store).
  DiscoveryHub(const DataLake* lake, const MultiDimOrganization* org,
               const TableSearchEngine* engine,
               std::shared_ptr<const EmbeddingStore> store,
               DiscoveryHubOptions options = {});

  /// Keyword query -> ranked tables + navigation entry points.
  UnifiedResult Query(const std::string& query) const;

  /// Starts a navigation session at an entry point returned by Query.
  /// The session walks the entry point's dimension; the returned session
  /// is positioned at the entry state (path = root .. state along the
  /// level-minimal parent chain).
  Result<NavigationSession> EnterAt(const EntryPoint& entry) const;

  /// Keywords that describe `state` of `dimension` — tag names on the
  /// state plus the most frequent embeddable values below it — usable as
  /// a search query when the user switches modality.
  std::vector<std::string> SuggestKeywords(size_t dimension,
                                           StateId state) const;

  const DiscoveryHubOptions& options() const { return options_; }

 private:
  /// Topic vector of a free-text query (mean of embeddable tokens).
  Vec QueryTopic(const std::string& query) const;

  const DataLake* lake_;
  const MultiDimOrganization* org_;
  const TableSearchEngine* engine_;
  std::shared_ptr<const EmbeddingStore> store_;
  DiscoveryHubOptions options_;
};

}  // namespace lakeorg
