#include "discovery/nav_service.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>

#include "core/navigation.h"
#include "discovery/adaptive_loop.h"
#include "discovery/live_lake.h"
#include "obs/metrics.h"

namespace lakeorg {

namespace {

/// Bucket bounds for batch-size histograms (requests per batch, distinct
/// row groups per batch): powers of two up to 1024.
const std::vector<double>& BatchSizeBuckets() {
  static const std::vector<double> bounds = {1,  2,   4,   8,   16,  32,
                                             64, 128, 256, 512, 1024};
  return bounds;
}

struct NavMetrics {
  obs::Counter& opened = obs::GetCounter("nav.sessions_opened_total");
  obs::Counter& closed = obs::GetCounter("nav.sessions_closed_total");
  obs::Counter& expired = obs::GetCounter("nav.sessions_expired_total");
  obs::Counter& rejected = obs::GetCounter("nav.sessions_rejected_total");
  obs::Counter& steps = obs::GetCounter("nav.steps_total");
  obs::Counter& refreshes = obs::GetCounter("nav.refreshes_total");
  obs::Counter& cache_hits = obs::GetCounter("nav.row_cache_hits_total");
  obs::Counter& cache_misses = obs::GetCounter("nav.row_cache_misses_total");
  obs::Counter& cache_evictions =
      obs::GetCounter("nav.row_cache_evictions_total");
  obs::Counter& versions_retired =
      obs::GetCounter("nav.cache_versions_retired_total");
  obs::Counter& batches = obs::GetCounter("nav.batches_total");
  obs::Gauge& live = obs::GetGauge("nav.sessions_live");
  obs::Gauge& snapshot_version = obs::GetGauge("nav.snapshot_version");
  obs::Histogram& step_us = obs::GetHistogram("nav.step_us");
  obs::Histogram& batch_occupancy =
      obs::GetHistogram("nav.batch_occupancy", BatchSizeBuckets());
  obs::Histogram& batch_groups =
      obs::GetHistogram("nav.batch_groups", BatchSizeBuckets());
};

NavMetrics& Metrics() {
  static NavMetrics m;
  return m;
}

/// Row-cache key within one snapshot version: (state, query attribute).
uint64_t RowKey(StateId state, uint32_t query_attr) {
  return (static_cast<uint64_t>(state) << 32) |
         static_cast<uint64_t>(query_attr);
}

}  // namespace

NavService::NavService(SnapshotSource source, NavServiceOptions options)
    : options_(std::move(options)), source_(std::move(source)) {
  if (options_.batch_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.batch_threads);
  }
}

NavService::NavService(LiveLakeService* live, NavServiceOptions options)
    : NavService(SnapshotSource([live] { return live->Current(); }),
                 std::move(options)) {
  live_ = live;
  latest_version_.store(live->version(), std::memory_order_relaxed);
  live_->SetPublishListener([this](uint64_t version) { OnPublish(version); });
}

NavService::~NavService() {
  // Blocks on the writer lock, so no listener invocation is in flight
  // once unregistration returns.
  if (live_ != nullptr) live_->SetPublishListener(nullptr);
}

double NavService::NowSeconds() const {
  if (options_.clock) return options_.clock();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<NavSessionId> NavService::Open(uint32_t query_attr) {
  std::shared_ptr<const OrgSnapshot> snap =
      source_ ? source_() : nullptr;
  if (snap == nullptr) {
    return Status::FailedPrecondition("no organization snapshot published yet");
  }
  if (snap->org == nullptr || snap->ctx == nullptr) {
    return Status::FailedPrecondition(
        "snapshot is not navigable (missing organization or context)");
  }
  if (query_attr >= snap->ctx->num_attrs()) {
    return Status::InvalidArgument(
        "query attribute " + std::to_string(query_attr) +
        " out of range (context has " +
        std::to_string(snap->ctx->num_attrs()) + " attributes)");
  }

  double now = NowSeconds();
  auto session = std::make_shared<Session>();
  session->snapshot = snap;
  session->cache = CacheForVersion(snap->version);
  session->query_attr = query_attr;
  session->query_norm = Norm(snap->ctx->attr_vector(query_attr));
  session->path.push_back(snap->org->root());
  session->last_active.store(now, std::memory_order_relaxed);
  session->version.store(snap->version, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.size() >= options_.max_sessions) {
      SweepExpiredLocked(now);
      if (sessions_.size() >= options_.max_sessions) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        Metrics().rejected.Add();
        // kUnavailable, not kFailedPrecondition: the condition is
        // transient capacity, and the network front end maps it to an
        // explicit RETRY_LATER response.
        return Status::Unavailable(
            "session limit reached (" + std::to_string(options_.max_sessions) +
            " live sessions); retry later");
      }
    }
    session->id = next_id_++;
    sessions_.emplace(session->id, session);
    ++version_sessions_[snap->version];
    if (snap->version > latest_version_.load(std::memory_order_relaxed)) {
      latest_version_.store(snap->version, std::memory_order_relaxed);
    }
    Metrics().live.Set(static_cast<double>(sessions_.size()));
  }
  opened_.fetch_add(1, std::memory_order_relaxed);
  Metrics().opened.Add();
  return session->id;
}

Result<std::shared_ptr<NavService::Session>> NavService::FindSession(
    NavSessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown navigation session " + std::to_string(id));
  }
  if (options_.idle_ttl_seconds > 0) {
    double idle =
        NowSeconds() - it->second->last_active.load(std::memory_order_relaxed);
    if (idle > options_.idle_ttl_seconds) {
      it->second->alive.store(false, std::memory_order_release);
      ReleaseVersionLocked(it->second->version.load(std::memory_order_relaxed));
      sessions_.erase(it);
      expired_.fetch_add(1, std::memory_order_relaxed);
      Metrics().expired.Add();
      Metrics().live.Set(static_cast<double>(sessions_.size()));
      return Status::NotFound("navigation session " + std::to_string(id) +
                              " expired");
    }
  }
  return it->second;
}

std::shared_ptr<NavService::RowCache> NavService::CacheForVersion(
    uint64_t version) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::shared_ptr<RowCache>& cache = caches_[version];
  if (cache == nullptr) {
    cache = std::make_shared<RowCache>(options_.cache_capacity,
                                       options_.cache_shards);
  }
  return cache;
}

std::shared_ptr<const NavRow> NavService::RowFor(Session& session,
                                                 StateId state) {
  LruCacheOutcome outcome;
  std::shared_ptr<const NavRow> row = session.cache->GetOrCompute(
      RowKey(state, session.query_attr),
      [&session, state, this] {
        NavRow fresh;
        const Organization& org = *session.snapshot->org;
        const Vec& query =
            session.snapshot->ctx->attr_vector(session.query_attr);
        ComputeTransitionRow(org, state, query, session.query_norm,
                             options_.transition, &fresh.row);
        fresh.labels.reserve(fresh.row.children.size());
        for (StateId child : fresh.row.children) {
          fresh.labels.push_back(StateLabel(org, child));
        }
        return std::make_shared<const NavRow>(std::move(fresh));
      },
      &outcome);
  if (outcome.hit) {
    Metrics().cache_hits.Add();
  } else {
    Metrics().cache_misses.Add();
  }
  if (outcome.evicted > 0) Metrics().cache_evictions.Add(outcome.evicted);
  return row;
}

NavView NavService::BuildView(Session& session) {
  NavView view;
  view.session = session.id;
  view.snapshot_version = session.snapshot->version;
  uint64_t latest = latest_version_.load(std::memory_order_relaxed);
  view.snapshot_stale = latest != 0 && session.snapshot->version < latest;
  view.state = session.path.back();
  const OrgState& st = session.snapshot->org->state(view.state);
  view.at_leaf = st.kind == StateKind::kLeaf;
  view.attr = st.attr;
  view.depth = session.path.size() - 1;
  view.actions = session.actions;
  view.row = RowFor(session, view.state);
  return view;
}

Result<NavView> NavService::ApplyLocked(Session& session,
                                        NavStepRequest::Kind kind,
                                        size_t rank) {
  obs::ScopedTimer timer(&Metrics().step_us);
  session.last_active.store(NowSeconds(), std::memory_order_relaxed);
  // A Close or expiry sweep may have retired this session after the
  // caller resolved its pointer (ExecuteBatch's resolve/apply window, or
  // a concurrent scalar call). Fail exactly like the lookup would have.
  if (!session.alive.load(std::memory_order_acquire)) {
    return Status::NotFound("navigation session " + std::to_string(session.id) +
                            " closed");
  }
  switch (kind) {
    case NavStepRequest::Kind::kPeek:
      break;
    case NavStepRequest::Kind::kDescend: {
      std::shared_ptr<const NavRow> row = RowFor(session, session.path.back());
      if (row->row.ranking.empty()) {
        return Status::FailedPrecondition(
            "cannot descend: current state has no children (leaf or dead "
            "end)");
      }
      if (rank >= row->row.ranking.size()) {
        return Status::OutOfRange(
            "choice rank " + std::to_string(rank) + " out of range (state has " +
            std::to_string(row->row.ranking.size()) + " choices)");
      }
      StateId from = session.path.back();
      StateId to = row->row.children[row->row.ranking[rank]];
      session.path.push_back(to);
      ++session.actions;
      // Click logging stays inside the session mutex, after the alive
      // check above: a descend that lost the race against Close/expiry
      // returned NotFound before this point and emits nothing.
      if (options_.click_sink != nullptr) {
        ClickEvent click;
        click.version = session.snapshot->version;
        click.from = from;
        click.to = to;
        click.query_attr = session.query_attr;
        options_.click_sink->Push(click);
      }
      break;
    }
    case NavStepRequest::Kind::kBack: {
      if (session.path.size() <= 1) {
        return Status::FailedPrecondition("already at the root");
      }
      session.path.pop_back();
      ++session.actions;
      break;
    }
  }
  steps_.fetch_add(1, std::memory_order_relaxed);
  Metrics().steps.Add();
  return BuildView(session);
}

Result<NavView> NavService::Peek(NavSessionId session) {
  Result<std::shared_ptr<Session>> found = FindSession(session);
  if (!found.ok()) return found.status();
  std::shared_ptr<Session> s = std::move(found).value();
  std::lock_guard<std::mutex> lock(s->mu);
  return ApplyLocked(*s, NavStepRequest::Kind::kPeek, 0);
}

Result<NavView> NavService::Descend(NavSessionId session, size_t rank) {
  Result<std::shared_ptr<Session>> found = FindSession(session);
  if (!found.ok()) return found.status();
  std::shared_ptr<Session> s = std::move(found).value();
  std::lock_guard<std::mutex> lock(s->mu);
  return ApplyLocked(*s, NavStepRequest::Kind::kDescend, rank);
}

Result<NavView> NavService::Back(NavSessionId session) {
  Result<std::shared_ptr<Session>> found = FindSession(session);
  if (!found.ok()) return found.status();
  std::shared_ptr<Session> s = std::move(found).value();
  std::lock_guard<std::mutex> lock(s->mu);
  return ApplyLocked(*s, NavStepRequest::Kind::kBack, 0);
}

Result<NavView> NavService::Refresh(NavSessionId session) {
  Result<std::shared_ptr<Session>> found = FindSession(session);
  if (!found.ok()) return found.status();
  std::shared_ptr<Session> s = std::move(found).value();
  std::lock_guard<std::mutex> lock(s->mu);
  if (!s->alive.load(std::memory_order_acquire)) {
    return Status::NotFound("navigation session " + std::to_string(s->id) +
                            " closed");
  }

  std::shared_ptr<const OrgSnapshot> snap = source_ ? source_() : nullptr;
  if (snap == nullptr || snap->org == nullptr || snap->ctx == nullptr) {
    return Status::FailedPrecondition("no navigable snapshot to refresh to");
  }
  if (s->query_attr >= snap->ctx->num_attrs()) {
    return Status::FailedPrecondition(
        "query attribute " + std::to_string(s->query_attr) +
        " no longer exists in snapshot version " +
        std::to_string(snap->version));
  }
  uint64_t old_version = s->snapshot->version;
  if (snap->version != old_version) {
    std::lock_guard<std::mutex> service_lock(mu_);
    ReleaseVersionLocked(old_version);
    ++version_sessions_[snap->version];
    if (snap->version > latest_version_.load(std::memory_order_relaxed)) {
      latest_version_.store(snap->version, std::memory_order_relaxed);
    }
    s->version.store(snap->version, std::memory_order_relaxed);
  }
  s->snapshot = snap;
  s->cache = CacheForVersion(snap->version);
  s->query_norm = Norm(snap->ctx->attr_vector(s->query_attr));
  s->path.assign(1, snap->org->root());
  s->last_active.store(NowSeconds(), std::memory_order_relaxed);
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  Metrics().refreshes.Add();
  return BuildView(*s);
}

Status NavService::Close(NavSessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown navigation session " +
                            std::to_string(session));
  }
  it->second->alive.store(false, std::memory_order_release);
  ReleaseVersionLocked(it->second->version.load(std::memory_order_relaxed));
  sessions_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
  Metrics().closed.Add();
  Metrics().live.Set(static_cast<double>(sessions_.size()));
  return Status::OK();
}

std::vector<Result<NavView>> NavService::ExecuteBatch(
    const std::vector<NavStepRequest>& requests) {
  Metrics().batches.Add();
  Metrics().batch_occupancy.Observe(static_cast<double>(requests.size()));

  // Phase 1: resolve every request's session (expiry applies here, once
  // per request, exactly as in the scalar API).
  std::vector<std::shared_ptr<Session>> resolved(requests.size());
  std::vector<Status> errors(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<std::shared_ptr<Session>> found = FindSession(requests[i].session);
    if (found.ok()) {
      resolved[i] = std::move(found).value();
    } else {
      errors[i] = found.status();
    }
  }

  // Phase 2: warm the row cache for the distinct (version, state, query)
  // groups at the sessions' current positions, in parallel on the pool.
  // Descents additionally need the destination row; those fills happen in
  // phase 3 but are usually shared across the batch via the cache anyway.
  struct WarmItem {
    Session* session;
    StateId state;
  };
  std::vector<WarmItem> warm;
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (const std::shared_ptr<Session>& s : resolved) {
    if (s == nullptr) continue;
    StateId state;
    uint64_t version;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      state = s->path.back();
      version = s->snapshot->version;
    }
    if (seen.emplace(version, RowKey(state, s->query_attr)).second) {
      warm.push_back(WarmItem{s.get(), state});
    }
  }
  Metrics().batch_groups.Observe(static_cast<double>(warm.size()));
  ParallelChunks(pool_.get(), warm.size(),
                 pool_ == nullptr ? 1 : pool_->num_threads(),
                 [this, &warm](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     std::lock_guard<std::mutex> lock(warm[i].session->mu);
                     RowFor(*warm[i].session, warm[i].state);
                   }
                 });

  // Phase 3: apply the requests in order.
  std::vector<Result<NavView>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (resolved[i] == nullptr) {
      results.push_back(errors[i]);
      continue;
    }
    std::lock_guard<std::mutex> lock(resolved[i]->mu);
    results.push_back(ApplyLocked(*resolved[i], requests[i].kind,
                                  requests[i].rank));
  }
  return results;
}

size_t NavService::SweepExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  return SweepExpiredLocked(NowSeconds());
}

size_t NavService::SweepExpiredLocked(double now) {
  if (options_.idle_ttl_seconds <= 0) return 0;
  size_t swept = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    double idle = now - it->second->last_active.load(std::memory_order_relaxed);
    if (idle > options_.idle_ttl_seconds) {
      it->second->alive.store(false, std::memory_order_release);
      ReleaseVersionLocked(it->second->version.load(std::memory_order_relaxed));
      it = sessions_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  if (swept > 0) {
    expired_.fetch_add(swept, std::memory_order_relaxed);
    Metrics().expired.Add(swept);
    Metrics().live.Set(static_cast<double>(sessions_.size()));
  }
  return swept;
}

void NavService::ReleaseVersionLocked(uint64_t version) {
  auto it = version_sessions_.find(version);
  if (it == version_sessions_.end()) return;
  if (it->second > 0) --it->second;
  if (it->second == 0) {
    version_sessions_.erase(it);
    if (version != latest_version_.load(std::memory_order_relaxed)) {
      RetireCache(version);
    }
  }
}

void NavService::RetireCache(uint64_t version) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = caches_.find(version);
  if (it == caches_.end()) return;
  LruCacheStats stats = it->second->Stats();
  retired_cache_stats_.hits += stats.hits;
  retired_cache_stats_.misses += stats.misses;
  retired_cache_stats_.evictions += stats.evictions;
  caches_.erase(it);
  Metrics().versions_retired.Add();
}

void NavService::OnPublish(uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (version > latest_version_.load(std::memory_order_relaxed)) {
    latest_version_.store(version, std::memory_order_relaxed);
  }
  Metrics().snapshot_version.Set(static_cast<double>(version));
  // Retire row caches of superseded versions nobody is pinned to.
  std::vector<uint64_t> retire;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    for (const auto& [ver, cache] : caches_) {
      auto live = version_sessions_.find(ver);
      bool pinned = live != version_sessions_.end() && live->second > 0;
      if (!pinned && ver != version) retire.push_back(ver);
    }
  }
  for (uint64_t ver : retire) RetireCache(ver);
}

size_t NavService::live_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

NavServiceStats NavService::Stats() const {
  NavServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.sessions_live = sessions_.size();
  }
  stats.sessions_opened = opened_.load(std::memory_order_relaxed);
  stats.sessions_closed = closed_.load(std::memory_order_relaxed);
  stats.sessions_expired = expired_.load(std::memory_order_relaxed);
  stats.sessions_rejected = rejected_.load(std::memory_order_relaxed);
  stats.steps = steps_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    stats.cache_hits = retired_cache_stats_.hits;
    stats.cache_misses = retired_cache_stats_.misses;
    stats.cache_evictions = retired_cache_stats_.evictions;
    for (const auto& [ver, cache] : caches_) {
      LruCacheStats cs = cache->Stats();
      stats.cache_hits += cs.hits;
      stats.cache_misses += cs.misses;
      stats.cache_evictions += cs.evictions;
    }
    stats.cached_versions = caches_.size();
  }
  return stats;
}

}  // namespace lakeorg
