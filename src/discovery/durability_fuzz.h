// Crash-recovery differential fuzzing for the durable metadata lake
// (docs/DURABILITY.md, docs/TESTING.md).
//
// One trial runs the same randomized sequence of catalog mutation
// batches through two LiveLakeServices — a durable one writing a WAL
// (plus optional mid-run compacted snapshots) and a never-crashed
// reference — checkpointing the reference's full serialized state after
// every publish. It then simulates crashes: the durable directory is
// copied, its log is truncated at a random byte offset (a torn write)
// or has a random bit flipped (media corruption), and RecoverFromDisk
// runs on the wreckage. The contract checked:
//
//   - a truncation crash must ALWAYS recover, to a state byte-identical
//     to the reference checkpoint for the recovered sequence number;
//   - a bit-flip either recovers to some exact checkpoint (the flip
//     landed in a droppable tail) or is refused outright — never a
//     silently wrong state.
//
// "Byte-identical" is literal: the recovered lake, organization and
// effectiveness are serialized through the same canonical encoders and
// compared as strings, the durability analogue of difftest's 1e-9
// oracle discipline (here the tolerance is zero).
//
// tools/difftest.cc --durability and tools/crashtest.cc drive this from
// the command line; the fuzz-labeled CTest tier runs a fixed-seed
// corpus through the same code.
#pragma once

#include <cstdint>
#include <string>

#include "core/org_fuzz.h"

namespace lakeorg {

/// One crash-recovery trial's configuration. Deterministic for a fixed
/// seed, like RunDiffTrial.
struct DurabilityTrialOptions {
  /// Trial seed; drives the lake, every mutation batch, and the crash
  /// offsets. Printed with every failure so a trial replays exactly.
  uint64_t seed = 1;
  /// Repair worker threads (the recovered service replays with the same
  /// count, so determinism only needs to hold per-count).
  size_t threads = 1;
  /// Mutation batches applied (and reference checkpoints recorded).
  size_t num_applies = 6;
  /// Mutations drawn per batch (add-table / remove-table / retag).
  size_t mutations_per_apply = 2;
  /// WAL records per fsync batch (WalOptions.group_commit_window).
  int group_commit_window = 1;
  /// Compact a snapshot every N applies; 0 = initial snapshot only.
  uint64_t snapshot_every = 0;
  /// Crash points simulated against the finished log.
  size_t num_crash_points = 8;
  /// Probability a crash point flips one random bit instead of
  /// truncating.
  double bitflip_prob = 0.25;
  /// Scratch directory for WAL dirs and crash copies. Empty = a
  /// per-process directory under the system temp dir. Always wiped.
  std::string scratch_dir;
  FuzzLakeOptions lake;
};

/// Outcome of one trial.
struct DurabilityTrialResult {
  bool ok = true;
  /// First failure, with the trial seed embedded; empty when ok.
  std::string error;
  size_t applies = 0;
  size_t crash_points = 0;
  /// Recoveries that succeeded and matched their checkpoint exactly.
  size_t recovered_exact = 0;
  /// Recoveries refused with a corruption error (bit-flip points only).
  size_t refused = 0;
  /// Bit-flip points whose flip landed in a droppable tail and still
  /// recovered exactly (counted inside recovered_exact too).
  size_t bitflips_survived = 0;
  /// Final wal.log size before crashes were simulated.
  uint64_t wal_bytes = 0;
};

/// Runs one crash-recovery trial.
DurabilityTrialResult RunDurabilityTrial(const DurabilityTrialOptions& options);

}  // namespace lakeorg
