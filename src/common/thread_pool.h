// Fixed-size thread pool. The paper optimizes the dimensions of a
// multi-dimensional organization "independently and in parallel"
// (section 4.3.2); MultiDimBuilder submits one optimization task per
// dimension to this pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lakeorg {

/// A minimal fixed-size thread pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<decltype(fn())> {
    using ReturnType = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<ReturnType()>>(std::move(fn));
    std::future<ReturnType> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// A sensible default pool width for this machine.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace lakeorg
