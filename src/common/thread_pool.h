// Fixed-size thread pool. The paper optimizes the dimensions of a
// multi-dimensional organization "independently and in parallel"
// (section 4.3.2); MultiDimBuilder submits one optimization task per
// dimension to this pool.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace lakeorg {

namespace internal {
/// Shared pool telemetry (all ThreadPool instances aggregate into the
/// same metrics; defined in thread_pool.cc).
obs::Counter& PoolTasksTotal();
obs::Gauge& PoolQueueDepth();
obs::Histogram& PoolTaskUs();
}  // namespace internal

/// A minimal fixed-size thread pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<decltype(fn())> {
    using ReturnType = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<ReturnType()>>(std::move(fn));
    std::future<ReturnType> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (obs::MetricsEnabled()) {
        // Task latency covers queue wait + execution, observed on the
        // worker; queue depth is sampled under the lock at enqueue time.
        auto enqueued = std::chrono::steady_clock::now();
        queue_.emplace([task, enqueued]() {
          (*task)();
          std::chrono::duration<double, std::micro> elapsed =
              std::chrono::steady_clock::now() - enqueued;
          internal::PoolTaskUs().Observe(elapsed.count());
        });
        internal::PoolTasksTotal().Add();
        internal::PoolQueueDepth().Set(static_cast<double>(queue_.size()));
      } else {
        queue_.emplace([task]() { (*task)(); });
      }
    }
    cv_.notify_one();
    return future;
  }

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// A sensible default pool width for this machine.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

/// Splits [0, n) into at most `max_chunks` contiguous ranges and runs
/// fn(chunk_index, begin, end) for each, blocking until all complete.
/// Runs inline — fn(0, 0, n) on the calling thread — when `pool` is null
/// or only one chunk results, which is the exact serial code path.
/// Chunk boundaries depend only on (n, max_chunks), so a chunk index can
/// safely select a reusable per-worker scratch buffer, and any
/// parallelism-independent computation is deterministic across thread
/// counts. `fn` must only write state disjoint across chunks.
template <typename Fn>
void ParallelChunks(ThreadPool* pool, size_t n, size_t max_chunks, Fn fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, std::max<size_t>(1, max_chunks));
  if (pool == nullptr || chunks <= 1) {
    fn(size_t{0}, size_t{0}, n);
    return;
  }
  size_t base = n / chunks;
  size_t remainder = n % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t end = begin + base + (c < remainder ? 1 : 0);
    futures.push_back(
        pool->Submit([&fn, c, begin, end]() { fn(c, begin, end); }));
    begin = end;
  }
  for (std::future<void>& f : futures) f.get();
}

}  // namespace lakeorg
