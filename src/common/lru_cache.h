// Sharded LRU cache: a fixed-capacity key -> shared_ptr<const V> map with
// least-recently-used eviction, split into independently locked shards so
// concurrent readers on different keys rarely contend. Values are shared
// pointers, so an entry evicted while a reader still holds it stays alive
// until the last reference drops — the same lifetime discipline as
// OrgSnapshot. The serving layer's transition-row cache
// (discovery/nav_service) is the primary user.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lakeorg {

/// Aggregate occupancy and hit/miss tallies of a ShardedLruCache.
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};

/// Outcome of one GetOrCompute/Put call (optional out-parameter; the
/// caller flushes these into its own telemetry so the cache itself stays
/// metrics-agnostic).
struct LruCacheOutcome {
  /// The value was already present.
  bool hit = false;
  /// This call inserted the value (false on hit, and on a lost insert
  /// race where another thread's value won).
  bool inserted = false;
  /// Entries evicted to make room (0 or 1).
  size_t evicted = 0;
};

/// A sharded LRU map. `capacity` is the total entry budget, split evenly
/// across `num_shards` shards (each shard evicts independently, so the
/// instantaneous total can deviate from a global LRU by at most one
/// shard's worth of skew). capacity == 0 disables the cache entirely:
/// every Get misses and Put/GetOrCompute store nothing — the "serve
/// uncached" configuration benchmarks compare against.
///
/// Thread safety: every method is safe to call concurrently; each shard
/// serializes on its own mutex. GetOrCompute runs the compute function
/// OUTSIDE the shard lock, so a slow fill never blocks other keys of the
/// same shard; two racing fills of one key both compute, and the first
/// insert wins (callers must make compute deterministic per key, which
/// also makes the race unobservable).
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8)
      : capacity_(capacity),
        shards_(capacity == 0 ? 1 : std::max<size_t>(1, num_shards)) {
    // Per-shard budget, rounded up so the total is never below `capacity`.
    per_shard_ = shards_.size() == 0
                     ? 0
                     : (capacity_ + shards_.size() - 1) / shards_.size();
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// The value for `key`, or null. Promotes the entry to most recent.
  std::shared_ptr<const V> Get(const K& key) {
    if (capacity_ == 0) return nullptr;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the shard's least recently
  /// used entry when over budget.
  void Put(const K& key, std::shared_ptr<const V> value,
           LruCacheOutcome* outcome = nullptr) {
    if (outcome != nullptr) *outcome = LruCacheOutcome{};
    if (capacity_ == 0) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    InsertLocked(shard, key, std::move(value), outcome);
  }

  /// Returns the cached value, computing and inserting it on a miss.
  /// `compute` must return a non-null shared_ptr<const V> and be
  /// deterministic for the key (racing fills keep the first insert).
  template <typename Fn>
  std::shared_ptr<const V> GetOrCompute(const K& key, Fn compute,
                                        LruCacheOutcome* outcome = nullptr) {
    if (outcome != nullptr) *outcome = LruCacheOutcome{};
    if (capacity_ == 0) {
      if (outcome != nullptr) outcome->hit = false;
      return compute();
    }
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        ++shard.hits;
        if (outcome != nullptr) outcome->hit = true;
        shard.order.splice(shard.order.begin(), shard.order, it->second);
        return it->second->second;
      }
      ++shard.misses;
    }
    std::shared_ptr<const V> value = compute();
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Lost the fill race; adopt the winner (identical by determinism).
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return it->second->second;
    }
    InsertLocked(shard, key, std::move(value), outcome);
    return shard.order.front().second;
  }

  /// Drops every entry (stats tallies are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.order.clear();
      shard.map.clear();
    }
  }

  /// Entries currently resident, summed over shards.
  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  /// Aggregate hit/miss/eviction tallies over all shards.
  LruCacheStats Stats() const {
    LruCacheStats stats;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      stats.hits += shard.hits;
      stats.misses += shard.misses;
      stats.evictions += shard.evictions;
      stats.entries += shard.map.size();
    }
    return stats;
  }

  /// Total entry budget (0 = disabled).
  size_t capacity() const { return capacity_; }
  /// True when the cache stores anything at all.
  bool enabled() const { return capacity_ > 0; }
  /// Number of independently locked shards.
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<K, std::shared_ptr<const V>>> order;
    std::unordered_map<
        K, typename std::list<std::pair<K, std::shared_ptr<const V>>>::iterator,
        Hash>
        map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const K& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  void InsertLocked(Shard& shard, const K& key, std::shared_ptr<const V> value,
                    LruCacheOutcome* outcome) {
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      if (outcome != nullptr) outcome->inserted = true;
      return;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.order.begin());
    if (outcome != nullptr) outcome->inserted = true;
    while (shard.map.size() > per_shard_) {
      shard.map.erase(shard.order.back().first);
      shard.order.pop_back();
      ++shard.evictions;
      if (outcome != nullptr) ++outcome->evicted;
    }
  }

  size_t capacity_;
  size_t per_shard_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace lakeorg
