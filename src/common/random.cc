#include "common/random.h"

#include <algorithm>

namespace lakeorg {

double Rng::Uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  assert(lo < hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Gaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = Uniform01() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Rounding fallback.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index array; O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n - 1)));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() {
  // Draw two words to decorrelate the child from subsequent parent draws.
  uint64_t a = engine_();
  uint64_t b = engine_();
  return Rng(a ^ (b * 0x9E3779B97F4A7C15ULL));
}

}  // namespace lakeorg
