// String helpers used by tokenization, labeling, and data generation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lakeorg {

/// ASCII-lowercases `s`.
std::string ToLower(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, std::string_view delims);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

}  // namespace lakeorg
