// Minimal leveled logging to stderr. Used for progress reporting from the
// long-running optimizer; algorithms never depend on log output.
#pragma once

#include <sstream>
#include <string>

namespace lakeorg {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);

/// Returns the current global minimum emitted level.
LogLevel GetLogLevel();

/// Emits one formatted log line to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log line builder; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace lakeorg

/// Usage: LAKEORG_LOG(kInfo) << "built " << n << " states";
#define LAKEORG_LOG(severity) \
  ::lakeorg::internal::LogLine(::lakeorg::LogLevel::severity)
