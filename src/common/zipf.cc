#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lakeorg {

ZipfDistribution::ZipfDistribution(size_t n, double s) : s_(s) {
  assert(n > 0);
  assert(s >= 0.0);  // s = 0 is the uniform distribution (pow(k, 0) = 1).
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // Guard against rounding in the final bucket.
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->Uniform01();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Pmf(size_t k) const {
  assert(k >= 1 && k <= cdf_.size());
  double hi = cdf_[k - 1];
  double lo = (k == 1) ? 0.0 : cdf_[k - 2];
  return hi - lo;
}

}  // namespace lakeorg
