#include "common/dynamic_bitset.h"

#include <bit>
#include <cassert>

namespace lakeorg {

namespace {
constexpr size_t kBitsPerWord = 64;
size_t WordCount(size_t size) { return (size + kBitsPerWord - 1) / kBitsPerWord; }
}  // namespace

DynamicBitset::DynamicBitset(size_t size)
    : size_(size), words_(WordCount(size), 0) {}

void DynamicBitset::Reset(size_t size) {
  size_ = size;
  words_.assign(WordCount(size), 0);
}

void DynamicBitset::Set(size_t i) {
  assert(i < size_);
  words_[i / kBitsPerWord] |= (uint64_t{1} << (i % kBitsPerWord));
}

void DynamicBitset::Clear(size_t i) {
  assert(i < size_);
  words_[i / kBitsPerWord] &= ~(uint64_t{1} << (i % kBitsPerWord));
}

bool DynamicBitset::Test(size_t i) const {
  assert(i < size_);
  return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1;
}

void DynamicBitset::ClearAll() {
  for (uint64_t& w : words_) w = 0;
}

size_t DynamicBitset::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

void DynamicBitset::UnionWith(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void DynamicBitset::IntersectWith(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

size_t DynamicBitset::IntersectionCount(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  size_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return count;
}

void DynamicBitset::ForEach(const std::function<void(size_t)>& fn) const {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      unsigned bit = static_cast<unsigned>(std::countr_zero(w));
      fn(wi * kBitsPerWord + bit);
      w &= w - 1;
    }
  }
}

std::vector<uint32_t> DynamicBitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

}  // namespace lakeorg
