// Wall-clock timing for the construction-time experiments (section 4.3.2).
#pragma once

#include <chrono>
#include <string>

namespace lakeorg {

/// A monotonic wall-clock stopwatch.
class WallTimer {
 public:
  /// Starts (or restarts) the stopwatch.
  WallTimer() { Restart(); }

  /// Resets elapsed time to zero.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Logs "<label>: <secs> s" at INFO level when destroyed.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string label_;
  WallTimer timer_;
};

}  // namespace lakeorg
