#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lakeorg {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mean) * (x - mean);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> MidRanks(const std::vector<double>& xs) {
  size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Elements order[i..j] are tied; they span 1-based ranks i+1..j+1.
    double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                             static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace lakeorg
