#include "common/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace lakeorg {
namespace {

/// Escapes a string into a JSON string literal (quotes included).
void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);  // UTF-8 bytes pass through unchanged.
        }
    }
  }
  out->push_back('"');
}

/// Deterministic number rendering: exact integers in the safe range print
/// as integers, everything else as %.17g (enough digits to round-trip).
/// Non-finite doubles (an empty histogram's mean, a 0/0 ratio) encode as
/// the explicit tokens NaN / Infinity / -Infinity — the same extension
/// Python's json and RapidJSON use — instead of the bare `nan`/`inf` that
/// %g would emit, which no parser (including ours) accepts.
void AppendNumber(double v, std::string* out) {
  if (std::isnan(v)) {
    *out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    *out += v > 0 ? "Infinity" : "-Infinity";
    return;
  }
  char buf[40];
  double rounded = std::nearbyint(v);
  if (v == rounded && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  *out += buf;
}

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) error = message;
    return false;
  }

  void SkipSpace() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Literal(const char* lit) {
    const char* q = p;
    while (*lit != '\0') {
      if (q >= end || *q != *lit) return Fail("invalid literal");
      ++q;
      ++lit;
    }
    p = q;
    return true;
  }

  bool ParseString(std::string* out) {
    if (p >= end || *p != '"') return Fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return Fail("truncated escape");
      char esc = *p++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (end - p < 4) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs are not
          // recombined; the snapshot writer never emits them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    if (p >= end) return Fail("unterminated string");
    ++p;  // Closing quote.
    return true;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > 200) return Fail("nesting too deep");
    SkipSpace();
    if (p >= end) return Fail("unexpected end of input");
    switch (*p) {
      case 'n':
        if (!Literal("null")) return false;
        *out = Json();
        return true;
      case 't':
        if (!Literal("true")) return false;
        *out = Json(true);
        return true;
      case 'f':
        if (!Literal("false")) return false;
        *out = Json(false);
        return true;
      case 'N':
        if (!Literal("NaN")) return false;
        *out = Json(std::numeric_limits<double>::quiet_NaN());
        return true;
      case 'I':
        if (!Literal("Infinity")) return false;
        *out = Json(std::numeric_limits<double>::infinity());
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++p;
        *out = Json::MakeArray();
        SkipSpace();
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        for (;;) {
          Json element;
          if (!ParseValue(&element, depth + 1)) return false;
          out->array().push_back(std::move(element));
          SkipSpace();
          if (p >= end) return Fail("unterminated array");
          if (*p == ',') {
            ++p;
            continue;
          }
          if (*p == ']') {
            ++p;
            return true;
          }
          return Fail("expected ',' or ']' in array");
        }
      }
      case '{': {
        ++p;
        *out = Json::MakeObject();
        SkipSpace();
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        for (;;) {
          SkipSpace();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipSpace();
          if (p >= end || *p != ':') return Fail("expected ':' in object");
          ++p;
          Json value;
          if (!ParseValue(&value, depth + 1)) return false;
          out->object()[std::move(key)] = std::move(value);
          SkipSpace();
          if (p >= end) return Fail("unterminated object");
          if (*p == ',') {
            ++p;
            continue;
          }
          if (*p == '}') {
            ++p;
            return true;
          }
          return Fail("expected ',' or '}' in object");
        }
      }
      default: {
        // The writer's explicit non-finite token (checked before strtod so
        // that genuine overflow like 1e999 still fails below).
        if (*p == '-' && end - p >= 9 &&
            std::strncmp(p, "-Infinity", 9) == 0) {
          p += 9;
          *out = Json(-std::numeric_limits<double>::infinity());
          return true;
        }
        // Number.
        char* num_end = nullptr;
        double v = std::strtod(p, &num_end);
        if (num_end == p) return Fail("invalid value");
        if (num_end > end) return Fail("number past end of input");
        if (!std::isfinite(v)) return Fail("number out of range");
        p = num_end;
        *out = Json(v);
        return true;
      }
    }
  }
};

void DumpTo(const Json& v, int indent, int depth, std::string* out) {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * static_cast<size_t>(d), ' ');
  };
  switch (v.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += v.bool_value() ? "true" : "false";
      break;
    case Json::Type::kNumber:
      AppendNumber(v.number(), out);
      break;
    case Json::Type::kString:
      AppendEscaped(v.string(), out);
      break;
    case Json::Type::kArray: {
      const Json::Array& a = v.array();
      if (a.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const Json& element : a) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        DumpTo(element, indent, depth + 1, out);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Json::Type::kObject: {
      const Json::Object& o = v.object();
      if (o.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        AppendEscaped(key, out);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        DumpTo(value, indent, depth + 1, out);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

bool Json::bool_value() const {
  assert(type_ == Type::kBool);
  return bool_;
}

double Json::number() const {
  assert(type_ == Type::kNumber);
  return number_;
}

const std::string& Json::string() const {
  assert(type_ == Type::kString);
  return string_;
}

const Json::Array& Json::array() const {
  assert(type_ == Type::kArray);
  return array_;
}

Json::Array& Json::array() {
  assert(type_ == Type::kArray);
  return array_;
}

const Json::Object& Json::object() const {
  assert(type_ == Type::kObject);
  return object_;
}

Json::Object& Json::object() {
  assert(type_ == Type::kObject);
  return object_;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) *this = MakeObject();
  assert(type_ == Type::kObject);
  return object_[key];
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) *this = MakeArray();
  assert(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, 0, &out);
  if (indent >= 0) out.push_back('\n');
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  Json value;
  if (!parser.ParseValue(&value, 0)) {
    return Status::InvalidArgument(
        "JSON parse error at offset " +
        std::to_string(parser.p - text.data()) + ": " + parser.error);
  }
  parser.SkipSpace();
  if (parser.p != parser.end) {
    return Status::InvalidArgument("trailing characters after JSON value");
  }
  return value;
}

}  // namespace lakeorg
