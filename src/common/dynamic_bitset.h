// Fixed-universe dynamic bitset. Organization states carry the set of
// attributes below them (the inclusion property, section 2.1); those sets
// are unions over tag extents and are stored as bitsets over attribute ids.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace lakeorg {

/// A bitset over a fixed universe [0, size). Supports the set algebra the
/// organization invariants need: union, intersection, subset tests,
/// population count, and iteration over set bits.
class DynamicBitset {
 public:
  /// Creates an empty set over a universe of `size` elements.
  explicit DynamicBitset(size_t size = 0);

  /// Universe size (number of addressable bits).
  size_t size() const { return size_; }

  /// Resets to a (possibly different-sized) empty universe.
  void Reset(size_t size);

  /// Sets bit `i`. Requires i < size().
  void Set(size_t i);

  /// Clears bit `i`. Requires i < size().
  void Clear(size_t i);

  /// Tests bit `i`. Requires i < size().
  bool Test(size_t i) const;

  /// Clears all bits.
  void ClearAll();

  /// Number of set bits.
  size_t Count() const;

  /// True iff no bit is set.
  bool Empty() const { return Count() == 0; }

  /// this |= other. Universes must match.
  void UnionWith(const DynamicBitset& other);

  /// this &= other. Universes must match.
  void IntersectWith(const DynamicBitset& other);

  /// True iff this is a subset of `other` (not necessarily proper).
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// True iff the two sets share at least one element.
  bool Intersects(const DynamicBitset& other) const;

  /// Number of elements in the intersection with `other`.
  size_t IntersectionCount(const DynamicBitset& other) const;

  /// Calls `fn(i)` for every set bit i, ascending.
  void ForEach(const std::function<void(size_t)>& fn) const;

  /// Template variant of ForEach: same ascending order, but the callable is
  /// inlined, so hot paths (attribute-set folds inside local-search
  /// operations) pay no std::function type-erasure allocation.
  template <typename Fn>
  void ForEachBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const size_t bit = static_cast<size_t>(std::countr_zero(word));
        fn(w * 64 + bit);
        word &= word - 1;
      }
    }
  }

  /// All set bits, ascending.
  std::vector<uint32_t> ToVector() const;

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace lakeorg
