#include "common/timer.h"

#include <cstdio>

#include "common/logging.h"

namespace lakeorg {

ScopedTimer::ScopedTimer(std::string label) : label_(std::move(label)) {}

ScopedTimer::~ScopedTimer() {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f s", timer_.ElapsedSeconds());
  LogMessage(LogLevel::kInfo, label_ + ": " + buf);
}

}  // namespace lakeorg
