#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace lakeorg {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

}  // namespace lakeorg
