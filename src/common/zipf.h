// Zipfian sampling. The paper's TagCloud benchmark and the Socrata-like
// generator both draw tags-per-table and attributes-per-table from Zipfian
// distributions (section 4.1).
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace lakeorg {

/// Samples ranks 1..n with P(rank = k) proportional to 1 / k^s.
/// Precomputes the CDF once; each draw is a binary search.
class ZipfDistribution {
 public:
  /// Creates a Zipf distribution over ranks [1, n] with exponent `s` >= 0;
  /// s = 0 degenerates to the uniform distribution over [1, n].
  ZipfDistribution(size_t n, double s);

  /// Draws a rank in [1, n].
  size_t Sample(Rng* rng) const;

  /// Number of ranks.
  size_t n() const { return cdf_.size(); }

  /// Exponent.
  double s() const { return s_; }

  /// Probability mass of rank k (1-based).
  double Pmf(size_t k) const;

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i + 1).
};

}  // namespace lakeorg
