// Status / Result<T>: recoverable-error handling in the RocksDB/Arrow idiom.
// Library code returns Status (or Result<T>) instead of throwing for
// conditions a caller is expected to handle; logic errors still assert.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lakeorg {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  /// Transient overload: the operation was refused for capacity reasons
  /// and may succeed if retried later (serving admission control; the
  /// network front end maps this to a RETRY_LATER response).
  kUnavailable,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (no message
/// allocation); carries a code and message otherwise. [[nodiscard]] so a
/// dropped error is a compile-time warning; genuinely intentional drops
/// spell it out with `(void)`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }
  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error. Holds T on success, a non-OK Status on failure.
/// Mirrors arrow::Result: `value()` asserts on the error path, so callers
/// must check `ok()` first (or use `value_or`).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// True iff a value is held.
  bool ok() const { return value_.has_value(); }
  /// The status: OK when a value is held.
  const Status& status() const { return status_; }

  /// The held value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  /// Moves the held value out; requires ok().
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  /// The held value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

/// Propagates a non-OK Status out of the enclosing function.
#define LAKEORG_RETURN_NOT_OK(expr)          \
  do {                                       \
    ::lakeorg::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace lakeorg
