// Small descriptive-statistics helpers shared by the evaluation harness
// (medians for the user study, means/percentiles for reporting).
#pragma once

#include <cstddef>
#include <vector>

namespace lakeorg {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Sample variance (n-1 denominator); 0 for fewer than two values.
double Variance(const std::vector<double>& xs);

/// Sample standard deviation.
double StdDev(const std::vector<double>& xs);

/// Median (average of the two middle values for even n); 0 for empty input.
double Median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]; 0 for empty input.
double Percentile(std::vector<double> xs, double p);

/// Minimum; 0 for empty input.
double Min(const std::vector<double>& xs);

/// Maximum; 0 for empty input.
double Max(const std::vector<double>& xs);

/// Midranks for Mann-Whitney-style rank statistics: rank of each element of
/// `xs` within the sorted multiset of `xs`, ties receiving the average of
/// the ranks they span (1-based).
std::vector<double> MidRanks(const std::vector<double>& xs);

}  // namespace lakeorg
