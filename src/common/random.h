// Seeded random-number utilities. Every stochastic component of the library
// (generators, local search, user agents) draws from an explicitly seeded
// Rng so that experiments are reproducible bit-for-bit.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace lakeorg {

/// A deterministic random source wrapping std::mt19937_64 with the handful
/// of draws the library needs. Not thread-safe; create one per thread.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi); requires lo < hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal draw.
  double Gaussian();

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Index in [0, weights.size()) sampled proportionally to `weights`
  /// (non-negative, not all zero).
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks a child generator whose stream is decorrelated from this one.
  /// Used to hand independent streams to parallel workers.
  Rng Fork();

  /// Underlying engine, for use with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lakeorg
