#include "common/thread_pool.h"

#include <algorithm>

namespace lakeorg {

namespace internal {

obs::Counter& PoolTasksTotal() {
  static obs::Counter& counter = obs::GetCounter("pool.tasks_total");
  return counter;
}

obs::Gauge& PoolQueueDepth() {
  static obs::Gauge& gauge = obs::GetGauge("pool.queue_depth");
  return gauge;
}

obs::Histogram& PoolTaskUs() {
  static obs::Histogram& hist = obs::GetHistogram("pool.task_us");
  return hist;
}

}  // namespace internal

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace lakeorg
