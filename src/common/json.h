// Minimal JSON: a tagged value tree, a strict recursive-descent parser,
// and a deterministic writer. Built for the observability subsystem's
// machine-readable artifacts (metric snapshots, BENCH_*.json reports):
// object keys are stored in a sorted map and numbers print through one
// fixed format, so serializing the same value twice — or the same metrics
// from two runs — yields byte-identical text. Not a general-purpose JSON
// library: no comments, no NaN/Inf (rejected on write), UTF-8 passthrough.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace lakeorg {

/// One JSON value (null, bool, number, string, array, or object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// std::map keeps keys sorted: object serialization order is
  /// deterministic and independent of insertion order.
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT: implicit
  Json(double d) : type_(Type::kNumber), number_(d) {}  // NOLINT
  Json(int i)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(int64_t i)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(uint64_t u)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  static Json MakeArray() { return Json(Type::kArray); }
  static Json MakeObject() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; requires the matching type.
  bool bool_value() const;
  double number() const;
  const std::string& string() const;
  const Array& array() const;
  Array& array();
  const Object& object() const;
  Object& object();

  /// Object lookup: the member value, or nullptr when absent (or when this
  /// is not an object).
  const Json* Find(const std::string& key) const;
  /// Object member access, inserting null for a missing key. Requires an
  /// object (a null value silently becomes an empty object first, so
  /// `Json j; j["a"] = 1;` works).
  Json& operator[](const std::string& key);
  /// Array append. Requires an array (a null value becomes an empty array).
  void push_back(Json value);

  /// Serializes deterministically. `indent < 0` emits the compact one-line
  /// form; `indent >= 0` pretty-prints with that many spaces per level.
  /// Numbers that hold an exact integer in the +-2^53 range print without
  /// a decimal point; all other finite numbers print with %.17g (shortest
  /// form that round-trips a double is not needed — stability is).
  std::string Dump(int indent = -1) const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Numbers parse into double.
  static Result<Json> Parse(const std::string& text);

 private:
  explicit Json(Type type) : type_(type) {}

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace lakeorg
