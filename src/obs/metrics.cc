#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <mutex>

namespace lakeorg::obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(double v) {
  if (!MetricsEnabled()) return;
  size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; a CAS loop keeps us portable to
  // toolchains that lower it through libatomic.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& LatencyBucketsUs() {
  // 1 us .. 10 s at 1-2-5 stops; the overflow bucket catches the rest.
  static const std::vector<double> kBuckets = {
      1,     2,     5,     10,    20,    50,    100,    200,    500,
      1000,  2000,  5000,  10000, 20000, 50000, 100000, 200000, 500000,
      1e6,   2e6,   5e6,   1e7};
  return kBuckets;
}

const std::vector<double>& FractionBuckets() {
  static const std::vector<double> kBuckets = {
      0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  return kBuckets;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The process-wide metric registry. Maps own the metrics through
/// unique_ptr, so references handed out stay stable while the registry
/// grows. Construct-on-first-use and never destroyed: metrics registered
/// from static initializers or other threads must outlive every user.
class Registry {
 public:
  static Registry& Get() {
    static Registry* instance = new Registry();
    return *instance;
  }

  Counter& GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Counter>& slot = counters_[name];
    if (slot == nullptr) slot.reset(new Counter());
    return *slot;
  }

  Gauge& GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Gauge>& slot = gauges_[name];
    if (slot == nullptr) slot.reset(new Gauge());
    return *slot;
  }

  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Histogram>& slot = histograms_[name];
    if (slot == nullptr) slot.reset(new Histogram(bounds));
    return *slot;
  }

  MetricsSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace_back(name, counter->value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges.emplace_back(name, gauge->value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      MetricsSnapshot::HistogramData data;
      data.name = name;
      data.bounds = hist->bounds();
      data.counts = hist->bucket_counts();
      data.count = hist->count();
      data.sum = hist->sum();
      snap.histograms.push_back(std::move(data));
    }
    return snap;
  }

  void ResetAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Reset();
    for (auto& [name, hist] : histograms_) hist->Reset();
  }

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  /// std::map: snapshots iterate in sorted name order.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

Counter& GetCounter(const std::string& name) {
  return Registry::Get().GetCounter(name);
}

Gauge& GetGauge(const std::string& name) {
  return Registry::Get().GetGauge(name);
}

Histogram& GetHistogram(const std::string& name,
                        const std::vector<double>& bounds) {
  return Registry::Get().GetHistogram(name, bounds);
}

MetricsSnapshot SnapshotMetrics() { return Registry::Get().Snapshot(); }

void ResetAllMetrics() { Registry::Get().ResetAll(); }

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

bool MetricsSnapshot::IsTimingName(const std::string& name) {
  return name.ends_with("_us") || name.ends_with("_seconds");
}

Json MetricsSnapshot::ToJson(bool include_timings) const {
  Json counters_obj = Json::MakeObject();
  for (const auto& [name, value] : counters) {
    if (!include_timings && IsTimingName(name)) continue;
    counters_obj[name] = Json(value);
  }
  Json gauges_obj = Json::MakeObject();
  for (const auto& [name, value] : gauges) {
    if (!include_timings && IsTimingName(name)) continue;
    gauges_obj[name] = Json(value);
  }
  Json hists_obj = Json::MakeObject();
  for (const HistogramData& h : histograms) {
    if (!include_timings && IsTimingName(h.name)) continue;
    Json entry = Json::MakeObject();
    Json bounds = Json::MakeArray();
    for (double b : h.bounds) bounds.push_back(Json(b));
    Json counts = Json::MakeArray();
    for (uint64_t c : h.counts) counts.push_back(Json(c));
    entry["bounds"] = std::move(bounds);
    entry["counts"] = std::move(counts);
    entry["count"] = Json(h.count);
    entry["sum"] = Json(h.sum);
    hists_obj[h.name] = std::move(entry);
  }
  Json out = Json::MakeObject();
  out["counters"] = std::move(counters_obj);
  out["gauges"] = std::move(gauges_obj);
  out["histograms"] = std::move(hists_obj);
  return out;
}

}  // namespace lakeorg::obs
